"""Figure 15: memcached latency and throughput."""

from __future__ import annotations

from typing import Dict

from repro.experiments import ExperimentResult
from repro.system import System
from repro.workloads.base import WorkloadResult
from repro.workloads.memcachedwl import MemcachedWorkload

NAME = "fig15"
TITLE = "Figure 15: memcached GETs (1024 elems/bucket, 1KB values)"

PARAMS = dict(num_buckets=8, elems_per_bucket=1024, value_bytes=1024, num_requests=64)
SWEEP_OCCUPANCY = (64, 1024)


def run_variant(method: str, **overrides) -> WorkloadResult:
    params = dict(PARAMS)
    params.update(overrides)
    workload = MemcachedWorkload(System(), **params)
    result = getattr(workload, method)()
    if not workload.verify(result.metrics["replies"]):
        raise AssertionError("memcached served wrong values")
    return result


def run_variants() -> Dict[str, WorkloadResult]:
    return {
        "cpu": run_variant("run_cpu"),
        "gpu-nosyscall": run_variant("run_gpu_nosyscall"),
        "genesys": run_variant("run_genesys"),
    }


def run_occupancy_sweep() -> Dict[int, tuple]:
    out = {}
    for occupancy in SWEEP_OCCUPANCY:
        cpu = run_variant("run_cpu", elems_per_bucket=occupancy)
        genesys = run_variant("run_genesys", elems_per_bucket=occupancy)
        out[occupancy] = (
            cpu.metrics["mean_latency_ns"],
            genesys.metrics["mean_latency_ns"],
        )
    return out


def run() -> ExperimentResult:
    results = run_variants()
    sweep = run_occupancy_sweep()
    experiment = ExperimentResult(NAME)
    experiment.add_table(
        TITLE,
        ["variant", "mean lat (us)", "p99 lat (us)", "throughput (req/s)"],
        [
            (
                name,
                f"{res.metrics['mean_latency_ns'] / 1000:.1f}",
                f"{res.metrics['p99_latency_ns'] / 1000:.1f}",
                f"{res.metrics['throughput_rps']:.0f}",
            )
            for name, res in results.items()
        ],
    )
    experiment.add_table(
        "Figure 15 sweep: mean GET latency (us) by bucket occupancy",
        ["elems/bucket", "cpu", "genesys", "gpu advantage"],
        [
            (occ, f"{cpu / 1000:.1f}", f"{gpu / 1000:.1f}", f"{cpu / gpu:.2f}x")
            for occ, (cpu, gpu) in sweep.items()
        ],
    )
    experiment.data = {"results": results, "sweep": sweep}
    return experiment
