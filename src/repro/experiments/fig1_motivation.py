"""Figure 1: why GPUs should invoke system calls at all.

The paper's motivating timeline: without GPU syscalls a conceptually
single kernel must be split around every OS service request — the CPU
loads data, launches a kernel, waits for it to finish, loads the next
chunk, launches again.  Each split is a global barrier plus a CPU-GPU
round trip.  With GENESYS one kernel requests data as it goes, and CPU
servicing overlaps GPU execution of other work-groups.

This experiment quantifies that: a streaming job that processes N
chunks of a file, run (a) conventionally with one kernel launch per
chunk and (b) as a single GENESYS kernel whose work-groups read their
own chunks.
"""

from __future__ import annotations

from typing import Generator

from repro.core.invocation import Granularity, Ordering
from repro.experiments import ExperimentResult
from repro.gpu.ops import Compute
from repro.machine import MachineConfig
from repro.oskernel.fs import O_RDONLY
from repro.system import System

NAME = "fig1"
TITLE = "Figure 1: kernel-split baseline vs direct GPU syscalls"

NUM_CHUNKS = 16
CHUNK_BYTES = 16384
WG_SIZE = 64
PROCESS_CYCLES_PER_BYTE = 2.0


def _populate(system: System) -> None:
    system.kernel.fs.create_file("/tmp/stream", b"\x5a" * (NUM_CHUNKS * CHUNK_BYTES))


def run_conventional() -> float:
    """One kernel launch per chunk; the CPU loads data between launches."""
    system = System(config=MachineConfig())
    _populate(system)
    kernel = system.kernel
    proc = system.host
    staged = {}

    def process_kernel(ctx) -> Generator:
        data = staged["chunk"]
        per_item = len(data) // ctx.group.size
        yield Compute(per_item * PROCESS_CYCLES_PER_BYTE)

    def main() -> Generator:
        fd = yield from kernel.call(proc, "open", "/tmp/stream", O_RDONLY)
        buf = system.memsystem.alloc_buffer(CHUNK_BYTES)
        for chunk_no in range(NUM_CHUNKS):
            # load_data(buf): the CPU must fetch the chunk...
            n = yield from kernel.call(
                proc, "pread", fd, buf, CHUNK_BYTES, chunk_no * CHUNK_BYTES
            )
            staged["chunk"] = bytes(buf.data[:n])
            # ...then launch a fresh kernel to process it, and wait.
            yield system.launch(process_kernel, WG_SIZE, WG_SIZE, name="conv")
        yield from kernel.call(proc, "close", fd)

    start = system.now
    system.run_to_completion(main(), name="fig1-conventional")
    return system.now - start


def run_genesys() -> float:
    """A single kernel; each work-group preads and processes its chunk."""
    system = System(config=MachineConfig())
    _populate(system)
    bufs = {}

    def kern(ctx) -> Generator:
        fd = yield from ctx.sys.open(
            "/tmp/stream", O_RDONLY,
            granularity=Granularity.WORK_GROUP, ordering=Ordering.RELAXED,
        )
        if ctx.group_id not in bufs:
            bufs[ctx.group_id] = system.memsystem.alloc_buffer(CHUNK_BYTES)
        buf = bufs[ctx.group_id]
        yield from ctx.sys.pread(
            fd, buf, CHUNK_BYTES, ctx.group_id * CHUNK_BYTES,
            granularity=Granularity.WORK_GROUP, ordering=Ordering.RELAXED,
        )
        yield Compute(CHUNK_BYTES // WG_SIZE * PROCESS_CYCLES_PER_BYTE)
        yield from ctx.sys.close(
            fd, granularity=Granularity.WORK_GROUP,
            ordering=Ordering.RELAXED, blocking=False,
        )

    start = system.now
    system.run_kernel(kern, NUM_CHUNKS * WG_SIZE, WG_SIZE, name="fig1-genesys")
    return system.now - start, system.gpu.kernels_launched


def run() -> ExperimentResult:
    conventional = run_conventional()
    genesys, genesys_launches = run_genesys()
    result = ExperimentResult(NAME)
    result.add_table(
        TITLE,
        ["variant", "kernel launches", "runtime (ms)", "speedup"],
        [
            ("conventional (split kernels)", NUM_CHUNKS, f"{conventional / 1e6:.3f}", "1.00x"),
            ("GENESYS (one kernel)", genesys_launches, f"{genesys / 1e6:.3f}",
             f"{conventional / genesys:.2f}x"),
        ],
    )
    result.data = {
        "conventional_ns": conventional,
        "genesys_ns": genesys,
        "genesys_launches": genesys_launches,
        "speedup": conventional / genesys,
    }
    return result
