"""Figure 13a: grep -F -l across CPU and GENESYS variants."""

from __future__ import annotations

from typing import Dict

from repro.core.invocation import Granularity, WaitMode
from repro.experiments import ExperimentResult
from repro.machine import MachineConfig
from repro.system import System
from repro.workloads.base import WorkloadResult
from repro.workloads.grepwl import GrepWorkload

NAME = "fig13a"
TITLE = "Figure 13a: grep -F -l runtime"

PARAMS = dict(num_files=64, file_bytes=262144, chunk_bytes=131072)


def grep_workload(**overrides) -> GrepWorkload:
    """The GPU L2 is scaled with the corpus (see EXPERIMENTS.md)."""
    params = dict(PARAMS)
    params.update(overrides)
    system = System(config=MachineConfig(gpu_l2_lines=256))
    return GrepWorkload(system, **params)


def run_variants(**overrides) -> Dict[str, WorkloadResult]:
    return {
        "cpu": grep_workload(**overrides).run_cpu(threads=1),
        "openmp": grep_workload(**overrides).run_cpu(threads=4),
        "wg": grep_workload(**overrides).run_genesys(
            Granularity.WORK_GROUP, WaitMode.POLL
        ),
        "wi-poll": grep_workload(**overrides).run_genesys(
            Granularity.WORK_ITEM, WaitMode.POLL
        ),
        "wi-halt": grep_workload(**overrides).run_genesys(
            Granularity.WORK_ITEM, WaitMode.HALT_RESUME
        ),
    }


def run() -> ExperimentResult:
    results = run_variants()
    base = results["cpu"].runtime_ns
    experiment = ExperimentResult(NAME)
    experiment.add_table(
        TITLE,
        ["variant", "runtime (ms)", "speedup vs cpu"],
        [
            (name, f"{res.runtime_ms:.2f}", f"{base / res.runtime_ns:.2f}x")
            for name, res in results.items()
        ],
    )
    experiment.data = results
    return experiment
