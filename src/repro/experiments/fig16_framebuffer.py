"""Figure 16: GPU blit to /dev/fb0 via ioctl + mmap."""

from __future__ import annotations

from typing import Tuple

from repro.experiments import ExperimentResult
from repro.system import System
from repro.workloads.base import WorkloadResult
from repro.workloads.bmp_display import BmpDisplayWorkload

NAME = "fig16"
TITLE = "Figure 16: GPU blit to /dev/fb0"


def run_display(width: int = 64, height: int = 64) -> Tuple[System, BmpDisplayWorkload, WorkloadResult]:
    system = System()
    workload = BmpDisplayWorkload(system, width=width, height=height)
    result = workload.run()
    return system, workload, result


def run() -> ExperimentResult:
    system, workload, result = run_display()
    metrics = result.metrics
    experiment = ExperimentResult(NAME)
    experiment.add_table(
        TITLE,
        ["metric", "value"],
        [
            ("mode set via ioctl", f"{metrics['mode'][0]}x{metrics['mode'][1]}"),
            ("ioctls from GPU", metrics["ioctls"]),
            ("display pans", metrics["pans"]),
            ("pixels identical", metrics["displayed_correctly"]),
            ("simulated time (ms)", f"{result.runtime_ms:.3f}"),
        ],
    )
    experiment.data = {
        "system": system,
        "workload": workload,
        "result": result,
        "syscall_counts": dict(system.kernel.syscall_counts),
    }
    return experiment
