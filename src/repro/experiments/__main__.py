"""Command-line experiment runner.

Usage::

    python -m repro.experiments              # list experiments
    python -m repro.experiments fig8 fig9    # run and print those
    python -m repro.experiments --all        # run everything
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import all_names, load, run


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("names", nargs="*", help="experiment names (see --list)")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list experiment names")
    args = parser.parse_args(argv)

    if args.list or (not args.names and not args.all):
        print("available experiments:")
        for name in all_names():
            module = load(name)
            print(f"  {name:<18} {getattr(module, 'TITLE', '')}")
        return 0

    names = all_names() if args.all else args.names
    for name in names:
        start = time.time()
        try:
            result = run(name)
        except KeyError as err:
            print(err, file=sys.stderr)
            return 2
        print(result.render())
        print(f"[{name}: {time.time() - start:.1f}s wall]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
