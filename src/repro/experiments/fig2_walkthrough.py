"""Figures 2 and 6, narrated: one syscall's walk through the machinery.

Runs a single blocking work-item ``pread`` and records every slot state
transition with its timestamp and which side (GPU or CPU) drove it —
the five steps of Figure 2 and the full FREE → POPULATING → READY →
PROCESSING → FINISHED → FREE cycle of Figure 6, with real latencies
from the calibrated model attached to each edge.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.experiments import ExperimentResult
from repro.machine import MachineConfig
from repro.system import System

NAME = "fig2"
TITLE = "Figures 2/6: one system call, step by step"


def run_walkthrough() -> Tuple[List[tuple], float, int]:
    """Returns (transition log, total latency ns, bytes read)."""
    system = System(config=MachineConfig())
    system.kernel.fs.create_file("/tmp/one", b"W" * 4096)
    buf = system.memsystem.alloc_buffer(4096)
    log: List[tuple] = []
    got = {}

    def recorder(when, slot, old, new, actor):
        log.append((when, old.value, new.value, actor))

    # Trace every slot the (single) wavefront may use.
    for slot in system.genesys.area.slots:
        slot.on_transition = recorder

    def kern(ctx):
        fd = yield from ctx.sys.open("/tmp/one")
        n = yield from ctx.sys.pread(fd, buf, 4096, 0)
        got["n"] = n

    def body():
        yield system.launch(kern, 1, 1)

    start = system.now
    system.run_to_completion(body())
    return log, system.now - start, got["n"]


def run() -> ExperimentResult:
    log, total_ns, nbytes = run_walkthrough()
    experiment = ExperimentResult(NAME)
    rows = []
    prev_time = None
    for when, old, new, actor in log:
        delta = "" if prev_time is None else f"+{(when - prev_time) / 1000:.2f}"
        rows.append(
            (f"{when / 1000:.2f}", delta, f"{old} -> {new}", actor.upper())
        )
        prev_time = when
    experiment.add_table(
        TITLE,
        ["t (us)", "delta (us)", "transition", "side"],
        rows,
    )
    experiment.add_table(
        "Outcome",
        ["metric", "value"],
        [
            ("bytes read", nbytes),
            ("end-to-end (us)", f"{total_ns / 1000:.2f}"),
            ("transitions", len(log)),
        ],
    )
    experiment.data = {"log": log, "total_ns": total_ns, "bytes": nbytes}
    return experiment
