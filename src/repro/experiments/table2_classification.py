"""Table II + Section IV: the syscall classification headline numbers."""

from __future__ import annotations

from repro.core.classification import summary, table2_rows
from repro.experiments import ExperimentResult

NAME = "table2"
TITLE = "Section IV: classification of Linux system calls"


def run() -> ExperimentResult:
    info = summary()
    experiment = ExperimentResult(NAME)
    experiment.add_table(
        TITLE,
        ["category", "count", "share", "paper"],
        [
            ("readily implementable", info["ready"], f"{info['ready_pct']:.1f}%", "~79%"),
            ("needs GPU hw changes", info["hw_changes"], f"{info['hw_changes_pct']:.1f}%", "13%"),
            ("extensive modification", info["extensive"], f"{info['extensive_pct']:.1f}%", "8%"),
            ("total classified", info["total"], "100%", "300+"),
        ],
    )
    examples = {}
    for row in table2_rows():
        examples.setdefault(row["reason"], []).append(row["example"])
    experiment.add_table(
        "Table II: examples needing GPU hardware changes",
        ["reason", "examples"],
        [
            (
                reason[:60],
                ", ".join(sorted(names)[:6]) + ("..." if len(names) > 6 else ""),
            )
            for reason, names in examples.items()
        ],
    )
    experiment.data = info
    return experiment
