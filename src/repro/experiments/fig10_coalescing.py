"""Figure 10: implications of system-call coalescing."""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.coalescing import CoalescingConfig
from repro.experiments import ExperimentResult
from repro.machine import MachineConfig
from repro.system import System

NAME = "fig10"
TITLE = "Figure 10: interrupt coalescing"

NUM_WORKITEMS = 64
READ_SIZES = (64, 1024, 16384, 65536)
COALESCE = CoalescingConfig(window_ns=10_000, max_batch=8)


def latency_per_byte(
    read_bytes: int,
    coalescing: Optional[CoalescingConfig],
    setup=None,
) -> float:
    """ns per requested byte for 64 concurrent preads, each from its own
    wavefront (so each is its own interrupt + task when uncoalesced).

    ``setup(system)``, if given, runs before any work is issued — the
    seam the probes tests use to attach policy programs that reproduce a
    coalescing sensitivity point through the hook path.
    """
    system = System(config=MachineConfig(), coalescing=coalescing)
    if setup is not None:
        setup(system)
    total = read_bytes * NUM_WORKITEMS
    system.kernel.fs.create_file("/tmp/data", b"\xcd" * total)
    bufs = [system.memsystem.alloc_buffer(read_bytes) for _ in range(NUM_WORKITEMS)]

    def host_open():
        fd = yield from system.kernel.call(system.host, "open", "/tmp/data")
        return fd

    fd = system.sim.run_process(host_open())

    def kern(ctx):
        yield from ctx.sys.pread(
            fd, bufs[ctx.group_id], read_bytes, read_bytes * ctx.group_id
        )

    elapsed = system.run_kernel(kern, NUM_WORKITEMS, 1, name="fig10")
    return elapsed / read_bytes


def run_sweep() -> Dict[int, Dict[str, float]]:
    out: Dict[int, Dict[str, float]] = {}
    for size in READ_SIZES:
        out[size] = {
            "none": latency_per_byte(size, None),
            "coalesce8": latency_per_byte(size, COALESCE),
        }
    return out


def run() -> ExperimentResult:
    results = run_sweep()
    experiment = ExperimentResult(NAME)
    experiment.add_table(
        "Figure 10: latency per requested byte (ns/B)",
        ["bytes/call", "no coalescing", "coalesce<=8", "benefit"],
        [
            (
                size,
                f"{results[size]['none']:.1f}",
                f"{results[size]['coalesce8']:.1f}",
                f"{100 * (results[size]['none'] / results[size]['coalesce8'] - 1):+.1f}%",
            )
            for size in READ_SIZES
        ],
    )
    experiment.data = results
    return experiment
