"""Reproduction experiments: one module per paper table/figure.

Every module exposes ``NAME``, ``TITLE``, and ``run() ->
ExperimentResult``; the registry below maps names to modules.  The
``benchmarks/`` tree wraps these with pytest-benchmark and shape
assertions; ``python -m repro.experiments`` runs them standalone and
prints the paper-style tables.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple


@dataclass
class ExperimentTable:
    """One printable table of an experiment's output."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence]

    def render(self) -> str:
        widths = [
            max(len(str(header)), max((len(str(row[i])) for row in self.rows), default=0))
            for i, header in enumerate(self.headers)
        ]
        lines = [f"=== {self.title} ==="]
        lines.append("  ".join(str(h).ljust(w) for h, w in zip(self.headers, widths)))
        for row in self.rows:
            lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Everything an experiment produced: tables for humans, data for
    assertions."""

    name: str
    tables: List[ExperimentTable] = field(default_factory=list)
    data: dict = field(default_factory=dict)

    def render(self) -> str:
        return "\n\n".join(table.render() for table in self.tables)

    def add_table(self, title: str, headers: Sequence[str], rows: List[Sequence]) -> None:
        self.tables.append(ExperimentTable(title, headers, rows))


#: name -> module path (relative to this package).
REGISTRY: Dict[str, str] = {
    "fig1": "fig1_motivation",
    "fig2": "fig2_walkthrough",
    "fig7": "fig7_granularity",
    "fig8": "fig8_ordering",
    "fig9": "fig9_polling",
    "fig10": "fig10_coalescing",
    "fig11": "fig11_miniamr",
    "fig12": "fig12_signals",
    "fig13a": "fig13a_grep",
    "fig13b": "fig13b_wordcount",
    "fig14": "fig14_io",
    "fig15": "fig15_memcached",
    "fig16": "fig16_framebuffer",
    "table1": "table1_applications",
    "table2": "table2_classification",
    "table4": "table4_atomics",
    "ablation-slots": "ablation_slots",
    "ablation-buffers": "ablation_buffers",
    "ext-sensitivity": "ext_sensitivity",
    "ext-scaling": "ext_scaling",
}


def load(name: str):
    """Import the experiment module registered under ``name``."""
    try:
        module_name = REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {', '.join(sorted(REGISTRY))}"
        ) from None
    return importlib.import_module(f"repro.experiments.{module_name}")


def run(name: str) -> ExperimentResult:
    """Run one experiment by registry name."""
    return load(name).run()


def all_names() -> List[str]:
    return list(REGISTRY)
