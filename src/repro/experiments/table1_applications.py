"""Table I: applications enabled by GENESYS and the syscalls they use."""

from __future__ import annotations

from typing import Dict, Set

from repro.core.invocation import Granularity, WaitMode
from repro.experiments import ExperimentResult
from repro.machine import MachineConfig
from repro.system import System
from repro.workloads.bmp_display import BmpDisplayWorkload
from repro.workloads.grepwl import GrepWorkload
from repro.workloads.memcachedwl import MemcachedWorkload
from repro.workloads.miniamr import MiniAmrWorkload
from repro.workloads.signal_search import SignalSearchWorkload
from repro.workloads.wordcount import WordcountWorkload

NAME = "table1"
TITLE = "Table I: applications and the syscalls they exercise"

#: application -> (Table I type, the syscalls Table I lists).
TABLE1: Dict[str, tuple] = {
    "miniamr": ("Memory Management", {"madvise", "getrusage"}),
    "signal-search": ("Signals", {"rt_sigqueueinfo"}),
    "grep": ("Filesystem", {"read", "open", "close"}),
    "bmp-display": ("Device Control", {"ioctl", "mmap"}),
    "wordsearch": ("Filesystem", {"pread", "read"}),
    "memcached": ("Network", {"sendto", "recvfrom"}),
}


def run_all() -> Dict[str, Set[str]]:
    """Run scaled instances of every case study; returns the syscalls
    each one's system observed."""
    used: Dict[str, Set[str]] = {}

    amr_system = System(
        config=MachineConfig(
            phys_mem_bytes=int(2.5 * 1024 * 1024), gpu_timeout_faults=48
        )
    )
    MiniAmrWorkload(amr_system, timesteps=12).run(
        rss_watermark_bytes=int(1.6 * 1024 * 1024)
    )
    used["miniamr"] = set(amr_system.kernel.syscall_counts)

    sig_system = System()
    SignalSearchWorkload(sig_system, num_blocks=8, block_bytes=8192).run_genesys()
    used["signal-search"] = set(sig_system.kernel.syscall_counts)

    grep_system = System(config=MachineConfig(gpu_l2_lines=256))
    grep = GrepWorkload(grep_system, num_files=8, file_bytes=16384)
    grep.run_genesys(Granularity.WORK_ITEM, WaitMode.POLL)
    used["grep"] = set(grep_system.kernel.syscall_counts)

    fb_system = System()
    BmpDisplayWorkload(fb_system, width=64, height=64).run()
    used["bmp-display"] = set(fb_system.kernel.syscall_counts)

    wc_system = System()
    WordcountWorkload(wc_system, num_files=8, file_bytes=16384).run_genesys()
    used["wordsearch"] = set(wc_system.kernel.syscall_counts)

    mc_system = System()
    workload = MemcachedWorkload(
        mc_system, num_buckets=4, elems_per_bucket=64, value_bytes=128,
        num_requests=16, concurrency=4,
    )
    workload.run_genesys(num_workgroups=4)
    used["memcached"] = set(mc_system.kernel.syscall_counts)
    return used


def run() -> ExperimentResult:
    used = run_all()
    experiment = ExperimentResult(NAME)
    experiment.add_table(
        TITLE,
        ["application", "type", "Table I syscalls", "observed"],
        [
            (
                app,
                app_type,
                ", ".join(sorted(expected)),
                ", ".join(sorted(used[app] & expected)),
            )
            for app, (app_type, expected) in TABLE1.items()
        ],
    )
    experiment.data = {"used": used, "expected": TABLE1}
    return experiment
