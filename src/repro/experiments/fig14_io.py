"""Figure 14: wordcount I/O throughput and CPU utilisation traces."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments import ExperimentResult
from repro.system import System
from repro.workloads.base import WorkloadResult
from repro.workloads.wordcount import WordcountWorkload

NAME = "fig14"
TITLE = "Figure 14: wordcount I/O throughput and CPU utilisation"

PARAMS = dict(num_files=32, file_bytes=65536)
TRACE_BINS = 8


def run_variant(name: str) -> Tuple[System, WorkloadResult]:
    system = System()
    workload = WordcountWorkload(system, **PARAMS)
    result = workload.run_cpu(4) if name == "cpu" else workload.run_genesys()
    return system, result


def run_both() -> Dict[str, Tuple[System, WorkloadResult]]:
    return {name: run_variant(name) for name in ("cpu", "genesys")}


def measurements(results: Dict[str, Tuple[System, WorkloadResult]]) -> Dict[str, tuple]:
    """(throughput MB/s, cpu utilisation, peak queue depth) per variant."""
    out = {}
    for name, (system, _result) in results.items():
        disk = system.kernel.disk
        out[name] = (
            disk.achieved_throughput() * 1000.0,
            system.cpu.utilization.average(),
            disk.max_queue_depth,
        )
    return out


def run() -> ExperimentResult:
    results = run_both()
    measured = measurements(results)
    experiment = ExperimentResult(NAME)
    experiment.add_table(
        TITLE,
        ["variant", "runtime (ms)", "disk MB/s", "CPU util", "peak I/O queue"],
        [
            (
                name,
                f"{results[name][1].runtime_ms:.2f}",
                f"{measured[name][0]:.0f}",
                f"{100 * measured[name][1]:.0f}%",
                measured[name][2],
            )
            for name in results
        ],
    )
    system, _result = results["genesys"]
    bin_ns = max(1.0, system.now / TRACE_BINS)
    series = system.kernel.disk.throughput_series(bin_ns)
    experiment.add_table(
        "GENESYS disk-throughput trace",
        ["t (ms)", "MB/s"],
        [(f"{t / 1e6:.2f}", f"{rate * 1000:.0f}") for t, rate in series],
    )
    experiment.data = {"results": results, "measured": measured}
    return experiment
