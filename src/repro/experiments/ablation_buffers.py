"""Ablation: syscall-buffer coherence — per-line atomics vs L1 flush.

Section VI: "we suffered the latency of several L2 data cache accesses
to syscall buffers [with atomics] ... a better approach was to eschew
atomics in favor of manual software L1 data cache coherence."
"""

from __future__ import annotations

from typing import Tuple

from repro.experiments import ExperimentResult
from repro.machine import MachineConfig
from repro.memory.system import MemorySystem
from repro.sim.engine import Simulator

NAME = "ablation-buffers"
TITLE = "Ablation: syscall-buffer coherence strategy"

BUFFER_BYTES = 16384


def run_strategies(buffer_bytes: int = BUFFER_BYTES) -> Tuple[float, float]:
    """Returns (per-line atomics ns, write + software flush ns)."""
    config = MachineConfig()
    lines = buffer_bytes // config.cacheline_bytes

    sim_a = Simulator()
    mem_a = MemorySystem(sim_a, config)
    base_a = mem_a.alloc(buffer_bytes)

    def atomics_body():
        for i in range(lines):
            yield from mem_a.gpu_atomic("atomic-load", base_a + i * 64)

    sim_a.run_process(atomics_body())

    sim_b = Simulator()
    mem_b = MemorySystem(sim_b, config)
    base_b = mem_b.alloc(buffer_bytes)

    def flush_body():
        yield from mem_b.gpu_store(0, base_b, buffer_bytes)
        yield from mem_b.gpu_l1_flush_range(0, base_b, buffer_bytes)

    sim_b.run_process(flush_body())
    return sim_a.now, sim_b.now


def run() -> ExperimentResult:
    atomics_ns, flush_ns = run_strategies()
    experiment = ExperimentResult(NAME)
    experiment.add_table(
        f"{TITLE} ({BUFFER_BYTES // 1024} KiB buffer)",
        ["strategy", "time (us)"],
        [
            ("per-line atomics", f"{atomics_ns / 1000:.1f}"),
            ("write + software L1 flush", f"{flush_ns / 1000:.1f}"),
        ],
    )
    experiment.data = {"atomics_ns": atomics_ns, "flush_ns": flush_ns}
    return experiment
