"""Extension: what bounds GENESYS throughput?

The CPU services every GPU system call, and the device serves the
data; GENESYS performance follows whichever is the bottleneck.  Two
sweeps make that concrete:

* **CPU cores** on a tmpfs pread burst (no device in the path): the
  workload is servicing-bound, so cores scale it — until the burst
  runs out of concurrency.
* **SSD channels** on the wordcount case study: the workload is
  I/O-bound, so device parallelism scales it while extra CPU cores or
  GPU compute units do nothing (also shown: a flat CU sweep).
"""

from __future__ import annotations

from typing import Dict

from repro.core.invocation import Granularity, Ordering
from repro.experiments import ExperimentResult
from repro.machine import MachineConfig
from repro.system import System
from repro.workloads.wordcount import WordcountWorkload

NAME = "ext-scaling"
TITLE = "Extension: CPU-core and SSD-channel scaling"

CPU_CORES = (1, 2, 4, 8)
SSD_CHANNELS = (1, 4, 8, 16)
GPU_CUS = (2, 8)
BURST_GROUPS = 64
BURST_BYTES = 16384
WC_PARAMS = dict(num_files=24, file_bytes=65536)


def syscall_burst_time(config: MachineConfig) -> float:
    """64 concurrent work-group preads from tmpfs (servicing-bound)."""
    system = System(config=config)
    system.kernel.fs.create_file("/tmp/burst", b"\x11" * (BURST_BYTES * BURST_GROUPS))
    bufs = [system.memsystem.alloc_buffer(BURST_BYTES) for _ in range(BURST_GROUPS)]

    def kern(ctx):
        fd = yield from ctx.sys.open(
            "/tmp/burst", granularity=Granularity.WORK_GROUP,
            ordering=Ordering.RELAXED,
        )
        yield from ctx.sys.pread(
            fd, bufs[ctx.group_id], BURST_BYTES, BURST_BYTES * ctx.group_id,
            granularity=Granularity.WORK_GROUP, ordering=Ordering.RELAXED,
        )

    return system.run_kernel(kern, BURST_GROUPS * 64, 64, name="burst")


def wordcount_time(config: MachineConfig) -> float:
    system = System(config=config)
    workload = WordcountWorkload(system, **WC_PARAMS)
    return workload.run_genesys().runtime_ns


def sweep_cpu_cores() -> Dict[int, float]:
    return {
        cores: syscall_burst_time(MachineConfig(cpu_cores=cores))
        for cores in CPU_CORES
    }


def sweep_ssd_channels() -> Dict[int, float]:
    return {
        channels: wordcount_time(MachineConfig(ssd_channels=channels))
        for channels in SSD_CHANNELS
    }


def sweep_gpu_cus() -> Dict[int, float]:
    return {cus: wordcount_time(MachineConfig(num_cus=cus)) for cus in GPU_CUS}


def run() -> ExperimentResult:
    cores = sweep_cpu_cores()
    channels = sweep_ssd_channels()
    cus = sweep_gpu_cus()
    experiment = ExperimentResult(NAME)
    base = cores[CPU_CORES[0]]
    experiment.add_table(
        "Scaling: CPU cores (servicing-bound tmpfs pread burst)",
        ["cores", "runtime (us)", "speedup vs 1 core"],
        [(c, f"{t / 1000:.1f}", f"{base / t:.2f}x") for c, t in cores.items()],
    )
    base_ch = channels[SSD_CHANNELS[0]]
    experiment.add_table(
        "Scaling: SSD channels (I/O-bound wordcount)",
        ["channels", "runtime (ms)", "speedup vs 1 channel"],
        [(c, f"{t / 1e6:.2f}", f"{base_ch / t:.2f}x") for c, t in channels.items()],
    )
    base_cu = cus[GPU_CUS[0]]
    experiment.add_table(
        "Scaling: GPU compute units (I/O-bound wordcount — flat by design)",
        ["CUs", "runtime (ms)", "speedup vs 2 CUs"],
        [(c, f"{t / 1e6:.2f}", f"{base_cu / t:.2f}x") for c, t in cus.items()],
    )
    experiment.data = {"cores": cores, "channels": channels, "cus": cus}
    return experiment
