"""Figure 7: impact of system-call invocation granularity (see the
module docstring in benchmarks/test_fig7_granularity.py history — this
is the library-side implementation)."""

from __future__ import annotations

from typing import Dict

from repro.core.invocation import Granularity, Ordering
from repro.experiments import ExperimentResult
from repro.machine import MachineConfig
from repro.system import System

NAME = "fig7"
TITLE = "Figure 7: invocation granularity"

TOTAL_WORKITEMS = 256
FILE_SIZES = (16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024)
WG_SIZES = (64, 256, 1024)


def pread_time(
    file_bytes: int,
    granularity: Granularity,
    wg_size: int = 64,
    total_workitems: int = TOTAL_WORKITEMS,
) -> float:
    """Simulated time to read a whole tmpfs file at one granularity."""
    system = System(config=MachineConfig())
    system.kernel.fs.create_file("/tmp/data", b"\xab" * file_bytes)
    num_groups = total_workitems // wg_size
    mem = system.memsystem
    bufs: Dict = {}

    def kern(ctx):
        fd = yield from ctx.sys.open(
            "/tmp/data", granularity=Granularity.WORK_GROUP, ordering=Ordering.RELAXED
        )
        if granularity is Granularity.WORK_ITEM:
            share = file_bytes // total_workitems
            buf = bufs.setdefault(ctx.global_id, mem.alloc_buffer(share))
            yield from ctx.sys.pread(fd, buf, share, share * ctx.global_id)
        elif granularity is Granularity.WORK_GROUP:
            share = file_bytes // num_groups
            buf = bufs.setdefault(("wg", ctx.group_id), mem.alloc_buffer(share))
            yield from ctx.sys.pread(
                fd, buf, share, share * ctx.group_id,
                granularity=Granularity.WORK_GROUP, ordering=Ordering.RELAXED,
            )
        else:
            buf = bufs.setdefault("kernel", mem.alloc_buffer(file_bytes))
            yield from ctx.sys.pread(
                fd, buf, file_bytes, 0,
                granularity=Granularity.KERNEL, ordering=Ordering.RELAXED,
            )

    return system.run_kernel(kern, total_workitems, wg_size, name="fig7")


def run_left() -> Dict[int, Dict[str, float]]:
    """Left panel: file-size sweep across granularities."""
    results: Dict[int, Dict[str, float]] = {}
    for size in FILE_SIZES:
        results[size] = {
            "work-item": pread_time(size, Granularity.WORK_ITEM),
            "work-group": pread_time(size, Granularity.WORK_GROUP),
            "kernel": pread_time(size, Granularity.KERNEL),
        }
    return results


def run_right(file_bytes: int = 64 * 1024, total: int = 1024) -> Dict[int, float]:
    """Right panel: work-group-size sweep (overhead-dominated regime)."""
    return {
        wg: pread_time(file_bytes, Granularity.WORK_GROUP, wg_size=wg, total_workitems=total)
        for wg in WG_SIZES
    }


def run() -> ExperimentResult:
    left = run_left()
    right = run_right()
    result = ExperimentResult(NAME)
    result.add_table(
        "Figure 7 (left): pread time (ms) by invocation granularity",
        ["file size", "work-item", "work-group", "kernel"],
        [
            (
                f"{size // 1024} KiB",
                f"{left[size]['work-item'] / 1e6:.3f}",
                f"{left[size]['work-group'] / 1e6:.3f}",
                f"{left[size]['kernel'] / 1e6:.3f}",
            )
            for size in FILE_SIZES
        ],
    )
    result.add_table(
        "Figure 7 (right): pread time (ms) by work-group size",
        ["wg size", "time (ms)"],
        [(f"wg{wg}", f"{right[wg] / 1e6:.3f}") for wg in WG_SIZES],
    )
    result.data = {"left": left, "right": right}
    return result
