"""Figure 12: signal-search — overlap via rt_sigqueueinfo."""

from __future__ import annotations

from typing import Tuple

from repro.experiments import ExperimentResult
from repro.system import System
from repro.workloads.base import WorkloadResult
from repro.workloads.signal_search import SignalSearchWorkload

NAME = "fig12"
TITLE = "Figure 12: CPU-GPU map-reduce runtime"


def run_pair() -> Tuple[WorkloadResult, WorkloadResult]:
    baseline = SignalSearchWorkload(System()).run_baseline()
    genesys = SignalSearchWorkload(System()).run_genesys()
    return baseline, genesys


def run() -> ExperimentResult:
    baseline, genesys = run_pair()
    speedup = baseline.runtime_ns / genesys.runtime_ns - 1
    experiment = ExperimentResult(NAME)
    experiment.add_table(
        TITLE,
        ["variant", "runtime (ms)"],
        [
            ("baseline (serialised phases)", f"{baseline.runtime_ms:.3f}"),
            ("GENESYS (signals overlap)", f"{genesys.runtime_ms:.3f}"),
            ("speedup", f"{100 * speedup:.1f}%  (paper: ~14%)"),
        ],
    )
    experiment.data = {"baseline": baseline, "genesys": genesys, "speedup": speedup}
    return experiment
