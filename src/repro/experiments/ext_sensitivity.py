"""Extension: sensitivity of GENESYS to its implementation knobs.

The paper closes with design guidelines for practitioners; this
extension experiment quantifies how the main implementation parameters
move the needle on a fixed syscall-heavy workload (64 work-group preads
of 16 KiB from tmpfs):

* the GPU-side poll interval — finer polling sees completions sooner
  but burns atomics;
* the halt-resume wake latency — the break-even against polling;
* the OS worker-pool size — how much CPU-side servicing parallelism
  the syscall burst can use.
"""

from __future__ import annotations

from typing import Dict

from repro.core.invocation import Granularity, Ordering, WaitMode
from repro.experiments import ExperimentResult
from repro.machine import MachineConfig
from repro.system import System

NAME = "ext-sensitivity"
TITLE = "Extension: sensitivity to implementation parameters"

NUM_GROUPS = 64
WG_SIZE = 64
READ_BYTES = 16384

POLL_INTERVALS = (250.0, 1000.0, 4000.0)
HALT_LATENCIES = (1000.0, 5000.0, 20000.0)
WORKER_COUNTS = (2, 8, 32)


def _workload_time(config: MachineConfig, wait: WaitMode) -> float:
    system = System(config=config)
    total = READ_BYTES * NUM_GROUPS
    system.kernel.fs.create_file("/tmp/data", b"\x77" * total)
    bufs = [system.memsystem.alloc_buffer(READ_BYTES) for _ in range(NUM_GROUPS)]

    def kern(ctx):
        fd = yield from ctx.sys.open(
            "/tmp/data", granularity=Granularity.WORK_GROUP,
            ordering=Ordering.RELAXED, wait=wait,
        )
        yield from ctx.sys.pread(
            fd, bufs[ctx.group_id], READ_BYTES, READ_BYTES * ctx.group_id,
            granularity=Granularity.WORK_GROUP, ordering=Ordering.RELAXED,
            wait=wait,
        )

    return system.run_kernel(kern, NUM_GROUPS * WG_SIZE, WG_SIZE, name="sens")


def sweep_poll_interval() -> Dict[float, float]:
    return {
        interval: _workload_time(
            MachineConfig(poll_interval_ns=interval), WaitMode.POLL
        )
        for interval in POLL_INTERVALS
    }


def sweep_halt_latency() -> Dict[float, float]:
    return {
        latency: _workload_time(
            MachineConfig(halt_resume_ns=latency), WaitMode.HALT_RESUME
        )
        for latency in HALT_LATENCIES
    }


def sweep_workers() -> Dict[int, float]:
    return {
        workers: _workload_time(
            MachineConfig(workqueue_workers=workers), WaitMode.POLL
        )
        for workers in WORKER_COUNTS
    }


def run() -> ExperimentResult:
    poll = sweep_poll_interval()
    halt = sweep_halt_latency()
    workers = sweep_workers()
    result = ExperimentResult(NAME)
    result.add_table(
        "Sensitivity: GPU poll interval (polling wait)",
        ["poll interval (ns)", "runtime (us)"],
        [(int(k), f"{v / 1000:.1f}") for k, v in poll.items()],
    )
    result.add_table(
        "Sensitivity: halt-resume wake latency",
        ["resume latency (ns)", "runtime (us)"],
        [(int(k), f"{v / 1000:.1f}") for k, v in halt.items()],
    )
    result.add_table(
        "Sensitivity: OS worker-pool size (64-call burst)",
        ["workers", "runtime (us)"],
        [(k, f"{v / 1000:.1f}") for k, v in workers.items()],
    )
    result.data = {"poll": poll, "halt": halt, "workers": workers}
    return result
