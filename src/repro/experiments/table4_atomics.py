"""Table IV: profiled latency of GPU memory operations."""

from __future__ import annotations

from typing import Dict

from repro.experiments import ExperimentResult
from repro.machine import MachineConfig
from repro.memory.system import MemorySystem
from repro.sim.engine import Simulator

NAME = "table4"
TITLE = "Table IV: profiled GPU memory-op latency"

OPS = ("cmp-swap", "swap", "atomic-load", "load")
REPS = 64


def measure_op(op: str) -> float:
    """Measured mean latency of one op through the memory system (ns)."""
    sim = Simulator()
    mem = MemorySystem(sim, MachineConfig())
    addr = 0x1_0000

    def body():
        yield from mem.gpu_atomic("atomic-load", addr)  # warm the line
        start = sim.now
        for _ in range(REPS):
            if op == "load":
                yield from mem.gpu_load_uncached(addr)
            else:
                yield from mem.gpu_atomic(op, addr)
        return (sim.now - start) / REPS

    return sim.run_process(body())


def measure_all() -> Dict[str, float]:
    return {op: measure_op(op) for op in OPS}


def run() -> ExperimentResult:
    measured = measure_all()
    experiment = ExperimentResult(NAME)
    experiment.add_table(
        TITLE,
        ["op", "measured (us)"],
        [(op, f"{measured[op] / 1000:.3f}") for op in OPS],
    )
    experiment.data = measured
    return experiment
