"""Figure 9: polling-induced CPU/GPU memory contention."""

from __future__ import annotations

from typing import Dict

from repro.experiments import ExperimentResult
from repro.machine import CACHELINE_BYTES, MachineConfig
from repro.memory.system import MemorySystem
from repro.sim.engine import Simulator

NAME = "fig9"
TITLE = "Figure 9: polling and memory contention"

POLLED_LINES = (256, 1024, 4096, 8192, 16384)
MEASURE_NS = 1_000_000.0
NUM_POLLERS = 64


def cpu_throughput_while_polling(num_lines: int) -> float:
    """CPU accesses/us achieved while the GPU polls ``num_lines`` lines."""
    sim = Simulator()
    config = MachineConfig()
    mem = MemorySystem(sim, config)
    base = mem.alloc(num_lines * CACHELINE_BYTES)
    stop = {"flag": False}
    counted = {"cpu": 0}
    per_poller = max(1, num_lines // NUM_POLLERS)

    def gpu_poller(poller_id: int):
        first = poller_id * per_poller
        while not stop["flag"]:
            for i in range(first, min(first + per_poller, num_lines)):
                if stop["flag"]:
                    return
                yield from mem.gpu_atomic("atomic-load", base + i * CACHELINE_BYTES)
            yield config.poll_interval_ns

    def cpu_worker():
        while not stop["flag"]:
            yield from mem.cpu_stream_access(CACHELINE_BYTES)
            counted["cpu"] += 1

    def timer():
        yield MEASURE_NS
        stop["flag"] = True

    for poller_id in range(NUM_POLLERS):
        sim.process(gpu_poller(poller_id), name=f"poller{poller_id}")
    sim.process(cpu_worker(), name="cpu")
    sim.process(timer(), name="timer")
    sim.run()
    return counted["cpu"] / (MEASURE_NS / 1000.0)


def run_sweep() -> Dict[int, float]:
    return {n: cpu_throughput_while_polling(n) for n in POLLED_LINES}


def run() -> ExperimentResult:
    results = run_sweep()
    l2_lines = MachineConfig().gpu_l2_lines
    experiment = ExperimentResult(NAME)
    experiment.add_table(
        f"Figure 9: CPU access throughput vs polled GPU lines (L2 = {l2_lines})",
        ["polled lines", "CPU accesses/us", "fits in L2?"],
        [
            (n, f"{results[n]:.2f}", "yes" if n <= l2_lines else "no")
            for n in POLLED_LINES
        ],
    )
    experiment.data = {"throughput": results, "l2_lines": l2_lines}
    return experiment
