"""Ablation: one-slot-per-cacheline vs packed syscall-area layout."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.invocation import Granularity
from repro.experiments import ExperimentResult
from repro.machine import small_machine
from repro.system import System

NAME = "ablation-slots"
TITLE = "Ablation: syscall-area slot layout"


def syscall_storm(stride: int) -> Tuple[float, int]:
    """Many per-work-item calls against a given slot layout; returns
    (elapsed ns, GPU DRAM accesses)."""
    system = System(config=small_machine(), slot_stride_bytes=stride)
    system.kernel.fs.create_file("/tmp/f", b"s" * 4096)
    bufs = [system.memsystem.alloc_buffer(16) for _ in range(16)]

    def kern(ctx):
        fd = yield from ctx.sys.open("/tmp/f", granularity=Granularity.WORK_GROUP)
        for round_no in range(4):
            yield from ctx.sys.pread(fd, bufs[ctx.global_id], 16, 16 * round_no)

    elapsed = system.run_kernel(kern, 16, 8, name="slot-ablation")
    return elapsed, system.memsystem.dram.gpu_accesses


def run_both() -> Dict[str, Tuple[float, int]]:
    return {"one-per-line": syscall_storm(64), "packed-4-per-line": syscall_storm(16)}


def run() -> ExperimentResult:
    results = run_both()
    experiment = ExperimentResult(NAME)
    experiment.add_table(
        TITLE,
        ["layout", "runtime (us)", "GPU DRAM accesses"],
        [
            (name, f"{elapsed / 1000:.1f}", dram)
            for name, (elapsed, dram) in results.items()
        ],
    )
    experiment.data = results
    return experiment
