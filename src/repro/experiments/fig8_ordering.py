"""Figure 8: blocking/non-blocking x strong/relaxed ordering sweep."""

from __future__ import annotations

from typing import Dict

from repro.core.invocation import Granularity, Ordering
from repro.experiments import ExperimentResult
from repro.gpu.ops import Compute
from repro.machine import MachineConfig
from repro.oskernel.fs import O_RDWR
from repro.system import System

NAME = "fig8"
TITLE = "Figure 8: blocking and ordering semantics"

BLOCK_BYTES = 8192
#: More work-groups than can be resident: freeing resources early
#: (non-blocking / weak ordering) lets the next groups start.
NUM_BLOCKS = 24
WG_SIZE = 256
PERMUTE_CYCLES_PER_ITER = 3000.0
ITERATIONS = (1, 4, 16, 32)

CONFIGS = (
    ("strong-block", Ordering.STRONG, True),
    ("strong-non-block", Ordering.STRONG, False),
    ("weak-block", Ordering.RELAXED, True),
    ("weak-non-block", Ordering.RELAXED, False),
)


def fig8_machine() -> MachineConfig:
    """2 CUs x 8 wavefront slots: four 256-work-item groups resident."""
    return MachineConfig(
        num_cus=2, wavefront_slots_per_cu=8, gpu_l2_lines=512, gpu_l1_lines=64
    )


def permute_time(iterations: int, ordering: Ordering, blocking: bool) -> float:
    """Time per permutation iteration for one configuration (ns)."""
    system = System(config=fig8_machine())
    system.kernel.fs.create_file("/tmp/out", b"")
    buf = system.memsystem.alloc_buffer(BLOCK_BYTES)

    def kern(ctx):
        fd = ctx.kernel.shared.get("fd")
        if fd is None:
            fd = yield from ctx.sys.open(
                "/tmp/out", O_RDWR,
                granularity=Granularity.WORK_GROUP, ordering=Ordering.RELAXED,
            )
            ctx.kernel.shared["fd"] = fd
        yield Compute(PERMUTE_CYCLES_PER_ITER * iterations)
        yield from ctx.sys.pwrite(
            fd, buf, BLOCK_BYTES, BLOCK_BYTES * ctx.group_id,
            granularity=Granularity.WORK_GROUP,
            ordering=ordering, blocking=blocking,
        )

    elapsed = system.run_kernel(kern, NUM_BLOCKS * WG_SIZE, WG_SIZE, name="fig8")
    return elapsed / iterations


def run_sweep() -> Dict[str, Dict[int, float]]:
    results: Dict[str, Dict[int, float]] = {}
    for name, ordering, blocking in CONFIGS:
        results[name] = {
            iters: permute_time(iters, ordering, blocking) for iters in ITERATIONS
        }
    return results


def run() -> ExperimentResult:
    results = run_sweep()
    experiment = ExperimentResult(NAME)
    experiment.add_table(
        "Figure 8: time per permutation iteration (us)",
        ["iterations"] + [name for name, _, _ in CONFIGS],
        [
            tuple(
                [str(iters)]
                + [f"{results[name][iters] / 1000:.1f}" for name, _, _ in CONFIGS]
            )
            for iters in ITERATIONS
        ],
    )
    experiment.data = results
    return experiment
