"""Figure 11: miniAMR memory footprint under GPU-directed madvise."""

from __future__ import annotations

from typing import Dict

from repro.experiments import ExperimentResult
from repro.machine import MachineConfig
from repro.system import System
from repro.workloads.base import WorkloadResult
from repro.workloads.miniamr import MiniAmrWorkload

NAME = "fig11"
TITLE = "Figure 11: miniAMR with GPU-directed memory management"

PHYS_MEM = int(2.5 * 1024 * 1024)
WM_HIGH = int(2.2 * 1024 * 1024)  # the paper's "rss-4gb" analogue
WM_LOW = int(1.6 * 1024 * 1024)   # the paper's "rss-3gb" analogue


def fresh_workload() -> MiniAmrWorkload:
    config = MachineConfig(phys_mem_bytes=PHYS_MEM, gpu_timeout_faults=48)
    return MiniAmrWorkload(System(config=config))


def run_variants() -> Dict[str, WorkloadResult]:
    return {
        "baseline": fresh_workload().run(use_madvise=False),
        "rss-high": fresh_workload().run(rss_watermark_bytes=WM_HIGH),
        "rss-low": fresh_workload().run(rss_watermark_bytes=WM_LOW),
    }


def run() -> ExperimentResult:
    results = run_variants()
    experiment = ExperimentResult(NAME)
    experiment.add_table(
        TITLE,
        ["variant", "outcome", "runtime (ms)", "peak RSS (KiB)", "major faults"],
        [
            (
                name,
                "completed" if res.metrics["completed"] else "KILLED (watchdog)",
                f"{res.runtime_ms:.2f}",
                res.metrics["peak_rss_bytes"] // 1024,
                res.metrics["major_faults"],
            )
            for name, res in results.items()
        ],
    )
    experiment.data = {"results": results, "phys_mem": PHYS_MEM}
    return experiment
