"""Figure 13b: wordcount from SSD (the GPUfs workload)."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments import ExperimentResult
from repro.system import System
from repro.workloads.base import WorkloadResult
from repro.workloads.wordcount import WordcountWorkload

NAME = "fig13b"
TITLE = "Figure 13b: wordcount (open/read/close from SSD)"

PARAMS = dict(num_files=32, file_bytes=65536)


def run_variants(**overrides) -> Dict[str, Tuple[System, WorkloadResult]]:
    params = dict(PARAMS)
    params.update(overrides)
    out: Dict[str, Tuple[System, WorkloadResult]] = {}
    for name, runner in (
        ("cpu", lambda w: w.run_cpu(4)),
        ("gpu-nosyscall", lambda w: w.run_gpu_nosyscall()),
        ("genesys", lambda w: w.run_genesys()),
    ):
        system = System()
        workload = WordcountWorkload(system, **params)
        out[name] = (system, runner(workload))
    return out


def run() -> ExperimentResult:
    results = run_variants()
    base = results["cpu"][1].runtime_ns
    experiment = ExperimentResult(NAME)
    experiment.add_table(
        TITLE,
        ["variant", "runtime (ms)", "speedup vs cpu"],
        [
            (name, f"{res.runtime_ms:.2f}", f"{base / res.runtime_ns:.2f}x")
            for name, (_system, res) in results.items()
        ],
    )
    experiment.data = results
    return experiment
