"""The GPU execution hierarchy: kernels, work-groups, work-items.

Mirrors Section IV of the paper: work-items (threads) execute in
lockstep wavefronts; wavefronts group into programmer-visible
work-groups that can barrier-synchronise internally and share local
storage; hundreds of work-groups form a kernel.  Work-groups execute
independently and there is no global (inter-work-group) barrier — the
property that makes strong ordering at kernel granularity deadlock.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, TYPE_CHECKING

from repro.sim.engine import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.device import Gpu


class WorkItemCtx:
    """Everything a work-item body can see.

    ``sys`` is the GENESYS device API (attached at launch when a runtime
    is bound); ``group.shared`` and ``kernel.shared`` are the local /
    global scratch dictionaries used to communicate functional data
    between work-items (standing in for LDS and global memory buffers).
    """

    __slots__ = ("kernel", "group", "global_id", "local_id", "args", "sys")

    def __init__(
        self,
        kernel: "KernelInstance",
        group: "WorkGroup",
        global_id: int,
        local_id: int,
        args: tuple,
    ):
        self.kernel = kernel
        self.group = group
        self.global_id = global_id
        self.local_id = local_id
        self.args = args
        self.sys = None  # bound by the GENESYS runtime at launch

    @property
    def group_id(self) -> int:
        return self.group.group_id

    @property
    def lane(self) -> int:
        """Lane index within the wavefront."""
        return self.local_id % self.kernel.gpu.config.wavefront_width

    @property
    def is_group_leader(self) -> bool:
        return self.local_id == 0

    @property
    def is_kernel_leader(self) -> bool:
        return self.global_id == 0

    def __repr__(self) -> str:
        return f"WorkItemCtx(g={self.global_id}, wg={self.group.group_id}, l={self.local_id})"


class WorkGroup:
    """A work-group: barrier domain + local shared storage.

    The barrier is generational: a barrier releases once every live
    (non-finished) work-item of the group has arrived.  Finished
    work-items implicitly satisfy barriers, matching the common GPU
    relaxation for early-exiting lanes.
    """

    def __init__(self, sim: Simulator, kernel: "KernelInstance", group_id: int, size: int):
        self.sim = sim
        self.kernel = kernel
        self.group_id = group_id
        self.size = size
        self.shared: Dict[str, Any] = {}
        self.cu_id: Optional[int] = None
        self.finished_items = 0
        self.finished_wavefronts = 0
        self.num_wavefronts = 0  # set by the dispatcher
        self.completion = sim.event(name=f"wg{group_id}-done")
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self._barrier_generation = 0
        self._barrier_arrived = 0
        self._barrier_event = sim.event(name=f"wg{group_id}-bar0")

    # -- barrier ---------------------------------------------------------

    def arrive_barrier(self) -> Event:
        """A work-item arrives at the group barrier; returns its wake event."""
        self._barrier_arrived += 1
        event = self._barrier_event
        self._maybe_release_barrier()
        return event

    def _maybe_release_barrier(self) -> None:
        if (
            self._barrier_arrived > 0
            and self._barrier_arrived + self.finished_items >= self.size
        ):
            released = self._barrier_event
            self._barrier_generation += 1
            self._barrier_arrived = 0
            self._barrier_event = self.sim.event(
                name=f"wg{self.group_id}-bar{self._barrier_generation}"
            )
            released.succeed(self._barrier_generation)

    # -- lifecycle ---------------------------------------------------------

    def work_item_finished(self) -> None:
        self.finished_items += 1
        if self.finished_items > self.size:
            raise RuntimeError(f"work-group {self.group_id}: too many finishes")
        self._maybe_release_barrier()

    def wavefront_finished(self) -> None:
        self.finished_wavefronts += 1
        if self.finished_wavefronts == self.num_wavefronts:
            self.end_time = self.sim.now
            self.completion.succeed(self)

    def __repr__(self) -> str:
        return f"WorkGroup({self.group_id}, size={self.size}, cu={self.cu_id})"


class KernelInstance:
    """One launched kernel: its work-groups plus kernel-wide scratch."""

    _next_id = 0

    def __init__(
        self,
        sim: Simulator,
        gpu: "Gpu",
        func: Callable[[WorkItemCtx], Generator],
        global_size: int,
        workgroup_size: int,
        args: tuple,
        name: str = "",
    ):
        if global_size < 1:
            raise ValueError("global_size must be >= 1")
        if workgroup_size < 1:
            raise ValueError("workgroup_size must be >= 1")
        self.sim = sim
        self.gpu = gpu
        self.func = func
        self.global_size = global_size
        self.workgroup_size = workgroup_size
        self.args = args
        self.name = name or getattr(func, "__name__", "kernel")
        self.kernel_id = KernelInstance._next_id
        KernelInstance._next_id += 1
        self.shared: Dict[str, Any] = {}
        self.completion = sim.event(name=f"kernel{self.kernel_id}-done")
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.groups: List[WorkGroup] = []
        gid = 0
        group_id = 0
        while gid < global_size:
            size = min(workgroup_size, global_size - gid)
            self.groups.append(WorkGroup(sim, self, group_id, size))
            gid += size
            group_id += 1
        self._finished_groups = 0

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def group_finished(self) -> None:
        self._finished_groups += 1
        if self._finished_groups == self.num_groups:
            self.end_time = self.sim.now
            self.completion.succeed(self)

    def make_ctx(self, group: WorkGroup, local_id: int) -> WorkItemCtx:
        global_id = group.group_id * self.workgroup_size + local_id
        return WorkItemCtx(self, group, global_id, local_id, self.args)

    def __repr__(self) -> str:
        return (
            f"KernelInstance({self.name!r}, global={self.global_size}, "
            f"wg={self.workgroup_size}, groups={self.num_groups})"
        )
