"""The GPU device: kernel launch, work-group dispatch, wavefront slots.

Work-groups dispatch strictly in order onto the first compute unit with
enough free wavefront slots (a kernel can hold far more work-groups than
fit — GPU runtimes do not preempt, which is why kernel-granularity
strong ordering deadlocks, Section V-A).  Slots release per wavefront as
wavefronts retire, so work-groups whose trailing wavefronts linger on a
blocking syscall free most of their resources early — the weak-blocking
effect of Figure 8.
"""

from __future__ import annotations

from collections import deque
from math import ceil
from typing import Any, Callable, Deque, Generator, List, Optional, Tuple

from repro.gpu.compute_unit import ComputeUnit
from repro.gpu.hierarchy import KernelInstance, WorkGroup, WorkItemCtx
from repro.gpu.wavefront import Wavefront
from repro.machine import MachineConfig
from repro.memory.system import MemorySystem
from repro.probes.tracepoints import ProbeRegistry
from repro.sim.engine import Event, Process, Simulator
from repro.sim.stats import UtilizationTracker


class KernelLaunch:
    """Launch descriptor for :meth:`Gpu.launch`."""

    __slots__ = ("func", "global_size", "workgroup_size", "args", "name")

    def __init__(
        self,
        func: Callable[[WorkItemCtx], Generator],
        global_size: int,
        workgroup_size: int,
        args: tuple = (),
        name: str = "",
    ):
        self.func = func
        self.global_size = global_size
        self.workgroup_size = workgroup_size
        self.args = args
        self.name = name or getattr(func, "__name__", "kernel")


class Gpu:
    """The simulated GPU device."""

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        memsystem: MemorySystem,
        probes: Optional[ProbeRegistry] = None,
    ):
        self.sim = sim
        self.config = config
        self.memsystem = memsystem
        self.probes = probes if probes is not None else ProbeRegistry(sim)
        self.cus = [
            ComputeUnit(cu_id, config.wavefront_slots_per_cu)
            for cu_id in range(config.num_cus)
        ]
        tp_alloc = self.probes.tracepoint(
            "gpu.slots.alloc", ("cu_id", "count"), "wavefront slots claimed on a CU"
        )
        tp_release = self.probes.tracepoint(
            "gpu.slots.release", ("cu_id", "slot_id"), "a retiring wavefront freed its slot"
        )
        for cu in self.cus:
            cu.tp_alloc = tp_alloc
            cu.tp_release = tp_release
        self.tp_wf_halt = self.probes.tracepoint(
            "wavefront.halt",
            ("hw_id", "live_lanes"),
            "every lane blocked; the wavefront went to sleep",
        )
        self.tp_wf_resume = self.probes.tracepoint(
            "wavefront.resume",
            ("hw_id", "halted_ns"),
            "a sleeping wavefront woke up; halted_ns = time asleep",
        )
        self.tp_wf_occupancy = self.probes.tracepoint(
            "gpu.wf.occupancy",
            ("halted", "live"),
            "gauge: halted vs live wavefronts after a start/halt/resume/retire",
        )
        self.tp_lanes_runnable = self.probes.tracepoint(
            "gpu.lanes.runnable",
            ("hw_id", "runnable", "live"),
            "gauge: runnable vs live lanes after a wavefront lane-set change",
        )
        #: Gauge state behind ``gpu.wf.occupancy``.
        self.live_wavefronts = 0
        self.halted_wavefronts = 0
        self.utilization = UtilizationTracker(
            sim, config.num_cus * config.wavefront_slots_per_cu, name="gpu-slots"
        )
        self._pending: Deque[Tuple[KernelInstance, WorkGroup]] = deque()
        self._dispatcher_wake: Optional[Event] = None
        self._dispatcher_active = False
        #: Hook installed by the GENESYS runtime to give every work-item a
        #: device-side syscall API before its generator is created.
        self.workitem_binder: Optional[Callable[[WorkItemCtx, Wavefront], None]] = None
        self.kernels_launched = 0
        #: Aggregated lockstep-efficiency accounting over retired wavefronts.
        self.wavefront_stats = {
            "wavefronts": 0, "steps": 0, "lane_ops": 0, "divergent_steps": 0,
            "lane_slots": 0,
        }

    @property
    def simd_efficiency(self) -> float:
        """Whole-device mean fraction of lanes active per step."""
        if self.wavefront_stats["lane_slots"] == 0:
            return 1.0
        return self.wavefront_stats["lane_ops"] / self.wavefront_stats["lane_slots"]

    # -- public API -------------------------------------------------------

    def launch(self, launch: KernelLaunch) -> Process:
        """Asynchronously launch a kernel; the returned process completes
        when every work-group has retired, yielding the KernelInstance."""
        return self.sim.process(self._launch_body(launch), name=f"launch:{launch.name}")

    def launch_and_wait(self, launch: KernelLaunch) -> Generator:
        """Process body: launch and wait for completion inline."""
        kernel = yield self.launch(launch)
        return kernel

    # -- dispatch ----------------------------------------------------------

    def _launch_body(self, launch: KernelLaunch) -> Generator:
        yield self.config.kernel_launch_ns
        kernel = KernelInstance(
            self.sim,
            self,
            launch.func,
            launch.global_size,
            launch.workgroup_size,
            launch.args,
            name=launch.name,
        )
        kernel.start_time = self.sim.now
        self.kernels_launched += 1
        for group in kernel.groups:
            self._pending.append((kernel, group))
        self._kick_dispatcher()
        yield kernel.completion
        return kernel

    def _kick_dispatcher(self) -> None:
        if self._dispatcher_active:
            if self._dispatcher_wake is not None and not self._dispatcher_wake.triggered:
                self._dispatcher_wake.succeed()
        else:
            self._dispatcher_active = True
            self.sim.process(self._dispatch_loop(), name="gpu-dispatcher")

    def _dispatch_loop(self) -> Generator:
        while self._pending:
            kernel, group = self._pending[0]
            slots_needed = ceil(group.size / self.config.wavefront_width)
            placement = self._find_cu(slots_needed)
            if placement is None:
                self._dispatcher_wake = self.sim.event(name="dispatch-wake")
                yield self._dispatcher_wake
                self._dispatcher_wake = None
                continue
            self._pending.popleft()
            cu, slot_ids = placement
            self._start_group(kernel, group, cu, slot_ids)
        self._dispatcher_active = False

    def _find_cu(self, slots_needed: int) -> Optional[Tuple[ComputeUnit, List[int]]]:
        if slots_needed > self.config.wavefront_slots_per_cu:
            raise ValueError(
                f"work-group needs {slots_needed} wavefront slots; a CU has "
                f"only {self.config.wavefront_slots_per_cu}"
            )
        for cu in self.cus:
            slot_ids = cu.alloc_slots(slots_needed)
            if slot_ids is not None:
                return cu, slot_ids
        return None

    def _start_group(
        self, kernel: KernelInstance, group: WorkGroup, cu: ComputeUnit, slot_ids: List[int]
    ) -> None:
        group.cu_id = cu.cu_id
        group.start_time = self.sim.now
        width = self.config.wavefront_width
        ctxs = [kernel.make_ctx(group, local_id) for local_id in range(group.size)]
        wavefront_lanes = [ctxs[i : i + width] for i in range(0, group.size, width)]
        group.num_wavefronts = len(wavefront_lanes)
        for slot_id, lanes in zip(slot_ids, wavefront_lanes):
            wavefront = Wavefront(self.sim, self, group, lanes, cu.cu_id, slot_id)
            self.utilization.busy()
            self.live_wavefronts += 1
            self._note_occupancy()
            self.sim.process(wavefront.run(), name=f"wf:{wavefront.hw_id}")

    def _note_occupancy(self) -> None:
        if self.tp_wf_occupancy.enabled:
            self.tp_wf_occupancy.fire(self.halted_wavefronts, self.live_wavefronts)

    # -- callbacks from wavefronts ------------------------------------------

    def start_work_item(self, ctx: WorkItemCtx, wavefront: Wavefront) -> Generator:
        """Bind the device API (if a runtime is attached) and create the
        work-item generator."""
        if self.workitem_binder is not None:
            self.workitem_binder(ctx, wavefront)
        return ctx.kernel.func(ctx)

    def wavefront_finished(self, wavefront: Wavefront) -> None:
        stats = self.wavefront_stats
        stats["wavefronts"] += 1
        stats["steps"] += wavefront.steps
        stats["lane_ops"] += wavefront.lane_ops
        stats["divergent_steps"] += wavefront.divergent_steps
        stats["lane_slots"] += wavefront.steps * wavefront.width
        self.utilization.idle()
        self.live_wavefronts -= 1
        self._note_occupancy()
        self.cus[wavefront.cu_id].release_slot(wavefront.slot_id)
        group = wavefront.group
        group.wavefront_finished()
        if group.finished_wavefronts == group.num_wavefronts:
            group.kernel.group_finished()
        self._kick_dispatcher()
