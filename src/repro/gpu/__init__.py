"""GPU execution model: the work-item / wavefront / work-group / kernel
hierarchy of Section IV, compute units with wavefront slots, and a
generator-based kernel programming API.

A GPU *kernel* is a Python generator function taking a
:class:`~repro.gpu.hierarchy.WorkItemCtx`; its body yields operation
objects (:mod:`repro.gpu.ops`) that the wavefront executor interprets in
lockstep.  Work-groups occupy wavefront slots on a single compute unit
until all their wavefronts retire, which is what makes the paper's
non-blocking-syscall resource-release effect visible.
"""

from repro.gpu.device import Gpu, KernelLaunch
from repro.gpu.hierarchy import KernelInstance, WorkGroup, WorkItemCtx
from repro.gpu.ops import (
    Atomic,
    Barrier,
    Compute,
    Do,
    L1Flush,
    LdsRead,
    LdsWrite,
    MemRead,
    MemWrite,
    Sleep,
    WaitAll,
)

__all__ = [
    "Atomic",
    "Barrier",
    "Compute",
    "Do",
    "Gpu",
    "KernelInstance",
    "KernelLaunch",
    "L1Flush",
    "LdsRead",
    "LdsWrite",
    "MemRead",
    "MemWrite",
    "Sleep",
    "WaitAll",
    "WorkGroup",
    "WorkItemCtx",
]
