"""The wavefront executor: lockstep interpretation of work-item ops.

Each wavefront is one simulation process driving up to
``wavefront_width`` work-item generators.  Per step, every runnable lane
yields one op; the executor charges a combined cost (max for compute,
serialised unique-line traffic for memory, serialised atomics) so SIMD
lockstep and coalescing behaviour are reflected in timing.  Lanes block
individually on barriers and halt-waits; the wavefront as a whole only
sleeps when no lane can make progress — so a single blocked work-item
stalls its wavefront, the paper's motivation for non-blocking syscalls.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence, TYPE_CHECKING

from repro.gpu.hierarchy import WorkGroup, WorkItemCtx
from repro.gpu.ops import (
    Atomic,
    Barrier,
    Compute,
    Do,
    L1Flush,
    LdsRead,
    LdsWrite,
    MemRead,
    MemWrite,
    Op,
    Sleep,
    WaitAll,
)
from repro.sim.engine import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.device import Gpu


def all_events(sim: Simulator, events: Sequence[Event]) -> Event:
    """Combine events into one that fires when all have fired.

    Uses direct callback registration on the children — no watcher
    process, generator, or completion event per watched item.  A failing
    child fails the combined event.
    """
    pending = [e for e in events if not e.triggered]
    combined = sim.event(name="all-events")
    if not pending:
        combined.succeed()
        return combined
    state = {"remaining": len(pending)}

    def child_done(value, exc) -> None:
        if combined.triggered:
            return
        if exc is not None:
            combined.fail(exc)
            return
        state["remaining"] -= 1
        if state["remaining"] == 0:
            combined.succeed()

    for event in pending:
        event._add_callback(child_done)
    return combined


class _Lane:
    """One work-item being driven by the wavefront executor."""

    __slots__ = ("ctx", "gen", "inbox", "blocked_on", "needs_resume", "finished")

    def __init__(self, ctx: WorkItemCtx, gen: Generator):
        self.ctx = ctx
        self.gen = gen
        self.inbox: Any = None
        self.blocked_on: Optional[Event] = None
        self.needs_resume = False
        self.finished = False


class Wavefront:
    """A hardware-scheduled lockstep group of work-items."""

    def __init__(
        self,
        sim: Simulator,
        gpu: "Gpu",
        group: WorkGroup,
        ctxs: List[WorkItemCtx],
        cu_id: int,
        slot_id: int,
    ):
        if not ctxs:
            raise ValueError("wavefront needs at least one work-item")
        self.sim = sim
        self.gpu = gpu
        self.group = group
        self.cu_id = cu_id
        self.slot_id = slot_id
        self.hw_id = cu_id * gpu.config.wavefront_slots_per_cu + slot_id
        self.lanes = [_Lane(ctx, gpu.start_work_item(ctx, self)) for ctx in ctxs]
        #: Lockstep-efficiency accounting: total steps executed and the
        #: number of lane-ops issued (full-width steps issue width ops).
        self.steps = 0
        self.lane_ops = 0
        self.divergent_steps = 0

    @property
    def simd_efficiency(self) -> float:
        """Mean fraction of lanes active per step (1.0 = no divergence)."""
        if self.steps == 0:
            return 1.0
        return self.lane_ops / (self.steps * self.width)

    @property
    def width(self) -> int:
        return len(self.lanes)

    def run(self) -> Generator:
        """Process body: drive all lanes to completion."""
        cfg = self.gpu.config
        mem = self.gpu.memsystem
        # Live/runnable lane lists are maintained incrementally (in lane
        # order) and only rebuilt when a lane finishes, blocks, or wakes —
        # the steady-state step loop allocates no per-step lane lists.
        live = [lane for lane in self.lanes if not lane.finished]
        runnable = [lane for lane in live if lane.blocked_on is None]
        try:
            while live:
                if not runnable:
                    yield from self._wait_for_wake(live)
                    runnable = [lane for lane in live if lane.blocked_on is None]
                    tp_runnable = self.gpu.tp_lanes_runnable
                    if tp_runnable.enabled:
                        tp_runnable.fire(self.hw_id, len(runnable), len(live))
                    continue

                self.steps += 1
                self.lane_ops += len(runnable)
                if len(runnable) < len(live):
                    self.divergent_steps += 1
                compute_ns = 0.0
                mem_ops: List[Op] = []
                atomic_ops: List[Atomic] = []
                flush_ops: List[L1Flush] = []
                lds_ops: List[Op] = []
                lanes_changed = False
                for lane in runnable:
                    op = self._step_lane(lane)
                    if op is None:
                        lanes_changed = True  # lane finished
                        continue
                    if isinstance(op, Compute):
                        compute_ns = max(compute_ns, op.cycles * cfg.gpu_cycle_ns)
                    elif isinstance(op, Sleep):
                        compute_ns = max(compute_ns, op.duration)
                    elif isinstance(op, (MemRead, MemWrite)):
                        mem_ops.append(op)
                    elif isinstance(op, Do):
                        lane.inbox = op.action()
                    elif isinstance(op, Atomic):
                        atomic_ops.append(op)
                    elif isinstance(op, (LdsRead, LdsWrite)):
                        lds_ops.append(op)
                    elif isinstance(op, L1Flush):
                        flush_ops.append(op)
                    elif isinstance(op, Barrier):
                        lane.blocked_on = self.group.arrive_barrier()
                        lanes_changed = True
                    elif isinstance(op, WaitAll):
                        lane.blocked_on = all_events(self.sim, op.events)
                        lane.needs_resume = True
                        lanes_changed = True
                    else:
                        raise TypeError(f"work-item yielded non-op {op!r}")

                if compute_ns:
                    yield compute_ns
                if lds_ops:
                    yield self._lds_time(lds_ops)
                for op in mem_ops:
                    if isinstance(op, MemRead):
                        yield from mem.gpu_load(self.cu_id, op.addr, op.size)
                    else:
                        yield from mem.gpu_store(self.cu_id, op.addr, op.size)
                for aop in atomic_ops:
                    yield from mem.gpu_atomic(aop.kind, aop.addr)
                for fop in flush_ops:
                    yield from mem.gpu_l1_flush_range(self.cu_id, fop.addr, fop.size)
                if lanes_changed:
                    live = [lane for lane in live if not lane.finished]
                    runnable = [lane for lane in live if lane.blocked_on is None]
                    tp_runnable = self.gpu.tp_lanes_runnable
                    if tp_runnable.enabled:
                        tp_runnable.fire(self.hw_id, len(runnable), len(live))
        finally:
            self.gpu.wavefront_finished(self)

    # -- internals ---------------------------------------------------------

    def _lds_time(self, lds_ops: List[Op]) -> float:
        """LDS access time for one lockstep step: the max per-bank
        serialisation degree.  Reads of one identical address broadcast
        (degree 1, as on GCN); any other same-bank collisions serialise.
        """
        cfg = self.gpu.config
        bank_words = {}
        for op in lds_ops:
            first_word = op.addr // cfg.lds_bank_bytes
            last_word = (op.addr + max(op.size, 1) - 1) // cfg.lds_bank_bytes
            for word in range(first_word, last_word + 1):
                bank = word % cfg.lds_banks
                is_read = isinstance(op, LdsRead)
                bank_words.setdefault(bank, []).append((word, is_read))
        degree = 1
        for accesses in bank_words.values():
            reads = {}
            writes = 0
            for word, is_read in accesses:
                if is_read:
                    reads[word] = reads.get(word, 0) + 1
                else:
                    writes += 1
            # Distinct read words conflict; identical reads broadcast.
            bank_degree = len(reads) + writes
            degree = max(degree, bank_degree)
        return degree * cfg.lds_access_ns

    def _step_lane(self, lane: _Lane) -> Optional[Op]:
        try:
            op = lane.gen.send(lane.inbox)
        except StopIteration:
            lane.finished = True
            lane.inbox = None
            self.group.work_item_finished()
            return None
        lane.inbox = None
        return op

    def _wait_for_wake(self, live: List[_Lane]) -> Generator:
        """All lanes blocked: sleep until at least one can progress."""
        gpu = self.gpu
        tp_halt = gpu.tp_wf_halt
        tp_resume = gpu.tp_wf_resume
        observing = tp_halt.enabled or tp_resume.enabled
        if observing:
            halted_at = self.sim.now
            if tp_halt.enabled:
                tp_halt.fire(self.hw_id, len(live))
        gpu.halted_wavefronts += 1
        gpu._note_occupancy()
        distinct = {}
        for lane in live:
            distinct[id(lane.blocked_on)] = lane.blocked_on
        events = list(distinct.values())
        if len(events) == 1:
            yield events[0]
        else:
            # Wake on the first of them; re-check the rest next iteration.
            from repro.sim.engine import AnyOf

            yield AnyOf(events)
        resume = False
        for lane in live:
            if lane.blocked_on is not None and lane.blocked_on.triggered:
                if lane.needs_resume:
                    resume = True
                lane.blocked_on = None
                lane.needs_resume = False
        if resume:
            # One scalar wake message re-schedules the wavefront.
            yield self.gpu.config.halt_resume_ns
        gpu.halted_wavefronts -= 1
        gpu._note_occupancy()
        if observing and tp_resume.enabled:
            tp_resume.fire(self.hw_id, self.sim.now - halted_at)

    def __repr__(self) -> str:
        return f"Wavefront(hw={self.hw_id}, wg={self.group.group_id}, lanes={self.width})"
