"""Compute-unit model: a pool of hardware wavefront slots.

A work-group's wavefronts must all reside on one CU (they share local
memory and a barrier domain), so the dispatcher allocates a contiguous
batch of slots from a single CU.  Slot IDs are the stable *hardware IDs*
the syscall area is indexed by (Section VI): at any instant at most one
active wavefront holds a given (cu, slot) pair.
"""

from __future__ import annotations

from typing import List, Optional

from repro.probes.tracepoints import NULL_TRACEPOINT


class ComputeUnit:
    #: Inert defaults so standalone CUs pay one attribute check per
    #: alloc/release; :class:`~repro.gpu.device.Gpu` rebinds these to
    #: the machine's ``gpu.slots.*`` tracepoints.
    tp_alloc = NULL_TRACEPOINT
    tp_release = NULL_TRACEPOINT

    def __init__(self, cu_id: int, num_slots: int):
        if num_slots < 1:
            raise ValueError("CU needs at least one wavefront slot")
        self.cu_id = cu_id
        self.num_slots = num_slots
        self._free: List[int] = list(range(num_slots))

    @property
    def free_slots(self) -> int:
        return len(self._free)

    def alloc_slots(self, count: int) -> Optional[List[int]]:
        """Take ``count`` slots, or None if not enough are free."""
        if count < 1:
            raise ValueError("must allocate at least one slot")
        if count > len(self._free):
            return None
        taken, self._free = self._free[:count], self._free[count:]
        if self.tp_alloc.enabled:
            self.tp_alloc.fire(self.cu_id, count)
        return taken

    def release_slot(self, slot_id: int) -> None:
        if not 0 <= slot_id < self.num_slots:
            raise ValueError(f"slot {slot_id} out of range")
        if slot_id in self._free:
            raise RuntimeError(f"double release of slot {slot_id} on CU {self.cu_id}")
        self._free.append(slot_id)
        if self.tp_release.enabled:
            self.tp_release.fire(self.cu_id, slot_id)

    def __repr__(self) -> str:
        return f"ComputeUnit({self.cu_id}, free={self.free_slots}/{self.num_slots})"
