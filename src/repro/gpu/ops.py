"""Operations a work-item body may yield.

Kernel code is a generator; each yielded op is interpreted by the
wavefront executor, which charges simulated time through the memory
system and coordinates barriers.  The GENESYS device API
(:mod:`repro.core.device_api`) is built entirely from these primitives,
so syscall invocation costs flow through the same caches and DRAM channel
as ordinary kernel traffic — that is what makes the polling-contention
and atomics effects of the paper emerge rather than being hard-coded.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.sim.engine import Event


class Op:
    """Base class for all work-item operations."""

    __slots__ = ()


class Compute(Op):
    """ALU work of ``cycles`` GPU cycles (lockstep across the wavefront)."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: float):
        if cycles < 0:
            raise ValueError(f"negative cycles: {cycles}")
        self.cycles = cycles

    def __repr__(self) -> str:
        return f"Compute({self.cycles})"


class MemRead(Op):
    """Read ``size`` bytes at ``addr`` through L1/L2/DRAM."""

    __slots__ = ("addr", "size")

    def __init__(self, addr: int, size: int):
        if size < 0:
            raise ValueError(f"negative size: {size}")
        self.addr = addr
        self.size = size

    def __repr__(self) -> str:
        return f"MemRead(0x{self.addr:x}, {self.size})"


class MemWrite(Op):
    """Write ``size`` bytes at ``addr`` (write-through to L2)."""

    __slots__ = ("addr", "size")

    def __init__(self, addr: int, size: int):
        if size < 0:
            raise ValueError(f"negative size: {size}")
        self.addr = addr
        self.size = size

    def __repr__(self) -> str:
        return f"MemWrite(0x{self.addr:x}, {self.size})"


class Atomic(Op):
    """One atomic memory operation (Table IV kinds), L1-bypassing."""

    __slots__ = ("kind", "addr")

    def __init__(self, kind: str, addr: int):
        self.kind = kind
        self.addr = addr

    def __repr__(self) -> str:
        return f"Atomic({self.kind!r}, 0x{self.addr:x})"


class Barrier(Op):
    """Work-group scope barrier: every live work-item must arrive."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Barrier()"


class Sleep(Op):
    """Raw delay in nanoseconds (models fixed-latency instructions)."""

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        if duration < 0:
            raise ValueError(f"negative sleep: {duration}")
        self.duration = duration

    def __repr__(self) -> str:
        return f"Sleep({self.duration})"


class Do(Op):
    """Run a zero-time functional action at this point in simulated time.

    Used by the device API for state transitions that must happen at the
    correct instant (e.g. raising the CPU interrupt after the slot has
    been populated).  The callable's return value becomes the value of
    the ``yield`` expression in the work-item body.
    """

    __slots__ = ("action",)

    def __init__(self, action: Callable[[], Any]):
        self.action = action

    def __repr__(self) -> str:
        return f"Do({getattr(self.action, '__name__', 'fn')})"


class WaitAll(Op):
    """Halt the wavefront until every given event has triggered.

    Models the s_halt / wake path: the wavefront stops issuing (no memory
    traffic while waiting) and pays the halt-resume latency once woken.
    """

    __slots__ = ("events",)

    def __init__(self, events: Sequence[Event]):
        self.events = list(events)

    def __repr__(self) -> str:
        return f"WaitAll({len(self.events)} events)"


class LdsRead(Op):
    """Read from the work-group's local data share (LDS/scratchpad).

    Addresses are work-group-local byte offsets.  Lanes that hit the
    same bank in one lockstep step serialise (bank conflicts); lanes
    reading the *same address* broadcast at no extra cost, as on GCN.
    """

    __slots__ = ("addr", "size")

    def __init__(self, addr: int, size: int = 4):
        if addr < 0 or size < 0:
            raise ValueError("negative LDS access")
        self.addr = addr
        self.size = size

    def __repr__(self) -> str:
        return f"LdsRead(0x{self.addr:x}, {self.size})"


class LdsWrite(Op):
    """Write to the work-group's local data share (same conflict rules
    as :class:`LdsRead`, without the broadcast exemption)."""

    __slots__ = ("addr", "size")

    def __init__(self, addr: int, size: int = 4):
        if addr < 0 or size < 0:
            raise ValueError("negative LDS access")
        self.addr = addr
        self.size = size

    def __repr__(self) -> str:
        return f"LdsWrite(0x{self.addr:x}, {self.size})"


class L1Flush(Op):
    """Software-coherence flush of a byte range from this CU's L1.

    GENESYS performs this before producer syscalls whose buffers the CPU
    will read (Section VI: "we preceded sys_write system calls with L1
    data cache flush").
    """

    __slots__ = ("addr", "size")

    def __init__(self, addr: int, size: int):
        if size < 0:
            raise ValueError(f"negative size: {size}")
        self.addr = addr
        self.size = size

    def __repr__(self) -> str:
        return f"L1Flush(0x{self.addr:x}, {self.size})"
