"""One-stop assembly of the simulated machine.

:class:`System` wires the simulator, memory hierarchy, CPU complex,
Linux substrate, GPU, and the GENESYS runtime together with a host
process, mirroring the paper's Table III platform.  Most examples,
tests, and benchmarks start with::

    system = System()
    ...define a kernel...
    result = system.run_to_completion(main())
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.core.coalescing import CoalescingConfig
from repro.core.genesys import Genesys
from repro.gpu.device import Gpu, KernelLaunch
from repro.machine import MachineConfig
from repro.memory.system import MemorySystem
from repro.oskernel.cpu import CpuComplex
from repro.oskernel.linux import LinuxKernel
from repro.oskernel.process import OsProcess
from repro.probes.tracepoints import ProbeRegistry, apply_global_plan
from repro.sim.engine import Process, Simulator


class System:
    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        coalescing: Optional[CoalescingConfig] = None,
        with_disk: bool = True,
        slot_stride_bytes: int = 64,
    ):
        self.config = config or MachineConfig()
        self.sim = Simulator()
        #: The machine's probe registry: every layer declares its
        #: tracepoints and policy hooks here (see repro.probes).
        self.probes = ProbeRegistry(self.sim)
        self.memsystem = MemorySystem(self.sim, self.config, probes=self.probes)
        self.cpu = CpuComplex(self.sim, self.config)
        self.kernel = LinuxKernel(
            self.sim,
            self.config,
            self.memsystem,
            cpu=self.cpu,
            with_disk=with_disk,
            probes=self.probes,
        )
        self.gpu = Gpu(self.sim, self.config, self.memsystem, probes=self.probes)
        self.host = self.kernel.create_process("host")
        self.genesys = Genesys(
            self.sim,
            self.config,
            self.kernel,
            self.gpu,
            self.memsystem,
            self.host,
            coalescing=coalescing,
            slot_stride_bytes=slot_stride_bytes,
            probes=self.probes,
        )
        #: When set (simulated ns), :meth:`run_to_completion` bounds its
        #: final drain and raises ``DrainTimeout`` instead of hanging —
        #: chaos/fault runs set this so liveness violations are
        #: diagnosable failures, not wedged event loops.
        self.drain_timeout_ns: Optional[float] = None
        # Every hook point now exists: apply any CLI/test attach plan.
        apply_global_plan(self.probes)

    # -- checkpoint/restore ---------------------------------------------------

    def checkpoint(self, path: Optional[str] = None, extra: Any = None) -> bytes:
        """Snapshot this (quiescent) machine; see :mod:`repro.sim.snapshot`.

        ``extra`` rides along in the same pickle (e.g. a warmed workload
        object that shares this system's graph) and comes back from
        ``snapshot.load(...).extra``.
        """
        from repro.sim import snapshot

        return snapshot.save(self, path=path, extra=extra)

    @staticmethod
    def restore(source) -> "System":
        """Rebuild a machine from :meth:`checkpoint` output (bytes or a
        path).  For the extras, use ``repro.sim.snapshot.load`` directly."""
        from repro.sim import snapshot

        return snapshot.load(source).system

    def _after_restore(self) -> None:
        """Unpickle fixups: re-park worker loops in their recorded order
        and rebind the dynamic-file closures the snapshot dropped."""
        self.kernel.workqueue.respawn_parked()
        self.kernel.rebind_dynamic_files()
        self.genesys._register_sysfs()

    # -- conveniences ---------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def launch(self, func, global_size: int, workgroup_size: int, args: tuple = (), name: str = "") -> Process:
        return self.gpu.launch(KernelLaunch(func, global_size, workgroup_size, args, name))

    def run_to_completion(self, main: Generator, name: str = "main") -> Any:
        """Run ``main`` as a process, then drain outstanding GPU syscalls."""
        result = self.sim.run_process(main, name=name)
        self.sim.run_process(
            self.genesys.drain(timeout=self.drain_timeout_ns), name="drain"
        )
        return result

    def run_kernel(
        self, func, global_size: int, workgroup_size: int, args: tuple = (), name: str = ""
    ) -> float:
        """Launch one kernel, wait for it and all its syscalls; returns
        the elapsed simulated time in nanoseconds."""
        start = self.sim.now

        def body() -> Generator:
            yield self.launch(func, global_size, workgroup_size, args, name)

        self.run_to_completion(body(), name=f"run:{name or func.__name__}")
        return self.sim.now - start
