"""Measurement utilities: counters, time-series traces, utilisation.

The paper's Figure 14 plots CPU utilisation and disk throughput over the
run of the wordcount workload; :class:`UtilizationTracker` and
:class:`TraceRecorder` provide exactly the sampled series needed to
regenerate those traces, and simpler :class:`Counter` objects back the
scalar rows of the other figures.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.sim.engine import Simulator


class Counter:
    """A named monotonically increasing counter."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class TraceRecorder:
    """Records (time, value) samples under string keys."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._series: Dict[str, List[Tuple[float, float]]] = defaultdict(list)

    def record(self, key: str, value: float) -> None:
        self._series[key].append((self.sim.now, value))

    def series(self, key: str) -> List[Tuple[float, float]]:
        return list(self._series[key])

    def keys(self) -> List[str]:
        return sorted(self._series)

    def last(self, key: str, default: float = 0.0) -> float:
        points = self._series.get(key)
        return points[-1][1] if points else default

    def binned_mean(
        self, key: str, bin_ns: float, start: float = 0.0, end: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        """Average the samples of ``key`` into fixed-width time bins."""
        if end is None:
            end = self.sim.now
        if bin_ns <= 0:
            raise ValueError("bin_ns must be positive")
        nbins = max(1, int((end - start) / bin_ns) + 1)
        sums = [0.0] * nbins
        counts = [0] * nbins
        for when, value in self._series.get(key, []):
            if start <= when <= end:
                idx = int((when - start) / bin_ns)
                sums[idx] += value
                counts[idx] += 1
        out: List[Tuple[float, float]] = []
        for i in range(nbins):
            mean = sums[i] / counts[i] if counts[i] else 0.0
            out.append((start + i * bin_ns, mean))
        return out


class UtilizationTracker:
    """Tracks what fraction of time a set of execution units is busy.

    Units call :meth:`busy` / :meth:`idle` as they start and finish work;
    the tracker integrates (busy_units / total_units) over time, and can
    report both a whole-run average and a binned series.
    """

    def __init__(self, sim: Simulator, total_units: int, name: str = "") -> None:
        if total_units < 1:
            raise ValueError("total_units must be >= 1")
        self.sim = sim
        self.total_units = total_units
        self.name = name
        self._busy = 0
        self._last_change = sim.now
        self._weighted_busy = 0.0
        self._segments: List[Tuple[float, float, float]] = []

    def _commit(self) -> None:
        now = self.sim.now
        if now > self._last_change:
            frac = self._busy / self.total_units
            self._weighted_busy += (now - self._last_change) * frac
            self._segments.append((self._last_change, now, frac))
        self._last_change = now

    def busy(self) -> None:
        self._commit()
        self._busy += 1
        if self._busy > self.total_units:
            raise RuntimeError(f"{self.name}: more busy units than exist")

    def idle(self) -> None:
        self._commit()
        if self._busy == 0:
            raise RuntimeError(f"{self.name}: idle() without busy()")
        self._busy -= 1

    def average(self, since: float = 0.0) -> float:
        """Time-weighted average utilisation in [0, 1] since ``since``."""
        self._commit()
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        weighted = 0.0
        for seg_start, seg_end, frac in self._segments:
            lo = max(seg_start, since)
            hi = seg_end
            if hi > lo:
                weighted += (hi - lo) * frac
        return weighted / elapsed

    def segments(self) -> List[Tuple[float, float, float]]:
        """All (start, end, busy_fraction) segments recorded so far."""
        self._commit()
        return list(self._segments)

    def binned_series(
        self, bin_ns: float, start: float = 0.0, end: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        """Utilisation averaged per time bin (Figure 14 trace shape)."""
        self._commit()
        if end is None:
            end = self.sim.now
        if bin_ns <= 0:
            raise ValueError("bin_ns must be positive")
        nbins = max(1, int((end - start) / bin_ns) + 1)
        weighted = [0.0] * nbins
        for seg_start, seg_end, frac in self._segments:
            lo = max(seg_start, start)
            hi = min(seg_end, end)
            while lo < hi:
                idx = min(nbins - 1, int((lo - start) / bin_ns))
                bin_end = start + (idx + 1) * bin_ns
                span = min(hi, bin_end) - lo
                weighted[idx] += span * frac
                lo += span
        return [(start + i * bin_ns, weighted[i] / bin_ns) for i in range(nbins)]
