"""Core discrete-event simulation engine.

Time is measured in integer (or float) nanoseconds.  A simulation
*process* is a generator; each value it yields tells the engine when to
resume it:

* a non-negative number — resume after that many nanoseconds,
* a :class:`Delay` — the explicit form of the above,
* an :class:`Event` — resume when the event is triggered; the value the
  event was triggered with becomes the value of the ``yield`` expression,
* a :class:`Process` — resume when that process finishes (join); the
  process's return value becomes the value of the ``yield`` expression,
* an :class:`AllOf` / :class:`AnyOf` — combinators over the above.

Processes may raise :class:`Interrupted` at a yield point if another
process calls :meth:`Process.interrupt`; this powers the halt-resume
wavefront model.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised for structural misuse of the engine (not model errors)."""


class Interrupted(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class Delay:
    """Explicit request to sleep for ``duration`` nanoseconds."""

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        if duration < 0:
            raise ValueError(f"negative delay: {duration}")
        self.duration = duration

    def __repr__(self) -> str:
        return f"Delay({self.duration})"


class Event:
    """One-shot synchronisation event.

    An event starts un-triggered.  Processes that yield it are suspended
    until :meth:`succeed` (or :meth:`fail`) is called, at which point all
    waiters resume with the trigger value.  Triggering twice is an error;
    yielding an already-triggered event resumes immediately.
    """

    __slots__ = ("sim", "_value", "_exc", "triggered", "_waiters", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self.triggered = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._waiters: List["Process"] = []

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self._value = value
        for proc in self._waiters:
            self.sim._schedule(0, proc, value=value)
        self._waiters.clear()
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self._exc = exc
        for proc in self._waiters:
            self.sim._schedule(0, proc, exc=exc)
        self._waiters.clear()
        return self

    def _add_waiter(self, proc: "Process") -> None:
        if self.triggered:
            if self._exc is not None:
                self.sim._schedule(0, proc, exc=self._exc)
            else:
                self.sim._schedule(0, proc, value=self._value)
        else:
            self._waiters.append(proc)

    def _discard_waiter(self, proc: "Process") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"Event({self.name!r}, {state})"


class AllOf:
    """Combinator: resume when *all* of the given events/processes finish.

    The yield expression evaluates to a list of their values, in order.
    """

    __slots__ = ("items",)

    def __init__(self, items: Iterable[Any]):
        self.items = list(items)


class AnyOf:
    """Combinator: resume when *any one* of the given events/processes
    finishes.  The yield expression evaluates to ``(index, value)`` of the
    first completer (ties broken by order)."""

    __slots__ = ("items",)

    def __init__(self, items: Iterable[Any]):
        self.items = list(items)


class Process:
    """A running simulation process wrapping a generator."""

    __slots__ = (
        "sim",
        "generator",
        "name",
        "finished",
        "result",
        "_completion",
        "_waiting_on",
        "_interruptible",
    )

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        self.sim = sim
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.finished = False
        self.result: Any = None
        self._completion = Event(sim, name=f"done:{self.name}")
        self._waiting_on: Optional[Event] = None
        self._interruptible = True

    @property
    def completion(self) -> Event:
        """Event triggered with the process's return value when it ends."""
        return self._completion

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at its yield point."""
        if self.finished:
            return
        if self._waiting_on is not None:
            self._waiting_on._discard_waiter(self)
            self._waiting_on = None
        self.sim._schedule(0, self, exc=Interrupted(cause))

    def _add_waiter(self, proc: "Process") -> None:
        self._completion._add_waiter(proc)

    def _discard_waiter(self, proc: "Process") -> None:
        self._completion._discard_waiter(proc)

    def __repr__(self) -> str:
        state = "finished" if self.finished else "running"
        return f"Process({self.name!r}, {state})"


class _Condition:
    """Internal helper joining AllOf/AnyOf children into one event."""

    def __init__(self, sim: "Simulator", items: List[Any], mode: str):
        self.event = Event(sim, name=f"cond:{mode}")
        self.mode = mode
        self.values: List[Any] = [None] * len(items)
        self.remaining = len(items)
        for idx, item in enumerate(items):
            self._watch(sim, idx, item)

    def _watch(self, sim: "Simulator", idx: int, item: Any) -> None:
        def waiter() -> Generator:
            value = yield item
            self.values[idx] = value
            self.remaining -= 1
            if self.event.triggered:
                return
            if self.mode == "any":
                self.event.succeed((idx, value))
            elif self.remaining == 0:
                self.event.succeed(list(self.values))

        sim.process(waiter(), name=f"cond-watch-{idx}")


class Simulator:
    """The discrete-event simulator: clock + event heap + process driver."""

    def __init__(self):
        self.now: float = 0
        self._heap: List = []
        self._seq = 0
        self._active = 0

    # -- scheduling ----------------------------------------------------

    def _schedule(
        self,
        delay: float,
        proc: Process,
        value: Any = None,
        exc: Optional[BaseException] = None,
    ) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, proc, value, exc))

    def process(self, generator: Generator, name: str = "") -> Process:
        """Spawn ``generator`` as a new process starting at the current time."""
        proc = Process(self, generator, name=name)
        self._active += 1
        self._schedule(0, proc)
        return proc

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, duration: float) -> Delay:
        return Delay(duration)

    # -- execution -----------------------------------------------------

    def _step(self) -> None:
        when, _seq, proc, value, exc = heapq.heappop(self._heap)
        if proc.finished:
            return
        self.now = when
        proc._waiting_on = None
        try:
            if exc is not None:
                target = proc.generator.throw(exc)
            else:
                target = proc.generator.send(value)
        except StopIteration as stop:
            self._finish(proc, stop.value)
            return
        except Interrupted:
            # Interrupt not caught by the process body: treat as clean stop.
            self._finish(proc, None)
            return
        self._wait_on(proc, target)

    def _finish(self, proc: Process, result: Any) -> None:
        proc.finished = True
        proc.result = result
        self._active -= 1
        if not proc._completion.triggered:
            proc._completion.succeed(result)

    def _wait_on(self, proc: Process, target: Any) -> None:
        if isinstance(target, (int, float)):
            target = Delay(target)
        if isinstance(target, Delay):
            self._schedule(target.duration, proc)
        elif isinstance(target, Event):
            proc._waiting_on = target
            target._add_waiter(proc)
        elif isinstance(target, Process):
            proc._waiting_on = target._completion
            target._add_waiter(proc)
        elif isinstance(target, AllOf):
            cond = _Condition(self, target.items, mode="all")
            proc._waiting_on = cond.event
            cond.event._add_waiter(proc)
        elif isinstance(target, AnyOf):
            cond = _Condition(self, target.items, mode="any")
            proc._waiting_on = cond.event
            cond.event._add_waiter(proc)
        else:
            raise SimulationError(f"process {proc.name!r} yielded {target!r}")

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queue; returns the final simulation time.

        With ``until`` set, stops once the clock would pass that time
        (the clock is left at ``until``).
        """
        while self._heap:
            when = self._heap[0][0]
            if until is not None and when > until:
                self.now = until
                return self.now
            self._step()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: spawn ``generator``, run to completion, return its value."""
        proc = self.process(generator, name=name)
        self.run()
        if not proc.finished:
            raise SimulationError(f"process {proc.name!r} deadlocked")
        return proc.result
