"""Core discrete-event simulation engine.

Time is measured in integer (or float) nanoseconds.  A simulation
*process* is a generator; each value it yields tells the engine when to
resume it:

* a non-negative number — resume after that many nanoseconds,
* a :class:`Delay` — the explicit form of the above,
* an :class:`Event` — resume when the event is triggered; the value the
  event was triggered with becomes the value of the ``yield`` expression,
* a :class:`Process` — resume when that process finishes (join); the
  process's return value becomes the value of the ``yield`` expression,
* an :class:`AllOf` / :class:`AnyOf` — combinators over the above.

Processes may raise :class:`Interrupted` at a yield point if another
process calls :meth:`Process.interrupt`; this powers the halt-resume
wavefront model.

Internals are event-driven and allocation-lean: combinators register
direct callbacks on their children instead of spawning one watcher
process per item, waiter bookkeeping is O(1) amortised (tombstones plus
periodic compaction), and :class:`Timer` provides a cancellable wakeup
so pollers can sleep until a state change instead of ticking.  A failed
child event (:meth:`Event.fail`) propagates its exception to processes
waiting on an enclosing ``AllOf``/``AnyOf`` rather than crashing the
simulation driver.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "AllOf",
    "AnyOf",
    "Delay",
    "Event",
    "Interrupted",
    "Process",
    "SimulationError",
    "Simulator",
    "Timer",
]


class SimulationError(RuntimeError):
    """Raised for structural misuse of the engine (not model errors)."""


class Interrupted(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class Delay:
    """Explicit request to sleep for ``duration`` nanoseconds."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative delay: {duration}")
        self.duration = duration

    def __repr__(self) -> str:
        return f"Delay({self.duration})"


class Event:
    """One-shot synchronisation event.

    An event starts un-triggered.  Processes that yield it are suspended
    until :meth:`succeed` (or :meth:`fail`) is called, at which point all
    waiters resume with the trigger value.  Triggering twice is an error;
    yielding an already-triggered event resumes immediately.

    Besides process waiters, an event carries lightweight *callbacks*
    (:meth:`_add_callback`) invoked synchronously at trigger time — the
    mechanism combinators and resource wrappers use to avoid spawning a
    watcher process per watched item.
    """

    __slots__ = ("sim", "_value", "_exc", "triggered", "_waiters", "_callbacks", "_ndead", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.triggered = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._waiters: List[Optional["Process"]] = []
        self._callbacks: List[Callable[[Any, Optional[BaseException]], None]] = []
        self._ndead = 0

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self._value = value
        waiters = self._waiters
        if waiters:
            self._waiters = []
            self._ndead = 0
            schedule = self.sim._schedule
            for proc in waiters:
                if proc is not None:
                    schedule(0, proc, value=value)
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = []
            for callback in callbacks:
                callback(value, None)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self._exc = exc
        waiters = self._waiters
        if waiters:
            self._waiters = []
            self._ndead = 0
            schedule = self.sim._schedule
            for proc in waiters:
                if proc is not None:
                    schedule(0, proc, exc=exc)
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = []
            for callback in callbacks:
                callback(None, exc)
        return self

    def _add_waiter(self, proc: "Process") -> None:
        if self.triggered:
            self.sim._schedule(0, proc, value=self._value, exc=self._exc)
        else:
            proc._wait_index = len(self._waiters)
            self._waiters.append(proc)

    def _discard_waiter(self, proc: "Process") -> None:
        waiters = self._waiters
        index = proc._wait_index
        if 0 <= index < len(waiters) and waiters[index] is proc:
            # O(1) tombstone; a process waits on at most one event, so the
            # recorded index is authoritative.
            waiters[index] = None
            self._ndead += 1
            if self._ndead > 16 and self._ndead * 2 >= len(waiters):
                self._compact()
            return
        try:  # pragma: no cover - defensive fallback
            waiters.remove(proc)
        except ValueError:
            pass

    def _compact(self) -> None:
        live = [proc for proc in self._waiters if proc is not None]
        for index, proc in enumerate(live):
            proc._wait_index = index
        self._waiters = live
        self._ndead = 0

    def _add_callback(self, callback: Callable[[Any, Optional[BaseException]], None]) -> None:
        """Invoke ``callback(value, exc)`` at trigger time (immediately if
        the event already triggered)."""
        if self.triggered:
            callback(self._value, self._exc)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"Event({self.name!r}, {state})"


class _TimerHandle:
    """Heap-resident callback cell; ``fn = None`` marks cancellation."""

    __slots__ = ("fn",)

    #: Strong handles advance the clock when they run and keep the heap
    #: alive; see :class:`_WeakTimerHandle` for the observer variant.
    weak = False

    def __init__(self, fn: Optional[Callable[[], None]]) -> None:
        self.fn = fn


class _WeakTimerHandle(_TimerHandle):
    """A *weak* callback cell: pure-observer wakeups (metrics ticks).

    Weak entries never advance ``sim.now`` when they run, and they are
    silently dropped — not run — if no live work remains in the heap.
    Both properties together guarantee that attaching a periodic weak
    tick cannot perturb a simulation's observable behaviour: the clock
    trace is untouched and ``run()`` still terminates (the heap drains)
    exactly when it would have without the tick.
    """

    __slots__ = ()

    weak = True


class Timer:
    """Cancellable one-shot timer.

    ``timer.event`` triggers with ``value`` once ``delay`` nanoseconds
    have elapsed — unless :meth:`cancel` runs first, in which case the
    event never fires and the (lazily tombstoned) heap entry no longer
    advances the clock when popped.  This lets a poller sleep until
    either a state-change event or its next tick without leaking
    clock-stretching wakeups when the state change wins.
    """

    __slots__ = ("sim", "event", "_handle")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None, name: str = "timer") -> None:
        if delay < 0:
            raise ValueError(f"negative timer delay: {delay}")
        self.sim = sim
        self.event = Event(sim, name=name)
        event = self.event

        def fire() -> None:
            if not event.triggered:
                event.succeed(value)

        self._handle = sim.call_later(delay, fire)

    @property
    def cancelled(self) -> bool:
        return self._handle.fn is None and not self.event.triggered

    def cancel(self) -> None:
        """Stop the timer; a no-op if it already fired."""
        self._handle.fn = None

    def __getstate__(self) -> dict:
        # The handle's fire closure is unpicklable; at a quiescent point
        # the heap is empty, so the timer has fired or been cancelled
        # and a dead handle preserves the observable state either way.
        return {"sim": self.sim, "event": self.event, "_handle": _TimerHandle(None)}

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    def __repr__(self) -> str:
        if self.event.triggered:
            state = "fired"
        elif self._handle.fn is None:
            state = "cancelled"
        else:
            state = "pending"
        return f"Timer({self.event.name!r}, {state})"


class AllOf:
    """Combinator: resume when *all* of the given events/processes finish.

    The yield expression evaluates to a list of their values, in order.
    """

    __slots__ = ("items",)

    def __init__(self, items: Iterable[Any]) -> None:
        self.items = list(items)


class AnyOf:
    """Combinator: resume when *any one* of the given events/processes
    finishes.  The yield expression evaluates to ``(index, value)`` of the
    first completer (ties broken by order)."""

    __slots__ = ("items",)

    def __init__(self, items: Iterable[Any]) -> None:
        self.items = list(items)


class Process:
    """A running simulation process wrapping a generator."""

    __slots__ = (
        "sim",
        "generator",
        "name",
        "finished",
        "result",
        "_completion",
        "_waiting_on",
        "_wait_index",
        "_interruptible",
    )

    def __init__(self, sim: "Simulator", generator: Generator[Any, Any, Any], name: str = "") -> None:
        self.sim = sim
        self.generator: Generator[Any, Any, Any] = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.finished = False
        self.result: Any = None
        self._completion = Event(sim, name=f"done:{self.name}")
        self._waiting_on: Optional[Event] = None
        self._wait_index = -1
        self._interruptible = True

    @property
    def completion(self) -> Event:
        """Event triggered with the process's return value when it ends."""
        return self._completion

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at its yield point."""
        if self.finished:
            return
        if self._waiting_on is not None:
            self._waiting_on._discard_waiter(self)
            self._waiting_on = None
        self.sim._schedule(0, self, exc=Interrupted(cause))

    def _add_waiter(self, proc: "Process") -> None:
        self._completion._add_waiter(proc)

    def _discard_waiter(self, proc: "Process") -> None:
        self._completion._discard_waiter(proc)

    def __getstate__(self) -> dict:
        # A live process is a suspended generator, which CPython cannot
        # pickle; checkpoints happen only at quiescent points, where the
        # only live processes are workqueue worker loops (dropped and
        # respawned by the checkpoint layer, never pickled through here).
        if not self.finished:
            raise TypeError(
                f"cannot pickle live process {self.name!r}: suspended "
                "generators are not picklable (checkpoint at quiescence)"
            )
        state = {slot: getattr(self, slot) for slot in Process.__slots__}
        state["generator"] = None  # exhausted; identity no longer matters
        state["_waiting_on"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    def __repr__(self) -> str:
        state = "finished" if self.finished else "running"
        return f"Process({self.name!r}, {state})"


class _Condition:
    """Internal helper joining AllOf/AnyOf children into one event.

    Registers a direct callback on each child instead of spawning a
    watcher process per item (the seed engine's approach), so an N-wide
    combinator costs N closure registrations rather than N processes,
    N generators, and N completion events.  A failing child fails the
    joined event, propagating the exception to the waiting process.
    """

    __slots__ = ("event", "mode", "values", "remaining")

    def __init__(self, sim: "Simulator", items: List[Any], mode: str) -> None:
        self.event = Event(sim, name=f"cond:{mode}")
        self.mode = mode
        self.values: List[Any] = [None] * len(items)
        self.remaining = len(items)
        for idx, item in enumerate(items):
            self._watch(sim, idx, item)

    def _watch(self, sim: "Simulator", idx: int, item: Any) -> None:
        def child_done(value: Any, exc: Optional[BaseException]) -> None:
            event = self.event
            if event.triggered:
                return
            if exc is not None:
                event.fail(exc)
                return
            self.values[idx] = value
            self.remaining -= 1
            if self.mode == "any":
                event.succeed((idx, value))
            elif self.remaining == 0:
                event.succeed(list(self.values))

        if isinstance(item, (int, float)):
            item = Delay(item)
        if isinstance(item, Delay):
            # Live no-op after the condition fires: popping the entry at
            # expiry still advances the clock, exactly as the seed
            # engine's sleeping watcher process did.
            sim.call_later(item.duration, lambda: child_done(None, None))
        elif isinstance(item, (Event, Process)):
            target = item if isinstance(item, Event) else item._completion
            target._add_callback(child_done)
        elif isinstance(item, (AllOf, AnyOf)):
            nested_mode = "all" if isinstance(item, AllOf) else "any"
            _Condition(sim, item.items, nested_mode).event._add_callback(child_done)
        else:
            raise SimulationError(f"condition item {item!r} is not waitable")


#: One scheduled heap entry: ``(when, seq, proc, value, exc)``.  For
#: process resumes ``proc`` is the process; for timer callbacks ``proc``
#: is ``None`` and ``value`` holds the :class:`_TimerHandle`.
HeapEntry = Tuple[float, int, Optional["Process"], Any, Optional[BaseException]]

#: A tie-break policy: given the simulator and the list of every heap
#: entry ready at the current minimum timestamp (in FIFO ``seq`` order),
#: return the index of the entry to pop next.  See
#: :attr:`Simulator.tie_break`.
TieBreak = Callable[["Simulator", List[HeapEntry]], int]


class Simulator:
    """The discrete-event simulator: clock + event heap + process driver."""

    __slots__ = ("now", "_heap", "_seq", "_active", "weak_scheduled", "tie_break")

    def __init__(self) -> None:
        self.now: float = 0
        self._heap: List[HeapEntry] = []
        self._seq = 0
        self._active = 0
        #: Weak (clock-neutral) callbacks ever scheduled; lets tests
        #: assert that detached runs schedule zero metrics ticks.
        self.weak_scheduled = 0
        #: Controllable-scheduler hook (``repro.modelcheck``).  When
        #: ``None`` — always, outside model checking — ``_step`` pops the
        #: heap directly and behaviour is bit-identical to the historical
        #: FIFO order.  When set, every pop routes through
        #: :meth:`_pop_tie_break`, which hands the policy all entries
        #: sharing the minimum timestamp and pops the one it picks.
        self.tie_break: Optional[TieBreak] = None

    # -- scheduling ----------------------------------------------------

    def _schedule(
        self,
        delay: float,
        proc: Process,
        value: Any = None,
        exc: Optional[BaseException] = None,
    ) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, proc, value, exc))

    def call_later(
        self, delay: float, fn: Callable[[], None], weak: bool = False
    ) -> _TimerHandle:
        """Run ``fn()`` after ``delay`` ns without spawning a process.

        Returns a handle whose ``fn`` may be set to ``None`` to cancel;
        cancelled entries neither run nor advance the clock when popped.

        With ``weak=True`` the callback is a pure observer: it runs
        without advancing the clock and is dropped unrun once no live
        work (unfinished process or strong callback) remains, so weak
        wakeups can never change what a simulation computes or when it
        terminates.
        """
        handle = self._make_handle(fn, weak)
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, None, handle, None))
        return handle

    def call_at(
        self, when: float, fn: Callable[[], None], weak: bool = False
    ) -> _TimerHandle:
        """Run ``fn()`` at absolute time ``when`` (clamped to now).

        Unlike ``call_later(when - now, fn)`` this is exact: the heap
        stores absolute times, so no floating-point round-trip through a
        relative delay occurs.  Pollers converted to event waits use it
        to land back on their historical observation grid bit-exactly.
        ``weak`` has the same observer semantics as in :meth:`call_later`.
        """
        if when < self.now:
            when = self.now
        handle = self._make_handle(fn, weak)
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, None, handle, None))
        return handle

    def _make_handle(self, fn: Callable[[], None], weak: bool) -> _TimerHandle:
        if weak:
            self.weak_scheduled += 1
            return _WeakTimerHandle(fn)
        return _TimerHandle(fn)

    def wake_at(self, when: float, name: str = "wake-at") -> Event:
        """An event that triggers at absolute simulated time ``when``."""
        event = Event(self, name=name)

        def fire() -> None:
            event.succeed()

        # Transient heap entry: checkpoints require a drained heap, so
        # this closure never reaches a pickle.
        self.call_at(when, fire)  # lint: allow(SLOT002)
        return event

    def process(self, generator: Generator[Any, Any, Any], name: str = "") -> Process:
        """Spawn ``generator`` as a new process starting at the current time."""
        proc = Process(self, generator, name=name)
        self._active += 1
        self._schedule(0, proc)
        return proc

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, duration: float) -> Delay:
        return Delay(duration)

    def timer(self, delay: float, value: Any = None, name: str = "timer") -> Timer:
        """A cancellable wakeup: ``timer.event`` fires after ``delay`` ns."""
        return Timer(self, delay, value=value, name=name)

    # -- execution -----------------------------------------------------

    def _step(self) -> None:
        if self.tie_break is None:
            when, _seq, proc, value, exc = heapq.heappop(self._heap)
        else:
            when, _seq, proc, value, exc = self._pop_tie_break()
        if proc is None:
            # Timer/callback entry.  A cancelled one (fn is None) is a
            # tombstone: skipped without touching the clock.
            fn = value.fn
            if fn is not None:
                if value.weak:
                    # Pure-observer wakeup: never advances the clock, and
                    # once the heap holds no live work it is dropped unrun
                    # so the simulation ends exactly where it would have.
                    value.fn = None
                    if self._live_work_pending():
                        fn()
                    return
                self.now = when
                fn()
            return
        if proc.finished:
            return
        self.now = when
        proc._waiting_on = None
        try:
            if exc is not None:
                target = proc.generator.throw(exc)
            else:
                target = proc.generator.send(value)
        except StopIteration as stop:
            self._finish(proc, stop.value)
            return
        except Interrupted:
            # Interrupt not caught by the process body: treat as clean stop.
            self._finish(proc, None)
            return
        self._wait_on(proc, target)

    def _pop_tie_break(self) -> HeapEntry:
        """Pop under the :attr:`tie_break` policy.

        Gathers every heap entry sharing the minimum timestamp (they
        come off the heap in FIFO ``seq`` order), asks the policy which
        one runs next, and pushes the rest back.  Pushed-back entries
        re-enter the heap with their original tuples, so the relative
        order among the survivors is preserved and a policy that always
        answers ``0`` reproduces the plain ``heappop`` sequence exactly.
        """
        heap = self._heap
        first = heapq.heappop(heap)
        if not heap or heap[0][0] != first[0]:
            ready = [first]
        else:
            when = first[0]
            ready = [first]
            while heap and heap[0][0] == when:
                ready.append(heapq.heappop(heap))
        policy = self.tie_break
        assert policy is not None
        choice = policy(self, ready)
        if not 0 <= choice < len(ready):
            raise SimulationError(
                f"tie_break policy chose entry {choice} of {len(ready)} ready"
            )
        entry = ready.pop(choice)
        for other in ready:
            heapq.heappush(heap, other)
        return entry

    def _live_work_pending(self) -> bool:
        """True when the heap still holds non-weak, non-tombstone work.

        Live work = an unfinished process resume, or a strong callback
        that has not been cancelled.  Weak callbacks and tombstones do
        not count: they exist only to observe live work, so a heap of
        nothing but them is as good as empty.  O(heap) scan, but it only
        runs when a weak entry pops — once per metrics window at most.
        """
        for _when, _seq, proc, value, _exc in self._heap:
            if proc is not None:
                if not proc.finished:
                    return True
            elif value.fn is not None and not value.weak:
                return True
        return False

    def _finish(self, proc: Process, result: Any) -> None:
        proc.finished = True
        proc.result = result
        self._active -= 1
        if not proc._completion.triggered:
            proc._completion.succeed(result)

    def _wait_on(self, proc: Process, target: Any) -> None:
        cls = target.__class__
        if cls is int or cls is float:
            # The hot path: a plain numeric delay, scheduled directly.
            self._seq += 1
            heapq.heappush(self._heap, (self.now + target, self._seq, proc, None, None))
            return
        if cls is Delay:
            self._schedule(target.duration, proc)
        elif isinstance(target, Event):
            proc._waiting_on = target
            target._add_waiter(proc)
        elif isinstance(target, Process):
            proc._waiting_on = target._completion
            target._add_waiter(proc)
        elif isinstance(target, AllOf):
            cond = _Condition(self, target.items, mode="all")
            proc._waiting_on = cond.event
            cond.event._add_waiter(proc)
        elif isinstance(target, AnyOf):
            cond = _Condition(self, target.items, mode="any")
            proc._waiting_on = cond.event
            cond.event._add_waiter(proc)
        elif isinstance(target, (int, float)):
            # Numeric subclasses (e.g. bool) take the slow path.
            self._schedule(target, proc)
        else:
            raise SimulationError(f"process {proc.name!r} yielded {target!r}")

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queue; returns the final simulation time.

        With ``until`` set, stops once the clock would pass that time
        (the clock is left at ``until``).
        """
        heap = self._heap
        step = self._step
        if until is None:
            while heap:
                step()
            return self.now
        while heap:
            if heap[0][0] > until:
                self.now = until
                return self.now
            step()
        if until > self.now:
            self.now = until
        return self.now

    def run_process(self, generator: Generator[Any, Any, Any], name: str = "") -> Any:
        """Convenience: spawn ``generator``, run to completion, return its value."""
        proc = self.process(generator, name=name)
        self.run()
        if not proc.finished:
            raise SimulationError(f"process {proc.name!r} deadlocked")
        return proc.result
