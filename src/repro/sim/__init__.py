"""Discrete-event simulation engine underpinning the GENESYS model.

The engine is deliberately small and self-contained (no SimPy dependency):
simulation *processes* are plain Python generators that yield scheduling
primitives — a delay in nanoseconds, an :class:`Event`, another
:class:`Process`, or an :class:`AllOf` combinator — and the
:class:`Simulator` advances a global clock by draining a binary-heap event
queue.  Everything in the GPU, memory, and OS models is built from these
primitives plus the shared :mod:`repro.sim.resources` synchronisation
objects.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Delay,
    Event,
    Interrupted,
    Process,
    Simulator,
)
from repro.sim.resources import BandwidthResource, Resource, Store
from repro.sim.stats import Counter, TraceRecorder, UtilizationTracker

__all__ = [
    "AllOf",
    "AnyOf",
    "BandwidthResource",
    "Counter",
    "Delay",
    "Event",
    "Interrupted",
    "Process",
    "Resource",
    "Simulator",
    "Store",
    "TraceRecorder",
    "UtilizationTracker",
]
