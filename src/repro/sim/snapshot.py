"""Versioned checkpoint/restore of a quiesced simulated machine.

The paper's evaluation matrix re-pays every warmup (memcached table
fill, miniAMR ramp) on every cell; gem5-style experiment suites instead
snapshot expensive warm state once and resume byte-identically.  This
module is that layer for the reproduction: :func:`save` pickles a
quiesced :class:`~repro.system.System` (plus optional extras such as a
warmed workload) behind a JSON manifest line, and :func:`load` rebuilds
it so that the resumed run produces byte-identical outputs, ``stats()``
and tracepoint streams versus a straight-through run.

Snapshot format (one file / bytes blob)::

    {"format": "repro-snapshot", "version": N, ...manifest...}\\n
    <pickle payload>

What is captured
----------------
Everything reachable from the System object graph: the engine clock and
sequence counter, syscall areas and slots, the workqueue (with the FIFO
order of its parked worker loops), caches/DRAM, fs/net/process state,
probe registry including attached observer *objects* (GSan, SpanTracer,
StreamRecorder), plus the module-level identity counters (inode
numbers, pids, socket ids) recorded in the manifest.

What is not captured
--------------------
* Live generator frames.  CPython cannot pickle a suspended generator,
  so checkpoints are only legal at *quiescent* points: the event heap
  is drained and the only live processes are workqueue worker loops
  (whose park order is recorded and replayed instead of their frames).
* Closures attached by callers (lambda observers, local functions).
  Attach picklable callables (e.g. ``probes.StreamRecorder``) when a
  run is meant to be checkpointed; :func:`save` fails loudly otherwise.
* Dynamic-file content functions (/proc, /sys).  They close over kernel
  objects and are deterministically re-derived on restore via
  ``LinuxKernel.rebind_dynamic_files`` / ``Genesys._register_sysfs``.
"""

from __future__ import annotations

import gc
import heapq
import json
import pickle
from typing import Any, NamedTuple, Optional, Union

#: Bump when the snapshot layout changes incompatibly; :func:`load`
#: rejects any other version.
SNAPSHOT_VERSION = 1

_FORMAT = "repro-snapshot"


class CheckpointError(RuntimeError):
    """Checkpoint/restore failed: non-quiescent state, unpicklable
    attachments, or an incompatible snapshot."""


class RestoredSnapshot(NamedTuple):
    """What :func:`load` returns."""

    system: Any
    extra: Any
    manifest: dict


def _class_counters() -> dict:
    """Module-level identity counters that live on classes, not on the
    System graph — they feed simulated outputs (pids, inode numbers),
    so a resumed run must continue them exactly."""
    from repro.oskernel.fs import Inode
    from repro.oskernel.net import UdpSocket
    from repro.oskernel.process import OsProcess

    return {
        "inode_next_ino": Inode._next_ino,
        "udp_next_socket_id": UdpSocket._next_id,
        "os_next_pid": OsProcess._next_pid,
    }


def _apply_class_counters(counters: dict) -> None:
    from repro.oskernel.fs import Inode
    from repro.oskernel.net import UdpSocket
    from repro.oskernel.process import OsProcess

    Inode._next_ino = counters["inode_next_ino"]
    UdpSocket._next_id = counters["udp_next_socket_id"]
    OsProcess._next_pid = counters["os_next_pid"]


def check_quiescent(system: Any) -> list:
    """Validate that ``system`` is at a checkpointable instant.

    Returns the parked worker order (already recorded again during
    pickling; returned here for diagnostics).  Raises
    :class:`CheckpointError` otherwise.
    """
    sim = system.sim
    if sim._heap:
        # Dead entries cannot affect the simulation: cancelled-callback
        # tombstones, weak (pure-observer) wakeups such as metrics
        # ticks, and resumes of already-finished processes.  Purge them
        # so a parked metrics tick does not block checkpointing.
        live = [
            entry
            for entry in sim._heap
            if (
                entry[3].fn is not None and not entry[3].weak
                if entry[2] is None
                else not entry[2].finished
            )
        ]
        # Compacting a quiescing heap (dead entries only) cannot change
        # any pop order the tie-break hook would observe.
        if len(live) != len(sim._heap):
            sim._heap = live  # lint: allow(SCHED001)
            heapq.heapify(sim._heap)  # lint: allow(SCHED001)
    if sim._heap:
        entries = ", ".join(
            f"t={entry[0]:.0f} {'timer' if entry[2] is None else entry[2].name}"
            for entry in sorted(sim._heap)[:5]
        )
        raise CheckpointError(
            f"cannot checkpoint: {len(sim._heap)} event(s) still scheduled "
            f"({entries}); run the simulator to quiescence first"
        )
    workqueue = system.kernel.workqueue
    if workqueue.hook_worker.active:
        raise CheckpointError(
            "cannot checkpoint with a wq.worker policy attached: workers "
            "park in a queue race whose state is not snapshottable"
        )
    try:
        parked = workqueue._parked_worker_ids()
    except TypeError as exc:
        raise CheckpointError(str(exc)) from None
    if sim._active != len(parked):
        raise CheckpointError(
            f"cannot checkpoint: {sim._active - len(parked)} live "
            f"process(es) besides the {len(parked)} parked workqueue "
            "workers (blocked or unfinished work) — only quiescent "
            "machines can be snapshotted"
        )
    return parked


def save(system: Any, path: Optional[str] = None, extra: Any = None) -> bytes:
    """Snapshot ``system`` (and optionally ``extra``, e.g. a warmed
    workload object sharing its graph) into a versioned blob.

    Returns the blob; also writes it to ``path`` when given.
    """
    check_quiescent(system)
    counters = _class_counters()
    try:
        payload = pickle.dumps(
            (counters, system, extra), protocol=pickle.HIGHEST_PROTOCOL
        )
    except Exception as exc:
        raise CheckpointError(
            f"unpicklable state in checkpoint: {exc} — attach only "
            "picklable observers (see repro.probes.StreamRecorder) and "
            "checkpoint at quiescence"
        ) from exc
    manifest = {
        "format": _FORMAT,
        "version": SNAPSHOT_VERSION,
        "sim_now_ns": system.sim.now,
        "sim_seq": system.sim._seq,
        "payload_bytes": len(payload),
        "counters": counters,
        "has_extra": extra is not None,
    }
    blob = json.dumps(manifest, sort_keys=True).encode("ascii") + b"\n" + payload
    if path is not None:
        with open(path, "wb") as fh:
            fh.write(blob)
    return blob


def _read_blob(source: Union[bytes, str]) -> bytes:
    if isinstance(source, bytes):
        return source
    with open(source, "rb") as fh:
        return fh.read()


def manifest(source: Union[bytes, str]) -> dict:
    """Parse and validate a snapshot's manifest header (cheap: does not
    unpickle the payload)."""
    blob = _read_blob(source)
    newline = blob.find(b"\n")
    if newline < 0:
        raise CheckpointError("not a repro snapshot: missing manifest line")
    try:
        header = json.loads(blob[:newline])
    except ValueError:
        raise CheckpointError("not a repro snapshot: bad manifest") from None
    if not isinstance(header, dict) or header.get("format") != _FORMAT:
        raise CheckpointError("not a repro snapshot: bad manifest")
    return header


def load(source: Union[bytes, str]) -> RestoredSnapshot:
    """Rebuild a System (and extras) from :func:`save` output.

    Rejects snapshots whose version does not match
    :data:`SNAPSHOT_VERSION`.  Restoring resets the module-level
    identity counters to the snapshot's values, so interleaving a
    restored machine with an independently running one in the same
    process will renumber the latter's new inodes/pids/sockets.
    """
    blob = _read_blob(source)
    header = manifest(blob)
    version = header.get("version")
    if version != SNAPSHOT_VERSION:
        raise CheckpointError(
            f"snapshot version mismatch: snapshot is v{version}, this "
            f"build reads v{SNAPSHOT_VERSION}"
        )
    payload = blob[blob.find(b"\n") + 1 :]
    # Unpickling allocates the whole object graph at once; letting the
    # cyclic GC run mid-load re-scans that growing graph repeatedly.
    # Nothing in a half-built snapshot is garbage, so pause collection.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        counters, system, extra = pickle.loads(payload)
    finally:
        if gc_was_enabled:
            gc.enable()
    _apply_class_counters(counters)
    system._after_restore()
    return RestoredSnapshot(system, extra, header)
