"""Shared synchronisation resources built on the simulation engine.

Three primitives cover every contention point in the model:

* :class:`Resource` — a counted semaphore with FIFO queuing (CPU cores,
  CU wavefront slots, worker threads).
* :class:`Store` — an unbounded FIFO of items with blocking ``get``
  (kernel workqueues, NIC receive queues, signal queues).
* :class:`BandwidthResource` — a serialising channel where moving *B*
  bytes takes ``B / rate`` ns and transfers queue behind one another
  (DRAM, SSD, NIC links).  This is what creates the CPU/GPU memory
  contention of the paper's Figure 9 and the disk ceiling of Figure 14.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional, Tuple

from repro.sim.engine import Event, Simulator


class Resource:
    """Counted FIFO semaphore.

    Usage inside a process::

        yield resource.acquire()
        try:
            ...
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._queue: Deque[Event] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def acquire(self) -> Event:
        """Return an event that triggers once a unit is granted."""
        event = self.sim.event(name=f"acq:{self.name}")
        if self.in_use < self.capacity and not self._queue:
            self.in_use += 1
            event.succeed()
        else:
            self._queue.append(event)
        return event

    def release(self) -> None:
        if self.in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        if self._queue:
            # Hand the unit straight to the next waiter.
            self._queue.popleft().succeed()
        else:
            self.in_use -= 1

    def using(self, duration: float) -> Generator[Any, Any, None]:
        """Process body: hold one unit for ``duration`` ns."""
        yield self.acquire()
        try:
            yield duration
        finally:
            self.release()


class Store:
    """Unbounded FIFO of items with blocking ``get``."""

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._watchers: List[Event] = []

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)
        if self._watchers:
            watchers, self._watchers = self._watchers, []
            for event in watchers:
                if not event.triggered:
                    event.succeed()

    def when_nonempty(self) -> Event:
        """Readiness event: fires when an item is (or becomes) available
        without consuming it.  Wakeups may be spurious if a competing
        getter takes the item first — callers must re-check, exactly as
        POSIX poll(2) allows."""
        event = self.sim.event(name=f"ready:{self.name}")
        if self._items:
            event.succeed()
        else:
            self._watchers.append(event)
        return event

    def get(self) -> Event:
        """Return an event triggering with the next item."""
        event = self.sim.event(name=f"get:{self.name}")
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def cancel_get(self, event: Event) -> None:
        """Withdraw a pending ``get`` event (no-op if already triggered
        or unknown).  Needed by consumers that race gets on several
        stores: the losers must be withdrawn or a later ``put`` would
        feed an abandoned event and lose the item."""
        try:
            self._getters.remove(event)
        except ValueError:
            pass

    def peek_all(self) -> List[Any]:
        return list(self._items)

    def __getstate__(self) -> dict:
        # Pending getters/watchers are events owned by live processes
        # (workqueue worker loops parked on ``get``); those cannot be
        # pickled.  The checkpoint layer records the parked worker order
        # separately and re-parks the loops on restore, recreating these
        # entries exactly.
        state = self.__dict__.copy()
        state["_getters"] = deque()
        state["_watchers"] = []
        return state


class BandwidthResource:
    """A serialising transfer channel with a fixed byte rate.

    ``transfer(nbytes)`` is a process body that completes after the
    request has waited for all previously queued transfers and then
    streamed at ``rate_bytes_per_ns``.  An optional per-transfer fixed
    latency models device setup cost.

    Total bytes moved and busy time are tracked so callers can compute
    achieved throughput and utilisation (used for Figures 9 and 14).
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bytes_per_ns: float,
        name: str = "",
        fixed_latency: float = 0.0,
    ) -> None:
        if rate_bytes_per_ns <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.rate = rate_bytes_per_ns
        self.fixed_latency = fixed_latency
        self.name = name
        self._gate = Resource(sim, 1, name=f"bw:{name}")
        self.bytes_moved = 0
        self.busy_time = 0.0
        self._samples: List[Tuple[float, int]] = []

    def transfer_time(self, nbytes: int) -> float:
        return self.fixed_latency + nbytes / self.rate

    @property
    def queue_depth(self) -> int:
        """Transfers in service or waiting behind the channel gate."""
        return self._gate.in_use + len(self._gate._queue)

    def transfer(self, nbytes: int) -> Generator[Any, Any, None]:
        """Process body: move ``nbytes`` through the channel."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        yield self._gate.acquire()
        try:
            duration = self.transfer_time(nbytes)
            yield duration
            self.bytes_moved += nbytes
            self.busy_time += duration
            self._samples.append((self.sim.now, nbytes))
        finally:
            self._gate.release()

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of wall time the channel was busy since ``since``."""
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def throughput_series(
        self, bin_ns: float, start: float = 0.0, end: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        """Binned achieved throughput in bytes/ns (for trace figures)."""
        if end is None:
            end = self.sim.now
        if bin_ns <= 0:
            raise ValueError("bin_ns must be positive")
        nbins = max(1, int((end - start) / bin_ns) + 1)
        totals = [0.0] * nbins
        for when, nbytes in self._samples:
            if start <= when <= end:
                totals[int((when - start) / bin_ns)] += nbytes
        return [(start + i * bin_ns, totals[i] / bin_ns) for i in range(nbins)]
