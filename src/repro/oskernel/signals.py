"""POSIX real-time signals with queued siginfo payloads.

Backs the Section VIII-B signal-search case study: GPU work-groups call
``rt_sigqueueinfo`` to notify the host process of partial completions,
passing an identifier through the ``siginfo`` value field; a CPU thread
drains them with ``sigwaitinfo`` and overlaps processing with the
still-running GPU kernel.
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

from repro.oskernel.errors import Errno, OsError
from repro.sim.engine import Simulator
from repro.sim.resources import Store

SIGRTMIN = 34
SIGRTMAX = 64
#: Linux's default per-process queued-signal limit (RLIMIT_SIGPENDING).
DEFAULT_SIGPENDING_LIMIT = 11811


class SigInfo:
    """The subset of siginfo_t the workloads use."""

    __slots__ = ("signo", "value", "sender_pid")

    def __init__(self, signo: int, value: int, sender_pid: int):
        self.signo = signo
        self.value = value
        self.sender_pid = sender_pid

    def __repr__(self) -> str:
        return f"SigInfo(signo={self.signo}, value={self.value}, from={self.sender_pid})"


class SignalQueue:
    """Per-process queue of pending real-time signals."""

    def __init__(self, sim: Simulator, pid: int, limit: int = DEFAULT_SIGPENDING_LIMIT):
        self.sim = sim
        self.pid = pid
        self.limit = limit
        self._store = Store(sim, name=f"sigq{pid}")
        self.delivered = 0
        self.consumed = 0

    def pending(self) -> int:
        return len(self._store)

    def queue(self, info: SigInfo) -> None:
        if not SIGRTMIN <= info.signo <= SIGRTMAX:
            raise OsError(Errno.EINVAL, f"signo {info.signo} not a realtime signal")
        if self.pending() >= self.limit:
            raise OsError(Errno.EAGAIN, "signal queue full")
        self.delivered += 1
        self._store.put(info)

    def sigwaitinfo(self) -> Generator:
        """Process body: block until a signal arrives; returns SigInfo."""
        info = yield self._store.get()
        self.consumed += 1
        return info

    def sigtimedwait(self, timeout_ns: float) -> Generator:
        """Process body: wait up to ``timeout_ns``; returns SigInfo or None."""
        from repro.sim.engine import AnyOf

        get_event = self._store.get()
        if get_event.triggered:
            self.consumed += 1
            return get_event.value
        idx, value = yield AnyOf([get_event, self.sim.timeout(timeout_ns)])
        if idx == 0:
            self.consumed += 1
            return value
        # Timed out: if a signal raced in, take it next time (the get
        # event stays armed in the store; emulate cancel by re-queueing).
        if get_event.triggered:
            self.consumed += 1
            return get_event.value
        self._cancel_get(get_event)
        return None

    def _cancel_get(self, event) -> None:
        try:
            self._store._getters.remove(event)
        except ValueError:
            pass
