"""POSIX errno values and the kernel-facing error type."""

from __future__ import annotations

from enum import IntEnum


class Errno(IntEnum):
    EPERM = 1
    ENOENT = 2
    ESRCH = 3
    EINTR = 4
    EIO = 5
    EBADF = 9
    EAGAIN = 11
    ENOMEM = 12
    EACCES = 13
    EFAULT = 14
    EBUSY = 16
    EEXIST = 17
    ENOTDIR = 20
    EISDIR = 21
    EINVAL = 22
    ENFILE = 23
    EMFILE = 24
    ENOTTY = 25
    ENOSPC = 28
    ESPIPE = 29
    EPIPE = 32
    ENOSYS = 38
    ENOTEMPTY = 39
    ETIME = 62
    EADDRINUSE = 98
    ETIMEDOUT = 110
    ECONNREFUSED = 111


class OsError(Exception):
    """A failed system call.

    GENESYS converts this into the conventional negative-errno return
    value written back into the syscall slot, exactly as the Linux
    syscall ABI does.
    """

    def __init__(self, errno: Errno, message: str = ""):
        super().__init__(f"{errno.name}: {message}" if message else errno.name)
        self.errno = errno

    @property
    def retval(self) -> int:
        return -int(self.errno)
