"""CPU complex: a pool of cores with utilisation accounting.

Both application CPU threads and OS worker threads run their CPU-bound
segments through :meth:`CpuComplex.run`, so system-call processing
competes with application work for the same four cores — the effect the
paper's Figure 14 CPU-utilisation traces expose (offloading search to
the GPU frees the CPU to process system calls).
"""

from __future__ import annotations

from typing import Generator

from repro.machine import MachineConfig
from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.sim.stats import UtilizationTracker


class CpuComplex:
    def __init__(self, sim: Simulator, config: MachineConfig):
        self.sim = sim
        self.config = config
        self.cores = Resource(sim, config.cpu_cores, name="cpu-cores")
        self.utilization = UtilizationTracker(sim, config.cpu_cores, name="cpu")

    def run(self, duration: float) -> Generator:
        """Process body: occupy one core for ``duration`` ns of CPU work."""
        if duration < 0:
            raise ValueError(f"negative CPU time: {duration}")
        if duration == 0:
            return
        yield self.cores.acquire()
        self.utilization.busy()
        try:
            yield duration
        finally:
            self.utilization.idle()
            self.cores.release()

    def run_cycles(self, cycles: float) -> Generator:
        """Process body: occupy one core for ``cycles`` CPU cycles."""
        yield from self.run(cycles * self.config.cpu_cycle_ns)
