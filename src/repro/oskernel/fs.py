"""Virtual filesystem: tmpfs + disk-backed files + device nodes.

Follows Linux's "everything is a file" philosophy that GENESYS leans on
(Section IV): regular files can live in tmpfs (memory-resident, the
Figure 7 microbenchmarks) or be backed by the SSD block device with a
page cache (the Figure 13/14 wordcount experiments); device nodes
(terminal, framebuffer) and dynamic /proc-style files hang off the same
tree, so GPU code can print to the console, query kernel state, and
ioctl the framebuffer through the ordinary open/read/write path.

Timed operations are process bodies; functional data really moves.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional, TYPE_CHECKING

from repro.machine import MachineConfig
from repro.oskernel.blockdev import BlockDevice
from repro.oskernel.cpu import CpuComplex
from repro.oskernel.errors import Errno, OsError
from repro.probes.tracepoints import ProbeRegistry
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.system import MemorySystem

# open(2) flag bits (values match Linux where it matters for tests).
O_RDONLY = 0o0
O_WRONLY = 0o1
O_RDWR = 0o2
O_CREAT = 0o100
O_TRUNC = 0o1000
O_APPEND = 0o2000

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


class Inode:
    _next_ino = 1

    def __init__(self):
        self.ino = Inode._next_ino
        Inode._next_ino += 1


class FileInode(Inode):
    """A regular file; ``backing`` selects tmpfs (None) or a disk."""

    def __init__(self, data: bytes = b"", backing: Optional[BlockDevice] = None):
        super().__init__()
        self.data = bytearray(data)
        self.backing = backing
        #: Pages currently in the page cache (disk-backed files only).
        self.cached_pages: set = set()

    @property
    def size(self) -> int:
        return len(self.data)


class DynamicFileInode(Inode):
    """A /proc- or /sys-style file.

    Contents are generated at read time by ``content_fn``; if a
    ``write_fn`` is given the file is also writable (a sysfs tunable —
    GENESYS exposes its coalescing parameters this way, Section VI).
    """

    def __init__(
        self,
        content_fn: Callable[[], bytes],
        write_fn: Optional[Callable[[bytes], None]] = None,
    ):
        super().__init__()
        self.content_fn = content_fn
        self.write_fn = write_fn

    def __getstate__(self):
        # The content/write functions are closures over kernel and
        # GENESYS objects; the restore path rebinds them via
        # ``FileSystem.bind_dynamic_file`` (see LinuxKernel
        # ``rebind_dynamic_files`` / Genesys ``_register_sysfs``).
        state = self.__dict__.copy()
        state["content_fn"] = None
        state["write_fn"] = None
        return state


class PipeInode(Inode):
    """An in-kernel pipe: FIFO bytes between a write end and a read end.

    Supports the paper's "pipes (including redirection of stdin, stdout
    and stderr)" claim: reads block until data or EOF (all write ends
    closed); writes wake blocked readers.
    """

    def __init__(self, sim: Simulator):
        super().__init__()
        self.sim = sim
        self._data = bytearray()
        self.readers = 1
        self.writers = 1
        self._read_waiters = []
        self.bytes_through = 0

    def write_bytes(self, data: bytes) -> int:
        if self.readers == 0:
            raise OsError(Errno.EPIPE, "pipe has no readers")
        self._data.extend(data)
        self.bytes_through += len(data)
        self._wake_readers()
        return len(data)

    def read_bytes_available(self) -> bool:
        return bool(self._data) or self.writers == 0

    def take(self, count: int) -> bytes:
        out = bytes(self._data[:count])
        del self._data[: len(out)]
        return out

    def wait_readable(self):
        """Return an event that fires when data or EOF is available."""
        event = self.sim.event(name="pipe-readable")
        if self.read_bytes_available():
            event.succeed()
        else:
            self._read_waiters.append(event)
        return event

    def close_end(self, writable: bool) -> None:
        if writable:
            self.writers = max(0, self.writers - 1)
            if self.writers == 0:
                self._wake_readers()
        else:
            self.readers = max(0, self.readers - 1)

    def _wake_readers(self) -> None:
        waiters, self._read_waiters = self._read_waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()


class DirInode(Inode):
    def __init__(self):
        super().__init__()
        self.entries: Dict[str, Inode] = {}


class DeviceInode(Inode):
    """A character-device node wrapping a device object.

    The device duck-type: generator methods ``read(count, offset)``,
    ``write(data, offset)``, ``ioctl(cmd, arg)``, and a plain ``mmap(
    length, offset)``; any of them may be absent.
    """

    def __init__(self, device):
        super().__init__()
        self.device = device


class OpenFile:
    """An open file description: inode + flags + shared file offset.

    The offset is the state that makes plain ``read``/``write`` unsafe
    at work-item granularity (Section IV's correctness discussion).
    """

    def __init__(self, inode: Inode, flags: int, path: str):
        self.inode = inode
        self.flags = flags
        self.path = path
        self.pos = 0

    @property
    def readable(self) -> bool:
        return (self.flags & 0o3) in (O_RDONLY, O_RDWR)

    @property
    def writable(self) -> bool:
        return (self.flags & 0o3) in (O_WRONLY, O_RDWR)


class FdTable:
    """Per-process file-descriptor table."""

    MAX_FDS = 1024

    def __init__(self):
        self._fds: Dict[int, OpenFile] = {}

    def install(self, open_file: OpenFile) -> int:
        for fd in range(self.MAX_FDS):
            if fd not in self._fds:
                self._fds[fd] = open_file
                return fd
        raise OsError(Errno.EMFILE, "fd table full")

    def lookup(self, fd: int) -> OpenFile:
        try:
            return self._fds[fd]
        except KeyError:
            raise OsError(Errno.EBADF, f"fd {fd}") from None

    def close(self, fd: int) -> None:
        if fd not in self._fds:
            raise OsError(Errno.EBADF, f"fd {fd}")
        del self._fds[fd]

    def open_fds(self):
        return sorted(self._fds)


class FileSystem:
    """The VFS tree plus the timed read/write paths."""

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        cpu: CpuComplex,
        memsystem: "MemorySystem",
        disk: Optional[BlockDevice] = None,
        probes: Optional[ProbeRegistry] = None,
    ):
        self.sim = sim
        self.config = config
        self.cpu = cpu
        self.memsystem = memsystem
        self.disk = disk
        self.root = DirInode()
        for sub in ("tmp", "dev", "proc", "sys", "data"):
            self.root.entries[sub] = DirInode()
        #: Global page-cache LRU over (inode, page) pairs; bounded by
        #: config.page_cache_pages (0 = unbounded).
        from collections import OrderedDict

        self._page_lru: "OrderedDict" = OrderedDict()
        self.page_cache_evictions = 0
        registry = probes if probes is not None else ProbeRegistry(sim)
        self.tp_pc_hit = registry.tracepoint(
            "fs.pagecache.hit", ("pages",), "pages of a read found resident"
        )
        self.tp_pc_miss = registry.tracepoint(
            "fs.pagecache.miss", ("pages",), "pages of a read faulted from disk"
        )
        self.tp_pc_evict = registry.tracepoint(
            "fs.pagecache.evict", ("ino", "page"), "a page was evicted from the cache"
        )
        self.hook_pc_victim = registry.hook(
            "fs.pagecache.victim",
            ("candidates",),
            "return an (inode, page) key to evict instead of the LRU head",
        )
        self.tp_pc_resident = registry.tracepoint(
            "fs.pagecache.resident",
            ("pages",),
            "gauge: resident page count after an insert/evict batch",
        )

    # -- page-cache accounting ------------------------------------------------

    def _cache_insert(self, inode: FileInode, pages) -> None:
        capacity = self.config.page_cache_pages
        for page in pages:
            inode.cached_pages.add(page)
            self._page_lru[(inode, page)] = True
        if capacity:
            while len(self._page_lru) > capacity:
                key = None
                if self.hook_pc_victim.active:
                    # Policy hook: a program may name any resident page;
                    # invalid answers fall back to the LRU head.
                    choice = self.hook_pc_victim.decide(None, tuple(self._page_lru))
                    if choice in self._page_lru:
                        key = choice
                if key is None:
                    key = next(iter(self._page_lru))
                del self._page_lru[key]
                victim_inode, victim_page = key
                victim_inode.cached_pages.discard(victim_page)
                self.page_cache_evictions += 1
                if self.tp_pc_evict.enabled:
                    self.tp_pc_evict.fire(victim_inode.ino, victim_page)
        if self.tp_pc_resident.enabled:
            self.tp_pc_resident.fire(len(self._page_lru))

    def _cache_touch(self, inode: FileInode, pages) -> None:
        for page in pages:
            key = (inode, page)
            if key in self._page_lru:
                self._page_lru.move_to_end(key)

    @property
    def page_cache_resident(self) -> int:
        return len(self._page_lru)

    # -- path operations (functional, host-side helpers) -------------------

    @staticmethod
    def _split(path: str):
        if not path.startswith("/"):
            raise OsError(Errno.EINVAL, f"path must be absolute: {path!r}")
        return [part for part in path.split("/") if part]

    def resolve(self, path: str) -> Inode:
        node: Inode = self.root
        for part in self._split(path):
            if not isinstance(node, DirInode):
                raise OsError(Errno.ENOTDIR, path)
            if part not in node.entries:
                raise OsError(Errno.ENOENT, path)
            node = node.entries[part]
        return node

    def _resolve_parent(self, path: str):
        parts = self._split(path)
        if not parts:
            raise OsError(Errno.EINVAL, "empty path")
        node: Inode = self.root
        for part in parts[:-1]:
            if not isinstance(node, DirInode):
                raise OsError(Errno.ENOTDIR, path)
            if part not in node.entries:
                raise OsError(Errno.ENOENT, path)
            node = node.entries[part]
        if not isinstance(node, DirInode):
            raise OsError(Errno.ENOTDIR, path)
        return node, parts[-1]

    def exists(self, path: str) -> bool:
        try:
            self.resolve(path)
            return True
        except OsError:
            return False

    def mkdir(self, path: str) -> DirInode:
        parent, name = self._resolve_parent(path)
        if name in parent.entries:
            raise OsError(Errno.EEXIST, path)
        node = DirInode()
        parent.entries[name] = node
        return node

    def create_file(
        self, path: str, data: bytes = b"", on_disk: bool = False
    ) -> FileInode:
        parent, name = self._resolve_parent(path)
        if name in parent.entries:
            raise OsError(Errno.EEXIST, path)
        if on_disk and self.disk is None:
            raise OsError(Errno.ENOSPC, "no block device attached")
        inode = FileInode(data, backing=self.disk if on_disk else None)
        parent.entries[name] = inode
        return inode

    def add_device(self, path: str, device) -> DeviceInode:
        parent, name = self._resolve_parent(path)
        if name in parent.entries:
            raise OsError(Errno.EEXIST, path)
        inode = DeviceInode(device)
        parent.entries[name] = inode
        return inode

    def add_dynamic_file(
        self,
        path: str,
        content_fn: Callable[[], bytes],
        write_fn: Optional[Callable[[bytes], None]] = None,
    ) -> DynamicFileInode:
        parent, name = self._resolve_parent(path)
        if name in parent.entries:
            raise OsError(Errno.EEXIST, path)
        inode = DynamicFileInode(content_fn, write_fn)
        parent.entries[name] = inode
        return inode

    def bind_dynamic_file(
        self,
        path: str,
        content_fn: Callable[[], bytes],
        write_fn: Optional[Callable[[bytes], None]] = None,
    ) -> DynamicFileInode:
        """Create-or-update form of :meth:`add_dynamic_file`.

        If ``path`` already names a dynamic file its functions are
        replaced *in place* (the inode — and any open fd pointing at
        it — is preserved).  Checkpoint restore uses this to rebind the
        content closures that ``__getstate__`` dropped.
        """
        parent, name = self._resolve_parent(path)
        existing = parent.entries.get(name)
        if existing is not None:
            if not isinstance(existing, DynamicFileInode):
                raise OsError(Errno.EEXIST, path)
            existing.content_fn = content_fn
            existing.write_fn = write_fn
            return existing
        inode = DynamicFileInode(content_fn, write_fn)
        parent.entries[name] = inode
        return inode

    def make_pipe(self) -> PipeInode:
        """Create an anonymous pipe inode (not linked into the tree)."""
        return PipeInode(self.sim)

    def unlink(self, path: str) -> None:
        parent, name = self._resolve_parent(path)
        if name not in parent.entries:
            raise OsError(Errno.ENOENT, path)
        node = parent.entries[name]
        if isinstance(node, DirInode) and node.entries:
            raise OsError(Errno.ENOTEMPTY, path)
        del parent.entries[name]

    def listdir(self, path: str):
        node = self.resolve(path)
        if not isinstance(node, DirInode):
            raise OsError(Errno.ENOTDIR, path)
        return sorted(node.entries)

    def read_whole(self, path: str) -> bytes:
        """Host-side functional read (no timing), for tests and setup."""
        inode = self.resolve(path)
        if isinstance(inode, FileInode):
            return bytes(inode.data)
        if isinstance(inode, DynamicFileInode):
            return inode.content_fn()
        raise OsError(Errno.EISDIR, path)

    # -- timed data paths ----------------------------------------------------

    def _memcpy(self, nbytes: int) -> Generator:
        """CPU copy cost between kernel and user buffers."""
        if nbytes <= 0:
            return
        yield from self.cpu.run(nbytes / self.config.cpu_copy_bw_bytes_per_ns)
        yield from self.memsystem.dram.cpu_access(nbytes)

    def _page_in(self, inode: FileInode, offset: int, count: int) -> Generator:
        """Fault missing pages of a disk-backed range into the page cache."""
        if inode.backing is None or count <= 0:
            return
        page = self.config.page_bytes
        first = offset // page
        last = (offset + count - 1) // page
        wanted = range(first, last + 1)
        missing = [p for p in wanted if p not in inode.cached_pages]
        self._cache_touch(inode, (p for p in wanted if p in inode.cached_pages))
        if self.tp_pc_hit.enabled or self.tp_pc_miss.enabled:
            hits = len(wanted) - len(missing)
            if hits and self.tp_pc_hit.enabled:
                self.tp_pc_hit.fire(hits)
            if missing and self.tp_pc_miss.enabled:
                self.tp_pc_miss.fire(len(missing))
        if not missing:
            return
        # Contiguous runs become single larger requests — what lets the
        # I/O scheduler merge and what deep queues exploit.
        run_start = missing[0]
        prev = missing[0]
        runs = []
        for p in missing[1:]:
            if p == prev + 1:
                prev = p
                continue
            runs.append((run_start, prev))
            run_start = prev = p
        runs.append((run_start, prev))
        for start, end in runs:
            yield from inode.backing.read((end - start + 1) * page)
        self._cache_insert(inode, missing)

    def read_timed(self, open_file: OpenFile, offset: int, count: int) -> Generator:
        """Process body: read ``count`` bytes at ``offset``; returns bytes."""
        inode = open_file.inode
        if isinstance(inode, DirInode):
            raise OsError(Errno.EISDIR, open_file.path)
        if isinstance(inode, DeviceInode):
            if not hasattr(inode.device, "read"):
                raise OsError(Errno.EINVAL, "device not readable")
            data = yield from inode.device.read(count, offset)
            return data
        if isinstance(inode, PipeInode):
            if not open_file.readable:
                raise OsError(Errno.EBADF, "write end of pipe")
            yield inode.wait_readable()
            data = inode.take(count)
            yield from self._memcpy(len(data))
            return data
        if isinstance(inode, DynamicFileInode):
            content = inode.content_fn()
            data = content[offset : offset + count]
            yield from self._memcpy(len(data))
            return data
        if offset >= len(inode.data):
            return b""
        count = min(count, len(inode.data) - offset)
        yield from self._page_in(inode, offset, count)
        yield from self._memcpy(count)
        return bytes(inode.data[offset : offset + count])

    def write_timed(self, open_file: OpenFile, offset: int, data: bytes) -> Generator:
        """Process body: write ``data`` at ``offset``; returns bytes written."""
        inode = open_file.inode
        if isinstance(inode, DirInode):
            raise OsError(Errno.EISDIR, open_file.path)
        if isinstance(inode, DeviceInode):
            if not hasattr(inode.device, "write"):
                raise OsError(Errno.EINVAL, "device not writable")
            written = yield from inode.device.write(data, offset)
            return written
        if isinstance(inode, PipeInode):
            if not open_file.writable:
                raise OsError(Errno.EBADF, "read end of pipe")
            yield from self._memcpy(len(data))
            return inode.write_bytes(data)
        if isinstance(inode, DynamicFileInode):
            if inode.write_fn is None:
                raise OsError(Errno.EACCES, "read-only file")
            yield from self._memcpy(len(data))
            inode.write_fn(bytes(data))
            return len(data)
        end = offset + len(data)
        if end > len(inode.data):
            inode.data.extend(b"\0" * (end - len(inode.data)))
        inode.data[offset:end] = data
        yield from self._memcpy(len(data))
        if inode.backing is not None:
            page = self.config.page_bytes
            pages = range(offset // page, (max(end - 1, offset)) // page + 1)
            self._cache_insert(inode, pages)
            # Write-back is asynchronous; charge the device in background.
            self.sim.process(inode.backing.write(len(data)), name="writeback")
        return len(data)
