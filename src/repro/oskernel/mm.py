"""Virtual-memory manager: VMAs, RSS, madvise, page faults, swap.

This substrate backs the paper's Section VIII-A memory-management case
study (miniAMR + Figure 11): ``mmap``/``munmap`` manage mappings,
touching pages faults them against a finite :class:`PhysicalMemory`,
``madvise(MADV_DONTNEED)`` returns pages to the OS (dropping RSS), and
memory pressure triggers LRU eviction to swap.  Touching swapped pages
pays a large swap-in latency; sustained swap storms are what cause the
GPU-driver timeout that kills the paper's no-madvise baseline.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Generator, List, Optional, Tuple

from repro.machine import MachineConfig
from repro.oskernel.cpu import CpuComplex
from repro.oskernel.errors import Errno, OsError
from repro.sim.engine import Simulator
from repro.sim.stats import TraceRecorder

MADV_DONTNEED = 4
MADV_WILLNEED = 3


class GpuTimeoutError(RuntimeError):
    """The GPU driver's watchdog killed the application.

    Raised when a kernel stalls on too many consecutive swap-in faults —
    the fate of the paper's miniAMR baseline without madvise.
    """


class PhysicalMemory:
    """Finite physical page pool with global LRU eviction to swap."""

    def __init__(self, sim: Simulator, config: MachineConfig, capacity_bytes: int):
        if capacity_bytes < config.page_bytes:
            raise ValueError("physical memory smaller than one page")
        self.sim = sim
        self.config = config
        self.capacity_pages = capacity_bytes // config.page_bytes
        #: LRU over resident pages: (address_space, vpage) -> True.
        self._lru: "OrderedDict[Tuple[AddressSpace, int], bool]" = OrderedDict()
        self.evictions = 0

    @property
    def used_pages(self) -> int:
        return len(self._lru)

    @property
    def free_pages(self) -> int:
        return self.capacity_pages - self.used_pages

    def note_use(self, aspace: "AddressSpace", vpage: int) -> None:
        key = (aspace, vpage)
        if key in self._lru:
            self._lru.move_to_end(key)

    def allocate(self, aspace: "AddressSpace", vpage: int) -> Optional[Tuple["AddressSpace", int]]:
        """Make ``vpage`` resident; returns an evicted (aspace, vpage) or None."""
        victim = None
        if self.used_pages >= self.capacity_pages:
            victim_key, _ = self._lru.popitem(last=False)
            victim_key[0]._evicted(victim_key[1])
            self.evictions += 1
            victim = victim_key
        self._lru[(aspace, vpage)] = True
        return victim

    def release(self, aspace: "AddressSpace", vpage: int) -> None:
        self._lru.pop((aspace, vpage), None)


class Vma:
    """One mapped region, in pages."""

    __slots__ = ("start", "npages")

    def __init__(self, start: int, npages: int):
        self.start = start
        self.npages = npages

    def contains_page(self, vpage: int) -> bool:
        return self.start <= vpage < self.start + self.npages


class AddressSpace:
    """A process's virtual address space."""

    _MMAP_BASE_PAGE = 0x7000_0

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        physmem: PhysicalMemory,
        cpu: CpuComplex,
        name: str = "",
    ):
        self.sim = sim
        self.config = config
        self.physmem = physmem
        self.cpu = cpu
        self.name = name
        self._vmas: Dict[int, Vma] = {}
        self._next_page = self._MMAP_BASE_PAGE
        self._resident: set = set()
        self._swapped: set = set()
        self.trace = TraceRecorder(sim)
        self.minor_faults = 0
        self.major_faults = 0
        self.peak_rss_pages = 0
        #: Consecutive major faults with no successful non-faulting touch
        #: in between; the GPU watchdog trips past config.gpu_timeout_faults.
        self.consecutive_major_faults = 0

    # -- accounting ----------------------------------------------------------

    @property
    def page_bytes(self) -> int:
        return self.config.page_bytes

    @property
    def rss_pages(self) -> int:
        return len(self._resident)

    @property
    def rss_bytes(self) -> int:
        return self.rss_pages * self.page_bytes

    @property
    def mapped_bytes(self) -> int:
        return sum(v.npages for v in self._vmas.values()) * self.page_bytes

    def _record(self) -> None:
        self.peak_rss_pages = max(self.peak_rss_pages, self.rss_pages)
        self.trace.record("rss_bytes", self.rss_bytes)

    def _evicted(self, vpage: int) -> None:
        """Callback from PhysicalMemory when this space loses a page."""
        self._resident.discard(vpage)
        self._swapped.add(vpage)
        self._record()

    def _vma_for(self, vpage: int) -> Vma:
        for vma in self._vmas.values():
            if vma.contains_page(vpage):
                return vma
        raise OsError(Errno.EFAULT, f"page 0x{vpage:x} not mapped")

    # -- mapping operations ----------------------------------------------------

    def mmap(self, length: int) -> int:
        """Map ``length`` bytes of anonymous memory; returns the address."""
        if length <= 0:
            raise OsError(Errno.EINVAL, f"mmap length {length}")
        npages = -(-length // self.page_bytes)
        start = self._next_page
        self._next_page += npages
        self._vmas[start] = Vma(start, npages)
        return start * self.page_bytes

    def munmap(self, addr: int, length: int) -> None:
        start, npages = self._range_pages(addr, length)
        vma = self._vmas.get(start)
        if vma is None or vma.npages != npages:
            raise OsError(Errno.EINVAL, "munmap must cover a whole mapping")
        for vpage in range(start, start + npages):
            self._drop_page(vpage)
        del self._vmas[start]
        self._record()

    def madvise(self, addr: int, length: int, advice: int) -> int:
        """MADV_DONTNEED releases the range's pages back to the OS."""
        start, npages = self._range_pages(addr, length)
        for vpage in range(start, start + npages):
            self._vma_for(vpage)
        if advice == MADV_DONTNEED:
            for vpage in range(start, start + npages):
                self._drop_page(vpage)
            self._record()
            return 0
        if advice == MADV_WILLNEED:
            return 0
        raise OsError(Errno.EINVAL, f"advice {advice}")

    def _drop_page(self, vpage: int) -> None:
        if vpage in self._resident:
            self._resident.discard(vpage)
            self.physmem.release(self, vpage)
        self._swapped.discard(vpage)

    def _range_pages(self, addr: int, length: int) -> Tuple[int, int]:
        if addr % self.page_bytes:
            raise OsError(Errno.EINVAL, f"address 0x{addr:x} not page aligned")
        if length <= 0:
            raise OsError(Errno.EINVAL, f"length {length}")
        return addr // self.page_bytes, -(-length // self.page_bytes)

    # -- the fault path ----------------------------------------------------

    def _touch_page(self, vpage: int) -> Tuple[float, float, int]:
        """Fault one page in; returns (cpu_ns, io_ns, major) and mutates
        residency.  Raises :class:`GpuTimeoutError` on a swap storm."""
        self._vma_for(vpage)
        if vpage in self._resident:
            self.physmem.note_use(self, vpage)
            self.consecutive_major_faults = 0
            return 0.0, 0.0, 0
        was_swapped = vpage in self._swapped
        cpu_ns = self.config.page_fault_ns
        io_ns = 0.0
        major = 0
        if was_swapped:
            self.major_faults += 1
            major = 1
            self.consecutive_major_faults += 1
            io_ns = self.config.swap_in_ns
            self._swapped.discard(vpage)
            if self.consecutive_major_faults > self.config.gpu_timeout_faults:
                raise GpuTimeoutError(
                    f"{self.name}: {self.consecutive_major_faults} consecutive "
                    "swap-in faults — GPU watchdog fired"
                )
        else:
            self.minor_faults += 1
            self.consecutive_major_faults = 0
        self.physmem.allocate(self, vpage)
        self._resident.add(vpage)
        return cpu_ns, io_ns, major

    def _pages_of(self, addr: int, length: int) -> range:
        return range(addr // self.page_bytes, (addr + length - 1) // self.page_bytes + 1)

    def touch(self, addr: int, length: int) -> Generator:
        """Process body: access [addr, addr+length), faulting as needed.

        Returns the number of major (swap-in) faults taken, so callers
        can implement watchdog behaviour.  Fault handling occupies a CPU
        core; swap-ins add I/O wait.
        """
        if length <= 0:
            return 0
        majors = 0
        for vpage in self._pages_of(addr, length):
            cpu_ns, io_ns, major = self._touch_page(vpage)
            majors += major
            if cpu_ns:
                yield from self.cpu.run(cpu_ns)
            if io_ns:
                yield io_ns
        self._record()
        return majors

    def fault_in_gpu(self, addr: int, length: int) -> Tuple[float, int]:
        """Functional fault path for GPU-originated accesses.

        GPU page faults are serviced by the IOMMU/driver without holding
        an application core in this model; the returned stall time is
        charged to the faulting wavefront by the caller (as a Sleep op).
        Returns (stall_ns, major_faults).
        """
        if length <= 0:
            return 0.0, 0
        stall = 0.0
        majors = 0
        for vpage in self._pages_of(addr, length):
            cpu_ns, io_ns, major = self._touch_page(vpage)
            stall += cpu_ns + io_ns
            majors += major
        self._record()
        return stall, majors

    def rss_series(self) -> List[Tuple[float, float]]:
        """The (time, rss_bytes) trace — Figure 11's y-axis."""
        return self.trace.series("rss_bytes")
