"""Block-device (SSD) model with internal parallelism.

The paper's Figure 14 shows the GPU wordcount extracting ~170 MB/s from
the SSD where the sequential CPU version managed ~30 MB/s: "the GPU's
ability to launch more concurrent I/O requests enabled the I/O scheduler
to make better scheduling decisions."  The model captures that directly:
the device has ``ssd_channels`` internal channels, each request pays a
fixed access latency and then streams at a per-channel share of the peak
bandwidth — so achieved throughput scales with queue depth, saturating
at the peak.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from repro.machine import MachineConfig
from repro.sim.engine import Simulator
from repro.sim.resources import Resource


class BlockDevice:
    def __init__(self, sim: Simulator, config: MachineConfig, name: str = "ssd"):
        self.sim = sim
        self.config = config
        self.name = name
        self.channels = Resource(sim, config.ssd_channels, name=f"{name}-channels")
        self._channel_rate = config.ssd_bw_bytes_per_ns / config.ssd_channels
        self.bytes_read = 0
        self.bytes_written = 0
        self.requests = 0
        self._samples: List[Tuple[float, int]] = []
        #: Peak queue depth observed — evidence for the I/O-scheduler claim.
        self.max_queue_depth = 0
        self._inflight = 0

    def _request(self, nbytes: int) -> Generator:
        if nbytes < 0:
            raise ValueError(f"negative I/O size: {nbytes}")
        self._inflight += 1
        self.max_queue_depth = max(self.max_queue_depth, self._inflight)
        yield self.channels.acquire()
        try:
            yield self.config.ssd_request_latency_ns + nbytes / self._channel_rate
            self.requests += 1
            self._samples.append((self.sim.now, nbytes))
        finally:
            self.channels.release()
            self._inflight -= 1

    def read(self, nbytes: int) -> Generator:
        """Process body: one read request of ``nbytes``."""
        yield from self._request(nbytes)
        self.bytes_read += nbytes

    def write(self, nbytes: int) -> Generator:
        """Process body: one write request of ``nbytes``."""
        yield from self._request(nbytes)
        self.bytes_written += nbytes

    def throughput_series(
        self, bin_ns: float, start: float = 0.0, end: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        """Binned achieved throughput in bytes/ns (Figure 14's disk trace)."""
        if end is None:
            end = self.sim.now
        if bin_ns <= 0:
            raise ValueError("bin_ns must be positive")
        nbins = max(1, int((end - start) / bin_ns) + 1)
        totals = [0.0] * nbins
        for when, nbytes in self._samples:
            if start <= when <= end:
                totals[int((when - start) / bin_ns)] += nbytes
        return [(start + i * bin_ns, totals[i] / bin_ns) for i in range(nbins)]

    def achieved_throughput(self, since: float = 0.0) -> float:
        """Average achieved bytes/ns since ``since``."""
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        moved = sum(n for t, n in self._samples if t >= since)
        return moved / elapsed
