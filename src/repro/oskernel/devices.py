"""Character devices: terminal and framebuffer.

The framebuffer backs the Section VIII-E device-control case study: the
GPU opens ``/dev/fb0``, issues ``ioctl`` FBIOGET/FBIOPUT calls to query
and set the video mode, ``mmap``s the pixel memory, and blits a raster
image into it (the paper's Figure 16).  The terminal backs grep's
"print matching files to the console" path.
"""

from __future__ import annotations

from typing import Generator, List, Tuple

import numpy as np

from repro.machine import MachineConfig
from repro.oskernel.errors import Errno, OsError
from repro.sim.engine import Simulator

# fbdev ioctl numbers (values match Linux's fb.h).
FBIOGET_VSCREENINFO = 0x4600
FBIOPUT_VSCREENINFO = 0x4601
FBIOGET_FSCREENINFO = 0x4602
FBIOPAN_DISPLAY = 0x4606


class TerminalDevice:
    """Console: written bytes accumulate into inspectable lines."""

    def __init__(self, sim: Simulator, config: MachineConfig):
        self.sim = sim
        self.config = config
        self._buffer = bytearray()
        self.lines: List[str] = []
        self.bytes_written = 0

    def write(self, data: bytes, offset: int) -> Generator:
        """Process body: write to the terminal (offset ignored, tty-like)."""
        # Terminal output is slow: ~1 ns/byte plus a syscall-ish fixed cost.
        yield 500.0 + len(data)
        self.bytes_written += len(data)
        self._buffer.extend(data)
        while b"\n" in self._buffer:
            line, _, rest = bytes(self._buffer).partition(b"\n")
            self.lines.append(line.decode("utf-8", errors="replace"))
            self._buffer = bytearray(rest)
        return len(data)

    def read(self, count: int, offset: int) -> Generator:
        raise OsError(Errno.EAGAIN, "no terminal input model")
        yield  # pragma: no cover

    @property
    def output(self) -> str:
        return "\n".join(self.lines)


class VarScreenInfo:
    """fb_var_screeninfo subset."""

    __slots__ = ("xres", "yres", "bits_per_pixel")

    def __init__(self, xres: int, yres: int, bits_per_pixel: int):
        self.xres = xres
        self.yres = yres
        self.bits_per_pixel = bits_per_pixel

    def copy(self) -> "VarScreenInfo":
        return VarScreenInfo(self.xres, self.yres, self.bits_per_pixel)


class FixScreenInfo:
    """fb_fix_screeninfo subset."""

    __slots__ = ("smem_len", "line_length")

    def __init__(self, smem_len: int, line_length: int):
        self.smem_len = smem_len
        self.line_length = line_length


class FramebufferDevice:
    """/dev/fb0 with ioctl mode control and mmap-able pixel memory."""

    SUPPORTED_MODES: Tuple[Tuple[int, int], ...] = (
        (64, 64),
        (160, 120),
        (320, 240),
        (640, 480),
        (800, 600),
        (1024, 768),
        (1920, 1080),
    )

    def __init__(self, sim: Simulator, config: MachineConfig, xres: int = 1024, yres: int = 768):
        self.sim = sim
        self.config = config
        self.var = VarScreenInfo(xres, yres, 32)
        self.pixels = np.zeros((yres, xres), dtype=np.uint32)
        self.ioctl_count = 0
        self.pan_count = 0

    @property
    def fix(self) -> FixScreenInfo:
        bytespp = self.var.bits_per_pixel // 8
        return FixScreenInfo(
            smem_len=self.var.xres * self.var.yres * bytespp,
            line_length=self.var.xres * bytespp,
        )

    def ioctl(self, cmd: int, arg) -> Generator:
        """Process body: device control; returns the result object/int."""
        yield 2_000.0  # driver round-trip
        self.ioctl_count += 1
        if cmd == FBIOGET_VSCREENINFO:
            return self.var.copy()
        if cmd == FBIOGET_FSCREENINFO:
            return self.fix
        if cmd == FBIOPUT_VSCREENINFO:
            if not isinstance(arg, VarScreenInfo):
                raise OsError(Errno.EINVAL, "expected VarScreenInfo")
            if (arg.xres, arg.yres) not in self.SUPPORTED_MODES:
                raise OsError(Errno.EINVAL, f"mode {arg.xres}x{arg.yres} unsupported")
            if arg.bits_per_pixel != 32:
                raise OsError(Errno.EINVAL, "only 32bpp supported")
            self.var = arg.copy()
            self.pixels = np.zeros((arg.yres, arg.xres), dtype=np.uint32)
            return 0
        if cmd == FBIOPAN_DISPLAY:
            self.pan_count += 1
            return 0
        raise OsError(Errno.ENOTTY, f"ioctl 0x{cmd:x}")

    def mmap(self, length: int, offset: int):
        """Map the pixel memory; returns the live numpy array."""
        if offset != 0:
            raise OsError(Errno.EINVAL, "framebuffer mmap offset must be 0")
        if length > self.fix.smem_len:
            raise OsError(Errno.EINVAL, "mapping larger than framebuffer")
        return self.pixels

    def write(self, data: bytes, offset: int) -> Generator:
        """Byte-wise writes land in pixel memory (fb supports write(2))."""
        yield len(data) / self.config.cpu_copy_bw_bytes_per_ns
        flat = self.pixels.reshape(-1).view(np.uint8)
        end = offset + len(data)
        if end > flat.size:
            raise OsError(Errno.ENOSPC, "write past end of framebuffer")
        flat[offset:end] = np.frombuffer(bytes(data), dtype=np.uint8)
        return len(data)
