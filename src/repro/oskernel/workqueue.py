"""Kernel workqueue: deferred task execution on OS worker threads.

Section VI: "The interrupt handler creates a new kernel task and adds it
to Linux's work-queue.  At an expedient future point in time an OS
worker thread executes this task."  Tasks here are process bodies
(generators); a fixed pool of worker loops drains the queue, paying a
dispatch delay per task and competing for CPU cores through whatever
:class:`~repro.oskernel.cpu.CpuComplex` charges the task body makes.

Worker selection is a policy-hook decision point (``wq.worker``): by
default every task goes to the shared FIFO and whichever worker is free
takes it, but an attached policy program may pin a task to a specific
worker's private queue (e.g. to serialise related scans on one thread,
or to emulate an affinity scheme).  When the hook is inactive the loop
is the plain shared-FIFO path, byte-identical to the unhooked design.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from repro.machine import MachineConfig
from repro.probes.tracepoints import ProbeRegistry
from repro.sim.engine import AnyOf, Event, Process, Simulator
from repro.sim.resources import Store


class WorkQueue:
    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        num_workers: int = 0,
        name: str = "kworker",
        probes: Optional[ProbeRegistry] = None,
    ):
        self.sim = sim
        self.config = config
        self.name = name
        self.num_workers = num_workers or config.workqueue_workers
        self._tasks = Store(sim, name=f"wq:{name}")
        self.submitted = 0
        self.completed = 0
        self._idle_event: Optional[Event] = None
        registry = probes if probes is not None else ProbeRegistry(sim)
        self.tp_enqueue = registry.tracepoint(
            "wq.enqueue", ("backlog",), "task submitted; backlog after enqueue"
        )
        self.tp_dequeue = registry.tracepoint(
            "wq.dequeue", ("worker_id",), "worker picked up a task"
        )
        self.tp_complete = registry.tracepoint(
            "wq.complete", ("worker_id", "service_ns"), "task finished on a worker"
        )
        self.hook_worker = registry.hook(
            "wq.worker",
            ("task_index", "num_workers"),
            "return a worker id to pin the task to, or None for the shared FIFO",
        )
        self._private: List[Store] = [
            Store(sim, name=f"wq:{name}/{i}") for i in range(self.num_workers)
        ]
        self._workers: List[Process] = [
            sim.process(self._worker_loop(i), name=f"{name}/{i}")
            for i in range(self.num_workers)
        ]

    @property
    def backlog(self) -> int:
        return len(self._tasks) + sum(len(s) for s in self._private)

    @property
    def outstanding(self) -> int:
        return self.submitted - self.completed

    def submit(self, task_factory: Callable[[], Generator]) -> None:
        """Enqueue a task; ``task_factory()`` is called on a worker thread."""
        index = self.submitted
        self.submitted += 1
        queue = self._tasks
        if self.hook_worker.active:
            choice = self.hook_worker.decide(None, index, self.num_workers)
            if isinstance(choice, int) and 0 <= choice < self.num_workers:
                queue = self._private[choice]
        queue.put(task_factory)
        if self.tp_enqueue.enabled:
            self.tp_enqueue.fire(self.backlog)

    def _worker_loop(self, worker_id: int) -> Generator:
        private = self._private[worker_id]
        shared = self._tasks
        while True:
            # Fast path — nothing pinned here and no policy attached:
            # identical to the plain shared-FIFO loop.
            if not len(private) and not self.hook_worker.active:
                task_factory = yield shared.get()
                yield from self._run_task(worker_id, task_factory)
                continue
            # Pinned-work path: drain the private queue first, else race
            # a get on both queues and withdraw the loser.
            if len(private):
                task_factory = yield private.get()
                yield from self._run_task(worker_id, task_factory)
                continue
            private_get = private.get()
            shared_get = shared.get()
            yield AnyOf([private_get, shared_get])
            ran = False
            for store, getter in ((private, private_get), (shared, shared_get)):
                if getter.triggered:
                    ran = True
                    yield from self._run_task(worker_id, getter.value)
                else:
                    store.cancel_get(getter)
            if not ran:  # pragma: no cover - AnyOf fired, one must hold
                raise RuntimeError("workqueue woke with no task")

    def _run_task(self, worker_id: int, task_factory: Callable[[], Generator]) -> Generator:
        observing = self.tp_dequeue.enabled or self.tp_complete.enabled
        if observing:
            picked_at = self.sim.now
            if self.tp_dequeue.enabled:
                self.tp_dequeue.fire(worker_id)
        yield self.config.workqueue_dispatch_ns
        yield from task_factory()
        self.completed += 1
        if observing and self.tp_complete.enabled:
            self.tp_complete.fire(worker_id, self.sim.now - picked_at)
        if self.submitted == self.completed and self._idle_event is not None:
            event, self._idle_event = self._idle_event, None
            event.succeed()

    def when_idle(self) -> Event:
        """An event that fires when no submitted task remains unfinished.

        Already-triggered if the queue is idle now; otherwise shared by
        all waiters and fired by the worker that completes the last task.
        """
        if self.outstanding == 0:
            event = self.sim.event(name=f"wq:{self.name}-idle")
            event.succeed()
            return event
        if self._idle_event is None:
            self._idle_event = self.sim.event(name=f"wq:{self.name}-idle")
        return self._idle_event

    def quiesce(self) -> Generator:
        """Process body: wait until no submitted task remains unfinished.

        Event-driven, but observation instants stay on the historical
        1 µs polling grid (anchored at the call) so simulated completion
        times are unchanged from the busy-wait implementation.
        """
        sim = self.sim
        next_tick = sim.now
        while self.outstanding > 0:
            yield self.when_idle()
            while next_tick < sim.now:
                next_tick += 1000.0
            if next_tick > sim.now:
                yield sim.wake_at(next_tick, name="quiesce-grid")
