"""Kernel workqueue: deferred task execution on OS worker threads.

Section VI: "The interrupt handler creates a new kernel task and adds it
to Linux's work-queue.  At an expedient future point in time an OS
worker thread executes this task."  Tasks here are process bodies
(generators); a fixed pool of worker loops drains the queue, paying a
dispatch delay per task and competing for CPU cores through whatever
:class:`~repro.oskernel.cpu.CpuComplex` charges the task body makes.

Worker selection is a policy-hook decision point (``wq.worker``): by
default every task goes to the shared FIFO and whichever worker is free
takes it, but an attached policy program may pin a task to a specific
worker's private queue (e.g. to serialise related scans on one thread,
or to emulate an affinity scheme).  When the hook is inactive the loop
is the plain shared-FIFO path, byte-identical to the unhooked design.

Workers can also *misbehave* — deliberately, through the ``fault.worker``
injection hook (stall for a while at pickup, or die outright) — and the
queue carries the recovery half: every submission is tracked as a
:class:`_TaskRecord`, and :meth:`check_stalled` (driven by the GENESYS
watchdog) requeues records that were picked up but never started and
respawns dead worker loops.  An epoch counter per record makes requeue
exactly-once: a stalled worker that wakes after its task was reassigned
observes the epoch bump and forfeits instead of running it a second
time.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from repro.machine import MachineConfig
from repro.probes.tracepoints import ProbeRegistry
from repro.sim.engine import AnyOf, Event, Process, Simulator
from repro.sim.resources import Store


class DrainTimeout(RuntimeError):
    """A bounded drain/quiesce expired with work still outstanding.

    ``stuck`` holds human-readable descriptions of what was still in
    flight when the deadline passed, so the exception is a diagnosis,
    not just a bang.
    """

    def __init__(self, message: str, stuck: Optional[List[str]] = None):
        self.stuck = list(stuck or [])
        if self.stuck:
            message = message + "\n  stuck: " + "\n  stuck: ".join(self.stuck)
        super().__init__(message)


class _TaskRecord:
    """One submitted task and its recovery bookkeeping."""

    __slots__ = (
        "index", "factory", "submitted_at", "picked_at", "worker",
        "started", "done", "epoch", "requeues",
    )

    def __init__(self, index: int, factory: Callable[[], Generator], now: float):
        self.index = index
        self.factory = factory
        self.submitted_at = now
        self.picked_at: Optional[float] = None
        self.worker: Optional[int] = None
        self.started = False
        self.done = False
        #: Bumped on every requeue; a pickup whose saved epoch no longer
        #: matches has been superseded and must forfeit.
        self.epoch = 0
        self.requeues = 0

    def __repr__(self) -> str:
        state = (
            "done" if self.done
            else "running" if self.started
            else f"picked@{self.picked_at:.0f}" if self.picked_at is not None
            else "queued"
        )
        return f"task#{self.index}({state}, worker={self.worker}, requeues={self.requeues})"


class WorkQueue:
    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        num_workers: int = 0,
        name: str = "kworker",
        probes: Optional[ProbeRegistry] = None,
    ):
        self.sim = sim
        self.config = config
        self.name = name
        self.num_workers = num_workers or config.workqueue_workers
        self._tasks = Store(sim, name=f"wq:{name}")
        self.submitted = 0
        self.completed = 0
        self.forfeits = 0
        self.tasks_requeued = 0
        self.workers_killed = 0
        self.workers_stalled = 0
        self.workers_respawned = 0
        self._idle_event: Optional[Event] = None
        self._inflight: dict = {}
        self._dead: set = set()
        registry = probes if probes is not None else ProbeRegistry(sim)
        self.probes = registry
        self.tp_enqueue = registry.tracepoint(
            "wq.enqueue",
            ("backlog", "task_index"),
            "task submitted; backlog after enqueue",
        )
        self.tp_dequeue = registry.tracepoint(
            "wq.dequeue", ("worker_id", "task_index"), "worker picked up a task"
        )
        self.tp_complete = registry.tracepoint(
            "wq.complete",
            ("worker_id", "service_ns", "task_index"),
            "task finished on a worker",
        )
        self.tp_depth = registry.tracepoint(
            "wq.depth",
            ("backlog",),
            "gauge: queue depth after an enqueue or a worker pickup",
        )
        self.tp_busy = registry.tracepoint(
            "wq.busy",
            ("busy", "workers"),
            "gauge: workers executing a task, out of the pool size",
        )
        self.tp_sojourn = registry.tracepoint(
            "wq.sojourn",
            ("sojourn_ns", "task_index"),
            "queue wait of a task, measured at worker pickup",
        )
        self._busy_workers = 0
        self.hook_worker = registry.hook(
            "wq.worker",
            ("task_index", "num_workers"),
            "return a worker id to pin the task to, or None for the shared FIFO",
        )
        self.hook_fault = registry.hook(
            "fault.worker",
            ("worker_id", "task_index"),
            "return ('stall', ns) to delay this pickup, 'kill' to terminate "
            "the worker loop, or None for normal execution",
        )
        self.tp_fault = registry.tracepoint(
            "fault.worker.injected",
            ("action", "worker_id", "task_index", "stall_ns"),
            "an injected worker fault was applied (stall or kill)",
        )
        self.tp_requeue = registry.tracepoint(
            "recover.requeue",
            ("task_index", "worker_id"),
            "watchdog requeued a picked-but-never-started task",
        )
        self.tp_respawn = registry.tracepoint(
            "recover.respawn",
            ("worker_id",),
            "watchdog respawned a dead worker loop",
        )
        self.tp_forfeit = registry.tracepoint(
            "recover.forfeit",
            ("task_index", "worker_id"),
            "a stalled worker woke to find its task reassigned and forfeited",
        )
        self._private: List[Store] = [
            Store(sim, name=f"wq:{name}/{i}") for i in range(self.num_workers)
        ]
        self._workers: List[Process] = [
            sim.process(self._worker_loop(i), name=f"{name}/{i}")
            for i in range(self.num_workers)
        ]

    # -- checkpoint/restore ------------------------------------------------

    def _parked_worker_ids(self) -> List[int]:
        """Worker ids parked on the shared queue, in FIFO wakeup order.

        The ``Store._getters`` deque decides which worker a ``put``
        wakes, and worker ids appear in tracepoint streams — so the
        checkpoint layer records this order and :meth:`respawn_parked`
        re-parks the loops in it, keeping a resumed run byte-identical.
        """
        ids: List[int] = []
        prefix = f"{self.name}/"
        for event in self._tasks._getters:
            worker_id = None
            for proc in event._waiters:
                if proc is not None and proc.name.startswith(prefix):
                    try:
                        worker_id = int(proc.name[len(prefix):])
                    except ValueError:
                        pass
                    break
            if worker_id is None:
                raise TypeError(
                    f"workqueue {self.name!r}: a pending get on the shared "
                    "queue is not a parked worker loop (policy race or "
                    "foreign getter) — cannot checkpoint this state"
                )
            ids.append(worker_id)
        return ids

    def __getstate__(self):
        state = self.__dict__.copy()
        # Worker loops are live generators; record their parked order
        # and let respawn_parked() rebuild them on restore.
        state["_workers"] = None
        state["_parked_order"] = self._parked_worker_ids()
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)

    def respawn_parked(self) -> None:
        """Restore-time fixup: re-park worker loops in recorded order."""
        order = self.__dict__.pop("_parked_order", None)
        if order is None:
            return
        sim = self.sim
        self._workers = [None] * self.num_workers  # type: ignore[list-item]
        # The pickled Simulator._active already counts the parked
        # workers; sim.process() would double-count them.
        sim._active -= len(order)
        for worker_id in order:
            self._workers[worker_id] = sim.process(
                self._worker_loop(worker_id), name=f"{self.name}/{worker_id}"
            )
        # Drain the spawn entries (all at the current instant): each
        # loop runs to its first shared.get() and parks, recreating the
        # saved _getters order with the clock unmoved.
        sim.run()

    @property
    def backlog(self) -> int:
        return len(self._tasks) + sum(len(s) for s in self._private)

    @property
    def outstanding(self) -> int:
        return self.submitted - self.completed

    def submit(self, task_factory: Callable[[], Generator]) -> None:
        """Enqueue a task; ``task_factory()`` is called on a worker thread."""
        index = self.submitted
        self.submitted += 1
        record = _TaskRecord(index, task_factory, self.sim.now)
        self._inflight[index] = record
        queue = self._tasks
        if self.hook_worker.active:
            choice = self.hook_worker.decide(None, index, self.num_workers)
            if isinstance(choice, int) and 0 <= choice < self.num_workers:
                queue = self._private[choice]
        queue.put(record)
        if self.tp_enqueue.enabled:
            self.tp_enqueue.fire(self.backlog, index)
        if self.tp_depth.enabled:
            self.tp_depth.fire(self.backlog)

    def _worker_loop(self, worker_id: int) -> Generator:
        private = self._private[worker_id]
        shared = self._tasks
        while True:
            # Fast path — nothing pinned here and no policy attached:
            # identical to the plain shared-FIFO loop.
            if not len(private) and not self.hook_worker.active:
                record = yield shared.get()
                alive = yield from self._run_task(worker_id, record)
                if not alive:
                    return
                continue
            # Pinned-work path: drain the private queue first, else race
            # a get on both queues and withdraw the loser.
            if len(private):
                record = yield private.get()
                alive = yield from self._run_task(worker_id, record)
                if not alive:
                    return
                continue
            private_get = private.get()
            shared_get = shared.get()
            yield AnyOf([private_get, shared_get])
            ran = False
            alive = True
            for store, getter in ((private, private_get), (shared, shared_get)):
                if getter.triggered:
                    ran = True
                    alive = yield from self._run_task(worker_id, getter.value)
                else:
                    store.cancel_get(getter)
            if not alive:
                return
            if not ran:  # pragma: no cover - AnyOf fired, one must hold
                raise RuntimeError("workqueue woke with no task")

    def _run_task(self, worker_id: int, record: _TaskRecord) -> Generator:
        """Run one picked-up task; returns False if the worker died."""
        record.picked_at = self.sim.now
        record.worker = worker_id
        epoch = record.epoch
        if self.tp_sojourn.enabled:
            self.tp_sojourn.fire(self.sim.now - record.submitted_at, record.index)
        observing = self.tp_dequeue.enabled or self.tp_complete.enabled
        if observing:
            picked_at = self.sim.now
            if self.tp_dequeue.enabled:
                self.tp_dequeue.fire(worker_id, record.index)
        if self.tp_depth.enabled:
            self.tp_depth.fire(self.backlog)
        self._busy_workers += 1
        if self.tp_busy.enabled:
            self.tp_busy.fire(self._busy_workers, self.num_workers)
        try:
            alive = yield from self._execute(worker_id, record, epoch, observing)
        finally:
            self._busy_workers -= 1
            if self.tp_busy.enabled:
                self.tp_busy.fire(self._busy_workers, self.num_workers)
        return alive

    def _execute(
        self, worker_id: int, record: _TaskRecord, epoch: int, observing: bool
    ) -> Generator:
        """The fault/forfeit/dispatch/body half of one task execution."""
        if observing:
            picked_at = record.picked_at
        if self.hook_fault.active:
            action = self.hook_fault.decide(None, worker_id, record.index)
            if action == "kill":
                # The worker dies holding an unstarted task; the GENESYS
                # watchdog requeues the record and respawns the loop.
                self.workers_killed += 1
                self._dead.add(worker_id)
                if self.tp_fault.enabled:
                    self.tp_fault.fire("kill", worker_id, record.index, 0.0)
                return False
            if isinstance(action, tuple) and action and action[0] == "stall":
                stall_ns = float(action[1])
                self.workers_stalled += 1
                if self.tp_fault.enabled:
                    self.tp_fault.fire("stall", worker_id, record.index, stall_ns)
                yield stall_ns
                if record.epoch != epoch:
                    # The watchdog gave up on us and reassigned the task.
                    self._forfeit(record, worker_id)
                    return True
        yield self.config.workqueue_dispatch_ns
        if record.epoch != epoch:
            self._forfeit(record, worker_id)
            return True
        record.started = True
        yield from record.factory()
        record.done = True
        self._inflight.pop(record.index, None)
        self.completed += 1
        if observing and self.tp_complete.enabled:
            self.tp_complete.fire(worker_id, self.sim.now - picked_at, record.index)
        if self.submitted == self.completed and self._idle_event is not None:
            event, self._idle_event = self._idle_event, None
            event.succeed()
        return True

    def _forfeit(self, record: _TaskRecord, worker_id: int) -> None:
        self.forfeits += 1
        if self.tp_forfeit.enabled:
            self.tp_forfeit.fire(record.index, worker_id)

    # -- watchdog services -------------------------------------------------

    def check_stalled(self, timeout_ns: float) -> int:
        """Recovery sweep: requeue tasks stuck at a worker, revive workers.

        A record counts as stuck when a worker picked it up at least
        ``timeout_ns`` ago and never started it (a started task is the
        task body's problem, not the queue's).  Requeueing bumps the
        record's epoch so the original pickup — if its worker is merely
        stalled rather than dead — forfeits instead of double-running.
        Dead worker loops are respawned under their old identity.
        Returns the number of requeued tasks.
        """
        now = self.sim.now
        requeued = 0
        if timeout_ns > 0:
            for record in list(self._inflight.values()):
                if (
                    record.picked_at is not None
                    and not record.started
                    and now - record.picked_at >= timeout_ns
                ):
                    stale_worker = record.worker
                    record.epoch += 1
                    record.requeues += 1
                    record.picked_at = None
                    record.worker = None
                    self.tasks_requeued += 1
                    requeued += 1
                    self._tasks.put(record)
                    if self.tp_requeue.enabled:
                        self.tp_requeue.fire(record.index, stale_worker)
        for worker_id in sorted(self._dead):
            self._dead.discard(worker_id)
            self._workers[worker_id] = self.sim.process(
                self._worker_loop(worker_id), name=f"{self.name}/{worker_id}"
            )
            self.workers_respawned += 1
            if self.tp_respawn.enabled:
                self.tp_respawn.fire(worker_id)
        return requeued

    def stuck_report(self) -> List[str]:
        """Descriptions of every unfinished task, for DrainTimeout."""
        return [repr(record) for record in self._inflight.values()]

    # -- idle waiting -------------------------------------------------------

    def when_idle(self) -> Event:
        """An event that fires when no submitted task remains unfinished.

        Already-triggered if the queue is idle now; otherwise shared by
        all waiters and fired by the worker that completes the last task.
        """
        if self.outstanding == 0:
            event = self.sim.event(name=f"wq:{self.name}-idle")
            event.succeed()
            return event
        if self._idle_event is None:
            self._idle_event = self.sim.event(name=f"wq:{self.name}-idle")
        return self._idle_event

    def quiesce(self, timeout: Optional[float] = None) -> Generator:
        """Process body: wait until no submitted task remains unfinished.

        Event-driven, but observation instants stay on the historical
        1 µs polling grid (anchored at the call) so simulated completion
        times are unchanged from the busy-wait implementation.

        With ``timeout`` (simulated ns) the wait is bounded: if tasks
        are still unfinished at the deadline a :class:`DrainTimeout` is
        raised naming them, instead of hanging the event loop forever.
        """
        sim = self.sim
        deadline = None if timeout is None else sim.now + timeout
        next_tick = sim.now
        while self.outstanding > 0:
            if deadline is None:
                yield self.when_idle()
            else:
                if sim.now >= deadline:
                    raise DrainTimeout(
                        f"workqueue {self.name!r}: {self.outstanding} task(s) "
                        f"unfinished after {timeout:.0f}ns "
                        f"(backlog={self.backlog})",
                        stuck=self.stuck_report(),
                    )
                yield AnyOf(
                    [self.when_idle(), sim.wake_at(deadline, name="quiesce-deadline")]
                )
            while next_tick < sim.now:
                next_tick += 1000.0
            if next_tick > sim.now:
                yield sim.wake_at(next_tick, name="quiesce-grid")
