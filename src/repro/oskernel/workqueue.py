"""Kernel workqueue: deferred task execution on OS worker threads.

Section VI: "The interrupt handler creates a new kernel task and adds it
to Linux's work-queue.  At an expedient future point in time an OS
worker thread executes this task."  Tasks here are process bodies
(generators); a fixed pool of worker loops drains the queue, paying a
dispatch delay per task and competing for CPU cores through whatever
:class:`~repro.oskernel.cpu.CpuComplex` charges the task body makes.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from repro.machine import MachineConfig
from repro.sim.engine import Event, Process, Simulator
from repro.sim.resources import Store


class WorkQueue:
    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        num_workers: int = 0,
        name: str = "kworker",
    ):
        self.sim = sim
        self.config = config
        self.name = name
        self.num_workers = num_workers or config.workqueue_workers
        self._tasks = Store(sim, name=f"wq:{name}")
        self.submitted = 0
        self.completed = 0
        self._idle_event: Optional[Event] = None
        self._workers: List[Process] = [
            sim.process(self._worker_loop(i), name=f"{name}/{i}")
            for i in range(self.num_workers)
        ]

    @property
    def backlog(self) -> int:
        return len(self._tasks)

    @property
    def outstanding(self) -> int:
        return self.submitted - self.completed

    def submit(self, task_factory: Callable[[], Generator]) -> None:
        """Enqueue a task; ``task_factory()`` is called on a worker thread."""
        self.submitted += 1
        self._tasks.put(task_factory)

    def _worker_loop(self, worker_id: int) -> Generator:
        while True:
            task_factory = yield self._tasks.get()
            yield self.config.workqueue_dispatch_ns
            yield from task_factory()
            self.completed += 1
            if self.submitted == self.completed and self._idle_event is not None:
                event, self._idle_event = self._idle_event, None
                event.succeed()

    def when_idle(self) -> Event:
        """An event that fires when no submitted task remains unfinished.

        Already-triggered if the queue is idle now; otherwise shared by
        all waiters and fired by the worker that completes the last task.
        """
        if self.outstanding == 0:
            event = self.sim.event(name=f"wq:{self.name}-idle")
            event.succeed()
            return event
        if self._idle_event is None:
            self._idle_event = self.sim.event(name=f"wq:{self.name}-idle")
        return self._idle_event

    def quiesce(self) -> Generator:
        """Process body: wait until no submitted task remains unfinished.

        Event-driven, but observation instants stay on the historical
        1 µs polling grid (anchored at the call) so simulated completion
        times are unchanged from the busy-wait implementation.
        """
        sim = self.sim
        next_tick = sim.now
        while self.outstanding > 0:
            yield self.when_idle()
            while next_tick < sim.now:
                next_tick += 1000.0
            if next_tick > sim.now:
                yield sim.wake_at(next_tick, name="quiesce-grid")
