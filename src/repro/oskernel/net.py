"""UDP networking: sockets, ports, a latency/bandwidth-modelled link.

Backs the memcached case study (Section VIII-D): the paper deliberately
avoids RDMA and uses plain ``sendto``/``recvfrom`` over UDP, so the model
is a host-local network of named endpoints connected by a NIC-like
channel (fixed one-way latency + serialised bandwidth).  Datagrams carry
real payload bytes.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Tuple

from repro.machine import MachineConfig
from repro.oskernel.errors import Errno, OsError
from repro.probes.tracepoints import ProbeRegistry
from repro.sim.engine import Simulator
from repro.sim.resources import BandwidthResource, Store

Address = Tuple[str, int]


class Datagram:
    __slots__ = ("payload", "source", "enqueued_ns")

    def __init__(self, payload: bytes, source: Address):
        self.payload = bytes(payload)
        self.source = source
        #: When the datagram entered its receive queue (set by
        #: ``Network._deliver``); sojourn time = dequeue - enqueue.
        self.enqueued_ns = 0.0


class UdpSocket:
    """One UDP endpoint; datagrams queue in arrival order."""

    _next_id = 0

    def __init__(self, net: "Network", host: str):
        self.net = net
        self.host = host
        self.sock_id = UdpSocket._next_id
        UdpSocket._next_id += 1
        self.port: Optional[int] = None
        self.queue = Store(net.sim, name=f"udp{self.sock_id}")
        self.closed = False
        self.rx_packets = 0
        self.tx_packets = 0
        #: Receive-queue bound in datagrams (``None`` = unbounded, the
        #: historical behaviour).  When the backlog is full, arriving
        #: datagrams are dropped and counted instead of queueing without
        #: limit — the open-loop overload regime made observable.
        self.rx_capacity: Optional[int] = None
        #: Datagrams dropped at this socket because the backlog was full.
        self.rx_dropped = 0

    def bind(self, port: int) -> None:
        self.net.bind(self, port)

    def __repr__(self) -> str:
        return f"UdpSocket({self.host}:{self.port})"


class Network:
    """All endpoints plus the shared link model."""

    EPHEMERAL_BASE = 32768

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        probes: Optional[ProbeRegistry] = None,
    ):
        self.sim = sim
        self.config = config
        self._bound: Dict[Address, UdpSocket] = {}
        self._next_ephemeral = self.EPHEMERAL_BASE
        self.link = BandwidthResource(
            sim,
            rate_bytes_per_ns=config.nic_bw_bytes_per_ns,
            fixed_latency=0.0,
            name="nic",
        )
        self.packets_sent = 0
        self.packets_dropped = 0
        #: Datagrams dropped because a socket's bounded receive queue
        #: (``UdpSocket.rx_capacity``) was full, across all sockets.
        self.rx_queue_drops = 0
        #: Deepest receive backlog observed on any socket (datagrams).
        self.rx_backlog_peak = 0
        self._tx_counter = 0
        registry = probes if probes is not None else ProbeRegistry(sim)
        self.tp_tx = registry.tracepoint(
            "net.tx", ("nbytes",), "datagram transmitted onto the link"
        )
        self.tp_rx = registry.tracepoint(
            "net.rx", ("nbytes",), "datagram received from a socket queue"
        )
        self.tp_drop = registry.tracepoint(
            "net.drop",
            ("reason", "sock_id"),
            "datagram dropped (loss model, unbound dest, or full backlog); "
            "sock_id is the destination socket, or None before one resolved",
        )
        self.tp_backlog = registry.tracepoint(
            "net.backlog",
            ("depth", "sock_id"),
            "receive-queue depth after a datagram was enqueued (0 = handed "
            "straight to a blocked receiver)",
        )
        self.tp_fault = registry.tracepoint(
            "fault.net.injected",
            ("action", "nbytes", "delay_ns"),
            "an injected datagram fault was applied (drop, dup, or delay)",
        )
        self.hook_fault = registry.hook(
            "fault.net",
            ("dest", "nbytes"),
            "return 'drop' to lose the datagram, 'dup' to deliver it twice, "
            "('delay', ns) to defer delivery, or None for normal transit",
        )
        self.faults_injected = 0
        # -- QoS admission and sojourn policing (repro.qos).  Only
        # sockets with a bounded backlog (rx_capacity set) are policed,
        # which naturally exempts client reply sockets and the
        # unbounded shutdown path.
        self.tp_sojourn = registry.tracepoint(
            "net.sojourn",
            ("sojourn_ns", "sock_id"),
            "receive-queue wait of a datagram, measured at dequeue",
        )
        self.hook_admit = registry.hook(
            "net.admit",
            ("sock_id", "depth", "nbytes"),
            "return 'drop' to police away an arriving datagram, "
            "('reject', errno) to also synthesise a fast-fail reply to the "
            "sender, or None to admit",
        )
        #: Max receive-queue sojourn (ns) before a datagram is
        #: head-dropped at dequeue with a fast-fail reply; 0 disables
        #: (knob: /sys/genesys/qos/admission).
        self.sojourn_budget_ns = 0.0
        #: Datagrams dropped by an admission policy verdict.
        self.policy_drops = 0
        #: Datagrams head-dropped at dequeue past the sojourn budget.
        self.expired_drops = 0
        #: Fast-fail reply frames synthesised for policed datagrams.
        self.policy_rejects = 0

    def socket(self, host: str = "localhost") -> UdpSocket:
        return UdpSocket(self, host)

    def stats(self) -> Dict[str, Any]:
        """Link and backlog counters (see also ``Genesys.stats()['net']``)."""
        return {
            "packets_sent": self.packets_sent,
            "packets_dropped": self.packets_dropped,
            "rx_queue_drops": self.rx_queue_drops,
            "rx_backlog_peak": self.rx_backlog_peak,
            "drops": {
                "capacity": self.rx_queue_drops,
                "policy": self.policy_drops,
                "expired": self.expired_drops,
            },
            "policy_rejects": self.policy_rejects,
        }

    def bind(self, sock: UdpSocket, port: int) -> None:
        if sock.closed:
            raise OsError(Errno.EBADF, "socket closed")
        addr = (sock.host, port)
        if addr in self._bound:
            raise OsError(Errno.EADDRINUSE, f"{addr}")
        if sock.port is not None:
            del self._bound[(sock.host, sock.port)]
        self._bound[addr] = sock
        sock.port = port

    def _ensure_bound(self, sock: UdpSocket) -> None:
        if sock.port is None:
            while (sock.host, self._next_ephemeral) in self._bound:
                self._next_ephemeral += 1
            self.bind(sock, self._next_ephemeral)
            self._next_ephemeral += 1

    def close(self, sock: UdpSocket) -> None:
        sock.closed = True
        if sock.port is not None:
            self._bound.pop((sock.host, sock.port), None)

    # -- timed data path ----------------------------------------------------

    def sendto(self, sock: UdpSocket, payload: bytes, dest: Address) -> Generator:
        """Process body: transmit one datagram; returns bytes sent."""
        if sock.closed:
            raise OsError(Errno.EBADF, "socket closed")
        self._ensure_bound(sock)
        yield from self.link.transfer(len(payload))
        yield self.config.nic_latency_ns
        self.packets_sent += 1
        sock.tx_packets += 1
        self._tx_counter += 1
        if self.tp_tx.enabled:
            self.tp_tx.fire(len(payload))
        if (
            self.config.nic_drop_every
            and self._tx_counter % self.config.nic_drop_every == 0
        ):
            # Deterministic loss model: UDP is lossy by contract.
            self.packets_dropped += 1
            if self.tp_drop.enabled:
                self.tp_drop.fire("loss-model", None)
            return len(payload)
        target = self._bound.get(dest)
        if target is None or target.closed:
            # UDP: silently dropped (no ICMP model).
            self.packets_dropped += 1
            if self.tp_drop.enabled:
                self.tp_drop.fire("unbound-dest", None)
            return len(payload)
        datagram = Datagram(payload, (sock.host, sock.port))
        if self.hook_fault.active:
            action = self.hook_fault.decide(None, dest, len(payload))
            if action == "drop":
                self.faults_injected += 1
                self.packets_dropped += 1
                if self.tp_fault.enabled:
                    self.tp_fault.fire("drop", len(payload), 0.0)
                return len(payload)
            if action == "dup":
                self.faults_injected += 1
                if self.tp_fault.enabled:
                    self.tp_fault.fire("dup", len(payload), 0.0)
                # The duplicate copy was never counted in packets_sent,
                # so losing it must not bump the link-level drop counter
                # (it still counts in the per-socket/per-reason stats).
                self._deliver(
                    target, Datagram(payload, (sock.host, sock.port)), primary=False
                )
            elif isinstance(action, tuple) and action and action[0] == "delay":
                delay_ns = float(action[1])
                self.faults_injected += 1
                if self.tp_fault.enabled:
                    self.tp_fault.fire("delay", len(payload), delay_ns)
                self.sim.process(
                    self._deliver_later(target, datagram, delay_ns),
                    name="net-delayed",
                )
                return len(payload)
        self._deliver(target, datagram)
        return len(payload)

    def _deliver(
        self,
        target: UdpSocket,
        datagram: Datagram,
        primary: bool = True,
        policed: bool = True,
    ) -> bool:
        """Enqueue ``datagram`` at ``target``, honouring the backlog bound.

        Returns False when the datagram was dropped — by a full bounded
        receive queue, or by an admission-policy verdict (``net.admit``,
        consulted only for policed deliveries to bounded sockets).
        ``primary`` is False for copies that were never counted in
        ``packets_sent`` (fault-injected duplicates, synthesised reject
        frames), so losing them does not inflate the link drop counter.
        """
        if (
            policed
            and target.rx_capacity is not None
            and self.hook_admit.active
        ):
            verdict = self.hook_admit.decide(
                None, target.sock_id, len(target.queue), len(datagram.payload)
            )
            if verdict is not None:
                target.rx_dropped += 1
                self.policy_drops += 1
                if primary:
                    self.packets_dropped += 1
                if self.tp_drop.enabled:
                    self.tp_drop.fire("policy", target.sock_id)
                if isinstance(verdict, tuple) and verdict and verdict[0] == "reject":
                    self._reject(target, datagram, int(verdict[1]))
                return False
        if (
            target.rx_capacity is not None
            and len(target.queue) >= target.rx_capacity
        ):
            target.rx_dropped += 1
            self.rx_queue_drops += 1
            if primary:
                self.packets_dropped += 1
            if self.tp_drop.enabled:
                self.tp_drop.fire("backlog", target.sock_id)
            return False
        target.rx_packets += 1
        datagram.enqueued_ns = self.sim.now
        target.queue.put(datagram)
        depth = len(target.queue)
        if depth > self.rx_backlog_peak:
            self.rx_backlog_peak = depth
        if self.tp_backlog.enabled:
            self.tp_backlog.fire(depth, target.sock_id)
        return True

    def _deliver_later(
        self, target: UdpSocket, datagram: Datagram, delay_ns: float
    ) -> Generator:
        yield delay_ns
        if not target.closed:
            self._deliver(target, datagram)

    def _reject(self, target: UdpSocket, datagram: Datagram, errno: int) -> None:
        """Synthesise a fast-fail reply frame for a policed datagram.

        Where a reply socket exists (the source address is still bound),
        the sender gets ``b"E" + reqid + errno`` instead of silence — a
        serving client classifies that as *rejected*, not lost.  The
        frame is a kernel-level synthesis: it bypasses the link model
        and the admission gate (it must not recurse into policing).
        """
        source = self._bound.get(datagram.source)
        if source is None or source.closed:
            return
        payload = datagram.payload
        reqid = payload[1:9] if len(payload) >= 9 else bytes(8)
        frame = Datagram(
            b"E" + reqid + bytes([errno & 0xFF]),
            (target.host, target.port if target.port is not None else 0),
        )
        if self._deliver(source, frame, primary=False, policed=False):
            self.policy_rejects += 1

    def recvfrom(self, sock: UdpSocket, bufsize: int) -> Generator:
        """Process body: blocking receive; returns (payload, source).

        CoDel-style sojourn policing: with a ``sojourn_budget_ns`` set,
        datagrams that waited in a *bounded* receive queue longer than
        the budget are head-dropped here — servicing them would be
        wasted work, the sender's own deadline having long passed — and
        the sender gets a fast-fail reject (ETIME) where possible.
        """
        if sock.closed:
            raise OsError(Errno.EBADF, "socket closed")
        self._ensure_bound(sock)
        while True:
            datagram = yield sock.queue.get()
            if self.tp_sojourn.enabled:
                self.tp_sojourn.fire(
                    self.sim.now - datagram.enqueued_ns, sock.sock_id
                )
            if (
                sock.rx_capacity is not None
                and self.sojourn_budget_ns > 0
                and self.sim.now - datagram.enqueued_ns > self.sojourn_budget_ns
            ):
                sock.rx_dropped += 1
                self.expired_drops += 1
                if self.tp_drop.enabled:
                    self.tp_drop.fire("expired", sock.sock_id)
                self._reject(sock, datagram, int(Errno.ETIME))
                continue
            if self.tp_rx.enabled:
                self.tp_rx.fire(len(datagram.payload))
            payload = datagram.payload[:bufsize]
            return payload, datagram.source
