"""Process abstraction: the context system calls execute against.

The paper's key OS observation (Sections IV and VI) is that GPU threads
have *no* kernel representation — syscalls raised from the GPU are
serviced by OS worker threads that must adopt the context of the CPU
process that launched the kernel.  :class:`OsProcess` is that context:
fd table, address space, signal queue, and resource usage.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.oskernel.fs import FdTable
from repro.oskernel.signals import SignalQueue
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.oskernel.mm import AddressSpace


class Rusage:
    """The getrusage(2) fields the workloads consume."""

    __slots__ = ("ru_maxrss_kb", "ru_minflt", "ru_majflt", "ru_utime_ns", "ru_stime_ns")

    def __init__(self):
        self.ru_maxrss_kb = 0
        self.ru_minflt = 0
        self.ru_majflt = 0
        self.ru_utime_ns = 0.0
        self.ru_stime_ns = 0.0

    def as_dict(self) -> dict:
        return {
            "ru_maxrss": self.ru_maxrss_kb,
            "ru_minflt": self.ru_minflt,
            "ru_majflt": self.ru_majflt,
            "ru_utime_ns": self.ru_utime_ns,
            "ru_stime_ns": self.ru_stime_ns,
        }


class OsProcess:
    _next_pid = 100

    def __init__(
        self,
        sim: Simulator,
        name: str,
        address_space: Optional["AddressSpace"] = None,
    ):
        self.sim = sim
        self.name = name
        self.pid = OsProcess._next_pid
        OsProcess._next_pid += 1
        self.fds = FdTable()
        self.address_space = address_space
        self.signals = SignalQueue(sim, self.pid)
        self.rusage = Rusage()
        self.alive = True

    def snapshot_rusage(self) -> Rusage:
        """Refresh and return resource usage (the getrusage service)."""
        usage = self.rusage
        if self.address_space is not None:
            aspace = self.address_space
            usage.ru_maxrss_kb = max(
                usage.ru_maxrss_kb, aspace.peak_rss_pages * aspace.page_bytes // 1024
            )
            usage.ru_minflt = aspace.minor_faults
            usage.ru_majflt = aspace.major_faults
        return usage

    @property
    def current_rss_bytes(self) -> int:
        """Current resident set size (what the miniAMR watermark reads)."""
        if self.address_space is None:
            return 0
        return self.address_space.rss_bytes

    def __repr__(self) -> str:
        return f"OsProcess(pid={self.pid}, {self.name!r})"
