"""Interrupt controller: GPU-to-CPU interrupt delivery.

GENESYS's step 2 (Figure 2): the GPU raises an interrupt carrying the
issuing wavefront's hardware ID.  Each interrupt runs a short handler on
a CPU core (top half); the registered callback then decides what to do —
for GENESYS, start or extend a coalescing bundle and eventually enqueue
a workqueue task (bottom half).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.machine import MachineConfig
from repro.oskernel.cpu import CpuComplex
from repro.sim.engine import Simulator


class InterruptController:
    def __init__(self, sim: Simulator, config: MachineConfig, cpu: CpuComplex):
        self.sim = sim
        self.config = config
        self.cpu = cpu
        self.raised = 0
        self._handler: Optional[Callable[[Any], None]] = None

    def register_handler(self, handler: Callable[[Any], None]) -> None:
        """Install the bottom-half callback (runs functionally after the
        timed top half)."""
        self._handler = handler

    def raise_irq(self, payload: Any) -> None:
        """Raise one interrupt (called from Do-ops at GPU time)."""
        if self._handler is None:
            raise RuntimeError("no interrupt handler registered")
        self.raised += 1
        self.sim.process(self._top_half(payload), name="irq")

    def _top_half(self, payload: Any) -> Generator:
        yield from self.cpu.run(self.config.interrupt_handler_ns)
        self._handler(payload)
