"""Interrupt controller: GPU-to-CPU interrupt delivery.

GENESYS's step 2 (Figure 2): the GPU raises an interrupt carrying the
issuing wavefront's hardware ID.  Each interrupt runs a short handler on
a CPU core (top half); the registered callback then decides what to do —
for GENESYS, start or extend a coalescing bundle and eventually enqueue
a workqueue task (bottom half).

An interrupt with no registered handler is *dropped*, not an exception:
``raise_irq`` is called from Do-ops at GPU time, where a Python
exception would tear down the wavefront executor mid-step.  Drops are
counted (``unhandled``) and visible through the ``irq.unhandled``
tracepoint, mirroring Linux's "irq X: nobody cared" accounting.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.machine import MachineConfig
from repro.oskernel.cpu import CpuComplex
from repro.probes.tracepoints import ProbeRegistry
from repro.sim.engine import Simulator


class InterruptController:
    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        cpu: CpuComplex,
        probes: Optional[ProbeRegistry] = None,
    ):
        self.sim = sim
        self.config = config
        self.cpu = cpu
        self.raised = 0
        self.serviced = 0
        self.unhandled = 0
        self.faults_dropped = 0
        self.faults_delayed = 0
        self._handler: Optional[Callable[[Any], None]] = None
        registry = probes if probes is not None else ProbeRegistry(sim)
        self.tp_raised = registry.tracepoint(
            "irq.raised", ("payload",), "interrupt raised by the GPU"
        )
        self.tp_serviced = registry.tracepoint(
            "irq.serviced", ("payload",), "top half ran; bottom half invoked"
        )
        self.tp_unhandled = registry.tracepoint(
            "irq.unhandled", ("payload",), "interrupt dropped: no handler registered"
        )
        self.tp_fault = registry.tracepoint(
            "fault.irq.injected",
            ("action", "payload", "delay_ns"),
            "an injected interrupt fault was applied (drop or delay)",
        )
        self.hook_fault = registry.hook(
            "fault.irq",
            ("payload",),
            "return 'drop' to lose this interrupt, ('delay', ns) to defer "
            "its top half, or None for normal delivery",
        )
        self.hook_mode = registry.hook(
            "irq.mode",
            ("payload",),
            "return 'poll' to suppress the top half (the brownout "
            "controller's polling-scan tick services the request instead), "
            "or None for interrupt-driven delivery",
        )
        self.tp_polled = registry.tracepoint(
            "irq.polled",
            ("payload",),
            "top half suppressed: servicing deferred to polling mode",
        )
        #: Interrupts absorbed by polling mode (irq.mode verdicts).
        self.polled = 0

    def register_handler(self, handler: Callable[[Any], None]) -> None:
        """Install the bottom-half callback (runs functionally after the
        timed top half)."""
        self._handler = handler

    def raise_irq(self, payload: Any) -> bool:
        """Raise one interrupt (called from Do-ops at GPU time).

        Returns True if a handler will service it, False if it was
        dropped for want of a handler.
        """
        self.raised += 1
        if self.tp_raised.enabled:
            self.tp_raised.fire(payload)
        if self._handler is None:
            self.unhandled += 1
            if self.tp_unhandled.enabled:
                self.tp_unhandled.fire(payload)
            return False
        if self.hook_fault.active:
            action = self.hook_fault.decide(None, payload)
            if action == "drop":
                # The s_sendmsg was lost in flight: no top half ever
                # runs.  Recovery is the GENESYS watchdog's job.
                self.faults_dropped += 1
                if self.tp_fault.enabled:
                    self.tp_fault.fire("drop", payload, 0.0)
                return True
            if isinstance(action, tuple) and action and action[0] == "delay":
                delay_ns = float(action[1])
                self.faults_delayed += 1
                if self.tp_fault.enabled:
                    self.tp_fault.fire("delay", payload, delay_ns)
                self.sim.process(
                    self._delayed_top_half(payload, delay_ns), name="irq-delayed"
                )
                return True
        if self.hook_mode.active and self.hook_mode.decide(None, payload) == "poll":
            # Brownout polling mode: no handler cost is paid now; the
            # controller's periodic poll_scan picks the request up.
            self.polled += 1
            if self.tp_polled.enabled:
                self.tp_polled.fire(payload)
            return True
        self.sim.process(self._top_half(payload), name="irq")
        return True

    def _delayed_top_half(self, payload: Any, delay_ns: float) -> Generator:
        yield delay_ns
        yield from self._top_half(payload)

    def _top_half(self, payload: Any) -> Generator:
        yield from self.cpu.run(self.config.interrupt_handler_ns)
        self.serviced += 1
        if self.tp_serviced.enabled:
            self.tp_serviced.fire(payload)
        self._handler(payload)
