"""The Linux-like OS substrate GENESYS services system calls against.

Everything a serviced syscall needs exists here functionally *and* with
a timing model: a tmpfs/disk VFS with page cache, an SSD block device
with internal parallelism, a virtual-memory manager with madvise and
swap, UDP sockets, POSIX real-time signal queues, a framebuffer char
device, kernel workqueues with worker threads, and an interrupt
controller.  :class:`repro.oskernel.linux.LinuxKernel` ties them
together behind a syscall dispatch table.
"""

from repro.oskernel.errors import Errno, OsError
from repro.oskernel.linux import LinuxKernel
from repro.oskernel.process import OsProcess

__all__ = ["Errno", "LinuxKernel", "OsError", "OsProcess"]
