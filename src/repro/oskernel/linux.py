"""The Linux-like kernel facade: syscall dispatch over the substrates.

Every system call GENESYS implements in the paper is a generator method
here: filesystem (open/close/read/write/pread/pwrite/lseek), networking
(socket/bind/sendto/recvfrom), memory management (mmap/munmap/madvise),
resource query (getrusage), signals (rt_sigqueueinfo), and device
control (ioctl).  Implementations are functional (bytes actually move)
and charge their own substrate costs; callers add the fixed
syscall-entry cost.

Two entry points:

* :meth:`call` — the CPU path: a process body that charges the syscall
  base cost on a core and raises :class:`OsError` on failure (used by
  the CPU baseline workloads).
* :meth:`execute` — the GENESYS worker path: no base-cost charge (the
  worker charges it per the coalescing model) and OsError is converted
  to the conventional negative errno return value.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from repro.machine import MachineConfig
from repro.memory.buffers import Buffer
from repro.memory.system import MemorySystem
from repro.oskernel.blockdev import BlockDevice
from repro.oskernel.cpu import CpuComplex
from repro.oskernel.devices import FramebufferDevice, TerminalDevice
from repro.oskernel.errors import Errno, OsError
from repro.oskernel.fs import (
    DeviceInode,
    DirInode,
    DynamicFileInode,
    FileInode,
    FileSystem,
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_TRUNC,
    O_WRONLY,
    OpenFile,
    PipeInode,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
)
from repro.oskernel.interrupts import InterruptController
from repro.oskernel.mm import AddressSpace, PhysicalMemory
from repro.oskernel.net import Network, UdpSocket
from repro.oskernel.process import OsProcess
from repro.oskernel.signals import SigInfo
from repro.oskernel.workqueue import WorkQueue
from repro.probes.tracepoints import ProbeRegistry
from repro.sim.engine import Simulator


# st_mode file-type bits (values match Linux's stat.h).
S_IFREG = 0o100000
S_IFDIR = 0o040000
S_IFCHR = 0o020000
S_IFIFO = 0o010000


class Stat:
    """The stat(2) fields the workloads and tests consume."""

    __slots__ = ("st_ino", "st_mode", "st_size")

    def __init__(self, st_ino: int, st_mode: int, st_size: int):
        self.st_ino = st_ino
        self.st_mode = st_mode
        self.st_size = st_size

    @property
    def is_regular(self) -> bool:
        return bool(self.st_mode & S_IFREG)

    @property
    def is_dir(self) -> bool:
        return bool(self.st_mode & S_IFDIR)


class Uname:
    """The uname(2) fields."""

    __slots__ = ("sysname", "release", "machine")

    def __init__(self):
        self.sysname = "Linux"
        self.release = "4.11.0-genesys"
        self.machine = "x86_64+gcn3"


class DeviceMapping:
    """Result of mmap-ing a device: address plus the live backing object."""

    __slots__ = ("addr", "array")

    def __init__(self, addr: int, array):
        self.addr = addr
        self.array = array


class FileMapping:
    """Result of mmap-ing a regular file (MAP_SHARED semantics).

    ``view()`` exposes the live file bytes: reads see the file, writes
    through the mapping change the file.  Page faults on first touch are
    charged through the owning address space like any other mapping.
    """

    __slots__ = ("addr", "inode", "offset", "length")

    def __init__(self, addr: int, inode: FileInode, offset: int, length: int):
        self.addr = addr
        self.inode = inode
        self.offset = offset
        self.length = length

    def view(self) -> memoryview:
        end = self.offset + self.length
        if end > len(self.inode.data):
            self.inode.data.extend(b"\0" * (end - len(self.inode.data)))
        return memoryview(self.inode.data)[self.offset : end]


class LinuxKernel:
    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        memsystem: MemorySystem,
        cpu: Optional[CpuComplex] = None,
        with_disk: bool = True,
        probes: Optional[ProbeRegistry] = None,
    ):
        self.sim = sim
        self.config = config
        self.memsystem = memsystem
        self.cpu = cpu or CpuComplex(sim, config)
        self.probes = probes if probes is not None else ProbeRegistry(sim)
        self.disk: Optional[BlockDevice] = (
            BlockDevice(sim, config) if with_disk else None
        )
        self.fs = FileSystem(
            sim, config, self.cpu, memsystem, disk=self.disk, probes=self.probes
        )
        self.physmem = PhysicalMemory(sim, config, config.phys_mem_bytes)
        self.net = Network(sim, config, probes=self.probes)
        self.interrupts = InterruptController(sim, config, self.cpu, probes=self.probes)
        self.workqueue = WorkQueue(sim, config, probes=self.probes)
        self.terminal = TerminalDevice(sim, config)
        self.framebuffer = FramebufferDevice(sim, config)
        self.processes: Dict[int, OsProcess] = {}
        self._sockets: Dict[Tuple[int, int], UdpSocket] = {}  # (pid, fd) -> sock
        self._connected: Dict[Tuple[int, int], tuple] = {}  # connected-UDP peers
        self.syscall_counts: Dict[str, int] = {}
        self.fs.add_device("/dev/console", self.terminal)
        self.fs.add_device("/dev/fb0", self.framebuffer)
        self.fs.add_dynamic_file("/proc/meminfo", self._meminfo)

    def _meminfo(self) -> bytes:
        total_kb = self.config.phys_mem_bytes // 1024
        free_kb = self.physmem.free_pages * self.config.page_bytes // 1024
        return (f"MemTotal: {total_kb} kB\nMemFree: {free_kb} kB\n").encode()

    # -- process management ------------------------------------------------

    def create_process(self, name: str) -> OsProcess:
        aspace = AddressSpace(self.sim, self.config, self.physmem, self.cpu, name=name)
        proc = OsProcess(self.sim, name, address_space=aspace)
        self.processes[proc.pid] = proc
        # POSIX fds 0/1/2 wired to the console.
        console = self.fs.resolve("/dev/console")
        for _ in range(3):
            proc.fds.install(OpenFile(console, 0o2, "/dev/console"))
        self._register_proc_entries(proc)
        return proc

    def terminate_process(self, proc: OsProcess) -> None:
        """Tear a process down: close every fd and mark it dead.

        System calls still in flight for this process will fail with
        EBADF/ESRCH afterwards — the Section-IX hazard of asynchronous
        GPU syscalls outliving their process.  Hosts must run
        :meth:`repro.core.genesys.Genesys.drain` first (the paper's
        added function call) to avoid losing work.
        """
        for fd in list(proc.fds.open_fds()):
            sock = self._sockets.pop((proc.pid, fd), None)
            if sock is not None:
                self.net.close(sock)
            open_file = proc.fds.lookup(fd)
            if isinstance(open_file.inode, PipeInode):
                open_file.inode.close_end(open_file.writable)
            proc.fds.close(fd)
        proc.alive = False

    def _register_proc_entries(self, proc: OsProcess) -> None:
        """Per-process /proc/<pid>/ files (the paper: "files in /proc to
        query process environments")."""
        base = f"/proc/{proc.pid}"
        if not self.fs.exists(base):
            self.fs.mkdir(base)

        def status() -> bytes:
            rss_kb = proc.current_rss_bytes // 1024
            return (
                f"Name:\t{proc.name}\n"
                f"Pid:\t{proc.pid}\n"
                f"State:\t{'R (running)' if proc.alive else 'Z (zombie)'}\n"
                f"VmRSS:\t{rss_kb} kB\n"
            ).encode()

        def statm() -> bytes:
            aspace = proc.address_space
            total = aspace.mapped_bytes // self.config.page_bytes if aspace else 0
            resident = aspace.rss_pages if aspace else 0
            return f"{total} {resident}\n".encode()

        def fd_listing() -> bytes:
            return ("\n".join(str(fd) for fd in proc.fds.open_fds()) + "\n").encode()

        # Content closures are dropped at checkpoint by
        # DynamicFileInode.__getstate__ and re-derived here on restore.
        self.fs.bind_dynamic_file(f"{base}/status", status)  # lint: allow(SLOT002)
        self.fs.bind_dynamic_file(f"{base}/statm", statm)  # lint: allow(SLOT002)
        self.fs.bind_dynamic_file(f"{base}/fds", fd_listing)  # lint: allow(SLOT002)

    def rebind_dynamic_files(self) -> None:
        """Checkpoint-restore fixup: reattach the /proc content closures
        that ``DynamicFileInode.__getstate__`` dropped.  Inodes (and any
        open fds onto them) are preserved; only the functions change."""
        self.fs.bind_dynamic_file("/proc/meminfo", self._meminfo)
        for proc in self.processes.values():
            self._register_proc_entries(proc)

    # -- dispatch ------------------------------------------------------------

    def call(self, proc: OsProcess, name: str, *args) -> Generator:
        """CPU-side syscall: base cost + implementation; raises OsError."""
        yield from self.cpu.run(self.config.syscall_base_ns)
        result = yield from self._dispatch(proc, name, args)
        return result

    def execute(self, proc: OsProcess, name: str, args: tuple) -> Generator:
        """GENESYS worker path: returns negative errno instead of raising."""
        try:
            result = yield from self._dispatch(proc, name, args)
        except OsError as err:
            return err.retval
        return result

    def _dispatch(self, proc: OsProcess, name: str, args: tuple) -> Generator:
        method = getattr(self, f"sys_{name}", None)
        if method is None:
            raise OsError(Errno.ENOSYS, name)
        self.syscall_counts[name] = self.syscall_counts.get(name, 0) + 1
        result = yield from method(proc, *args)
        return result

    # -- filesystem syscalls ---------------------------------------------------

    def sys_open(self, proc: OsProcess, path: str, flags: int = 0) -> Generator:
        yield 0
        try:
            inode = self.fs.resolve(path)
        except OsError as err:
            if err.errno is Errno.ENOENT and flags & O_CREAT:
                inode = self.fs.create_file(path)
            else:
                raise
        if flags & O_TRUNC and isinstance(inode, FileInode):
            inode.data = bytearray()
            inode.cached_pages.clear()
        open_file = OpenFile(inode, flags, path)
        if flags & O_APPEND and isinstance(inode, FileInode):
            open_file.pos = len(inode.data)
        return proc.fds.install(open_file)

    def sys_close(self, proc: OsProcess, fd: int) -> Generator:
        yield 0
        sock = self._sockets.pop((proc.pid, fd), None)
        if sock is not None:
            self.net.close(sock)
            self._connected.pop((proc.pid, fd), None)
            proc.fds.close(fd)
            return 0
        open_file = proc.fds.lookup(fd)
        if isinstance(open_file.inode, PipeInode):
            open_file.inode.close_end(open_file.writable)
        proc.fds.close(fd)
        return 0

    def sys_read(self, proc: OsProcess, fd: int, buf: Buffer, count: int) -> Generator:
        """Stateful read at the shared file offset (Section IV's caveat)."""
        open_file = proc.fds.lookup(fd)
        if not open_file.readable:
            raise OsError(Errno.EBADF, "not open for reading")
        data = yield from self.fs.read_timed(open_file, open_file.pos, count)
        open_file.pos += len(data)
        buf.data[: len(data)] = data
        return len(data)

    def sys_write(self, proc: OsProcess, fd: int, buf: Buffer, count: int) -> Generator:
        open_file = proc.fds.lookup(fd)
        if not open_file.writable:
            raise OsError(Errno.EBADF, "not open for writing")
        data = bytes(buf.data[:count])
        # O_APPEND: POSIX atomic append — the offset is the end of file
        # at write time, regardless of concurrent writers.
        if open_file.flags & O_APPEND and isinstance(open_file.inode, FileInode):
            offset = len(open_file.inode.data)
        else:
            offset = open_file.pos
        written = yield from self.fs.write_timed(open_file, offset, data)
        open_file.pos = offset + written
        return written

    def sys_pread(
        self, proc: OsProcess, fd: int, buf: Buffer, count: int, offset: int
    ) -> Generator:
        if offset < 0:
            raise OsError(Errno.EINVAL, "negative offset")
        open_file = proc.fds.lookup(fd)
        if not open_file.readable:
            raise OsError(Errno.EBADF, "not open for reading")
        data = yield from self.fs.read_timed(open_file, offset, count)
        buf.data[: len(data)] = data
        return len(data)

    def sys_pwrite(
        self, proc: OsProcess, fd: int, buf: Buffer, count: int, offset: int
    ) -> Generator:
        if offset < 0:
            raise OsError(Errno.EINVAL, "negative offset")
        open_file = proc.fds.lookup(fd)
        if not open_file.writable:
            raise OsError(Errno.EBADF, "not open for writing")
        data = bytes(buf.data[:count])
        written = yield from self.fs.write_timed(open_file, offset, data)
        return written

    def sys_lseek(self, proc: OsProcess, fd: int, offset: int, whence: int) -> Generator:
        yield 0
        open_file = proc.fds.lookup(fd)
        inode = open_file.inode
        if not isinstance(inode, FileInode):
            raise OsError(Errno.ESPIPE, "not seekable")
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = open_file.pos + offset
        elif whence == SEEK_END:
            new = len(inode.data) + offset
        else:
            raise OsError(Errno.EINVAL, f"whence {whence}")
        if new < 0:
            raise OsError(Errno.EINVAL, "negative resulting offset")
        open_file.pos = new
        return new

    # -- networking syscalls ------------------------------------------------

    def sys_socket(self, proc: OsProcess, host: str = "localhost") -> Generator:
        yield 0
        sock = self.net.socket(host)
        fd = proc.fds.install(OpenFile(DeviceInode(sock), 0o2, f"socket:{sock.sock_id}"))
        self._sockets[(proc.pid, fd)] = sock
        return fd

    def _socket_for(self, proc: OsProcess, fd: int) -> UdpSocket:
        sock = self._sockets.get((proc.pid, fd))
        if sock is None:
            raise OsError(Errno.EBADF, f"fd {fd} is not a socket")
        return sock

    def sys_bind(self, proc: OsProcess, fd: int, port: int) -> Generator:
        yield 0
        self.net.bind(self._socket_for(proc, fd), port)
        return 0

    def sys_connect(self, proc: OsProcess, fd: int, dest: tuple) -> Generator:
        """Set a UDP socket's default destination (connected-UDP)."""
        yield 0
        sock = self._socket_for(proc, fd)
        self._connected[(proc.pid, fd)] = tuple(dest)
        del sock
        return 0

    def sys_send(self, proc: OsProcess, fd: int, buf: Buffer, count: int) -> Generator:
        """send(2) on a connected socket."""
        dest = self._connected.get((proc.pid, fd))
        if dest is None:
            raise OsError(Errno.EINVAL, "socket not connected")
        sent = yield from self.sys_sendto(proc, fd, buf, count, dest)
        return sent

    def sys_recv(self, proc: OsProcess, fd: int, buf: Buffer, count: int) -> Generator:
        """recv(2): recvfrom without caring about the source."""
        n, _source = yield from self.sys_recvfrom(proc, fd, buf, count)
        return n

    def sys_sendto(
        self, proc: OsProcess, fd: int, buf: Buffer, count: int, dest: tuple
    ) -> Generator:
        sock = self._socket_for(proc, fd)
        sent = yield from self.net.sendto(sock, bytes(buf.data[:count]), dest)
        return sent

    def sys_recvfrom(self, proc: OsProcess, fd: int, buf: Buffer, count: int) -> Generator:
        sock = self._socket_for(proc, fd)
        payload, source = yield from self.net.recvfrom(sock, count)
        buf.data[: len(payload)] = payload
        return len(payload), source

    # -- memory-management syscalls ----------------------------------------------

    def _aspace(self, proc: OsProcess) -> AddressSpace:
        if proc.address_space is None:
            raise OsError(Errno.ENOMEM, "process has no address space")
        return proc.address_space

    def sys_mmap(
        self,
        proc: OsProcess,
        length: int,
        fd: Optional[int] = None,
        offset: int = 0,
    ) -> Generator:
        yield 0
        if fd is None:
            return self._aspace(proc).mmap(length)
        open_file = proc.fds.lookup(fd)
        inode = open_file.inode
        if isinstance(inode, DeviceInode) and hasattr(inode.device, "mmap"):
            array = inode.device.mmap(length, offset)
            addr = self._aspace(proc).mmap(length)
            return DeviceMapping(addr, array)
        if isinstance(inode, FileInode):
            # MAP_SHARED file mapping: the view aliases the file bytes.
            if offset % self.config.page_bytes:
                raise OsError(Errno.EINVAL, "mmap offset must be page aligned")
            addr = self._aspace(proc).mmap(length)
            return FileMapping(addr, inode, offset, length)
        raise OsError(Errno.EINVAL, f"cannot mmap {open_file.path}")

    def sys_munmap(self, proc: OsProcess, addr: int, length: int) -> Generator:
        yield 0
        self._aspace(proc).munmap(addr, length)
        return 0

    def sys_madvise(self, proc: OsProcess, addr: int, length: int, advice: int) -> Generator:
        yield 0
        return self._aspace(proc).madvise(addr, length, advice)

    # -- resource query -----------------------------------------------------------

    def sys_getrusage(self, proc: OsProcess) -> Generator:
        yield 0
        return proc.snapshot_rusage()

    # -- signals ---------------------------------------------------------------

    def sys_rt_sigqueueinfo(
        self, proc: OsProcess, pid: int, signo: int, value: int
    ) -> Generator:
        yield 0
        target = self.processes.get(pid)
        if target is None or not target.alive:
            raise OsError(Errno.ESRCH, f"pid {pid}")
        target.signals.queue(SigInfo(signo, value, proc.pid))
        return 0

    # -- device control ---------------------------------------------------------

    def sys_ioctl(self, proc: OsProcess, fd: int, cmd: int, arg=None) -> Generator:
        open_file = proc.fds.lookup(fd)
        inode = open_file.inode
        if not isinstance(inode, DeviceInode) or not hasattr(inode.device, "ioctl"):
            raise OsError(Errno.ENOTTY, open_file.path)
        result = yield from inode.device.ioctl(cmd, arg)
        return result

    # -- extended POSIX surface ---------------------------------------------
    #
    # Beyond the paper's proof-of-concept set: more of the "readily
    # implementable" 79% (Section IV), demonstrating that the interface
    # really is generic.  All are classified READY in
    # repro.core.classification.

    def _stat_of(self, inode) -> Stat:
        if isinstance(inode, FileInode):
            return Stat(inode.ino, S_IFREG, len(inode.data))
        if isinstance(inode, DirInode):
            return Stat(inode.ino, S_IFDIR, len(inode.entries))
        if isinstance(inode, DeviceInode):
            return Stat(inode.ino, S_IFCHR, 0)
        if isinstance(inode, PipeInode):
            return Stat(inode.ino, S_IFIFO, 0)
        if isinstance(inode, DynamicFileInode):
            return Stat(inode.ino, S_IFREG, len(inode.content_fn()))
        raise OsError(Errno.EIO, "unknown inode type")

    def sys_stat(self, proc: OsProcess, path: str) -> Generator:
        yield 0
        return self._stat_of(self.fs.resolve(path))

    def sys_fstat(self, proc: OsProcess, fd: int) -> Generator:
        yield 0
        return self._stat_of(proc.fds.lookup(fd).inode)

    def sys_access(self, proc: OsProcess, path: str, mode: int = 0) -> Generator:
        yield 0
        self.fs.resolve(path)
        return 0

    def sys_dup(self, proc: OsProcess, fd: int) -> Generator:
        yield 0
        open_file = proc.fds.lookup(fd)
        new_fd = proc.fds.install(open_file)
        sock = self._sockets.get((proc.pid, fd))
        if sock is not None:
            self._sockets[(proc.pid, new_fd)] = sock
        return new_fd

    def sys_dup2(self, proc: OsProcess, old_fd: int, new_fd: int) -> Generator:
        yield 0
        open_file = proc.fds.lookup(old_fd)
        if old_fd == new_fd:
            return new_fd
        if new_fd in proc.fds.open_fds():
            result = yield from self.sys_close(proc, new_fd)
            del result
        proc.fds._fds[new_fd] = open_file
        sock = self._sockets.get((proc.pid, old_fd))
        if sock is not None:
            self._sockets[(proc.pid, new_fd)] = sock
        return new_fd

    def sys_pipe(self, proc: OsProcess) -> Generator:
        """Returns (read_fd, write_fd) of a fresh pipe."""
        yield 0
        pipe = self.fs.make_pipe()
        read_fd = proc.fds.install(OpenFile(pipe, O_RDONLY, "pipe:[r]"))
        write_fd = proc.fds.install(OpenFile(pipe, O_WRONLY, "pipe:[w]"))
        return read_fd, write_fd

    def sys_ftruncate(self, proc: OsProcess, fd: int, length: int) -> Generator:
        yield 0
        if length < 0:
            raise OsError(Errno.EINVAL, "negative length")
        inode = proc.fds.lookup(fd).inode
        if not isinstance(inode, FileInode):
            raise OsError(Errno.EINVAL, "not a regular file")
        if length < len(inode.data):
            del inode.data[length:]
        else:
            inode.data.extend(b"\0" * (length - len(inode.data)))
        return 0

    def sys_unlink(self, proc: OsProcess, path: str) -> Generator:
        yield 0
        inode = self.fs.resolve(path)
        if isinstance(inode, DirInode):
            raise OsError(Errno.EISDIR, path)
        self.fs.unlink(path)
        return 0

    def sys_mkdir(self, proc: OsProcess, path: str) -> Generator:
        yield 0
        self.fs.mkdir(path)
        return 0

    def sys_rmdir(self, proc: OsProcess, path: str) -> Generator:
        yield 0
        inode = self.fs.resolve(path)
        if not isinstance(inode, DirInode):
            raise OsError(Errno.ENOTDIR, path)
        self.fs.unlink(path)
        return 0

    def sys_rename(self, proc: OsProcess, old_path: str, new_path: str) -> Generator:
        yield 0
        inode = self.fs.resolve(old_path)
        old_parent, old_name = self.fs._resolve_parent(old_path)
        new_parent, new_name = self.fs._resolve_parent(new_path)
        if new_name in new_parent.entries and isinstance(
            new_parent.entries[new_name], DirInode
        ):
            raise OsError(Errno.EISDIR, new_path)
        del old_parent.entries[old_name]
        new_parent.entries[new_name] = inode
        return 0

    def sys_getdents(self, proc: OsProcess, fd: int) -> Generator:
        """Returns the directory's entry names (simplified dirents)."""
        yield 0
        inode = proc.fds.lookup(fd).inode
        if not isinstance(inode, DirInode):
            raise OsError(Errno.ENOTDIR, "getdents on non-directory")
        return sorted(inode.entries)

    def sys_fsync(self, proc: OsProcess, fd: int) -> Generator:
        """Flush a disk-backed file: waits for device write-back."""
        inode = proc.fds.lookup(fd).inode
        if isinstance(inode, FileInode) and inode.backing is not None:
            yield from inode.backing.write(len(inode.data))
        else:
            yield 0
        return 0

    def sys_readv(self, proc: OsProcess, fd: int, buffers: list) -> Generator:
        total = 0
        for buf in buffers:
            n = yield from self.sys_read(proc, fd, buf, buf.size)
            total += n
            if n < buf.size:
                break
        return total

    def sys_writev(self, proc: OsProcess, fd: int, buffers: list) -> Generator:
        total = 0
        for buf in buffers:
            n = yield from self.sys_write(proc, fd, buf, buf.size)
            total += n
            if n < buf.size:
                break
        return total

    # -- readiness (poll) -----------------------------------------------------

    def _fd_readable_now(self, proc: OsProcess, fd: int) -> bool:
        sock = self._sockets.get((proc.pid, fd))
        if sock is not None:
            return len(sock.queue) > 0
        inode = proc.fds.lookup(fd).inode
        if isinstance(inode, PipeInode):
            return inode.read_bytes_available()
        # Regular files, directories, devices: always "ready".
        return True

    def _fd_readiness_event(self, proc: OsProcess, fd: int):
        sock = self._sockets.get((proc.pid, fd))
        if sock is not None:
            return sock.queue.when_nonempty()
        inode = proc.fds.lookup(fd).inode
        if isinstance(inode, PipeInode):
            return inode.wait_readable()
        event = self.sim.event(name="always-ready")
        event.succeed()
        return event

    def sys_poll(
        self, proc: OsProcess, fds: list, timeout_ns: Optional[float] = None
    ) -> Generator:
        """Wait until at least one fd is readable; returns the ready fds.

        ``timeout_ns=None`` blocks indefinitely; ``0`` is a non-blocking
        readiness probe.  Spurious wakeups re-check, per POSIX.
        """
        from repro.sim.engine import AnyOf

        if not fds:
            raise OsError(Errno.EINVAL, "empty fd list")
        while True:
            ready = [fd for fd in fds if self._fd_readable_now(proc, fd)]
            if ready:
                yield 0
                return ready
            if timeout_ns == 0:
                yield 0
                return []
            events = [self._fd_readiness_event(proc, fd) for fd in fds]
            if timeout_ns is not None:
                deadline = self.sim.now + timeout_ns
                idx, _value = yield AnyOf(events + [self.sim.timeout(timeout_ns)])
                if idx == len(events) and not any(
                    self._fd_readable_now(proc, fd) for fd in fds
                ):
                    return []
                timeout_ns = max(0.0, deadline - self.sim.now) or 0
            else:
                yield AnyOf(events)

    # -- time ---------------------------------------------------------------

    def sys_nanosleep(self, proc: OsProcess, duration_ns: float) -> Generator:
        if duration_ns < 0:
            raise OsError(Errno.EINVAL, "negative sleep")
        yield duration_ns
        return 0

    def sys_gettimeofday(self, proc: OsProcess) -> Generator:
        """Returns (seconds, microseconds) of simulated time."""
        yield 0
        total_us = int(self.sim.now / 1000)
        return total_us // 1_000_000, total_us % 1_000_000

    def sys_clock_gettime(self, proc: OsProcess, clock_id: int = 0) -> Generator:
        """Returns (seconds, nanoseconds) of simulated time."""
        yield 0
        total_ns = int(self.sim.now)
        return total_ns // 1_000_000_000, total_ns % 1_000_000_000

    # -- identity / system info ------------------------------------------------

    def sys_getpid(self, proc: OsProcess) -> Generator:
        yield 0
        return proc.pid

    def sys_uname(self, proc: OsProcess) -> Generator:
        yield 0
        return Uname()

    def sys_sysinfo(self, proc: OsProcess) -> Generator:
        """Returns a dict mirroring struct sysinfo's core fields."""
        yield 0
        return {
            "uptime_ns": self.sim.now,
            "totalram": self.config.phys_mem_bytes,
            "freeram": self.physmem.free_pages * self.config.page_bytes,
            "procs": len(self.processes),
        }
