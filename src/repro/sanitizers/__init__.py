"""``repro.sanitizers`` — machine-checked protocol invariants + lint.

Two checkers guard the stack:

* :class:`GSan` — a vector-clock happens-before sanitizer implemented
  as a pure probes observer over the existing tracepoint stream.  It
  verifies the Figure-6 slot state machine (including the PR-4
  watchdog reclaim and stale-finish edges), release/acquire ordering
  between the GPU publish and the CPU read, exactly-once completion
  per invocation, no lost wakeups, and the workqueue task lifecycle.
  Attaching it leaves every simulated timestamp byte-identical — the
  same guarantee every probes/tracing observer carries.

* :func:`repro.sanitizers.lint.run_lint` — an AST-based static pass
  over ``src/`` flagging determinism hazards (wall clock, ``random``,
  unordered-set iteration, ``id()``-keyed ordering), cross-checking
  every ``Tracepoint.fire`` call site against the static registry,
  validating ``Errno`` constants, and enforcing ``__slots__`` on the
  hot-path classes.

Both ship under ``python -m repro.sanitizers check|lint|report``; the
seeded violation corpus (:mod:`repro.sanitizers.corpus`) proves the
sanitizer actually fires on wedged slots, killed workers, dropped
IRQs, and hand-reordered event streams.
"""

from repro.sanitizers.gsan import GSan, GSanPlan, Violation
from repro.sanitizers.lint import LintFinding, run_lint

__all__ = [
    "GSan",
    "GSanPlan",
    "Violation",
    "LintFinding",
    "run_lint",
]
