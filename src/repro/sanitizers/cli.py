"""``python -m repro.sanitizers`` — run the sanitizers from the shell.

Subcommands:

``check``
    The GSan sweep: run each experiment bare, then again with GSan
    attached to every built System, and assert (a) the rendered
    output is byte-identical — the sanitizer is a pure observer — and
    (b) zero violations.  Exits 1 on any divergence or violation.

``lint``
    The static pass: determinism hazards, tracepoint-registry drift,
    errno constants, hot-path ``__slots__``.  Exits 1 on findings.

``report``
    The seeded violation corpus: run every known-bad entry and print
    the rendered violation timelines.  Exits 1 if any seeded bug goes
    undetected — a sanitizer that cannot catch a planted bug is
    broken.

Examples::

    python -m repro.sanitizers check --experiments fig2,fig7
    python -m repro.sanitizers lint
    python -m repro.sanitizers report --json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.probes.tracepoints import clear_global_plan, install_global_plan
from repro.sanitizers.corpus import distinct_rules, run_corpus
from repro.sanitizers.gsan import GSanPlan
from repro.sanitizers.lint import run_lint

#: The package root the default lint run covers (``src/repro``).
DEFAULT_LINT_ROOT = Path(__file__).resolve().parent.parent


def _parse_csv(raw: str) -> List[str]:
    return [item.strip() for item in raw.split(",") if item.strip()]


def _cmd_check(args: argparse.Namespace) -> int:
    from repro import experiments

    names = _parse_csv(args.experiments) if args.experiments else experiments.all_names()
    rows = []
    failed = False
    for name in names:
        bare = experiments.run(name).render()
        plan = GSanPlan()
        install_global_plan(plan)
        try:
            attached = experiments.run(name).render()
        finally:
            clear_global_plan()
        violations = plan.finish()
        identical = attached == bare
        row = {
            "experiment": name,
            "byte_identical": identical,
            "events": plan.events,
            "violations": len(violations),
            "systems": len(plan.sanitizers),
        }
        rows.append(row)
        if not identical or violations:
            failed = True
            if not args.json:
                print(f"FAIL {name}: identical={identical} "
                      f"violations={len(violations)}")
                for violation in violations:
                    print(violation.render())
        elif not args.json:
            print(
                f"ok   {name}: byte-identical, {plan.events} events, "
                f"0 violations ({len(plan.sanitizers)} system(s))"
            )
    if args.json:
        print(json.dumps({"experiments": rows, "ok": not failed}, indent=2))
    elif not failed:
        print(f"GSan sweep: {len(rows)} experiment(s) byte-identical, clean")
    return 1 if failed else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    paths = [Path(p) for p in args.paths] or [DEFAULT_LINT_ROOT]
    findings = run_lint(paths)
    if args.json:
        print(
            json.dumps(
                {
                    "findings": [
                        {
                            "code": f.code,
                            "path": f.path,
                            "line": f.line,
                            "message": f.message,
                        }
                        for f in findings
                    ],
                    "ok": not findings,
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        label = ", ".join(str(p) for p in paths)
        if findings:
            print(f"repro.lint: {len(findings)} finding(s) in {label}")
        else:
            print(f"repro.lint: clean ({label})")
    return 1 if findings else 0


def _cmd_report(args: argparse.Namespace) -> int:
    names = _parse_csv(args.entries) if args.entries else None
    results = run_corpus(names)
    missed = [result for result in results if not result.detected]
    if args.json:
        print(
            json.dumps(
                {
                    "entries": [
                        {
                            "name": result.entry.name,
                            "expected_rule": result.entry.expected_rule,
                            "detected": result.detected,
                            "rules_hit": result.sanitizer.rules_hit(),
                        }
                        for result in results
                    ],
                    "distinct_rules": distinct_rules(),
                    "ok": not missed,
                },
                indent=2,
            )
        )
    else:
        for result in results:
            print(result.render())
            print()
        print(
            f"violation corpus: {len(results) - len(missed)}/{len(results)} "
            f"seeded bugs detected across {len(distinct_rules())} rules"
        )
    return 1 if missed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitizers",
        description="slot-protocol sanitizer (GSan) + determinism lint",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser(
        "check", help="GSan sweep over experiments (byte-identical, clean)"
    )
    check.add_argument(
        "--experiments",
        default="",
        help="comma-separated experiment names (default: all)",
    )
    check.add_argument("--json", action="store_true")
    check.set_defaults(fn=_cmd_check)

    lint = sub.add_parser("lint", help="static determinism/registry lint")
    lint.add_argument(
        "paths", nargs="*", help="files or directories (default: src/repro)"
    )
    lint.add_argument("--json", action="store_true")
    lint.set_defaults(fn=_cmd_lint)

    report = sub.add_parser(
        "report", help="run the seeded violation corpus and print timelines"
    )
    report.add_argument(
        "--entries", default="", help="comma-separated entry names (default: all)"
    )
    report.add_argument("--json", action="store_true")
    report.set_defaults(fn=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
