"""``repro.lint`` — AST-based determinism and consistency lint.

The simulator's contract is *bit-exact reproducibility*: the same
seed must produce the same event stream, timestamps, and rendered
tables on every machine and every run.  The hazards that silently
break that contract are always the same few, so they are lint rules:

=========  ==============================================================
code       hazard
=========  ==============================================================
DET001     wall-clock use (``time``/``datetime``) in a deterministic zone
DET002     ``random`` module use in a deterministic zone (the stack's
           only sanctioned randomness is the seeded xorshift
           ``DeterministicRandom``)
DET003     iteration over a syntactic ``set``/``frozenset`` without
           ``sorted(...)`` — set order varies with PYTHONHASHSEED
DET004     ``id(...)`` used as a sort key or set member — object
           addresses differ across runs (``id()`` as an
           insertion-ordered dict key is fine and not flagged)
TP001      ``.fire(...)`` on an attribute matching no static tracepoint
           declaration
TP002      ``.fire(...)`` arity differs from the declaration
ERR001     ``Errno.<X>`` constant not defined in ``oskernel/errors.py``
SLOT001    hot-path class (slots protocol / engine inner loop) lost its
           ``__slots__`` declaration
SLOT002    a class in the checkpointed object graph stores a closure
           (``lambda`` or locally-defined function) on ``self`` or
           passes one into a ``self.…(...)`` registration call without
           defining ``__getstate__``/``__reduce__`` — closures cannot
           pickle, so the first ``System.checkpoint()`` reaching that
           object fails (use a plain callable class, see
           ``repro.probes.StreamRecorder``)
SCHED001   ``heapq`` mutation of, or direct assignment to, a
           simulator ``_heap`` outside ``sim/engine.py`` — such events
           bypass the ``Simulator.tie_break`` hook, so the model
           checker cannot reorder them and a schedule certificate
           replayed over them diverges; schedule through the engine's
           public API instead
=========  ==============================================================

Determinism rules (DET*) apply only inside the *deterministic zones*
— ``sim/``, ``core/``, ``oskernel/`` — where simulated behaviour
lives; reporting/CLI layers may legitimately timestamp things.  The
registry, errno, and ``__slots__`` rules apply everywhere.

A finding can be suppressed in place with ``# lint: allow`` (any
rule) or ``# lint: allow(DET003)`` on the offending line.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set

from repro.sanitizers.astutil import check_fire_sites, iter_py_files, parse_file

#: Directory names (as path segments) whose modules must be
#: wall-clock-free, randomness-free, and iteration-order stable.
DETERMINISM_ZONES = ("sim", "core", "oskernel")

#: Directory names whose classes live in (or attach to) the object
#: graph ``System.checkpoint()`` pickles; SLOT002 applies here.
SNAPSHOT_ZONES = DETERMINISM_ZONES + (
    "gpu",
    "memory",
    "metrics",
    "probes",
    "faults",
    "qos",
    "sanitizers",
    "tracing",
    "workloads",
)

#: Modules whose import into a deterministic zone is a hazard.
_WALL_CLOCK_MODULES = ("time", "datetime")

#: Hot-path classes (PR 1's allocation-lean inner loop, the slot
#: protocol, and per-event observer records) that must keep
#: ``__slots__``: dropping it silently re-grows every instance a dict.
HOTPATH_CLASSES: Set[str] = {
    "Slot",
    "SyscallRequest",
    "_SlotOps",
    "_TaskRecord",
    "_Lane",
    "Tracepoint",
    "Event",
    "Process",
    "Simulator",
    "Timer",
    "AllOf",
    "AnyOf",
    "Delay",
    "InvocationTrace",
}


class LintFinding:
    """One lint rule violation at one source location."""

    __slots__ = ("code", "path", "line", "message")

    def __init__(self, code: str, path: str, line: int, message: str) -> None:
        self.code = code
        self.path = path
        self.line = line
        self.message = message

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def __repr__(self) -> str:
        return f"LintFinding({self.render()!r})"


def _in_determinism_zone(path: Path) -> bool:
    return any(zone in path.parts for zone in DETERMINISM_ZONES)


def _allowed(source_lines: List[str], line: int, code: str) -> bool:
    """Whether the flagged line carries a matching allow pragma."""
    if not 1 <= line <= len(source_lines):
        return False
    text = source_lines[line - 1]
    if "# lint: allow" not in text:
        return False
    pragma = text.split("# lint: allow", 1)[1].strip()
    if not pragma.startswith("("):
        return True  # bare "# lint: allow" silences every rule
    codes = pragma[1:].split(")", 1)[0]
    return code in [c.strip() for c in codes.split(",")]


def _parents(tree: ast.Module) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _is_set_expression(node: ast.AST) -> bool:
    """Syntactically a set: display, comprehension, or set()/frozenset()."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class _Zone:
    """Per-file determinism-rule visitor state."""

    def __init__(self, path: str, findings: List[LintFinding]) -> None:
        self.path = path
        self.findings = findings

    def flag(self, code: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            LintFinding(code, self.path, getattr(node, "lineno", 0), message)
        )


def _check_determinism(tree: ast.Module, zone: _Zone) -> None:
    parents = _parents(tree)
    for node in ast.walk(tree):
        # DET001 / DET002: hazardous module imports.
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _WALL_CLOCK_MODULES:
                    zone.flag(
                        "DET001", node,
                        f"wall-clock module {root!r} imported in a "
                        f"deterministic zone",
                    )
                elif root == "random":
                    zone.flag(
                        "DET002", node,
                        "'random' imported in a deterministic zone; use the "
                        "seeded DeterministicRandom",
                    )
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in _WALL_CLOCK_MODULES:
                zone.flag(
                    "DET001", node,
                    f"wall-clock module {root!r} imported in a deterministic "
                    f"zone",
                )
            elif root == "random":
                zone.flag(
                    "DET002", node,
                    "'random' imported in a deterministic zone; use the "
                    "seeded DeterministicRandom",
                )
        # DET003: iterating a syntactic set.
        elif isinstance(node, ast.For):
            if _is_set_expression(node.iter):
                zone.flag(
                    "DET003", node.iter,
                    "iteration over an unordered set; wrap in sorted(...)",
                )
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                if _is_set_expression(gen.iter):
                    zone.flag(
                        "DET003", gen.iter,
                        "comprehension over an unordered set; wrap in "
                        "sorted(...)",
                    )
        # DET004: id() feeding an ordering-sensitive container.
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        ):
            parent = parents.get(id(node))
            grand = parents.get(id(parent)) if parent is not None else None
            if isinstance(parent, (ast.Set, ast.SetComp)):
                zone.flag(
                    "DET004", node,
                    "id() placed in a set: object addresses vary per run",
                )
            elif (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Attribute)
                and parent.func.attr == "add"
                and node in parent.args
            ):
                zone.flag(
                    "DET004", node,
                    "id() added to a set: object addresses vary per run",
                )
            elif (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in ("set", "frozenset", "sorted")
                and node in parent.args
            ):
                zone.flag(
                    "DET004", node,
                    "id() feeding an ordering-sensitive builtin",
                )
        # sorted(..., key=id) / sorted(..., key=lambda x: id(x))
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and (
            node.func.id == "sorted"
        ):
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                value = keyword.value
                uses_id = (
                    isinstance(value, ast.Name) and value.id == "id"
                ) or any(
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "id"
                    for sub in ast.walk(value)
                )
                if uses_id:
                    zone.flag(
                        "DET004", keyword.value,
                        "sorting by id(): object addresses vary per run",
                    )


def _errno_members(errors_path: Path) -> Optional[Set[str]]:
    """The Errno enum's member names, parsed statically."""
    if not errors_path.is_file():
        return None
    tree = parse_file(errors_path)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "Errno":
            members = set()
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            members.add(target.id)
            return members
    return None


def _check_errno(tree: ast.Module, zone: _Zone, members: Set[str]) -> None:
    non_members = {"__members__", "name", "value"}
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "Errno"
            and node.attr not in members
            and node.attr not in non_members
        ):
            zone.flag(
                "ERR001", node,
                f"Errno.{node.attr} is not defined in oskernel/errors.py",
            )


def _check_slots(tree: ast.Module, zone: _Zone) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if node.name not in HOTPATH_CLASSES:
            continue
        has_slots = any(
            isinstance(stmt, ast.Assign)
            and any(
                isinstance(target, ast.Name) and target.id == "__slots__"
                for target in stmt.targets
            )
            for stmt in node.body
        )
        if not has_slots:
            zone.flag(
                "SLOT001", node,
                f"hot-path class {node.name} must declare __slots__",
            )


def _check_picklable(tree: ast.Module, zone: _Zone) -> None:
    """SLOT002: closures stashed into the checkpointed object graph.

    Inside any class that does not define its own pickling
    (``__getstate__``/``__reduce__``), flag

    * ``self.<attr> = <closure>``, and
    * ``self.…(…, <closure>, …)`` registration calls,

    where ``<closure>`` is a ``lambda`` or a function defined in the
    enclosing method — either one makes the object graph unpicklable
    and is exactly the state ``System.checkpoint()`` trips over.
    """
    for klass in ast.walk(tree):
        if not isinstance(klass, ast.ClassDef):
            continue
        custom_pickle = any(
            isinstance(stmt, ast.FunctionDef)
            and stmt.name in ("__getstate__", "__reduce__", "__reduce_ex__")
            for stmt in klass.body
        )
        if custom_pickle:
            continue
        for method in klass.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            local_defs = {
                sub.name
                for sub in ast.walk(method)
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                and sub is not method
            }

            def is_closure(expr: ast.AST) -> bool:
                if isinstance(expr, ast.Lambda):
                    return True
                return isinstance(expr, ast.Name) and expr.id in local_defs

            for node in ast.walk(method):
                if isinstance(node, ast.Assign):
                    closure = (
                        is_closure(node.value)
                        or (
                            isinstance(node.value, ast.Call)
                            and any(is_closure(arg) for arg in node.value.args)
                        )
                    )
                    if not closure:
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            zone.flag(
                                "SLOT002", node,
                                f"{klass.name}.{target.attr} holds a closure: "
                                "unpicklable at checkpoint; use a plain "
                                "callable class or define __getstate__",
                            )
                elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                    call = node.value
                    receiver = call.func
                    if not (
                        isinstance(receiver, ast.Attribute)
                        and isinstance(receiver.value, (ast.Name, ast.Attribute))
                    ):
                        continue
                    base = receiver.value
                    while isinstance(base, ast.Attribute):
                        base = base.value
                    if not (isinstance(base, ast.Name) and base.id == "self"):
                        continue
                    if any(is_closure(arg) for arg in call.args):
                        zone.flag(
                            "SLOT002", node,
                            f"closure passed into {klass.name} state via "
                            f"self...{receiver.attr}(...): unpicklable at "
                            "checkpoint; use a plain callable class",
                        )


#: ``heapq`` functions that mutate their first (heap) argument.
_HEAPQ_MUTATORS = {
    "heappush", "heappop", "heapify", "heapreplace", "heappushpop",
}

#: List methods that mutate the receiver in place.
_LIST_MUTATORS = {
    "append", "pop", "clear", "extend", "insert", "remove", "sort",
}


def _is_heap_attribute(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and node.attr == "_heap"


def _check_sched(tree: ast.Module, zone: _Zone) -> None:
    """SCHED001: event-heap mutation that bypasses the tie-break hook.

    Every pop the engine performs routes through
    ``Simulator.tie_break`` when a model-checking policy is installed;
    code that pushes into or rewrites ``<sim>._heap`` directly creates
    or destroys events the policy never sees, so explored schedules
    and replayed certificates silently diverge from real runs.  Only
    ``sim/engine.py`` itself may touch the heap (the checker is not run
    over it); anything else must go through ``call_later``/``call_at``/
    ``process`` — or carry an explicit pragma when mutating a *quiesced*
    heap, as snapshot restore does.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if _is_heap_attribute(target):
                    zone.flag(
                        "SCHED001", node,
                        "direct assignment to a simulator _heap bypasses "
                        "the tie-break hook; schedule via the engine API",
                    )
        elif isinstance(node, ast.AugAssign):
            if _is_heap_attribute(node.target):
                zone.flag(
                    "SCHED001", node,
                    "augmented assignment to a simulator _heap bypasses "
                    "the tie-break hook; schedule via the engine API",
                )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "heapq"
                and func.attr in _HEAPQ_MUTATORS
            ):
                if any(_is_heap_attribute(arg) for arg in node.args):
                    zone.flag(
                        "SCHED001", node,
                        f"heapq.{func.attr} on a simulator _heap bypasses "
                        "the tie-break hook; schedule via the engine API",
                    )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _LIST_MUTATORS
                and _is_heap_attribute(func.value)
            ):
                zone.flag(
                    "SCHED001", node,
                    f"_heap.{func.attr}(...) mutates the event heap behind "
                    "the tie-break hook; schedule via the engine API",
                )


def run_lint(
    paths: Iterable[Path],
    errno_source: Optional[Path] = None,
) -> List[LintFinding]:
    """Run every lint rule over ``paths`` (files or directories).

    ``errno_source`` points at the module defining the ``Errno`` enum;
    when omitted it is located relative to this file's package
    (``src/repro/oskernel/errors.py``).
    """
    if errno_source is None:
        errno_source = Path(__file__).resolve().parent.parent / "oskernel" / "errors.py"
    errno_members = _errno_members(errno_source)

    files: List[Path] = []
    for path in paths:
        files.extend(iter_py_files(Path(path)))

    findings: List[LintFinding] = []
    sources: Dict[str, List[str]] = {}
    for file in files:
        text = file.read_text(encoding="utf-8")
        sources[str(file)] = text.splitlines()
        tree = ast.parse(text, filename=str(file))
        zone = _Zone(str(file), findings)
        if _in_determinism_zone(file):
            _check_determinism(tree, zone)
        if any(zone_name in file.parts for zone_name in SNAPSHOT_ZONES):
            _check_picklable(tree, zone)
        if errno_members is not None:
            _check_errno(tree, zone, errno_members)
        _check_slots(tree, zone)
        if not (file.name == "engine.py" and "sim" in file.parts):
            _check_sched(tree, zone)

    # TP001/TP002: registry cross-check over the same file set.
    problems, _, _ = check_fire_sites(files)
    for problem in problems:
        code = "TP002" if "arity" in problem.reason else "TP001"
        findings.append(
            LintFinding(code, problem.site.path, problem.site.lineno, problem.reason)
        )

    findings = [
        finding
        for finding in findings
        if not _allowed(sources.get(finding.path, []), finding.line, finding.code)
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return findings
