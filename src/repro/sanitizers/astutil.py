"""Shared AST helpers for the static checks in ``repro.sanitizers``.

Two jobs, both reused by :mod:`repro.sanitizers.lint` and the
registry-drift test in ``tests/test_sanitizers_registry.py``:

* enumerate every static *tracepoint declaration* — a call of the form
  ``<registry>.tracepoint("name", (arg, ...), doc)`` — recording the
  declared name, its arity, and the attribute it was assigned to
  (``self.tp_submit = ...``), so fire sites can be resolved back to
  their declarations without importing anything;

* enumerate every ``<receiver>.fire(...)`` call site, resolving the
  receiver to a tracepoint attribute key.  Receivers come in three
  shapes, all handled: ``self.tp_x.fire(...)``, a cross-module
  ``other.tp_x.fire(...)``, and a local alias
  (``tp = self.gpu.tp_wf_halt`` then ``tp.fire(...)``).

Resolution is module-first: an attribute key declared in the same
module wins (``tp_complete`` names different tracepoints in genesys
and the workqueue); otherwise any module's declaration of that
attribute may match.  Sites that splat ``*args`` have unknown arity
and are skipped by the arity check.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple


class TracepointDecl:
    """One static ``registry.tracepoint(...)`` declaration."""

    __slots__ = ("name", "arity", "attr", "path", "lineno")

    def __init__(
        self,
        name: str,
        arity: Optional[int],
        attr: Optional[str],
        path: str,
        lineno: int,
    ) -> None:
        self.name = name
        #: Number of declared fire arguments; ``None`` when the args
        #: tuple is not a literal (arity then matches anything).
        self.arity = arity
        #: Attribute the tracepoint was bound to (``tp_submit``), or
        #: ``None`` for unassigned declarations.
        self.attr = attr
        self.path = path
        self.lineno = lineno

    def __repr__(self) -> str:
        return (
            f"TracepointDecl({self.name!r}, arity={self.arity}, "
            f"attr={self.attr}, {self.path}:{self.lineno})"
        )


class FireSite:
    """One static ``<receiver>.fire(...)`` call site."""

    __slots__ = ("key", "arity", "has_star", "path", "lineno")

    def __init__(
        self,
        key: Optional[str],
        arity: int,
        has_star: bool,
        path: str,
        lineno: int,
    ) -> None:
        #: The resolved attribute key of the receiver (``tp_submit``),
        #: or ``None`` when the receiver could not be resolved.
        self.key = key
        self.arity = arity
        self.has_star = has_star
        self.path = path
        self.lineno = lineno

    def __repr__(self) -> str:
        return (
            f"FireSite({self.key}, arity={self.arity}, "
            f"star={self.has_star}, {self.path}:{self.lineno})"
        )


def iter_py_files(root: Path) -> List[Path]:
    """All ``.py`` files under ``root``, sorted for determinism."""
    if root.is_file():
        return [root]
    return sorted(p for p in root.rglob("*.py") if p.is_file())


def parse_file(path: Path) -> ast.Module:
    return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))


def _literal_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _decl_from_call(call: ast.Call, attr: Optional[str], path: str) -> Optional[TracepointDecl]:
    """A TracepointDecl if ``call`` is ``<x>.tracepoint("name", ...)``."""
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "tracepoint"):
        return None
    if not call.args:
        return None
    name = _literal_str(call.args[0])
    if name is None:
        return None
    arity: Optional[int] = 0
    if len(call.args) >= 2:
        args_node = call.args[1]
        if isinstance(args_node, (ast.Tuple, ast.List)):
            arity = len(args_node.elts)
        else:
            arity = None
    return TracepointDecl(name, arity, attr, path, call.lineno)


def collect_declarations(tree: ast.Module, path: str) -> List[TracepointDecl]:
    """Every tracepoint declaration in one module.

    Declarations reached through an assignment record the bound
    attribute name, whether the target is ``self.tp_x`` or a bare
    local later copied onto objects (``tp_alloc = ...`` then
    ``cu.tp_alloc = tp_alloc``).
    """
    decls: List[TracepointDecl] = []
    assigned_calls = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            attr: Optional[str] = None
            target = node.targets[0]
            if isinstance(target, ast.Attribute):
                attr = target.attr
            elif isinstance(target, ast.Name):
                attr = target.id
            decl = _decl_from_call(node.value, attr, path)
            if decl is not None:
                decls.append(decl)
                assigned_calls.add(id(node.value))
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and id(node) not in assigned_calls:
            decl = _decl_from_call(node, None, path)
            if decl is not None:
                decls.append(decl)
    return decls


def _alias_map(tree: ast.Module) -> Dict[str, str]:
    """Local-name -> attribute aliases (``tp = self.gpu.tp_wf_halt``)."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Attribute)
        ):
            aliases[node.targets[0].id] = node.value.attr
    return aliases


def collect_fire_sites(tree: ast.Module, path: str) -> List[FireSite]:
    """Every ``<receiver>.fire(...)`` call site in one module."""
    aliases = _alias_map(tree)
    sites: List[FireSite] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "fire"):
            continue
        receiver = func.value
        key: Optional[str] = None
        if isinstance(receiver, ast.Attribute):
            key = receiver.attr
        elif isinstance(receiver, ast.Name):
            key = aliases.get(receiver.id, receiver.id)
        has_star = any(isinstance(arg, ast.Starred) for arg in node.args)
        sites.append(FireSite(key, len(node.args), has_star, path, node.lineno))
    return sites


class RegistryCheckProblem:
    """One fire site that does not match any static declaration."""

    __slots__ = ("site", "reason")

    def __init__(self, site: FireSite, reason: str) -> None:
        self.site = site
        self.reason = reason

    def __repr__(self) -> str:
        return f"{self.site.path}:{self.site.lineno}: {self.reason}"


def check_fire_sites(
    files: Iterable[Path],
) -> Tuple[List[RegistryCheckProblem], List[FireSite], List[TracepointDecl]]:
    """Cross-check every fire site in ``files`` against the static registry.

    Returns ``(problems, sites, decls)``; an empty problem list means
    every ``.fire`` call names a declared tracepoint with the declared
    arity.
    """
    per_module: Dict[str, Dict[str, List[TracepointDecl]]] = {}
    global_attrs: Dict[str, List[TracepointDecl]] = {}
    all_decls: List[TracepointDecl] = []
    all_sites: List[FireSite] = []
    trees: List[Tuple[str, ast.Module]] = []
    for file in files:
        path = str(file)
        tree = parse_file(file)
        trees.append((path, tree))
        decls = collect_declarations(tree, path)
        all_decls.extend(decls)
        module_attrs = per_module.setdefault(path, {})
        for decl in decls:
            if decl.attr is not None:
                module_attrs.setdefault(decl.attr, []).append(decl)
                global_attrs.setdefault(decl.attr, []).append(decl)
    problems: List[RegistryCheckProblem] = []
    for path, tree in trees:
        for site in collect_fire_sites(tree, path):
            all_sites.append(site)
            if site.key == "fire":
                # ``something().fire`` with an unresolvable receiver.
                problems.append(
                    RegistryCheckProblem(site, "unresolvable fire receiver")
                )
                continue
            candidates = per_module.get(path, {}).get(site.key) or global_attrs.get(
                site.key or ""
            )
            if not candidates:
                problems.append(
                    RegistryCheckProblem(
                        site,
                        f"fire on {site.key!r} matches no static tracepoint "
                        f"declaration",
                    )
                )
                continue
            if site.has_star:
                continue  # splatted args: arity unknowable statically
            if not any(
                decl.arity is None or decl.arity == site.arity
                for decl in candidates
            ):
                declared = sorted(
                    {decl.arity for decl in candidates if decl.arity is not None}
                )
                names = sorted({decl.name for decl in candidates})
                problems.append(
                    RegistryCheckProblem(
                        site,
                        f"fire on {site.key!r} passes {site.arity} args but "
                        f"{'/'.join(names)} declares arity {declared}",
                    )
                )
    return problems, all_sites, all_decls
