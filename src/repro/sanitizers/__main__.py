import sys

from repro.sanitizers.cli import main

sys.exit(main())
