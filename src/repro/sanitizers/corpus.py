"""The seeded violation corpus: known-bad runs GSan must catch.

A sanitizer that never fires is indistinguishable from one that does
not work.  Each entry here constructs one *specific, deterministic*
protocol or ordering bug — via a ``repro.faults`` plan with the
watchdog disabled (so nothing recovers), via direct slot-protocol
abuse, or via a hand-reordered (replayed) event stream that a live
simulator could never emit — and declares the GSan rule that must
flag it.  ``run_corpus()`` executes every entry and reports which
were detected; the CI step fails if any seeded bug slips through.

The three fault-plan entries mirror the chaos profiles' fault sites
(wedged slots, killed workers, dropped IRQs) with recovery switched
off: the same injections that chaos runs must survive *cleanly* must,
without the watchdog, produce diagnosable violations.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from repro.core.invocation import Granularity, WaitMode
from repro.core.syscall_area import Slot, SlotState, SlotStateError, SyscallArea
from repro.faults import FaultPlan, install_plan
from repro.machine import small_machine
from repro.memory.system import MemorySystem
from repro.oskernel.process import OsProcess
from repro.oskernel.workqueue import DrainTimeout
from repro.gpu.hierarchy import WorkItemCtx
from repro.probes.tracepoints import ProbeRegistry
from repro.sanitizers.gsan import GSan
from repro.sim.engine import SimulationError, Simulator
from repro.system import System


class CorpusEntry:
    """One seeded bug and the rule that must catch it."""

    __slots__ = ("name", "description", "expected_rule", "_run")

    def __init__(
        self,
        name: str,
        description: str,
        expected_rule: str,
        run: Callable[[], GSan],
    ) -> None:
        self.name = name
        self.description = description
        self.expected_rule = expected_rule
        self._run = run

    def run(self) -> GSan:
        """Execute the entry; returns the (finished) sanitizer."""
        return self._run()


class CorpusResult:
    """Outcome of one corpus entry."""

    __slots__ = ("entry", "sanitizer", "detected")

    def __init__(self, entry: CorpusEntry, sanitizer: GSan) -> None:
        self.entry = entry
        self.sanitizer = sanitizer
        self.detected = entry.expected_rule in sanitizer.rules_hit()

    def render(self) -> str:
        status = "DETECTED" if self.detected else "MISSED"
        lines = [
            f"[{status}] {self.entry.name}: {self.entry.description}",
            f"  expected rule: {self.entry.expected_rule}; "
            f"rules hit: {self.sanitizer.rules_hit() or '{}'}",
        ]
        for violation in self.sanitizer.violations:
            if violation.rule == self.entry.expected_rule:
                lines.append(violation.render())
                break
        return "\n".join(lines)


# -- fault-plan entries (live runs with recovery disabled) -----------------


def _run_faulted(plan: FaultPlan, wait: WaitMode = WaitMode.HALT_RESUME) -> GSan:
    """One blocking getrusage under ``plan`` with the watchdog off.

    The fault wedges the pipeline, so the run ends in a deadlock or a
    bounded-drain timeout — both expected; GSan's end-of-run audit
    then names what was lost.
    """
    system = System(config=small_machine())
    sanitizer = GSan().install(system.probes)
    install_plan(plan, system.probes)
    system.drain_timeout_ns = 2_000_000.0

    def kern(ctx: WorkItemCtx) -> Generator:
        yield from ctx.sys.getrusage(
            granularity=Granularity.WORK_ITEM, blocking=True, wait=wait
        )

    try:
        system.run_kernel(kern, 1, 1, name="corpus")
    except (DrainTimeout, SimulationError):
        pass
    sanitizer.finish()
    return sanitizer


def _wedged_slot() -> GSan:
    # The worker wedges the slot in PROCESSING and never finishes it;
    # with no watchdog, the invocation's completion is lost for good.
    return _run_faulted(
        FaultPlan(seed=3, slot_wedge=1.0, watchdog_period_ns=0.0, max_faults=1)
    )


def _killed_worker() -> GSan:
    # The worker dies at pickup holding the scan task; nothing respawns
    # it, so the task (and the syscall riding it) is lost.
    return _run_faulted(
        FaultPlan(seed=5, worker_kill=1.0, watchdog_period_ns=0.0, max_faults=1)
    )


def _dropped_irq() -> GSan:
    # The doorbell is dropped before the top half; no scan is ever
    # enqueued and the halted wavefront sleeps forever.
    return _run_faulted(
        FaultPlan(seed=7, irq_drop=1.0, watchdog_period_ns=0.0, max_faults=1)
    )


# -- direct slot-protocol abuse --------------------------------------------


def _slot_fixture() -> tuple:
    sim = Simulator()
    config = small_machine()
    registry = ProbeRegistry(sim)
    area = SyscallArea(sim, config, MemorySystem(sim, config), probes=registry)
    sanitizer = GSan().install(registry)
    return sim, area, sanitizer


def _drive_to_processing(sim: Simulator, area: SyscallArea) -> Slot:
    from repro.core.invocation import SyscallRequest

    slot = area.slot_for(0, 0)
    assert slot.try_claim()
    slot.populate(SyscallRequest("getrusage", (), True, OsProcess(sim, "p")))
    slot.set_ready()
    slot.start_processing()
    return slot


def _double_finish() -> GSan:
    # A worker completes the same slot twice — the classic double
    # release the paper's cmp-swap protocol exists to prevent.
    sim, area, sanitizer = _slot_fixture()
    slot = _drive_to_processing(sim, area)
    slot.finish(0)
    try:
        slot.finish(0)
    except SlotStateError:
        pass
    sanitizer.finish()
    return sanitizer


def _wrong_agent() -> GSan:
    # The GPU drives the CPU's READY -> PROCESSING edge (Figure 6
    # colours violated): ownership error, not just an ordering error.
    sim, area, sanitizer = _slot_fixture()
    from repro.core.invocation import SyscallRequest

    slot = area.slot_for(0, 0)
    assert slot.try_claim()
    slot.populate(SyscallRequest("getrusage", (), True, OsProcess(sim, "p")))
    slot.set_ready()
    try:
        slot._transition(SlotState.PROCESSING, "gpu", op="start_processing")
    except SlotStateError:
        pass
    sanitizer.finish()
    return sanitizer


# -- replayed (hand-reordered) event streams -------------------------------


def _dispatch_before_submit() -> GSan:
    # A reordered stream in which the CPU reads a slot payload the GPU
    # never published at all — no claim, no submit: the vector-clock
    # acquire check fires even though no per-slot state was ever
    # inconsistent.
    sanitizer = GSan()
    sanitizer.feed("syscall.dispatch", 40.0, "pread", 0, 1)
    sanitizer.feed("syscall.submit", 55.0, "work-item", 1, "pread", 0, True)
    sanitizer.feed("syscall.complete", 90.0, "pread", 0, 35.0, 1, True)
    sanitizer.feed("syscall.resume", 95.0, 1, "pread", 0)
    sanitizer.finish()
    return sanitizer


def _duplicate_completion() -> GSan:
    # Two workers both finish invocation 1: completion must be
    # exactly-once (complete XOR reclaim).
    sanitizer = GSan()
    sanitizer.feed(
        "syscall.claim", 0.0, 1, "pwrite", 2, 0, "work-item", True, "halt_resume"
    )
    sanitizer.feed("syscall.submit", 10.0, "work-item", 1, "pwrite", 2, True)
    sanitizer.feed("syscall.dispatch", 30.0, "pwrite", 2, 1)
    sanitizer.feed("syscall.complete", 60.0, "pwrite", 2, 30.0, 1, True)
    sanitizer.feed("syscall.complete", 61.0, "pwrite", 2, 31.0, 1, True)
    sanitizer.feed("syscall.resume", 70.0, 1, "pwrite", 2)
    sanitizer.finish()
    return sanitizer


def _reuse_before_free() -> GSan:
    # The GPU re-claims a slot that never returned to FREE — reuse of a
    # still-PROCESSING cacheline would corrupt the in-flight request.
    sanitizer = GSan()
    sanitizer.feed("slot.transition", 0.0, 4, "free", "populating", "gpu")
    sanitizer.feed("slot.transition", 8.0, 4, "populating", "ready", "gpu")
    sanitizer.feed("slot.transition", 30.0, 4, "ready", "processing", "cpu")
    sanitizer.feed("slot.transition", 42.0, 4, "free", "populating", "gpu")
    sanitizer.finish()
    return sanitizer


def _double_dequeue() -> GSan:
    # Two workers pick up the same task with no watchdog requeue in
    # between — the epoch protocol's exactly-once guarantee broken.
    sanitizer = GSan()
    sanitizer.feed("wq.enqueue", 0.0, 1, 0)
    sanitizer.feed("wq.dequeue", 5.0, 0, 0)
    sanitizer.feed("wq.dequeue", 6.0, 1, 0)
    sanitizer.feed("wq.complete", 20.0, 0, 15.0, 0)
    sanitizer.finish()
    return sanitizer


def _forfeit_without_requeue() -> GSan:
    # A worker forfeits a task whose epoch was never bumped: with no
    # superseding requeue, forfeiting loses the task.
    sanitizer = GSan()
    sanitizer.feed("wq.enqueue", 0.0, 1, 3)
    sanitizer.feed("wq.dequeue", 5.0, 0, 3)
    sanitizer.feed("recover.forfeit", 9.0, 3, 0)
    sanitizer.finish()
    return sanitizer


ENTRIES: List[CorpusEntry] = [
    CorpusEntry(
        "wedged-slot",
        "slot_wedge fault, watchdog off: the invocation's completion is lost",
        "lost-completion",
        _wedged_slot,
    ),
    CorpusEntry(
        "wedged-slot-leak",
        "same wedge, end-of-run audit: the slot never returns to FREE",
        "slot-leak",
        _wedged_slot,
    ),
    CorpusEntry(
        "killed-worker",
        "worker_kill fault, watchdog off: the picked-up scan task is lost",
        "task-lost",
        _killed_worker,
    ),
    CorpusEntry(
        "dropped-irq",
        "irq_drop fault, watchdog off: the halted wavefront never wakes",
        "lost-wakeup",
        _dropped_irq,
    ),
    CorpusEntry(
        "double-finish",
        "a worker finishes the same slot twice (double release)",
        "protocol-error",
        _double_finish,
    ),
    CorpusEntry(
        "wrong-agent",
        "the GPU drives the CPU-owned READY -> PROCESSING edge",
        "wrong-agent",
        _wrong_agent,
    ),
    CorpusEntry(
        "dispatch-before-submit",
        "replayed stream: CPU reads the payload before READY is published",
        "acquire-before-release",
        _dispatch_before_submit,
    ),
    CorpusEntry(
        "duplicate-completion",
        "replayed stream: the same invocation completes twice",
        "duplicate-completion",
        _duplicate_completion,
    ),
    CorpusEntry(
        "reuse-before-free",
        "replayed stream: GPU re-claims a slot still in PROCESSING",
        "slot-state",
        _reuse_before_free,
    ),
    CorpusEntry(
        "double-dequeue",
        "replayed stream: two pickups of one task without a requeue",
        "wq-lifecycle",
        _double_dequeue,
    ),
    CorpusEntry(
        "forfeit-without-requeue",
        "replayed stream: a forfeit with no superseding epoch bump",
        "wq-lifecycle",
        _forfeit_without_requeue,
    ),
]


def run_corpus(names: Optional[List[str]] = None) -> List[CorpusResult]:
    """Run every (or the named) corpus entries; returns their results."""
    selected = ENTRIES if names is None else [
        entry for entry in ENTRIES if entry.name in names
    ]
    return [CorpusResult(entry, entry.run()) for entry in selected]


def distinct_rules() -> Dict[str, int]:
    """How many entries target each rule (the issue demands >= 6)."""
    counts: Dict[str, int] = {}
    for entry in ENTRIES:
        counts[entry.expected_rule] = counts.get(entry.expected_rule, 0) + 1
    return dict(sorted(counts.items()))
