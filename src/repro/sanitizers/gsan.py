"""GSan: a vector-clock happens-before sanitizer for the slot protocol.

The paper's design rests on a lock-free state machine walked by two
agents over weakly-ordered shared memory (Section VI / Figure 6):

    FREE -> POPULATING -> READY -> PROCESSING -> FINISHED -> FREE

plus the PR-4 recovery edges (watchdog reclaim of stuck READY /
PROCESSING slots, stale-finish rejection).  The probes/tracing layers
*observe* that walk; GSan *checks* it.  It attaches pure observers to
the existing tracepoint stream and verifies, per slot / invocation /
workqueue task / wavefront:

* every ``slot.transition`` is a legal edge driven by its owning agent
  (GPU lane, CPU worker, or watchdog), with no skipped states;
* release/acquire ordering: the CPU never reads a slot's payload
  before the GPU published READY, the GPU never consumes a result
  before FINISHED was published, and a caller never resumes before a
  completion exists — checked with per-agent vector clocks, so a
  reordered (replayed) stream is caught even when per-slot state
  tracking alone would not see it;
* exactly-once completion: each invocation gets exactly one of
  ``syscall.complete`` / ``recover.slot_reclaim``;
* no lost wakeups: halt/resume alternate per wavefront and every
  blocking completion is followed by a resume;
* workqueue lifecycle: enqueue before pickup before complete, pickup
  again only after a watchdog requeue, forfeit only after an epoch
  bump, at most one complete per task.

GSan is an *observer*, never a policy: it sees fire arguments and the
registry clock only, so attaching it cannot perturb the simulation —
``repro.sanitizers check`` re-runs every experiment attached and
asserts the rendered output is byte-identical to the bare run.

A ``slot.protocol_error`` for a *stale finish* is the defended
recovery race working as designed (the write was refused) and is
counted, not flagged; every other protocol error is a violation.

Violations render as annotated event timelines: the scoped event
history with the offending event marked, plus the vector clocks at
the moment of detection.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.probes.tracepoints import ProbeRegistry

#: Schema version of :meth:`GSan.snapshot`.
GSAN_SNAPSHOT_SCHEMA = 1

#: The agents whose vector-clock components GSan tracks.
AGENTS = ("gpu", "cpu", "watchdog")

#: Legal slot edges -> the set of agents allowed to drive them.
#: The first six rows are Figure 6; the watchdog rows are the PR-4
#: reclaim edges (blocking -> FINISHED, non-blocking -> FREE).
SLOT_EDGES: Dict[Tuple[str, str], Tuple[str, ...]] = {
    ("free", "populating"): ("gpu",),
    ("populating", "ready"): ("gpu",),
    ("ready", "processing"): ("cpu",),
    ("processing", "finished"): ("cpu", "watchdog"),
    ("processing", "free"): ("cpu", "watchdog"),
    ("finished", "free"): ("gpu",),
    ("ready", "finished"): ("watchdog",),
    ("ready", "free"): ("watchdog",),
}

#: Which agent each tracepoint's events are attributed to (events that
#: carry an explicit actor argument override this).
_EVENT_AGENT = {
    "syscall.claim": "gpu",
    "syscall.submit": "gpu",
    "syscall.irq": "gpu",
    "syscall.resume": "gpu",
    "syscall.retry": "gpu",
    "wavefront.halt": "gpu",
    "wavefront.resume": "gpu",
    "irq.raised": "gpu",
    "fault.irq.injected": "gpu",
    "syscall.dispatch": "cpu",
    "syscall.complete": "cpu",
    "scan.enqueue": "cpu",
    "scan.start": "cpu",
    "wq.enqueue": "cpu",
    "wq.dequeue": "cpu",
    "wq.complete": "cpu",
    "irq.serviced": "cpu",
    "irq.unhandled": "cpu",
    "fault.errno.injected": "cpu",
    "fault.slot.injected": "cpu",
    "fault.worker.injected": "cpu",
    "recover.requeue": "watchdog",
    "recover.forfeit": "cpu",
    "recover.respawn": "watchdog",
    "recover.degraded": "watchdog",
    "recover.slot_reclaim": "watchdog",
    "slot.transition": None,  # actor argument
    "slot.protocol_error": None,  # actor argument
}

#: Pure-telemetry gauges: events that sample a derived quantity (queue
#: depth, occupancy, sojourn time) and carry no protocol identity.  No
#: GSan rule or end-state invariant reads them, so in the model
#: checker's independence relation a step firing only these (plus
#: scoped events) still has a fully-known footprint — they must not
#: degrade a step to "unknown".
SCOPE_NEUTRAL = frozenset(
    {
        "fs.pagecache.resident",
        "gpu.lanes.runnable",
        "gpu.wf.occupancy",
        "net.backlog",
        "net.sojourn",
        "slot.occupancy",
        "syscall.inflight",
        "wq.busy",
        "wq.depth",
        "wq.sojourn",
    }
)


def event_scopes(name: str, values: Tuple[Any, ...]) -> List[str]:
    """The protocol scopes one tracepoint event touches.

    This is GSan's timeline attribution (``slot:N`` / ``inv:N`` /
    ``task:N`` / ``scan:N`` / ``wf:N``), exported at module level so
    :mod:`repro.modelcheck` can derive its independence relation from
    exactly the same footprint GSan uses for happens-before tracking:
    two scheduler steps whose fired events touch disjoint scope sets
    commute, and exploring both orders is redundant.
    """
    scopes: List[str] = []
    if name in ("slot.transition", "slot.protocol_error"):
        scopes.append(f"slot:{values[0]}")
    elif name == "fault.slot.injected":
        scopes.append(f"slot:{values[1]}")
    elif name == "recover.slot_reclaim":
        scopes.append(f"slot:{values[2]}")
        scopes.append(f"inv:{values[0]}")
    elif name in (
        "syscall.claim", "syscall.submit", "syscall.irq",
        "syscall.dispatch", "syscall.complete", "syscall.resume",
        "syscall.retry",
    ):
        index = 1 if name == "syscall.submit" else (
            2 if name == "syscall.dispatch" else (
                3 if name == "syscall.complete" else 0
            )
        )
        if values[index] is not None:
            scopes.append(f"inv:{values[index]}")
    elif name == "wq.enqueue":
        scopes.append(f"task:{values[1]}")
    elif name == "wq.dequeue":
        scopes.append(f"task:{values[1]}")
    elif name == "wq.complete":
        scopes.append(f"task:{values[2]}")
    elif name in ("recover.requeue", "recover.forfeit"):
        scopes.append(f"task:{values[0]}")
    elif name == "fault.worker.injected":
        scopes.append(f"task:{values[2]}")
    elif name in ("scan.enqueue", "scan.start"):
        scopes.append(f"scan:{values[0]}")
    elif name in ("wavefront.halt", "wavefront.resume"):
        scopes.append(f"wf:{values[0]}")
    return scopes


class Violation:
    """One detected protocol/ordering violation, with its evidence."""

    __slots__ = ("rule", "scope", "t", "message", "timeline", "clocks")

    def __init__(
        self,
        rule: str,
        scope: str,
        t: float,
        message: str,
        timeline: List[Tuple[float, str, str, str, bool]],
        clocks: Dict[str, int],
    ) -> None:
        self.rule = rule
        self.scope = scope
        self.t = t
        self.message = message
        #: ``[(t, tracepoint, rendered_args, agent, is_offender), ...]``
        self.timeline = timeline
        self.clocks = clocks

    def render(self) -> str:
        """The annotated event timeline for this violation."""
        lines = [
            f"GSan violation [{self.rule}] at t={self.t:.0f}ns "
            f"({self.scope}): {self.message}",
            "  clocks: "
            + " ".join(f"{agent}={self.clocks[agent]}" for agent in AGENTS),
            f"  timeline ({self.scope}):",
        ]
        if not self.timeline:
            lines.append("    (no events recorded for this scope)")
        for t, name, args, agent, offender in self.timeline:
            marker = "->" if offender else "  "
            suffix = "   << VIOLATION" if offender else ""
            lines.append(
                f"  {marker} t={t:<12.0f} {name}({args}) [{agent}]{suffix}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Violation({self.rule}, {self.scope}, t={self.t:.0f}, {self.message!r})"


class _SlotTrack:
    """Per-slot shadow state: the walk GSan believes the slot is on."""

    __slots__ = (
        "state", "generation", "release_ready", "release_finished",
        "last_actor", "last_op", "reclaim_raced",
    )

    def __init__(self) -> None:
        self.state = "free"
        self.generation = 0
        #: Publisher clock snapshots for the two release points of the
        #: protocol; ``None`` means "not currently published".
        self.release_ready: Optional[Dict[str, int]] = None
        self.release_finished: Optional[Dict[str, int]] = None
        #: Who last drove (or last tried to drive) this slot, and with
        #: what operation — named by the end-of-run leak audit so a slot
        #: wedged by a watchdog-reclaim race reports the racing agent,
        #: not just the state it wedged in.
        self.last_actor: Optional[str] = None
        self.last_op: Optional[str] = None
        #: Whether a watchdog reclaim ever raced a protocol error on
        #: this slot (either order) — the wedged-reclaim-race signature.
        self.reclaim_raced = False


class _InvocationTrack:
    """Per-invocation shadow state for exactly-once completion."""

    __slots__ = (
        "name", "blocking", "claimed", "submitted", "completions",
        "completion_kind", "resumed", "release_submit", "release_complete",
    )

    def __init__(self) -> None:
        self.name: Optional[str] = None
        self.blocking = False
        self.claimed = False
        self.submitted = False
        self.completions = 0
        self.completion_kind: Optional[str] = None
        self.resumed = False
        self.release_submit: Optional[Dict[str, int]] = None
        self.release_complete: Optional[Dict[str, int]] = None


class _TaskTrack:
    """Per-workqueue-task shadow state (epoch-requeue aware)."""

    __slots__ = ("state", "pending_forfeits", "dequeues", "requeues")

    def __init__(self) -> None:
        self.state = "queued"  # queued | picked | done
        self.pending_forfeits = 0
        self.dequeues = 0
        self.requeues = 0


class _GsanObserver:
    """One tracepoint's tap into a :class:`GSan`.

    A class rather than a closure so a checkpoint taken with GSan
    attached can pickle the observer (and the sanitizer state behind
    it) and the resumed run keeps sanitizing seamlessly.
    """

    __slots__ = ("sanitizer", "name")

    def __init__(self, sanitizer: "GSan", name: str) -> None:
        self.sanitizer = sanitizer
        self.name = name

    def __call__(self, *values: Any) -> None:
        sanitizer = self.sanitizer
        assert sanitizer.registry is not None
        sanitizer.feed(self.name, sanitizer.registry.now(), *values)


class GSan:
    """The sanitizer: attach to a registry, or feed a replayed stream.

    Duck-types the probe-program protocol (``snapshot``/``series``) so
    the metrics exporter picks it up from ``registry.programs`` like
    any other attached program.
    """

    kind = "sanitizer"
    name = "gsan"
    tracepoint = None

    def __init__(self, max_timeline: int = 64) -> None:
        self.registry: Optional[ProbeRegistry] = None
        self.max_timeline = max_timeline
        self.clocks: Dict[str, int] = {agent: 0 for agent in AGENTS}
        self.events = 0
        self.violations: List[Violation] = []
        self.defended_races = 0  # stale finishes the protocol refused
        self._timelines: Dict[str, Deque] = {}
        self._slots: Dict[int, _SlotTrack] = {}
        self._invocations: Dict[int, _InvocationTrack] = {}
        self._tasks: Dict[int, _TaskTrack] = {}
        self._scans: Dict[int, bool] = {}  # scan_id -> started
        self._halted: Dict[int, bool] = {}  # hw_id -> wavefront asleep
        self._finished = False
        self._handlers: Dict[str, Callable] = {
            "slot.transition": self._on_slot_transition,
            "slot.protocol_error": self._on_protocol_error,
            "syscall.claim": self._on_claim,
            "syscall.submit": self._on_submit,
            "syscall.dispatch": self._on_dispatch,
            "syscall.complete": self._on_complete,
            "syscall.resume": self._on_resume,
            "recover.slot_reclaim": self._on_reclaim,
            "wq.enqueue": self._on_wq_enqueue,
            "wq.dequeue": self._on_wq_dequeue,
            "wq.complete": self._on_wq_complete,
            "recover.requeue": self._on_requeue,
            "recover.forfeit": self._on_forfeit,
            "scan.enqueue": self._on_scan_enqueue,
            "scan.start": self._on_scan_start,
            "wavefront.halt": self._on_wf_halt,
            "wavefront.resume": self._on_wf_resume,
        }

    # -- attachment --------------------------------------------------------

    def install(self, registry: ProbeRegistry) -> "GSan":
        """Attach pure observers for every tracepoint GSan understands."""
        self.registry = registry
        for name in _EVENT_AGENT:
            if name not in registry.tracepoints:
                continue
            registry.attach(name, self._make_observer(name))
        registry.programs.append(self)
        return self

    def _make_observer(self, name: str) -> Callable:
        return _GsanObserver(self, name)

    # -- the event pump ----------------------------------------------------

    def feed(self, name: str, t: float, *values: Any) -> None:
        """Process one event (from a live observer or a replayed stream)."""
        self.events += 1
        agent = _EVENT_AGENT.get(name, "cpu")
        if agent is None:
            # slot.transition carries actor at index 3,
            # slot.protocol_error at index 2.
            agent = values[3] if name == "slot.transition" else values[2]
            if agent not in self.clocks:
                agent = "cpu"
        self.clocks[agent] += 1
        entry = (t, name, self._fmt_args(values), agent, False)
        for scope in self._scopes(name, values):
            self._timelines.setdefault(
                scope, deque(maxlen=self.max_timeline)
            ).append(entry)
        handler = self._handlers.get(name)
        if handler is not None:
            handler(t, agent, values)

    @staticmethod
    def _fmt_args(values: Tuple) -> str:
        parts = []
        for value in values:
            text = repr(value)
            if len(text) > 48:
                text = text[:45] + "..."
            parts.append(text)
        return ", ".join(parts)

    @staticmethod
    def _scopes(name: str, values: Tuple) -> List[str]:
        return event_scopes(name, values)

    # -- vector clocks -----------------------------------------------------

    def clock_snapshot(self) -> Dict[str, int]:
        """A copy of the per-agent vector clocks right now.

        Public for :mod:`repro.modelcheck`, whose independence relation
        and schedule digests are derived from the same happens-before
        state GSan maintains.
        """
        return dict(self.clocks)

    def rearm(self) -> "GSan":
        """Reset all shadow state, keeping the attached observers.

        The model checker re-runs one scenario once per explored
        schedule; re-arming between branches lets a sanitizer that is
        already wired into a registry (or a restored checkpoint) start
        the next branch with virgin clocks, tracks, and violations.
        """
        self.clocks = {agent: 0 for agent in AGENTS}
        self.events = 0
        self.violations = []
        self.defended_races = 0
        self._timelines = {}
        self._slots = {}
        self._invocations = {}
        self._tasks = {}
        self._scans = {}
        self._halted = {}
        self._finished = False
        return self

    def _flag(self, rule: str, scope: str, t: float, message: str) -> None:
        """Record one violation, marking the newest scoped event."""
        timeline = list(self._timelines.get(scope, ()))
        if timeline:
            t_ev, name, args, agent, _ = timeline[-1]
            timeline[-1] = (t_ev, name, args, agent, True)
        self.violations.append(
            Violation(rule, scope, t, message, timeline, dict(self.clocks))
        )

    # -- vector clocks -----------------------------------------------------

    def _snapshot(self) -> Dict[str, int]:
        return dict(self.clocks)

    def _join(self, agent: str, release: Dict[str, int]) -> None:
        """Acquire: the reader inherits the publisher's causal past."""
        for key, value in release.items():
            if value > self.clocks[key]:
                self.clocks[key] = value
        self.clocks[agent] += 1

    # -- slot protocol -----------------------------------------------------

    def _slot(self, index: int) -> _SlotTrack:
        track = self._slots.get(index)
        if track is None:
            track = self._slots[index] = _SlotTrack()
        return track

    def _on_slot_transition(self, t: float, agent: str, values: Tuple) -> None:
        slot_index, old, new, actor = values
        scope = f"slot:{slot_index}"
        track = self._slot(slot_index)
        if track.state != old:
            self._flag(
                "slot-state", scope, t,
                f"slot {slot_index} reported edge {old} -> {new} but its "
                f"last published state was {track.state} (skipped or "
                f"reordered transition)",
            )
        owners = SLOT_EDGES.get((old, new))
        if owners is None:
            self._flag(
                "slot-state", scope, t,
                f"slot {slot_index}: {old} -> {new} is not an edge of the "
                f"Figure-6 state machine (actor {actor})",
            )
        elif actor not in owners:
            self._flag(
                "wrong-agent", scope, t,
                f"slot {slot_index}: edge {old} -> {new} belongs to "
                f"{'/'.join(owners)}, but {actor} drove it",
            )
        track.state = new
        track.last_actor = actor
        track.last_op = f"{old}->{new}"
        # Release/acquire bookkeeping.
        if new == "populating" and old == "free":
            track.generation += 1
            track.release_ready = None
            track.release_finished = None
        elif new == "ready":
            track.release_ready = self._snapshot()
        elif old == "ready" and new == "processing":
            if track.release_ready is None:
                self._flag(
                    "acquire-before-release", scope, t,
                    f"slot {slot_index}: CPU read the payload (READY -> "
                    f"PROCESSING) but no READY publish is in its causal past",
                )
            else:
                self._join(actor, track.release_ready)
                track.release_ready = None
        if new == "finished":
            track.release_finished = self._snapshot()
        elif old == "finished" and new == "free":
            if track.release_finished is None:
                self._flag(
                    "acquire-before-release", scope, t,
                    f"slot {slot_index}: GPU consumed the result (FINISHED "
                    f"-> FREE) but no FINISHED publish is in its causal past",
                )
            else:
                self._join(actor, track.release_finished)
                track.release_finished = None

    def _on_protocol_error(self, t: float, agent: str, values: Tuple) -> None:
        slot_index, op, actor, detail = values
        track = self._slot(slot_index)
        track.last_actor = actor
        track.last_op = op
        if op == "reclaim" or (op == "finish" and "stale finish" in detail):
            # Either half of the watchdog/finish collision: a reclaim
            # refused because the worker got there first, or a finish
            # refused because the watchdog did.
            track.reclaim_raced = True
        if op == "finish" and "stale finish" in detail:
            # The defended watchdog race: the stale write was *refused*,
            # which is the protocol working, not breaking.
            self.defended_races += 1
            return
        scope = f"slot:{slot_index}"
        rule = "wrong-agent" if "belongs to" in detail else "protocol-error"
        self._flag(rule, scope, t, f"{detail} (op={op}, actor={actor})")

    # -- invocation lifecycle ---------------------------------------------

    def _invocation(self, invocation_id: int) -> _InvocationTrack:
        track = self._invocations.get(invocation_id)
        if track is None:
            track = self._invocations[invocation_id] = _InvocationTrack()
        return track

    def _on_claim(self, t: float, agent: str, values: Tuple) -> None:
        invocation_id, name, hw_id, lane, granularity, blocking, wait = values
        track = self._invocation(invocation_id)
        track.name = name
        track.blocking = bool(blocking)
        track.claimed = True

    def _on_submit(self, t: float, agent: str, values: Tuple) -> None:
        granularity, invocation_id, name, hw_id, blocking = values
        if invocation_id is None:
            return
        track = self._invocation(invocation_id)
        track.name = name
        track.blocking = bool(blocking)
        track.submitted = True
        track.release_submit = self._snapshot()

    def _on_dispatch(self, t: float, agent: str, values: Tuple) -> None:
        name, hw_id, invocation_id = values
        scope = f"inv:{invocation_id}"
        track = self._invocations.get(invocation_id)
        # A claim is causal evidence the GPU side originated this
        # invocation: syscall.submit is fired by note_issued, a GPU
        # accounting op scheduled *after* the real READY swap, so a
        # fast CPU scan can legitimately dispatch a claimed slot
        # before the submit fire lands.  Only a dispatch for an
        # invocation the GPU never touched at all is a true
        # read-before-publish.
        if track is None or not (track.claimed or track.submitted):
            self._flag(
                "acquire-before-release", scope, t,
                f"invocation {invocation_id} ({name}) was dispatched on the "
                f"CPU before its READY publish (syscall.submit) happened",
            )
            track = self._invocation(invocation_id)
            track.name = name
        elif track.release_submit is not None:
            self._join("cpu", track.release_submit)
        if track.completions:
            self._flag(
                "invocation-lifecycle", scope, t,
                f"invocation {invocation_id} ({name}) was dispatched again "
                f"after it already completed",
            )

    def _complete_once(
        self, t: float, invocation_id: int, name: str, kind: str, publisher: str
    ) -> None:
        scope = f"inv:{invocation_id}"
        track = self._invocations.get(invocation_id)
        if track is None:
            self._flag(
                "invocation-lifecycle", scope, t,
                f"invocation {invocation_id} ({name}) completed ({kind}) "
                f"without ever being submitted",
            )
            track = self._invocation(invocation_id)
            track.name = name
        track.completions += 1
        if track.completions > 1:
            self._flag(
                "duplicate-completion", scope, t,
                f"invocation {invocation_id} ({name}) completed more than "
                f"once ({track.completion_kind} then {kind}) — completion "
                f"must be exactly-once",
            )
        track.completion_kind = kind
        track.release_complete = self._snapshot()

    def _on_complete(self, t: float, agent: str, values: Tuple) -> None:
        name, hw_id, service_ns, invocation_id, blocking = values
        self._complete_once(t, invocation_id, name, "complete", "cpu")
        self._invocations[invocation_id].blocking = bool(blocking)

    def _on_reclaim(self, t: float, agent: str, values: Tuple) -> None:
        invocation_id, name, slot_index, was_state = values
        track = self._slot(slot_index)
        track.last_actor = "watchdog"
        track.last_op = "reclaim"
        track.reclaim_raced = True
        self._complete_once(t, invocation_id, name, "reclaim", "watchdog")

    def _on_resume(self, t: float, agent: str, values: Tuple) -> None:
        invocation_id, name, hw_id = values
        scope = f"inv:{invocation_id}"
        track = self._invocations.get(invocation_id)
        if track is None or track.completions == 0:
            self._flag(
                "acquire-before-release", scope, t,
                f"invocation {invocation_id} ({name}) resumed its caller "
                f"before any completion was published",
            )
            return
        assert track.release_complete is not None
        self._join("gpu", track.release_complete)
        track.resumed = True

    # -- workqueue lifecycle ----------------------------------------------

    def _on_wq_enqueue(self, t: float, agent: str, values: Tuple) -> None:
        backlog, task_index = values
        if task_index in self._tasks:
            self._flag(
                "wq-lifecycle", f"task:{task_index}", t,
                f"task {task_index} was enqueued twice",
            )
            return
        self._tasks[task_index] = _TaskTrack()

    def _on_wq_dequeue(self, t: float, agent: str, values: Tuple) -> None:
        worker_id, task_index = values
        scope = f"task:{task_index}"
        track = self._tasks.get(task_index)
        if track is None:
            self._flag(
                "wq-lifecycle", scope, t,
                f"worker {worker_id} picked up task {task_index} which was "
                f"never enqueued",
            )
            track = self._tasks[task_index] = _TaskTrack()
        elif track.state == "picked":
            self._flag(
                "wq-lifecycle", scope, t,
                f"task {task_index} was picked up twice with no watchdog "
                f"requeue in between",
            )
        elif track.state == "done":
            self._flag(
                "wq-lifecycle", scope, t,
                f"task {task_index} was picked up again after completing",
            )
        track.state = "picked"
        track.dequeues += 1

    def _on_wq_complete(self, t: float, agent: str, values: Tuple) -> None:
        worker_id, service_ns, task_index = values
        scope = f"task:{task_index}"
        track = self._tasks.get(task_index)
        if track is None or track.state == "queued":
            self._flag(
                "wq-lifecycle", scope, t,
                f"task {task_index} completed without being picked up",
            )
            track = self._tasks.setdefault(task_index, _TaskTrack())
        elif track.state == "done":
            self._flag(
                "duplicate-completion", scope, t,
                f"task {task_index} completed twice",
            )
        track.state = "done"

    def _on_requeue(self, t: float, agent: str, values: Tuple) -> None:
        task_index, worker_id = values
        scope = f"task:{task_index}"
        track = self._tasks.get(task_index)
        if track is None or track.state != "picked":
            self._flag(
                "wq-lifecycle", scope, t,
                f"watchdog requeued task {task_index} which was not stuck "
                f"at a worker",
            )
            track = self._tasks.setdefault(task_index, _TaskTrack())
        track.state = "queued"
        track.requeues += 1
        track.pending_forfeits += 1

    def _on_forfeit(self, t: float, agent: str, values: Tuple) -> None:
        task_index, worker_id = values
        scope = f"task:{task_index}"
        track = self._tasks.get(task_index)
        if track is None or track.pending_forfeits <= 0:
            self._flag(
                "wq-lifecycle", scope, t,
                f"worker {worker_id} forfeited task {task_index} without a "
                f"superseding requeue (epoch never bumped)",
            )
            return
        track.pending_forfeits -= 1

    def _on_scan_enqueue(self, t: float, agent: str, values: Tuple) -> None:
        scan_id, hw_ids = values
        self._scans.setdefault(scan_id, False)

    def _on_scan_start(self, t: float, agent: str, values: Tuple) -> None:
        scan_id, hw_ids = values
        scope = f"scan:{scan_id}"
        started = self._scans.get(scan_id)
        if started is None:
            self._flag(
                "wq-lifecycle", scope, t,
                f"scan {scan_id} started but was never enqueued",
            )
        elif started:
            self._flag(
                "wq-lifecycle", scope, t,
                f"scan {scan_id} started twice",
            )
        self._scans[scan_id] = True

    # -- wavefront wakeups -------------------------------------------------

    def _on_wf_halt(self, t: float, agent: str, values: Tuple) -> None:
        hw_id, live_lanes = values
        if self._halted.get(hw_id):
            self._flag(
                "lost-wakeup", f"wf:{hw_id}", t,
                f"wavefront {hw_id} halted twice without an intervening "
                f"resume",
            )
        self._halted[hw_id] = True

    def _on_wf_resume(self, t: float, agent: str, values: Tuple) -> None:
        hw_id, halted_ns = values
        if not self._halted.get(hw_id):
            self._flag(
                "lost-wakeup", f"wf:{hw_id}", t,
                f"wavefront {hw_id} resumed without being halted",
            )
        self._halted[hw_id] = False

    # -- end-of-run audit --------------------------------------------------

    def finish(self) -> List[Violation]:
        """Run the end-of-run audits; returns *all* violations so far.

        Call after the workload drained (or after a bounded drain timed
        out): anything still open — an invocation with no completion, a
        halted wavefront, a non-FREE slot, an unfinished task — is a
        liveness violation.
        """
        if self._finished:
            return self.violations
        self._finished = True
        t = self.registry.now() if self.registry is not None else 0.0
        for invocation_id, track in self._invocations.items():
            name = track.name or "?"
            if track.completions == 0:
                self._flag(
                    "lost-completion", f"inv:{invocation_id}", t,
                    f"invocation {invocation_id} ({name}) was submitted but "
                    f"never completed or reclaimed",
                )
            elif track.blocking and not track.resumed:
                self._flag(
                    "lost-wakeup", f"inv:{invocation_id}", t,
                    f"blocking invocation {invocation_id} ({name}) completed "
                    f"({track.completion_kind}) but its caller never resumed",
                )
        for hw_id, halted in self._halted.items():
            if halted:
                self._flag(
                    "lost-wakeup", f"wf:{hw_id}", t,
                    f"wavefront {hw_id} is still halted at end of run — "
                    f"its wakeup was lost",
                )
        for slot_index, track in self._slots.items():
            if track.state != "free":
                holder = (
                    f"last driven by {track.last_actor} ({track.last_op})"
                    if track.last_actor is not None
                    else "never driven by any agent"
                )
                raced = (
                    "; a watchdog reclaim raced this slot"
                    if track.reclaim_raced
                    else ""
                )
                self._flag(
                    "slot-leak", f"slot:{slot_index}", t,
                    f"slot {slot_index} ended the run in state "
                    f"{track.state}, not FREE — {holder}{raced}",
                )
        for task_index, track in self._tasks.items():
            if track.state != "done":
                self._flag(
                    "task-lost", f"task:{task_index}", t,
                    f"workqueue task {task_index} ended the run "
                    f"{track.state}, never completed",
                )
        for scan_id, started in self._scans.items():
            if not started:
                self._flag(
                    "task-lost", f"scan:{scan_id}", t,
                    f"scan {scan_id} was enqueued but never started",
                )
        return self.violations

    # -- reporting / export protocol --------------------------------------

    def rules_hit(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return dict(sorted(counts.items()))

    def report(self) -> str:
        """Every violation's rendered timeline, or a clean bill."""
        if not self.violations:
            return (
                f"GSan: {self.events} events checked, 0 violations "
                f"({self.defended_races} defended stale-finish races)"
            )
        blocks = [violation.render() for violation in self.violations]
        blocks.append(
            f"GSan: {self.events} events checked, "
            f"{len(self.violations)} violation(s): "
            + ", ".join(f"{k}={v}" for k, v in self.rules_hit().items())
        )
        return "\n\n".join(blocks)

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "schema": GSAN_SNAPSHOT_SCHEMA,
            "events": self.events,
            "violations": len(self.violations),
            "rules": self.rules_hit(),
            "defended_races": self.defended_races,
            "clocks": dict(self.clocks),
        }

    def series(self) -> list:
        return []


class GSanPlan:
    """A global attach plan: one fresh :class:`GSan` per built System.

    Install with ``probes.install_global_plan(plan)`` before running an
    experiment; every ``System.__init__`` then gets its own sanitizer
    (experiments may build several systems, whose slot/task index
    spaces are independent).
    """

    def __init__(self, max_timeline: int = 64) -> None:
        self.max_timeline = max_timeline
        self.sanitizers: List[GSan] = []

    def __call__(self, registry: ProbeRegistry) -> None:
        self.sanitizers.append(GSan(max_timeline=self.max_timeline).install(registry))

    def finish(self) -> List[Violation]:
        return [v for sanitizer in self.sanitizers for v in sanitizer.finish()]

    @property
    def violations(self) -> List[Violation]:
        return [v for sanitizer in self.sanitizers for v in sanitizer.violations]

    @property
    def events(self) -> int:
        return sum(sanitizer.events for sanitizer in self.sanitizers)
