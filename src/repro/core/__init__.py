"""GENESYS: the generic GPU system-call interface (the paper's core).

Public surface:

* :class:`~repro.core.genesys.Genesys` — the runtime wiring a GPU to the
  OS kernel through the shared-memory syscall area, interrupts,
  coalescing, and OS worker threads (paper Figure 2 / Section VI).
* :class:`~repro.core.invocation.Granularity`, ``Ordering``, ``WaitMode``
  — the design space of Section V.
* :class:`~repro.core.device_api.DeviceApi` — what kernel code sees as
  ``ctx.sys``: POSIX-named calls with per-invocation granularity,
  ordering, blocking, and wait-mode control.
* :mod:`~repro.core.classification` — the Section-IV classification of
  all Linux system calls.
"""

from repro.core.coalescing import CoalescingConfig
from repro.core.device_api import DeviceApi
from repro.core.genesys import Genesys, GenesysError, OrderingError
from repro.core.invocation import (
    Granularity,
    Ordering,
    SyscallKind,
    SyscallRequest,
    WaitMode,
)
from repro.core.syscall_area import Slot, SlotState, SlotStateError, SyscallArea

__all__ = [
    "CoalescingConfig",
    "DeviceApi",
    "Genesys",
    "GenesysError",
    "Granularity",
    "Ordering",
    "OrderingError",
    "Slot",
    "SlotState",
    "SlotStateError",
    "SyscallArea",
    "SyscallKind",
    "SyscallRequest",
    "WaitMode",
]
