"""The GPU system-call design space (paper Section V).

Three orthogonal axes govern every invocation:

* **Granularity** — per work-item, per work-group (one designated
  caller, barriers around it), or per kernel (a single caller for the
  whole launch).
* **Ordering** — strong (all in-scope work-items finish pre-call work
  before the call; none proceed until it returns) or relaxed (drop the
  barrier on the side the data flow does not require).
* **Blocking** — whether the caller waits for completion at all.

Relaxed ordering drops one of the two work-group barriers depending on
whether the call *produces* data for the GPU (read-like: keep the
post-call barrier) or *consumes* data from it (write-like: keep the
pre-call barrier) — Section V-A's producer/consumer analysis.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Dict, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.oskernel.process import OsProcess


class Granularity(Enum):
    WORK_ITEM = "work-item"
    WORK_GROUP = "work-group"
    KERNEL = "kernel"


class Ordering(Enum):
    STRONG = "strong"
    RELAXED = "relaxed"


class WaitMode(Enum):
    """How a blocked invocation waits for CPU completion (Section V-C)."""

    POLL = "poll"
    HALT_RESUME = "halt-resume"


class SyscallKind(Enum):
    """Data-flow direction of a call, for relaxed-ordering barrier
    placement."""

    PRODUCER = "producer"  # returns data the GPU consumes (read-like)
    CONSUMER = "consumer"  # takes data the GPU produced (write-like)


#: Which implemented syscalls are producers vs consumers.
SYSCALL_KINDS: Dict[str, SyscallKind] = {
    "open": SyscallKind.PRODUCER,
    "read": SyscallKind.PRODUCER,
    "pread": SyscallKind.PRODUCER,
    "lseek": SyscallKind.PRODUCER,
    "recvfrom": SyscallKind.PRODUCER,
    "getrusage": SyscallKind.PRODUCER,
    "mmap": SyscallKind.PRODUCER,
    "ioctl": SyscallKind.PRODUCER,
    "socket": SyscallKind.PRODUCER,
    "bind": SyscallKind.PRODUCER,
    "close": SyscallKind.CONSUMER,
    "write": SyscallKind.CONSUMER,
    "pwrite": SyscallKind.CONSUMER,
    "sendto": SyscallKind.CONSUMER,
    "munmap": SyscallKind.CONSUMER,
    "madvise": SyscallKind.CONSUMER,
    "rt_sigqueueinfo": SyscallKind.CONSUMER,
}


def syscall_kind(name: str) -> SyscallKind:
    """Kind of ``name``; unknown calls default to PRODUCER (the safe
    choice: their results are awaited)."""
    return SYSCALL_KINDS.get(name, SyscallKind.PRODUCER)


class SyscallRequest:
    """One system-call request as stored in a syscall-area slot.

    Mirrors the slot contents of the paper's Figure 5: syscall number
    (name here), up to six arguments, and the blocking bit; the
    ``args`` field doubles as the return-value storage on completion.
    ``invocation_id`` is the machine-unique id GENESYS mints at submit
    time; span tracing (:mod:`repro.tracing`) uses it to join the
    GPU-side and CPU-side halves of one invocation's journey.
    """

    MAX_ARGS = 6

    __slots__ = (
        "name",
        "args",
        "blocking",
        "proc",
        "issued_at",
        "invocation_id",
        "deadline_ns",
        "priority",
    )

    def __init__(
        self,
        name: str,
        args: Tuple[Any, ...],
        blocking: bool,
        proc: "OsProcess",
        issued_at: Optional[float] = None,
        invocation_id: Optional[int] = None,
        deadline_ns: Optional[float] = None,
        priority: int = 0,
    ) -> None:
        if len(args) > self.MAX_ARGS:
            raise ValueError(
                f"syscall {name!r}: {len(args)} args exceeds the "
                f"{self.MAX_ARGS}-argument slot format"
            )
        self.name = name
        self.args = args
        self.blocking = blocking
        self.proc = proc
        self.issued_at = issued_at
        self.invocation_id = invocation_id
        #: Absolute sim-time deadline after which servicing the call is
        #: wasted work (QoS layer); ``None`` means no deadline.
        self.deadline_ns = deadline_ns
        #: Priority class; higher values shed *later* under brownout.
        self.priority = priority

    def __repr__(self) -> str:
        mode = "blocking" if self.blocking else "non-blocking"
        return f"SyscallRequest({self.name!r}, {len(self.args)} args, {mode})"
