"""The device-side system-call API (what kernel code sees as ``ctx.sys``).

Every POSIX call is available with per-invocation control over the
Section-V design axes::

    n = yield from ctx.sys.pread(fd, buf, count, offset,
                                 granularity=Granularity.WORK_GROUP,
                                 ordering=Ordering.RELAXED,
                                 blocking=True,
                                 wait=WaitMode.POLL)

All methods are sub-generators composed of the primitive GPU ops, so
claiming the slot costs a cmp-swap, populating it costs real stores, the
state change costs a swap, polling costs atomic-loads against the L2,
and halting costs the resume latency — the Table-IV / Figure-9 effects
arise from the same code path the workloads use.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, NoReturn, Optional, Tuple, TYPE_CHECKING

from repro.core.invocation import (
    Granularity,
    Ordering,
    SyscallKind,
    SyscallRequest,
    WaitMode,
    syscall_kind,
)
from repro.core.syscall_area import Slot, SlotState
from repro.gpu.ops import Atomic, Barrier, Do, L1Flush, MemWrite, Sleep, WaitAll
from repro.memory.buffers import Buffer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.genesys import Genesys
    from repro.gpu.hierarchy import WorkItemCtx
    from repro.gpu.wavefront import Wavefront


class SyscallHandle:
    """Returned by non-blocking invocations: completion can be checked
    (but the paper's model is fire-and-forget plus a host-side drain)."""

    __slots__ = ("slot", "request")

    def __init__(self, slot: Slot, request: SyscallRequest) -> None:
        self.slot = slot
        self.request = request

    @property
    def done(self) -> bool:
        completion = self.slot.completion
        return bool(completion and completion.triggered)


class _SlotOps:
    """Pre-built op objects for one work-item's fixed syscall slot.

    The slot protocol yields the same op sequence on every invocation
    (same addresses, same latencies); op objects are immutable to the
    executor, so building them once per work-item makes the claim and
    poll loops allocation-free without changing what is yielded — every
    poll still issues its atomic-load through the L2/DRAM cost model.
    """

    __slots__ = (
        "slot",
        "claim_cas",
        "try_claim",
        "poll_sleep",
        "populate_write",
        "publish_swap",
        "set_ready",
        "note_issued",
        "sendmsg",
        "raise_irq",
        "poll_load",
        "read_state",
        "get_completion",
        "consume",
        "pending_request",
        "populate_do",
    )

    def __init__(
        self, genesys: "Genesys", slot: Slot, hw_id: int, cfg: Any
    ) -> None:
        self.slot = slot
        self.claim_cas = Atomic("cmp-swap", slot.addr)
        self.try_claim = Do(slot.try_claim)
        self.poll_sleep = Sleep(cfg.poll_interval_ns)
        self.populate_write = MemWrite(slot.addr, cfg.cacheline_bytes)
        self.publish_swap = Atomic("swap", slot.addr)
        self.set_ready = Do(slot.set_ready)
        self.note_issued: Dict[Granularity, Do] = {
            g: Do(lambda g=g: genesys.note_issued(g, slot)) for g in Granularity
        }
        self.sendmsg = Sleep(cfg.sendmsg_ns)
        self.raise_irq = Do(lambda: genesys.raise_interrupt(hw_id, slot))
        self.poll_load = Atomic("atomic-load", slot.addr)
        self.read_state = Do(lambda: slot.state)
        self.get_completion = Do(lambda: slot.completion)
        self.consume = Do(slot.consume)
        # The one per-invocation variable in the protocol is the request
        # itself; it travels through this cell so the populate op can be
        # pre-built like every other op instead of allocating a fresh
        # Do + closure on each invocation.
        self.pending_request: Optional[SyscallRequest] = None
        self.populate_do = Do(self._populate_pending)

    def _populate_pending(self) -> None:
        request, self.pending_request = self.pending_request, None
        self.slot.populate(request)

    def __getstate__(self) -> NoReturn:
        raise TypeError(
            "_SlotOps is a per-work-item op cache and is never pickled: "
            "DeviceApi.__getstate__ drops it and the next invoke rebuilds it"
        )


class DeviceApi:
    def __init__(
        self, genesys: "Genesys", ctx: "WorkItemCtx", wavefront: "Wavefront"
    ) -> None:
        self._genesys = genesys
        self._ctx = ctx
        self._wavefront = wavefront
        self._config = genesys.config
        self._seq = 0
        self._ops: Optional[_SlotOps] = None

    def __getstate__(self) -> dict:
        # _SlotOps caches per-granularity closures (unpicklable); it is a
        # pure cache, rebuilt lazily by the next _raw_invoke.
        state = self.__dict__.copy()
        state["_ops"] = None
        return state

    # -- the generic entry point ----------------------------------------------

    def invoke(
        self,
        name: str,
        *args: Any,
        granularity: Granularity = Granularity.WORK_ITEM,
        ordering: Ordering = Ordering.STRONG,
        blocking: bool = True,
        wait: WaitMode = WaitMode.POLL,
        priority: int = 0,
    ) -> Generator[Any, Any, Any]:
        """Sub-generator: invoke syscall ``name`` with the given strategy.

        Returns the call's result for blocking invocations reaching this
        work-item (see below), a :class:`SyscallHandle` for non-blocking
        ones, and ``None`` for work-items that merely cooperate:

        * WORK_ITEM — every work-item invokes for itself (implies strong
          ordering: the caller itself is ordered around its own call).
        * WORK_GROUP — the group leader (local id 0) invokes; barriers
          surround the call per ``ordering``; producer results are
          published to the whole group, consumer results only reach the
          leader.
        * KERNEL — the kernel leader (global id 0) invokes for the whole
          launch; requires relaxed ordering (strong would deadlock).
        """
        kind = syscall_kind(name)
        if granularity is Granularity.WORK_ITEM:
            result = yield from self._raw_invoke(
                name, args, blocking, wait, granularity, priority
            )
            return result
        if granularity is Granularity.WORK_GROUP:
            result = yield from self._workgroup_invoke(
                name, args, kind, ordering, blocking, wait, priority
            )
            return result
        if granularity is Granularity.KERNEL:
            result = yield from self._kernel_invoke(
                name, args, ordering, blocking, wait, priority
            )
            return result
        raise ValueError(f"unknown granularity {granularity!r}")

    # -- granularity strategies ---------------------------------------------

    def _workgroup_invoke(
        self,
        name: str,
        args: Tuple[Any, ...],
        kind: SyscallKind,
        ordering: Ordering,
        blocking: bool,
        wait: WaitMode,
        priority: int = 0,
    ) -> Generator[Any, Any, Any]:
        self._seq += 1
        key = ("sysres", self._seq)
        group = self._ctx.group
        pre_barrier = ordering is Ordering.STRONG or kind is SyscallKind.CONSUMER
        post_barrier = ordering is Ordering.STRONG or kind is SyscallKind.PRODUCER
        if pre_barrier:
            yield Barrier()
        if self._ctx.is_group_leader:
            result = yield from self._raw_invoke(
                name, args, blocking, wait, Granularity.WORK_GROUP, priority
            )
            group.shared[key] = result
        if post_barrier:
            yield Barrier()
            return group.shared.get(key)
        # Relaxed consumer: only the leader observes the return value.
        return group.shared.get(key) if self._ctx.is_group_leader else None

    def _kernel_invoke(
        self,
        name: str,
        args: Tuple[Any, ...],
        ordering: Ordering,
        blocking: bool,
        wait: WaitMode,
        priority: int = 0,
    ) -> Generator[Any, Any, Any]:
        from repro.core.genesys import OrderingError

        if ordering is Ordering.STRONG:
            raise OrderingError(
                "strong ordering at kernel granularity can deadlock: a kernel "
                "may hold more work-items than can execute concurrently and "
                "GPU runtimes do not preempt (Section V-A)"
            )
        if not self._ctx.is_kernel_leader:
            return None
        result = yield from self._raw_invoke(
            name, args, blocking, wait, Granularity.KERNEL, priority
        )
        self._ctx.kernel.shared[("sysres", name)] = result
        return result

    # -- the slot protocol (Figure 6, GPU side) --------------------------------

    def _raw_invoke(
        self,
        name: str,
        args: Tuple[Any, ...],
        blocking: bool,
        wait: WaitMode,
        granularity: Granularity,
        priority: int = 0,
    ) -> Generator[Any, Any, Any]:
        genesys = self._genesys
        # Circuit-breaker fast-fail (repro.qos): a tripped breaker turns
        # the whole slot-protocol round trip into an immediate -EBUSY,
        # before an invocation id is even minted — the shed costs the
        # GPU nothing and the CPU kernel never hears about it.
        if blocking and genesys.hook_qos_invoke.active:
            verdict = genesys.hook_qos_invoke.decide(None, name)
            if verdict:
                genesys.qos_fast_fails += 1
                return -int(verdict)
        ops = self._ops
        if ops is None:
            ops = self._ops = _SlotOps(
                genesys,
                genesys.area.slot_for(self._wavefront.hw_id, self._ctx.lane),
                self._wavefront.hw_id,
                self._config,
            )
        slot = ops.slot
        # Retry loop: each attempt is a full slot-protocol round trip
        # with its own invocation id, so retries cost real simulated ops
        # and show up as separate invocations in spans.  ``attempt``
        # only advances when a blocking call returns a transient errno
        # the retry policy accepts; the fault-free path runs the body
        # exactly once, byte-identical to the loop-free design.
        attempt = 0
        while True:
            # Mint the invocation id (and fire the tracing origin mark) in
            # plain Python between ops: the lane's op stream — and therefore
            # every simulated timestamp — is identical traced or not.
            invocation_id = genesys.begin_invocation(
                name, self._wavefront.hw_id, self._ctx.lane, granularity, blocking, wait
            )
            request = SyscallRequest(
                name,
                args,
                blocking,
                genesys.host_process,
                issued_at=None,
                invocation_id=invocation_id,
                deadline_ns=genesys.mint_deadline(name),
                priority=priority,
            )

            # Claim: cmp-swap until the slot is FREE (a previous non-blocking
            # call of ours may still be in flight — invocation is delayed).
            while True:
                yield ops.claim_cas
                claimed = yield ops.try_claim
                if claimed:
                    break
                yield ops.poll_sleep

            # Consumer calls hand GPU-written buffers to the CPU: flush the
            # non-coherent L1 so the CPU sees the data (Section VI).
            if syscall_kind(name) is SyscallKind.CONSUMER:
                for arg in args:
                    if isinstance(arg, Buffer):
                        yield L1Flush(arg.addr, arg.size)

            # Populate the 64-byte slot, then publish with an atomic swap.
            ops.pending_request = request
            yield ops.populate_do
            yield ops.populate_write
            yield ops.publish_swap
            yield ops.set_ready
            yield ops.note_issued[granularity]

            # Interrupt the CPU (s_sendmsg scalar instruction).
            yield ops.sendmsg
            yield ops.raise_irq

            if not blocking:
                return SyscallHandle(slot, request)

            if wait is WaitMode.POLL:
                while True:
                    yield ops.poll_load
                    state = yield ops.read_state
                    if state is SlotState.FINISHED:
                        break
                    yield ops.poll_sleep
            else:
                completion = yield ops.get_completion
                yield WaitAll([completion])

            # The caller proceeds: the tracing resume mark, fired inline at
            # the instant the work-item's next op is requested (after any
            # halt-resume charge), again without adding an op.
            if genesys.tp_resume.enabled:
                genesys.tp_resume.fire(invocation_id, name, self._wavefront.hw_id)

            # Consume the result and free the slot (FINISHED -> FREE).
            yield ops.publish_swap
            result = yield ops.consume
            if genesys.retry_decision(name, result, attempt):
                attempt += 1
                genesys.syscall_retries += 1
                backoff_ns = genesys.retry_backoff_ns(attempt)
                if genesys.tp_retry.enabled:
                    genesys.tp_retry.fire(
                        invocation_id, name, -result, attempt, backoff_ns
                    )
                yield Sleep(backoff_ns)
                continue
            return result

    # -- POSIX-named conveniences ------------------------------------------------

    def open(self, path: str, flags: int = 0, **opts: Any) -> Generator[Any, Any, Any]:
        result = yield from self.invoke("open", path, flags, **opts)
        return result

    def close(self, fd: int, **opts: Any) -> Generator[Any, Any, Any]:
        result = yield from self.invoke("close", fd, **opts)
        return result

    def read(self, fd: int, buf: Buffer, count: int, **opts: Any) -> Generator[Any, Any, Any]:
        result = yield from self.invoke("read", fd, buf, count, **opts)
        return result

    def write(self, fd: int, buf: Buffer, count: int, **opts: Any) -> Generator[Any, Any, Any]:
        result = yield from self.invoke("write", fd, buf, count, **opts)
        return result

    def pread(self, fd: int, buf: Buffer, count: int, offset: int, **opts: Any) -> Generator[Any, Any, Any]:
        result = yield from self.invoke("pread", fd, buf, count, offset, **opts)
        return result

    def pwrite(self, fd: int, buf: Buffer, count: int, offset: int, **opts: Any) -> Generator[Any, Any, Any]:
        result = yield from self.invoke("pwrite", fd, buf, count, offset, **opts)
        return result

    def lseek(self, fd: int, offset: int, whence: int, **opts: Any) -> Generator[Any, Any, Any]:
        result = yield from self.invoke("lseek", fd, offset, whence, **opts)
        return result

    def socket(self, host: str = "localhost", **opts: Any) -> Generator[Any, Any, Any]:
        result = yield from self.invoke("socket", host, **opts)
        return result

    def bind(self, fd: int, port: int, **opts: Any) -> Generator[Any, Any, Any]:
        result = yield from self.invoke("bind", fd, port, **opts)
        return result

    def sendto(self, fd: int, buf: Buffer, count: int, dest: Tuple[str, int], **opts: Any) -> Generator[Any, Any, Any]:
        result = yield from self.invoke("sendto", fd, buf, count, dest, **opts)
        return result

    def recvfrom(self, fd: int, buf: Buffer, count: int, **opts: Any) -> Generator[Any, Any, Any]:
        result = yield from self.invoke("recvfrom", fd, buf, count, **opts)
        return result

    def mmap(self, length: int, fd: Optional[int] = None, offset: int = 0, **opts: Any) -> Generator[Any, Any, Any]:
        result = yield from self.invoke("mmap", length, fd, offset, **opts)
        return result

    def munmap(self, addr: int, length: int, **opts: Any) -> Generator[Any, Any, Any]:
        result = yield from self.invoke("munmap", addr, length, **opts)
        return result

    def madvise(self, addr: int, length: int, advice: int, **opts: Any) -> Generator[Any, Any, Any]:
        result = yield from self.invoke("madvise", addr, length, advice, **opts)
        return result

    def getrusage(self, **opts: Any) -> Generator[Any, Any, Any]:
        result = yield from self.invoke("getrusage", **opts)
        return result

    def rt_sigqueueinfo(self, pid: int, signo: int, value: int, **opts: Any) -> Generator[Any, Any, Any]:
        result = yield from self.invoke("rt_sigqueueinfo", pid, signo, value, **opts)
        return result

    def ioctl(self, fd: int, cmd: int, arg: Any = None, **opts: Any) -> Generator[Any, Any, Any]:
        result = yield from self.invoke("ioctl", fd, cmd, arg, **opts)
        return result
