"""The GENESYS runtime: GPU system-call request/response machinery.

Implements the five steps of the paper's Figure 2:

1. the GPU work-item places call arguments in its syscall-area slot,
2. it interrupts the CPU with its wavefront's hardware ID (s_sendmsg),
3. the interrupt handler (after optional coalescing) enqueues a
   workqueue task; an OS worker thread scans the wavefront's slots and
   flips READY requests to PROCESSING,
4. the worker executes each call against the Linux substrate in the
   invoking process's context and writes results back to the slot,
5. the slot flips to FINISHED (blocking) or FREE (non-blocking) and the
   waiting work-item is woken — by its poll loop observing the state or
   by a halt-resume message.

Construct one :class:`Genesys` per simulated machine; it installs the
device API onto every work-item the GPU starts.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Generator, List, Optional, Set, Tuple

from repro.core.coalescing import CoalescingConfig, Coalescer
from repro.core.invocation import Granularity, SyscallRequest, WaitMode
from repro.core.syscall_area import Slot, SlotState, SyscallArea
from repro.gpu.device import Gpu
from repro.gpu.hierarchy import WorkItemCtx
from repro.gpu.wavefront import Wavefront
from repro.machine import MachineConfig
from repro.memory.system import MemorySystem
from repro.oskernel.errors import Errno, OsError
from repro.oskernel.linux import LinuxKernel
from repro.oskernel.process import OsProcess
from repro.oskernel.workqueue import DrainTimeout
from repro.probes.tracepoints import ProbeRegistry
from repro.sim.engine import Event, Simulator, _TimerHandle

#: Sanity ceilings for the sysfs coalescing knobs: a window beyond ten
#: simulated seconds or a batch beyond the whole syscall area is a typo,
#: not a tuning choice.
MAX_WINDOW_NS = 10_000_000_000.0
MAX_BATCH = 65536


class GenesysError(RuntimeError):
    """Misuse of the GENESYS interface."""


class OrderingError(GenesysError):
    """Strong ordering requested where it can deadlock the GPU.

    Kernels can hold more work-items than can be co-resident and GPU
    runtimes do not preempt, so strong ordering at kernel granularity
    risks deadlock (Section V-A); GENESYS rejects it outright.
    """


class Genesys:
    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        linux: LinuxKernel,
        gpu: Gpu,
        memsystem: MemorySystem,
        host_process: OsProcess,
        coalescing: Optional[CoalescingConfig] = None,
        slot_stride_bytes: int = 64,
        probes: Optional[ProbeRegistry] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.linux = linux
        self.gpu = gpu
        self.memsystem = memsystem
        self.host_process = host_process
        self.probes = probes if probes is not None else ProbeRegistry(sim)
        self.area = SyscallArea(
            sim, config, memsystem, slot_stride_bytes, probes=self.probes
        )
        self.coalescing = coalescing or CoalescingConfig()
        self.coalescer = Coalescer(
            sim, self.coalescing, flush_fn=self._enqueue_scan, probes=self.probes
        )
        self.tp_submit = self.probes.tracepoint(
            "syscall.submit",
            ("granularity", "invocation_id", "name", "hw_id", "blocking"),
            "a GPU work-item published a READY syscall request",
        )
        self.tp_inflight = self.probes.tracepoint(
            "syscall.inflight",
            ("outstanding",),
            "gauge: invocations in flight after an issue or completion",
        )
        self.tp_dispatch = self.probes.tracepoint(
            "syscall.dispatch",
            ("name", "hw_id", "invocation_id"),
            "a worker flipped a slot READY -> PROCESSING",
        )
        self.tp_complete = self.probes.tracepoint(
            "syscall.complete",
            ("name", "hw_id", "service_ns", "invocation_id", "blocking"),
            "a syscall finished servicing; service_ns = PROCESSING time",
        )
        # Span-grade fire sites (repro.tracing): each carries the
        # invocation_id minted by begin_invocation so one invocation's
        # journey can be joined across the GPU- and CPU-side halves.
        self.tp_claim = self.probes.tracepoint(
            "syscall.claim",
            ("invocation_id", "name", "hw_id", "lane", "granularity", "blocking", "wait"),
            "a work-item started claiming its syscall-area slot",
        )
        self.tp_irq = self.probes.tracepoint(
            "syscall.irq",
            ("invocation_id", "hw_id", "suppressed"),
            "an invocation signalled the CPU (suppressed: a scan for its "
            "wavefront was already queued, so no new interrupt was raised)",
        )
        self.tp_resume = self.probes.tracepoint(
            "syscall.resume",
            ("invocation_id", "name", "hw_id"),
            "a blocking caller observed completion and proceeded",
        )
        self.tp_scan_enqueue = self.probes.tracepoint(
            "scan.enqueue",
            ("scan_id", "hw_ids"),
            "a coalesced bundle was submitted to the workqueue as one scan task",
        )
        self.tp_scan_start = self.probes.tracepoint(
            "scan.start",
            ("scan_id", "hw_ids"),
            "a worker thread began executing a scan task",
        )
        # Fault-injection decision points (consulted only when a
        # FaultPlan or test attached a program) and the recovery
        # tracepoints the watchdog machinery fires.
        self.hook_fault_errno = self.probes.hook(
            "fault.errno",
            ("name", "invocation_id"),
            "return an Errno to fail this dispatch transiently (before "
            "the syscall body runs), or None to execute normally",
        )
        self.tp_fault_errno = self.probes.tracepoint(
            "fault.errno.injected",
            ("name", "errno", "invocation_id"),
            "a transient errno was injected at dispatch",
        )
        self.hook_fault_slot = self.probes.hook(
            "fault.slot",
            ("hw_id", "slot_index", "name"),
            "return 'wedge' to strand the slot in PROCESSING, 'corrupt' to "
            "replace the result with -EIO, or None for a clean completion",
        )
        self.tp_fault_slot = self.probes.tracepoint(
            "fault.slot.injected",
            ("action", "slot_index", "name"),
            "an injected slot fault was applied (wedge or corrupt)",
        )
        self.hook_watchdog = self.probes.hook(
            "genesys.watchdog",
            ("period_ns",),
            "override the watchdog period (ns; 0 disables) for the next arm",
        )
        self.hook_slot_timeout = self.probes.hook(
            "genesys.slot_timeout",
            ("timeout_ns",),
            "override the stuck-slot reclaim timeout (ns; 0 disables)",
        )
        self.hook_worker_timeout = self.probes.hook(
            "genesys.worker_timeout",
            ("timeout_ns",),
            "override the stalled-worker requeue timeout (ns; 0 disables)",
        )
        self.hook_retry = self.probes.hook(
            "genesys.retry",
            ("name", "result", "attempt"),
            "override the GPU-side retry decision for a failed blocking call",
        )
        self.tp_retry = self.probes.tracepoint(
            "syscall.retry",
            ("invocation_id", "name", "errno", "attempt", "backoff_ns"),
            "a blocking caller got a transient errno and will retry after "
            "capped exponential backoff",
        )
        self.tp_degraded = self.probes.tracepoint(
            "recover.degraded",
            ("hw_ids",),
            "watchdog fell back to polling-scan servicing (missed interrupt)",
        )
        self.tp_reclaim = self.probes.tracepoint(
            "recover.slot_reclaim",
            ("invocation_id", "name", "slot_index", "was_state"),
            "watchdog reclaimed a stuck slot with -ETIMEDOUT",
        )
        # QoS decision points (repro.qos).  All dormant by default: no
        # deadline is minted, nothing sheds, and the no-plan path stays
        # byte-identical.
        self.hook_qos_deadline = self.probes.hook(
            "qos.deadline",
            ("name",),
            "override the deadline delta (ns; 0 = none) minted for an "
            "invocation of this syscall",
        )
        self.hook_qos_invoke = self.probes.hook(
            "qos.invoke",
            ("name",),
            "return an Errno to fast-fail this blocking invocation on the "
            "GPU side before submission (circuit breaker), or None to admit",
        )
        self.tp_shed = self.probes.tracepoint(
            "qos.shed",
            ("stage", "reason", "invocation_id", "name", "slot_index"),
            "a request was shed at a stage boundary instead of serviced "
            "(reason: deadline or priority)",
        )
        self._scan_suppressed: Set[int] = set()
        self.outstanding = 0
        self._all_complete: Optional[Event] = None
        self.invocation_counts: Dict[Granularity, int] = {g: 0 for g in Granularity}
        self.interrupts_sent = 0
        self.syscalls_completed = 0
        #: Monotonic invocation-id mint (see begin_invocation) and the
        #: scan-task mint used to join workqueue waits to bundles.
        self._next_invocation_id = 0
        self._next_scan_id = 0
        #: (name, hw_wavefront_id, start_ns, end_ns) per serviced call —
        #: consumed by repro.traceviz for timeline export.  Optionally
        #: bounded: ``completion_log_limit`` > 0 keeps only the newest
        #: entries (knob: /sys/genesys/completion_log_limit) and counts
        #: everything discarded in ``completion_log_dropped``.
        self.completion_log: Deque[Tuple[str, int, float, float]] = deque()
        self.completion_log_limit = 0
        self.completion_log_dropped = 0
        # -- recovery knobs and state (watchdog off by default: the
        # happy path stays byte-identical to the watchdog-free design).
        #: Watchdog period in ns; 0 disables (knob:
        #: /sys/genesys/watchdog_period_ns, hook: genesys.watchdog).
        self.watchdog_period_ns = 0.0
        #: Age past which a READY/PROCESSING slot is reclaimed with
        #: -ETIMEDOUT; 0 disables reclaim (rescan still runs).
        self.slot_timeout_ns = 2_000_000.0
        #: Age past which a picked-but-unstarted workqueue task is
        #: requeued and its worker presumed stalled or dead.
        self.worker_timeout_ns = 500_000.0
        #: GPU-side retry/backoff for transient errnos (Section V
        #: blocking semantics): base doubles per attempt up to the cap.
        self.retry_base_ns = 2_000.0
        self.retry_cap_ns = 64_000.0
        self.max_syscall_retries = 6
        self.retryable_errnos = frozenset(
            {int(Errno.EINTR), int(Errno.EAGAIN)}
        )
        self.degraded = 0
        self.slots_reclaimed = 0
        self.watchdog_ticks = 0
        self.syscall_retries = 0
        # -- QoS state (repro.qos).  Defaults keep the stack policy-free:
        #: default deadline delta minted per invocation (ns; 0 = none,
        #: knob: /sys/genesys/qos/deadline_ns, hook: qos.deadline).
        self.qos_deadline_ns = 0.0
        #: requests with priority below this floor are shed at dispatch
        #: (brownout level 3 raises it; 0 sheds nothing).
        self.qos_priority_floor = 0
        #: gate for an attached brownout controller (knob:
        #: /sys/genesys/qos/brownout; 0 pins the controller at level 0).
        self.qos_brownout_enabled = 1
        self.syscalls_shed = 0
        self.qos_fast_fails = 0
        self.polled_scans = 0
        self.sheds_by_stage: Dict[str, int] = {}
        self._watchdog_handle: Optional[_TimerHandle] = None
        self._last_progress: Optional[Tuple[int, int, int, int, int]] = None
        gpu.workitem_binder = self._bind_workitem
        linux.interrupts.register_handler(self._bottom_half)
        self._register_sysfs()

    def _register_sysfs(self) -> None:
        """Expose the coalescing knobs through sysfs (Section VI:
        "GENESYS uses Linux's sysfs interface to communicate coalescing
        parameters") — readable and writable as ordinary files.

        The knobs are clients of the ``coalesce.window`` /
        ``coalesce.batch`` policy hooks: a validated write updates the
        default those decision points start from, and any attached
        policy program may still override it per bundle.  Malformed
        writes fail with EINVAL exactly as a real sysfs store would.
        """
        fs = self.linux.fs
        if not fs.exists("/sys/genesys"):
            fs.mkdir("/sys/genesys")
        coalescing = self.coalescing

        def set_window(raw: bytes) -> None:
            text = raw.strip()
            try:
                value = float(text)
            except (ValueError, UnicodeDecodeError):
                raise OsError(
                    Errno.EINVAL, f"coalescing_window_ns: not a number: {text!r}"
                ) from None
            if value != value or value < 0:  # NaN or negative
                raise OsError(
                    Errno.EINVAL, f"coalescing_window_ns: must be >= 0, got {value!r}"
                )
            if value > MAX_WINDOW_NS:
                raise OsError(
                    Errno.EINVAL,
                    f"coalescing_window_ns: {value!r} exceeds {MAX_WINDOW_NS:.0f}",
                )
            coalescing.window_ns = value

        def set_batch(raw: bytes) -> None:
            text = raw.strip()
            try:
                value = int(text)
            except (ValueError, UnicodeDecodeError):
                raise OsError(
                    Errno.EINVAL, f"coalescing_max_batch: not an integer: {text!r}"
                ) from None
            if value < 1:
                raise OsError(
                    Errno.EINVAL, f"coalescing_max_batch: must be >= 1, got {value}"
                )
            if value > MAX_BATCH:
                raise OsError(
                    Errno.EINVAL, f"coalescing_max_batch: {value} exceeds {MAX_BATCH}"
                )
            coalescing.max_batch = value

        fs.bind_dynamic_file(
            "/sys/genesys/coalescing_window_ns",
            lambda: b"%d\n" % int(coalescing.window_ns),
            write_fn=set_window,
        )
        fs.bind_dynamic_file(
            "/sys/genesys/coalescing_max_batch",
            lambda: b"%d\n" % coalescing.max_batch,
            write_fn=set_batch,
        )

        def set_log_limit(raw: bytes) -> None:
            text = raw.strip()
            try:
                value = int(text)
            except (ValueError, UnicodeDecodeError):
                raise OsError(
                    Errno.EINVAL, f"completion_log_limit: not an integer: {text!r}"
                ) from None
            if value < 0:
                raise OsError(
                    Errno.EINVAL, f"completion_log_limit: must be >= 0, got {value}"
                )
            self.set_completion_log_limit(value)

        fs.bind_dynamic_file(
            "/sys/genesys/completion_log_limit",
            lambda: b"%d\n" % self.completion_log_limit,
            write_fn=set_log_limit,
        )

        def _parse_period(knob: str, raw: bytes) -> float:
            text = raw.strip()
            try:
                value = float(text)
            except (ValueError, UnicodeDecodeError):
                raise OsError(Errno.EINVAL, f"{knob}: not a number: {text!r}") from None
            if value != value or value < 0:  # NaN or negative
                raise OsError(Errno.EINVAL, f"{knob}: must be >= 0, got {value!r}")
            if value > MAX_WINDOW_NS:
                raise OsError(
                    Errno.EINVAL, f"{knob}: {value!r} exceeds {MAX_WINDOW_NS:.0f}"
                )
            return value

        def set_watchdog(raw: bytes) -> None:
            self.watchdog_period_ns = _parse_period("watchdog_period_ns", raw)
            # Start supervising immediately if work is already in flight
            # (otherwise the next submission arms the timer).
            if self.outstanding > 0 or self.linux.workqueue.outstanding > 0:
                self._arm_watchdog()

        def set_slot_timeout(raw: bytes) -> None:
            self.slot_timeout_ns = _parse_period("slot_timeout_ns", raw)

        def set_worker_timeout(raw: bytes) -> None:
            self.worker_timeout_ns = _parse_period("worker_timeout_ns", raw)

        fs.bind_dynamic_file(
            "/sys/genesys/watchdog_period_ns",
            lambda: b"%d\n" % int(self.watchdog_period_ns),
            write_fn=set_watchdog,
        )
        fs.bind_dynamic_file(
            "/sys/genesys/slot_timeout_ns",
            lambda: b"%d\n" % int(self.slot_timeout_ns),
            write_fn=set_slot_timeout,
        )
        fs.bind_dynamic_file(
            "/sys/genesys/worker_timeout_ns",
            lambda: b"%d\n" % int(self.worker_timeout_ns),
            write_fn=set_worker_timeout,
        )

        # QoS knobs live in their own directory; same validation
        # discipline as the coalescing knobs above.
        if not fs.exists("/sys/genesys/qos"):
            fs.mkdir("/sys/genesys/qos")

        def set_qos_deadline(raw: bytes) -> None:
            self.qos_deadline_ns = _parse_period("qos/deadline_ns", raw)

        def set_qos_admission(raw: bytes) -> None:
            self.linux.net.sojourn_budget_ns = _parse_period("qos/admission", raw)

        def set_qos_brownout(raw: bytes) -> None:
            text = raw.strip()
            try:
                value = float(text)
            except (ValueError, UnicodeDecodeError):
                raise OsError(
                    Errno.EINVAL, f"qos/brownout: not a number: {text!r}"
                ) from None
            if value != value or value < 0:  # NaN or negative
                raise OsError(
                    Errno.EINVAL, f"qos/brownout: must be 0 or 1, got {value!r}"
                )
            if value > 1:
                raise OsError(Errno.EINVAL, f"qos/brownout: {value!r} exceeds 1")
            self.qos_brownout_enabled = int(value)

        fs.bind_dynamic_file(
            "/sys/genesys/qos/deadline_ns",
            lambda: b"%d\n" % int(self.qos_deadline_ns),
            write_fn=set_qos_deadline,
        )
        fs.bind_dynamic_file(
            "/sys/genesys/qos/admission",
            lambda: b"%d\n" % int(self.linux.net.sojourn_budget_ns),
            write_fn=set_qos_admission,
        )
        fs.bind_dynamic_file(
            "/sys/genesys/qos/brownout",
            lambda: b"%d\n" % self.qos_brownout_enabled,
            write_fn=set_qos_brownout,
        )

    # -- GPU-side hooks -----------------------------------------------------

    def _bind_workitem(self, ctx: WorkItemCtx, wavefront: Wavefront) -> None:
        from repro.core.device_api import DeviceApi

        ctx.sys = DeviceApi(self, ctx, wavefront)

    def begin_invocation(
        self,
        name: str,
        hw_id: int,
        lane: int,
        granularity: Granularity,
        blocking: bool,
        wait: WaitMode,
    ) -> int:
        """Mint the invocation id for one syscall submission.

        Called inline (between GPU ops, never as one) at the start of the
        slot-claim sequence, so minting adds no op to the lane's stream;
        the ``syscall.claim`` fire is the invocation's t0 when tracing is
        attached.
        """
        self._next_invocation_id += 1
        invocation_id = self._next_invocation_id
        if self.tp_claim.enabled:
            self.tp_claim.fire(
                invocation_id,
                name,
                hw_id,
                lane,
                granularity.value,
                blocking,
                wait.value,
            )
        return invocation_id

    def note_issued(self, granularity: Granularity, slot: Optional[Slot] = None) -> None:
        self.outstanding += 1
        self.invocation_counts[granularity] += 1
        if self.tp_inflight.enabled:
            self.tp_inflight.fire(self.outstanding)
        if self._watchdog_handle is None:
            self._arm_watchdog()
        if self.tp_submit.enabled:
            request = slot.request if slot is not None else None
            if request is not None:
                self.tp_submit.fire(
                    granularity.value,
                    request.invocation_id,
                    request.name,
                    slot.index // self.area.width,
                    request.blocking,
                )
            else:
                self.tp_submit.fire(granularity.value, None, None, None, None)

    def raise_interrupt(self, hw_wavefront_id: int, slot: Optional[Slot] = None) -> None:
        """Step 2: GPU interrupts the CPU (called at GPU time via a Do op).

        One scan task per wavefront is enough to service every READY slot
        of that wavefront, so interrupts are suppressed while a scan for
        the same hardware ID is already queued.
        """
        suppressed = hw_wavefront_id in self._scan_suppressed
        if self.tp_irq.enabled and slot is not None and slot.request is not None:
            self.tp_irq.fire(
                slot.request.invocation_id, hw_wavefront_id, suppressed
            )
        if suppressed:
            return
        self._scan_suppressed.add(hw_wavefront_id)
        self.interrupts_sent += 1
        self.linux.interrupts.raise_irq(hw_wavefront_id)

    # -- QoS: deadlines and shedding ----------------------------------------

    def mint_deadline(self, name: str) -> Optional[float]:
        """The absolute deadline for an invocation of ``name`` starting
        now, or None when no deadline policy is in force.

        The default delta is ``qos_deadline_ns`` (knob:
        /sys/genesys/qos/deadline_ns); a ``qos.deadline`` program may
        override it per syscall name (returning 0 exempts the call).
        """
        delta = self.qos_deadline_ns
        if self.hook_qos_deadline.active:
            delta = self.hook_qos_deadline.decide(delta, name)
        if not delta or delta <= 0:
            return None
        return self.sim.now + float(delta)

    def _shed_slot(self, slot: Slot, stage: str, reason: str) -> None:
        """Complete a READY slot with -ETIME instead of servicing it.

        Runs the ordinary slot protocol (READY -> PROCESSING -> done) so
        waiting work-items wake exactly as for a served call and GSan
        sees a legal, exactly-once completion — just with zero service
        time and a dead-on-arrival result.
        """
        request = slot.start_processing()
        hw_id = slot.index // self.area.width
        if self.tp_dispatch.enabled:
            self.tp_dispatch.fire(request.name, hw_id, request.invocation_id)
        if not slot.finish(-int(Errno.ETIME), expected=request):
            return
        self.syscalls_shed += 1
        self.sheds_by_stage[stage] = self.sheds_by_stage.get(stage, 0) + 1
        self._note_completion()
        if self.tp_shed.enabled:
            self.tp_shed.fire(
                stage, reason, request.invocation_id, request.name, slot.index
            )
        if self.tp_complete.enabled:
            self.tp_complete.fire(
                request.name, hw_id, 0.0, request.invocation_id, request.blocking
            )

    def _shed_expired(self, hw_wavefront_id: int, stage: str) -> Tuple[int, int]:
        """Shed every expired READY slot of one wavefront.

        Returns ``(shed, live)``: how many slots were shed and how many
        READY slots remain.  Cheap when no deadlines are minted — the
        per-slot check is a None test.
        """
        now = self.sim.now
        shed = 0
        live = 0
        for slot in self.area.slots_of(hw_wavefront_id):
            if slot.state is not SlotState.READY:
                continue
            request = slot.request
            if (
                request is not None
                and request.deadline_ns is not None
                and now > request.deadline_ns
            ):
                self._shed_slot(slot, stage, "deadline")
                shed += 1
                continue
            live += 1
        return shed, live

    # -- CPU-side path ------------------------------------------------------

    def _bottom_half(self, hw_wavefront_id: int) -> None:
        """Step 3a: the timed interrupt handler hands off to the coalescer.

        Coalesce-admit shed stage: requests already past deadline are
        completed with -ETIME here, before they cost a bundle slot; if
        that empties the wavefront's READY set, no scan is queued and
        the interrupt suppression lifts so the next request signals
        afresh.
        """
        shed, live = self._shed_expired(hw_wavefront_id, "coalesce")
        if shed and live == 0:
            self._scan_suppressed.discard(hw_wavefront_id)
            return
        self.coalescer.add(hw_wavefront_id)

    def _enqueue_scan(self, hw_ids: List[int]) -> None:
        """Step 3b: a coalesced bundle becomes one workqueue task."""
        self._next_scan_id += 1
        scan_id = self._next_scan_id
        if self.tp_scan_enqueue.enabled:
            self.tp_scan_enqueue.fire(scan_id, tuple(hw_ids))
        # Transient task record: the backlog must drain before a
        # checkpoint is legal, so this closure never reaches a pickle.
        self.linux.workqueue.submit(  # lint: allow(SLOT002)
            lambda: self._scan_task(scan_id, list(hw_ids))
        )

    def _scan_task(self, scan_id: int, hw_ids: List[int]) -> Generator[Any, Any, None]:
        """Steps 3c-5: worker thread scans slots and services the calls.

        All calls in the bundle run sequentially on this one worker —
        the implicit serialisation cost of coalescing.
        """
        if self.tp_scan_start.enabled:
            self.tp_scan_start.fire(scan_id, tuple(hw_ids))
        cpu = self.linux.cpu
        # Workqueue-pickup shed stage: anything that expired while the
        # bundle waited in the queue is dropped before we pay the
        # context switch for it.
        for hw_id in hw_ids:
            self._shed_expired(hw_id, "pickup")
        # Adopt the context of the process that launched the kernel
        # (Section VI: syscalls execute outside the invoking context).
        yield from cpu.run(self.config.context_switch_ns)
        for hw_id in hw_ids:
            self._scan_suppressed.discard(hw_id)
            for slot in self.area.slots_of(hw_id):
                if slot.state is not SlotState.READY:
                    continue
                # Dispatch shed stage: servicing earlier calls of the
                # bundle advanced the clock, and brownout may have
                # raised the priority floor since submission.
                pending = slot.request
                if pending is not None:
                    if (
                        pending.deadline_ns is not None
                        and self.sim.now > pending.deadline_ns
                    ):
                        self._shed_slot(slot, "dispatch", "deadline")
                        continue
                    if pending.priority < self.qos_priority_floor:
                        self._shed_slot(slot, "dispatch", "priority")
                        continue
                request = slot.start_processing()
                started_at = self.sim.now
                if self.tp_dispatch.enabled:
                    self.tp_dispatch.fire(request.name, hw_id, request.invocation_id)
                yield from cpu.run(self.config.syscall_base_ns)
                injected_errno: Any = None
                if self.hook_fault_errno.active:
                    injected_errno = self.hook_fault_errno.decide(
                        None, request.name, request.invocation_id
                    )
                if injected_errno:
                    # Transient failure injected at dispatch: the syscall
                    # body never runs, so a GPU-side retry of the whole
                    # invocation is side-effect free.
                    result = -int(injected_errno)
                    if self.tp_fault_errno.enabled:
                        self.tp_fault_errno.fire(
                            request.name, int(injected_errno), request.invocation_id
                        )
                else:
                    result = yield from self.linux.execute(
                        request.proc, request.name, request.args
                    )
                slot_action: Any = None
                if self.hook_fault_slot.active:
                    slot_action = self.hook_fault_slot.decide(
                        None, hw_id, slot.index, request.name
                    )
                if slot_action == "wedge":
                    # The completion write never lands: the slot stays
                    # PROCESSING until the watchdog reclaims it with
                    # -ETIMEDOUT and surfaces that to the wavefront.
                    if self.tp_fault_slot.enabled:
                        self.tp_fault_slot.fire("wedge", slot.index, request.name)
                    continue
                if slot_action == "corrupt":
                    if self.tp_fault_slot.enabled:
                        self.tp_fault_slot.fire("corrupt", slot.index, request.name)
                    result = -int(Errno.EIO)
                # Write the result back through the shared memory path.
                yield from self.memsystem.dram.cpu_access(self.config.cacheline_bytes)
                if self.area.shares_cacheline(slot):
                    # Packed layout ablation: the CPU's write ping-pongs the
                    # line away from the GPU L2, so every neighbouring
                    # poller misses to DRAM (the false-sharing cost the
                    # one-slot-per-line design avoids).
                    self.memsystem.l2.invalidate(
                        slot.addr // self.config.cacheline_bytes
                    )
                if not slot.finish(result, expected=request):
                    # The watchdog reclaimed (and possibly reused) the
                    # slot while we were servicing it; the reclaim did
                    # the completion bookkeeping, so a second completion
                    # here would double-count.
                    continue
                self._note_completion()
                self.syscalls_completed += 1
                if self.completion_log_limit and (
                    len(self.completion_log) >= self.completion_log_limit
                ):
                    self.completion_log.popleft()
                    self.completion_log_dropped += 1
                self.completion_log.append(
                    (request.name, hw_id, started_at, self.sim.now)
                )
                if self.tp_complete.enabled:
                    self.tp_complete.fire(
                        request.name,
                        hw_id,
                        self.sim.now - started_at,
                        request.invocation_id,
                        request.blocking,
                    )

    def _note_completion(self) -> None:
        """One invocation reached a definite status (serviced or reclaimed)."""
        self.outstanding -= 1
        if self.tp_inflight.enabled:
            self.tp_inflight.fire(self.outstanding)
        if self.outstanding == 0 and self._all_complete is not None:
            event, self._all_complete = self._all_complete, None
            event.succeed()

    # -- watchdog / recovery -------------------------------------------------

    def _effective_watchdog_period(self) -> float:
        period = self.watchdog_period_ns
        if self.hook_watchdog.active:
            period = self.hook_watchdog.decide(period)
        return period

    def _arm_watchdog(self) -> None:
        """Schedule the next watchdog tick (no-op while disabled).

        The watchdog is the CPU-side supervisor the recovery paths hang
        off: each tick requeues tasks wedged at stalled/dead workers,
        reclaims slots stuck past their deadline, and — when a whole
        tick passed with zero forward progress — falls back to the
        paper's polling-scan servicing mode for READY slots whose
        interrupt evidently never arrived.
        """
        if self._watchdog_handle is not None:
            return
        period = self._effective_watchdog_period()
        if not period or period <= 0:
            return
        self._watchdog_handle = self.sim.call_later(period, self._watchdog_tick)

    def _watchdog_tick(self) -> None:
        self._watchdog_handle = None
        workqueue = self.linux.workqueue
        if self.outstanding <= 0 and workqueue.outstanding <= 0:
            # Idle: stop ticking; the next submission re-arms.
            self._last_progress = None
            return
        self.watchdog_ticks += 1
        worker_timeout = self.worker_timeout_ns
        if self.hook_worker_timeout.active:
            worker_timeout = self.hook_worker_timeout.decide(worker_timeout)
        requeued = workqueue.check_stalled(worker_timeout)
        reclaimed = self._reclaim_stuck_slots()
        progress = (
            self.syscalls_completed,
            self.slots_reclaimed,
            workqueue.completed,
            workqueue.backlog,
            self.outstanding,
        )
        if progress == self._last_progress and not requeued and not reclaimed:
            # A whole period with no movement anywhere: assume a lost
            # interrupt and scan READY slots directly (degraded mode).
            self._degraded_rescan()
        self._last_progress = progress
        self._arm_watchdog()

    def _reclaim_stuck_slots(self) -> int:
        """Force slots stuck in READY/PROCESSING past their limit to a
        definite error status, waking their waiting work-items.

        Two independent limits apply: the age-based ``slot_timeout_ns``
        (-ETIMEDOUT, as before) and the invocation's own QoS deadline
        (-ETIME) — a wedged slot whose deadline passed is reclaimed even
        when the age timeout is disabled.  ``Slot.reclaim`` returning
        the abandoned request exactly once (and ``finish`` refusing a
        stale write-back) keeps the completion single even when a
        dawdling worker races the reclaim.
        """
        timeout = self.slot_timeout_ns
        if self.hook_slot_timeout.active:
            timeout = self.hook_slot_timeout.decide(timeout)
        aged_enabled = bool(timeout and timeout > 0)
        now = self.sim.now
        count = 0
        for slot in self.area.materialized():
            if slot.state not in (SlotState.READY, SlotState.PROCESSING):
                continue
            pending = slot.request
            expired = (
                pending is not None
                and pending.deadline_ns is not None
                and now > pending.deadline_ns
            )
            aged = aged_enabled and now - slot.last_transition_ns >= timeout
            if not expired and not aged:
                continue
            was_state = slot.state.value
            retval = -int(Errno.ETIME) if expired else -int(Errno.ETIMEDOUT)
            request = slot.reclaim(retval)
            if request is None:
                continue
            count += 1
            self.slots_reclaimed += 1
            # A reclaimed READY slot usually means its interrupt was
            # lost; drop the suppression so the wavefront's next call
            # raises a fresh one instead of waiting on a ghost scan.
            self._scan_suppressed.discard(slot.index // self.area.width)
            self._note_completion()
            if self.tp_reclaim.enabled:
                self.tp_reclaim.fire(
                    request.invocation_id, request.name, slot.index, was_state
                )
        return count

    def _degraded_rescan(self) -> int:
        """Missed-interrupt fallback: enqueue scans for every wavefront
        with READY slots, bypassing the interrupt path entirely."""
        hw_ids = sorted(
            {
                slot.index // self.area.width
                for slot in self.area.materialized()
                if slot.state is SlotState.READY
            }
        )
        if not hw_ids:
            return 0
        self.degraded += 1
        if self.tp_degraded.enabled:
            self.tp_degraded.fire(tuple(hw_ids))
        self._enqueue_scan(hw_ids)
        return len(hw_ids)

    def poll_scan(self) -> int:
        """Polling-mode servicing pass: enqueue one scan covering every
        wavefront with READY slots, bypassing the interrupt path.

        The brownout controller's interrupt->polling degradation (the
        paper's Fig 9/13 tradeoff made dynamic) calls this on its tick
        while the ``irq.mode`` hook suppresses top halves.
        """
        hw_ids = sorted(
            {
                slot.index // self.area.width
                for slot in self.area.materialized()
                if slot.state is SlotState.READY
            }
        )
        if not hw_ids:
            return 0
        self.polled_scans += 1
        self._enqueue_scan(hw_ids)
        return len(hw_ids)

    # -- GPU-side retry policy ----------------------------------------------

    def retry_decision(self, name: str, result: Any, attempt: int) -> bool:
        """Should a blocking call that returned ``result`` be retried?

        Default: yes for the transient errnos (EINTR/EAGAIN) while under
        the attempt cap.  The ``genesys.retry`` hook may override — e.g.
        a chaos plan injecting ENOMEM widens the retryable set.
        """
        default = (
            isinstance(result, int)
            and result < 0
            and -result in self.retryable_errnos
            and attempt < self.max_syscall_retries
        )
        if self.hook_retry.active:
            return bool(self.hook_retry.decide(default, name, result, attempt))
        return default

    def retry_backoff_ns(self, attempt: int) -> float:
        """Capped exponential backoff for retry ``attempt`` (1-based)."""
        return min(self.retry_cap_ns, self.retry_base_ns * (2 ** (attempt - 1)))

    # -- host-side services --------------------------------------------------

    def set_completion_log_limit(self, limit: int) -> None:
        """Bound ``completion_log`` to the newest ``limit`` entries.

        ``limit`` == 0 restores the unbounded default.  Shrinking below
        the current length discards the oldest entries immediately and
        counts them as dropped, exactly as the append path would have.
        """
        if limit < 0:
            raise ValueError(f"completion_log_limit must be >= 0, got {limit}")
        self.completion_log_limit = limit
        if limit:
            while len(self.completion_log) > limit:
                self.completion_log.popleft()
                self.completion_log_dropped += 1

    def _when_no_outstanding(self) -> Event:
        """An event that fires when ``outstanding`` next reaches zero."""
        if self.outstanding == 0:
            event = self.sim.event(name="genesys-drained")
            event.succeed()
            return event
        if self._all_complete is None:
            self._all_complete = self.sim.event(name="genesys-drained")
        return self._all_complete

    def drain(self, timeout: Optional[float] = None) -> Generator[Any, Any, None]:
        """Process body: wait until all issued GPU syscalls completed.

        The paper's Section IX: a host-side call that must run before
        process termination because non-blocking GPU syscalls can outlive
        the GPU thread (and even the kernel) that issued them.

        Event-driven: sleeps on completion events instead of ticking, but
        re-checks on the historical 1 µs polling grid (anchored at the
        call, advanced by repeated addition exactly as the busy-wait loop
        did) so observed completion times are bit-identical.

        With ``timeout`` (simulated ns) the wait is bounded: if
        invocations or workqueue tasks are still in flight at the
        deadline, a :class:`DrainTimeout` is raised listing the stuck
        slots and tasks instead of hanging the event loop forever.
        """
        from repro.sim.engine import AnyOf

        workqueue = self.linux.workqueue
        sim = self.sim
        deadline = None if timeout is None else sim.now + timeout
        next_tick = sim.now
        while self.outstanding > 0 or workqueue.outstanding > 0:
            if deadline is None:
                if self.outstanding > 0:
                    yield self._when_no_outstanding()
                else:
                    yield workqueue.when_idle()
            else:
                if sim.now >= deadline:
                    raise DrainTimeout(
                        f"drain: {self.outstanding} invocation(s) and "
                        f"{workqueue.outstanding} workqueue task(s) still in "
                        f"flight after {timeout:.0f}ns",
                        stuck=self.stuck_report(),
                    )
                pending = (
                    self._when_no_outstanding()
                    if self.outstanding > 0
                    else workqueue.when_idle()
                )
                yield AnyOf([pending, sim.wake_at(deadline, name="drain-deadline")])
            while next_tick < sim.now:
                next_tick += 1000.0
            if next_tick > sim.now:
                yield sim.wake_at(next_tick, name="drain-grid")

    def stuck_report(self) -> List[str]:
        """Descriptions of every non-FREE slot and unfinished workqueue
        task, for DrainTimeout diagnostics."""
        stuck: List[str] = []
        for slot in self.area.materialized():
            if slot.state is SlotState.FREE:
                continue
            request = slot.request
            name = request.name if request is not None else "?"
            invocation = request.invocation_id if request is not None else "?"
            stuck.append(
                f"slot#{slot.index} {slot.state.value} name={name} "
                f"invocation={invocation} since={slot.last_transition_ns:.0f}ns"
            )
        stuck.extend(self.linux.workqueue.stuck_report())
        return stuck

    def stats(self) -> Dict[str, Any]:
        return {
            "interrupts_sent": self.interrupts_sent,
            "syscalls_completed": self.syscalls_completed,
            "outstanding": self.outstanding,
            "bundles": self.coalescer.bundles_flushed,
            "mean_bundle_size": self.coalescer.mean_bundle_size,
            "invocations": {g.value: n for g, n in self.invocation_counts.items()},
            "syscall_counts": dict(self.linux.syscall_counts),
            "completion_log_dropped": self.completion_log_dropped,
            "degraded": self.degraded,
            "slots_reclaimed": self.slots_reclaimed,
            "watchdog_ticks": self.watchdog_ticks,
            "syscall_retries": self.syscall_retries,
            "syscalls_shed": self.syscalls_shed,
            "sheds_by_stage": {
                stage: self.sheds_by_stage[stage]
                for stage in sorted(self.sheds_by_stage)
            },
            "qos_fast_fails": self.qos_fast_fails,
            "polled_scans": self.polled_scans,
            "slot_protocol_errors": self.area.protocol_errors,
            "net": self.linux.net.stats(),
        }
