"""The syscall area: per-work-item slots in shared memory.

Paper Section VI / Figures 5-6: a preallocated region of CPU-visible
memory holds one 64-byte slot per *active* work-item, indexed by the
hardware wavefront ID and lane.  Each slot walks the state machine

    FREE -> POPULATING -> READY -> PROCESSING -> FINISHED -> FREE
                                          \\-> FREE  (non-blocking)

with GPU-side transitions done via atomics (claim with cmp-swap, state
changes with swap) and CPU-side transitions from the worker thread.
Restricting one slot per cacheline lets atomics sidestep the
non-coherent L1s; :class:`SyscallArea` also supports a packed layout so
the false-sharing ablation can quantify why the paper did not do that.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Callable, Generator, List, Optional

from repro.core.invocation import SyscallRequest
from repro.machine import MachineConfig
from repro.memory.system import MemorySystem
from repro.probes.tracepoints import NULL_TRACEPOINT, ProbeRegistry
from repro.sim.engine import Event, Simulator

SLOT_BYTES = 64


class SlotState(Enum):
    FREE = "free"
    POPULATING = "populating"
    READY = "ready"
    PROCESSING = "processing"
    FINISHED = "finished"


#: Legal transitions and which side drives them (Figure 6: green = GPU,
#: blue = CPU).
_TRANSITIONS = {
    (SlotState.FREE, SlotState.POPULATING): "gpu",
    (SlotState.POPULATING, SlotState.READY): "gpu",
    (SlotState.READY, SlotState.PROCESSING): "cpu",
    (SlotState.PROCESSING, SlotState.FINISHED): "cpu",
    (SlotState.PROCESSING, SlotState.FREE): "cpu",  # non-blocking completion
    (SlotState.FINISHED, SlotState.FREE): "gpu",  # result consumed
}


class SlotStateError(RuntimeError):
    """An illegal slot state transition was attempted."""


class Slot:
    """One 64-byte syscall slot."""

    __slots__ = (
        "index", "addr", "state", "request", "result", "completion", "sim",
        "on_transition", "on_occupancy", "on_protocol_error", "protocol_errors",
        "last_transition_ns", "tp_transition", "_done_name",
    )

    def __init__(self, sim: Simulator, index: int, addr: int) -> None:
        self.sim = sim
        self.index = index
        self.addr = addr
        # Built once: populate() runs per invocation and must not
        # allocate a fresh name string each time.
        self._done_name = f"slot{index}-done"
        self.state = SlotState.FREE
        self.request: Optional[SyscallRequest] = None
        self.result: Any = None
        self.completion: Optional[Event] = None
        #: Optional callback(time_ns, slot, old_state, new_state, actor)
        #: for tracing the Figure-6 walk.
        self.on_transition: Optional[
            Callable[[float, "Slot", SlotState, SlotState, str], None]
        ] = None
        #: Optional callback(became_occupied) fired whenever the slot
        #: crosses the FREE boundary in either direction — the area uses
        #: it to maintain its ``slot.occupancy`` gauge.
        self.on_occupancy: Optional[Callable[[bool], None]] = None
        #: Optional callback(slot, op, actor, detail) invoked on every
        #: rejected transition — the SyscallArea wires it to the counted
        #: ``slot.protocol_error`` tracepoint.  ``actor`` names who broke
        #: the protocol ("gpu", "cpu" or "watchdog").
        self.on_protocol_error: Optional[
            Callable[["Slot", str, str, str], None]
        ] = None
        self.protocol_errors = 0
        #: When the slot last changed state (watchdog staleness input).
        self.last_transition_ns = 0.0
        #: Shared ``slot.transition`` tracepoint (area-wide), wired by
        #: :meth:`SyscallArea._slot_at`; inert by default.
        self.tp_transition = NULL_TRACEPOINT

    def _protocol_error(self, op: str, detail: str, actor: str) -> None:
        """Count (and surface) one rejected transition attempt."""
        self.protocol_errors += 1
        if self.on_protocol_error is not None:
            self.on_protocol_error(self, op, actor, detail)

    def _transition(self, new_state: SlotState, actor: str, op: str = "transition") -> None:
        edge = (self.state, new_state)
        owner = _TRANSITIONS.get(edge)
        if owner is None:
            detail = (
                f"slot {self.index}: illegal transition {self.state.value} -> "
                f"{new_state.value} by {actor}"
            )
            self._protocol_error(op, detail, actor)
            raise SlotStateError(detail)
        if owner != actor:
            detail = (
                f"slot {self.index}: transition {self.state.value} -> "
                f"{new_state.value} belongs to the {owner.upper()}, not {actor.upper()}"
            )
            self._protocol_error(op, detail, actor)
            raise SlotStateError(detail)
        old_state = self.state
        self.state = new_state
        self.last_transition_ns = self.sim.now
        if self.tp_transition.enabled:
            self.tp_transition.fire(
                self.index, old_state.value, new_state.value, actor
            )
        if self.on_occupancy is not None and (
            (old_state is SlotState.FREE) != (new_state is SlotState.FREE)
        ):
            self.on_occupancy(old_state is SlotState.FREE)
        if self.on_transition is not None:
            self.on_transition(self.sim.now, self, old_state, new_state, actor)

    # -- GPU side --------------------------------------------------------

    def try_claim(self) -> bool:
        """The cmp-swap claim: FREE -> POPULATING, or False if busy."""
        if self.state is not SlotState.FREE:
            return False
        self._transition(SlotState.POPULATING, "gpu", op="claim")
        return True

    def populate(self, request: SyscallRequest) -> None:
        if self.state is not SlotState.POPULATING:
            detail = f"slot {self.index}: populate while {self.state.value}"
            self._protocol_error("populate", detail, "gpu")
            raise SlotStateError(detail)
        self.request = request
        self.result = None
        self.completion = self.sim.event(name=self._done_name)

    def set_ready(self) -> None:
        if self.request is None:
            detail = f"slot {self.index}: READY without a request"
            self._protocol_error("set_ready", detail, "gpu")
            raise SlotStateError(detail)
        self._transition(SlotState.READY, "gpu", op="set_ready")

    def consume(self) -> Any:
        """GPU reads the result of a blocking call: FINISHED -> FREE."""
        result = self.result
        self._transition(SlotState.FREE, "gpu", op="consume")
        self.request = None
        return result

    # -- CPU side --------------------------------------------------------

    def start_processing(self) -> SyscallRequest:
        self._transition(SlotState.PROCESSING, "cpu", op="start_processing")
        assert self.request is not None
        return self.request

    def finish(
        self, result: Any, expected: Optional[SyscallRequest] = None
    ) -> bool:
        """CPU completes the call: FINISHED (blocking) or FREE.

        With ``expected`` set (the request captured at
        :meth:`start_processing`), a finish that arrives after the
        watchdog reclaimed the slot — or after it was reclaimed *and*
        reused by a newer request — is rejected instead of corrupting
        the newer occupant: the stale write is counted as a
        ``slot.protocol_error`` and ``False`` is returned so the caller
        skips its completion bookkeeping (the reclaim already did it).
        """
        if expected is not None and (
            self.request is not expected or self.state is not SlotState.PROCESSING
        ):
            self._protocol_error(
                "finish",
                f"slot {self.index}: stale finish for {expected.name!r} "
                f"(slot now {self.state.value})",
                "cpu",
            )
            return False
        if self.request is None:
            detail = f"slot {self.index}: finish without a request"
            self._protocol_error("finish", detail, "cpu")
            raise SlotStateError(detail)
        blocking = self.request.blocking
        self.result = result
        completion = self.completion
        if blocking:
            self._transition(SlotState.FINISHED, "cpu", op="finish")
        else:
            self._transition(SlotState.FREE, "cpu", op="finish")
            self.request = None
        if completion is not None and not completion.triggered:
            completion.succeed(result)
        return True

    def reclaim(self, result: Any) -> Optional[SyscallRequest]:
        """Watchdog recovery edge: force a stuck READY/PROCESSING slot
        to completion with ``result`` (typically ``-ETIMEDOUT``).

        Blocking requests land in FINISHED so the waiting work-item
        observes a definite status and consumes it through the normal
        FINISHED -> FREE edge; non-blocking ones go straight to FREE.
        Returns the request that was abandoned (``None`` if the slot
        was not actually stuck).
        """
        if self.state not in (SlotState.READY, SlotState.PROCESSING):
            self._protocol_error(
                "reclaim",
                f"slot {self.index}: reclaim while {self.state.value}",
                "watchdog",
            )
            return None
        request = self.request
        blocking = request.blocking if request is not None else False
        old_state = self.state
        self.result = result
        self.state = SlotState.FINISHED if blocking else SlotState.FREE
        self.last_transition_ns = self.sim.now
        completion = self.completion
        if not blocking:
            self.request = None
        if self.tp_transition.enabled:
            self.tp_transition.fire(
                self.index, old_state.value, self.state.value, "watchdog"
            )
        if self.on_occupancy is not None and self.state is SlotState.FREE:
            # READY/PROCESSING -> FREE: the slot just emptied.
            self.on_occupancy(False)
        if self.on_transition is not None:
            self.on_transition(self.sim.now, self, old_state, self.state, "watchdog")
        if completion is not None and not completion.triggered:
            completion.succeed(result)
        return request

    def __repr__(self) -> str:
        return f"Slot({self.index}, {self.state.value}, 0x{self.addr:x})"


class SyscallArea:
    """All slots, indexed by (hardware wavefront ID, lane).

    ``slot_stride_bytes`` defaults to one slot per cacheline (the
    paper's design); smaller strides pack multiple slots per line for
    the false-sharing ablation.
    """

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        memsystem: MemorySystem,
        slot_stride_bytes: int = SLOT_BYTES,
        probes: Optional[ProbeRegistry] = None,
    ) -> None:
        if slot_stride_bytes < 1 or SLOT_BYTES % slot_stride_bytes:
            raise ValueError(f"stride {slot_stride_bytes} must divide {SLOT_BYTES}")
        self.sim = sim
        self.config = config
        self.stride = slot_stride_bytes
        self.num_wavefronts = config.max_active_wavefronts
        self.width = config.wavefront_width
        self.num_slots = self.num_wavefronts * self.width
        self.base_addr = memsystem.alloc(
            self.num_slots * self.stride, align=config.cacheline_bytes
        )
        registry = probes if probes is not None else ProbeRegistry(sim)
        self.tp_protocol_error = registry.tracepoint(
            "slot.protocol_error",
            ("slot_index", "op", "actor", "detail"),
            "a slot rejected a double-release / out-of-order transition; "
            "actor names who attempted it (gpu/cpu/watchdog)",
        )
        self.tp_transition = registry.tracepoint(
            "slot.transition",
            ("slot_index", "old", "new", "actor"),
            "a slot walked one legal Figure-6 state-machine edge",
        )
        self.tp_occupancy = registry.tracepoint(
            "slot.occupancy",
            ("occupied", "slots"),
            "gauge: non-FREE slots in this area after a FREE-boundary "
            "crossing, out of the area's total",
        )
        #: Gauge state behind ``slot.occupancy``.
        self.occupied = 0
        self.protocol_errors = 0
        # Slots are materialised on first use: a default machine reserves
        # 40960 of them but a typical run touches a handful, and every
        # untouched slot is indistinguishable from a FREE one.  Addresses
        # are a pure function of the index, so laziness is unobservable.
        self._slots: List[Optional[Slot]] = [None] * self.num_slots

    @property
    def slots(self) -> List[Slot]:
        """All slots, materialising any not yet touched.

        Intended for whole-area instrumentation and invariant checks;
        the simulation paths use :meth:`slot_for` / :meth:`slots_of`,
        which only materialise what they return.
        """
        return [self._slot_at(i) for i in range(self.num_slots)]

    def _slot_at(self, index: int) -> Slot:
        slot = self._slots[index]
        if slot is None:
            slot = self._slots[index] = Slot(
                self.sim, index, self.base_addr + index * self.stride
            )
            slot.on_protocol_error = self._note_protocol_error
            slot.on_occupancy = self._note_occupancy
            slot.tp_transition = self.tp_transition
        return slot

    def _note_protocol_error(self, slot: Slot, op: str, actor: str, detail: str) -> None:
        self.protocol_errors += 1
        if self.tp_protocol_error.enabled:
            self.tp_protocol_error.fire(slot.index, op, actor, detail)

    def _note_occupancy(self, became_occupied: bool) -> None:
        self.occupied += 1 if became_occupied else -1
        if self.tp_occupancy.enabled:
            self.tp_occupancy.fire(self.occupied, self.num_slots)

    def materialized(self) -> List[Slot]:
        """Slots that have ever been touched (never-materialised ones
        are indistinguishable from FREE, so watchdog sweeps and
        invariant checks need only these)."""
        return [slot for slot in self._slots if slot is not None]

    @property
    def total_bytes(self) -> int:
        """Reserved footprint (the paper reports 1.25 MB for its GPU)."""
        return self.num_slots * SLOT_BYTES

    def slot_for(self, hw_wavefront_id: int, lane: int) -> Slot:
        if not 0 <= hw_wavefront_id < self.num_wavefronts:
            raise IndexError(f"hardware wavefront id {hw_wavefront_id} out of range")
        if not 0 <= lane < self.width:
            raise IndexError(f"lane {lane} out of range")
        return self._slot_at(hw_wavefront_id * self.width + lane)

    def slots_of(self, hw_wavefront_id: int) -> List[Slot]:
        """The 64 (wavefront-width) slots one CPU scan task examines."""
        start = hw_wavefront_id * self.width
        return [self._slot_at(i) for i in range(start, start + self.width)]

    def shares_cacheline(self, slot: Slot) -> bool:
        """Whether this slot's line holds other slots (packed layout)."""
        return self.stride < self.config.cacheline_bytes
