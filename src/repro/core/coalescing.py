"""Interrupt coalescing (paper Section V-B / Figure 10).

GENESYS "implements coalescing by waiting for a predetermined amount of
time in the interrupt handler before enqueueing a task to process a
system call"; two knobs — a time window and a maximum batch size — are
exposed through sysfs on the real system and through
:class:`CoalescingConfig` here.  Coalescing trades latency for
throughput and implicitly serialises the bundled calls on one worker.

Both knobs are policy-hook decision points (``coalesce.window`` /
``coalesce.batch``): the config value is the *default* each decision
starts from — which is what the sysfs ``/sys/genesys/*`` files write —
and an attached policy program may override it per bundle.  A sysfs
write and an attached ``fixed(v)`` program therefore meet at the same
decision point and produce identical behaviour (tested against the
Figure 10 sensitivity points).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.probes.tracepoints import ProbeRegistry
from repro.sim.engine import Simulator


class CoalescingConfig:
    """window_ns == 0 disables coalescing (every request is its own task)."""

    __slots__ = ("window_ns", "max_batch")

    def __init__(self, window_ns: float = 0.0, max_batch: int = 1) -> None:
        if window_ns < 0:
            raise ValueError("window must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.window_ns = window_ns
        self.max_batch = max_batch

    @property
    def enabled(self) -> bool:
        return self.window_ns > 0 and self.max_batch > 1

    def __repr__(self) -> str:
        return f"CoalescingConfig(window={self.window_ns}ns, max_batch={self.max_batch})"


class Coalescer:
    """Accumulates interrupt payloads into bundles and flushes them.

    A bundle flushes when the time window since its first member expires
    or when it reaches the batch limit, whichever is first.  Window and
    batch are decided per bundle: the configured values unless a policy
    program attached to ``coalesce.window`` / ``coalesce.batch``
    overrides them.
    """

    def __init__(
        self,
        sim: Simulator,
        config: CoalescingConfig,
        flush_fn: Callable[[List[Any]], None],
        probes: Optional[ProbeRegistry] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.flush_fn = flush_fn
        self._bundle: List[Any] = []
        self._bundle_seq = 0
        self._bundle_batch = config.max_batch
        self.bundles_flushed = 0
        self.requests_seen = 0
        registry = probes if probes is not None else ProbeRegistry(sim)
        self.tp_add = registry.tracepoint(
            "coalesce.add",
            ("payload",),
            "an interrupt payload reached the coalescer (bottom half ran)",
        )
        self.tp_flush = registry.tracepoint(
            "coalesce.flush",
            ("batch_size", "payloads"),
            "a coalesced bundle became one task",
        )
        self.hook_window = registry.hook(
            "coalesce.window",
            ("window_ns",),
            "override the coalescing window (ns) for the bundle being opened",
        )
        self.hook_batch = registry.hook(
            "coalesce.batch",
            ("max_batch",),
            "override the max batch size for the bundle being opened",
        )

    def add(self, payload: Any) -> None:
        """Add one interrupt payload (called from the handler)."""
        self.requests_seen += 1
        if self.tp_add.enabled:
            self.tp_add.fire(payload)
        if not self._bundle:
            # Opening a (potential) bundle: decide its window and batch.
            window = self.config.window_ns
            batch = self.config.max_batch
            if self.hook_window.active:
                window = self.hook_window.decide(window)
            if self.hook_batch.active:
                batch = self.hook_batch.decide(batch)
            if not (window > 0 and batch > 1):
                # Coalescing disabled: every request is its own task.
                self.flush_fn([payload])
                self.bundles_flushed += 1
                if self.tp_flush.enabled:
                    self.tp_flush.fire(1, (payload,))
                return
            self._bundle_batch = batch
            self._bundle.append(payload)
            self.sim.process(
                self._window_timer(self._bundle_seq, window), name="coalesce-timer"
            )
        else:
            self._bundle.append(payload)
        if len(self._bundle) >= self._bundle_batch:
            self._flush()

    def _window_timer(self, seq: int, window_ns: float) -> Generator[Any, Any, None]:
        yield window_ns
        # Only flush if this timer's bundle is still the open one.
        if seq == self._bundle_seq and self._bundle:
            self._flush()

    def _flush(self) -> None:
        bundle, self._bundle = self._bundle, []
        self._bundle_seq += 1
        self.bundles_flushed += 1
        if self.tp_flush.enabled:
            self.tp_flush.fire(len(bundle), tuple(bundle))
        self.flush_fn(bundle)

    @property
    def mean_bundle_size(self) -> float:
        if not self.bundles_flushed:
            return 0.0
        return self.requests_seen / self.bundles_flushed
