"""Interrupt coalescing (paper Section V-B / Figure 10).

GENESYS "implements coalescing by waiting for a predetermined amount of
time in the interrupt handler before enqueueing a task to process a
system call"; two knobs — a time window and a maximum batch size — are
exposed through sysfs on the real system and through
:class:`CoalescingConfig` here.  Coalescing trades latency for
throughput and implicitly serialises the bundled calls on one worker.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.sim.engine import Simulator


class CoalescingConfig:
    """window_ns == 0 disables coalescing (every request is its own task)."""

    __slots__ = ("window_ns", "max_batch")

    def __init__(self, window_ns: float = 0.0, max_batch: int = 1):
        if window_ns < 0:
            raise ValueError("window must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.window_ns = window_ns
        self.max_batch = max_batch

    @property
    def enabled(self) -> bool:
        return self.window_ns > 0 and self.max_batch > 1

    def __repr__(self) -> str:
        return f"CoalescingConfig(window={self.window_ns}ns, max_batch={self.max_batch})"


class Coalescer:
    """Accumulates interrupt payloads into bundles and flushes them.

    A bundle flushes when the time window since its first member expires
    or when it reaches ``max_batch`` members, whichever is first.
    """

    def __init__(
        self,
        sim: Simulator,
        config: CoalescingConfig,
        flush_fn: Callable[[List[Any]], None],
    ):
        self.sim = sim
        self.config = config
        self.flush_fn = flush_fn
        self._bundle: List[Any] = []
        self._bundle_seq = 0
        self.bundles_flushed = 0
        self.requests_seen = 0

    def add(self, payload: Any) -> None:
        """Add one interrupt payload (called from the handler)."""
        self.requests_seen += 1
        if not self.config.enabled:
            self.flush_fn([payload])
            self.bundles_flushed += 1
            return
        self._bundle.append(payload)
        if len(self._bundle) == 1:
            self.sim.process(self._window_timer(self._bundle_seq), name="coalesce-timer")
        if len(self._bundle) >= self.config.max_batch:
            self._flush()

    def _window_timer(self, seq: int) -> Generator:
        yield self.config.window_ns
        # Only flush if this timer's bundle is still the open one.
        if seq == self._bundle_seq and self._bundle:
            self._flush()

    def _flush(self) -> None:
        bundle, self._bundle = self._bundle, []
        self._bundle_seq += 1
        self.bundles_flushed += 1
        self.flush_fn(bundle)

    @property
    def mean_bundle_size(self) -> float:
        if not self.bundles_flushed:
            return 0.0
        return self.requests_seen / self.bundles_flushed
