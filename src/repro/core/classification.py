"""Section IV: classifying all of Linux's system calls for GPU use.

The paper sorts the ~300+ Linux system calls into three bins:

1. **Readily implementable** (~79%) — pread, mmap, sendto, ... — nothing
   about the GPU execution model prevents servicing them on the CPU.
2. **Implementable only with GPU hardware changes** (~13%, Table II) —
   they need a kernel representation of GPU threads (capabilities,
   namespaces, memory policies), control over the GPU thread scheduler
   (sched_*), the ability to pause/resume individual work-items
   (sigaction-style signal delivery), or are architecture-specific.
3. **Requiring extensive modification** (~8%) — fork/execve-style
   process lifecycle calls whose GPU semantics are unclear and not worth
   the implementation effort today.

The table below lists the x86-64 syscall surface of the paper's Linux
4.11 era with a category, a service group, and — for the non-ready
bins — the blocking reason, reproducing Table II and the headline
percentages.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, List, Optional


class Category(Enum):
    READY = "readily-implementable"
    HW_CHANGES = "needs-gpu-hardware-changes"
    EXTENSIVE = "needs-extensive-modification"


class Group(Enum):
    FILESYSTEM = "filesystem"
    NETWORK = "network"
    MEMORY = "memory"
    SIGNALS = "signals"
    PROCESS = "process"
    SCHEDULING = "scheduling"
    SECURITY = "security"
    IPC = "ipc"
    TIME = "time"
    SYSTEM = "system"


# Reasons mirroring Table II's right-hand column.
R_KERNEL_REP = "needs GPU thread representation in the kernel"
R_SCHEDULER = "needs better control over the GPU scheduler"
R_PAUSE_RESUME = (
    "signal actions require pausing/resuming a targeted thread; GPU "
    "work-item program counters cannot be set independently"
)
R_ARCH = "architecture specific; not accessible from GPU"
R_LIFECYCLE = "would require cloning/replacing GPU execution state"
R_KERNEL_ADMIN = "kernel administration with no meaningful GPU-side semantics"


@dataclass(frozen=True)
class SyscallClass:
    name: str
    category: Category
    group: Group
    reason: Optional[str] = None


def _ready(group: Group, *names: str) -> List[SyscallClass]:
    return [SyscallClass(n, Category.READY, group) for n in names]


def _hw(group: Group, reason: str, *names: str) -> List[SyscallClass]:
    return [SyscallClass(n, Category.HW_CHANGES, group, reason) for n in names]


def _ext(group: Group, reason: str, *names: str) -> List[SyscallClass]:
    return [SyscallClass(n, Category.EXTENSIVE, group, reason) for n in names]


SYSCALL_TABLE: List[SyscallClass] = (
    # -- readily implementable: filesystem ------------------------------------
    _ready(
        Group.FILESYSTEM,
        "read", "write", "open", "close", "stat", "fstat", "lstat", "poll",
        "lseek", "pread64", "pwrite64", "readv", "writev", "preadv", "pwritev",
        "preadv2", "pwritev2", "access", "faccessat", "pipe", "pipe2",
        "select", "pselect6", "ppoll", "dup", "dup2", "dup3", "sendfile",
        "fcntl", "flock", "fsync", "fdatasync", "truncate", "ftruncate",
        "getdents", "getdents64", "getcwd", "chdir", "fchdir", "rename",
        "renameat", "renameat2", "mkdir", "mkdirat", "rmdir", "creat",
        "link", "linkat", "unlink", "unlinkat", "symlink", "symlinkat",
        "readlink", "readlinkat", "chmod", "fchmod", "fchmodat", "chown",
        "fchown", "lchown", "fchownat", "umask", "mknod", "mknodat",
        "statfs", "fstatfs", "ustat", "utime", "utimes", "futimesat",
        "utimensat", "mount", "umount2", "sync", "syncfs", "quotactl",
        "name_to_handle_at", "open_by_handle_at", "fanotify_init",
        "fanotify_mark", "inotify_init", "inotify_init1",
        "inotify_add_watch", "inotify_rm_watch", "fallocate", "readahead",
        "splice", "tee", "vmsplice", "copy_file_range", "sync_file_range",
        "statx", "chroot", "ioctl", "fadvise64", "lookup_dcookie",
        "getxattr", "setxattr", "listxattr", "removexattr", "lgetxattr",
        "lsetxattr", "llistxattr", "lremovexattr", "fgetxattr", "fsetxattr",
        "flistxattr", "fremovexattr",
        "epoll_create", "epoll_create1", "epoll_ctl", "epoll_wait",
        "epoll_pwait", "io_setup", "io_destroy", "io_submit", "io_cancel",
        "io_getevents", "eventfd", "eventfd2", "vhangup",
    )
    # -- readily implementable: network ---------------------------------------
    + _ready(
        Group.NETWORK,
        "socket", "connect", "accept", "accept4", "sendto", "recvfrom",
        "sendmsg", "recvmsg", "sendmmsg", "recvmmsg", "shutdown", "bind",
        "listen", "getsockname", "getpeername", "socketpair", "setsockopt",
        "getsockopt",
    )
    # -- readily implementable: memory -----------------------------------------
    + _ready(
        Group.MEMORY,
        "mmap", "mprotect", "munmap", "brk", "mremap", "msync", "mincore",
        "madvise", "mlock", "mlock2", "munlock", "mlockall", "munlockall",
        "memfd_create", "pkey_alloc", "pkey_free", "pkey_mprotect",
        "process_vm_readv", "process_vm_writev", "swapon", "swapoff",
    )
    # -- readily implementable: signal *generation* ------------------------------
    + _ready(
        Group.SIGNALS,
        "kill", "tkill", "tgkill", "rt_sigqueueinfo", "rt_tgsigqueueinfo",
        "signalfd", "signalfd4",
    )
    # -- readily implementable: ipc --------------------------------------------
    + _ready(
        Group.IPC,
        "shmget", "shmat", "shmctl", "shmdt", "semget", "semop", "semctl",
        "semtimedop", "msgget", "msgsnd", "msgrcv", "msgctl", "mq_open",
        "mq_unlink", "mq_timedsend", "mq_timedreceive", "mq_notify",
        "mq_getsetattr",
    )
    # -- readily implementable: time --------------------------------------------
    + _ready(
        Group.TIME,
        "nanosleep", "gettimeofday", "time", "clock_gettime", "clock_settime",
        "clock_getres", "clock_nanosleep", "clock_adjtime", "settimeofday",
        "adjtimex", "times", "timer_create", "timer_settime", "timer_gettime",
        "timer_getoverrun", "timer_delete", "timerfd_create",
        "timerfd_settime", "timerfd_gettime", "alarm", "getitimer",
        "setitimer",
    )
    # -- readily implementable: process ids / limits / info ------------------------
    + _ready(
        Group.PROCESS,
        "getpid", "getppid", "getuid", "geteuid", "getgid", "getegid",
        "setuid", "setgid", "setreuid", "setregid", "setresuid", "getresuid",
        "setresgid", "getresgid", "setfsuid", "setfsgid", "getgroups",
        "setgroups", "getpgid", "setpgid", "getpgrp", "setsid", "getsid",
        "prlimit64", "getrlimit", "setrlimit", "getrusage", "ioprio_set",
        "ioprio_get", "setpriority", "getpriority",
    )
    # -- readily implementable: system-wide --------------------------------------
    + _ready(
        Group.SYSTEM,
        "sysinfo", "uname", "sethostname", "setdomainname", "getcpu",
        "getrandom", "syslog", "acct", "add_key", "request_key", "keyctl",
        "perf_event_open", "prctl",
    )
    # -- needs GPU hardware changes (Table II) -------------------------------------
    + _hw(Group.SECURITY, R_KERNEL_REP, "capget", "capset")
    + _hw(Group.SYSTEM, R_KERNEL_REP, "setns")
    + _hw(
        Group.MEMORY,
        R_KERNEL_REP,
        "set_mempolicy", "get_mempolicy", "mbind", "migrate_pages",
        "move_pages",
    )
    + _hw(
        Group.SCHEDULING,
        R_SCHEDULER,
        "sched_yield", "sched_setaffinity", "sched_getaffinity",
        "sched_setparam", "sched_getparam", "sched_setscheduler",
        "sched_getscheduler", "sched_get_priority_max",
        "sched_get_priority_min", "sched_rr_get_interval", "sched_setattr",
        "sched_getattr",
    )
    + _hw(
        Group.SIGNALS,
        R_PAUSE_RESUME,
        "rt_sigaction", "rt_sigprocmask", "rt_sigreturn", "rt_sigsuspend",
        "rt_sigpending", "rt_sigtimedwait", "sigaltstack", "pause",
        "restart_syscall",
    )
    + _hw(
        Group.SCHEDULING,
        R_KERNEL_REP,
        "futex", "set_tid_address", "set_robust_list", "get_robust_list",
        "gettid", "membarrier", "kcmp",
    )
    + _hw(
        Group.SYSTEM,
        R_ARCH,
        "ioperm", "iopl", "arch_prctl", "modify_ldt", "set_thread_area",
        "get_thread_area",
    )
    # -- needs extensive modification ----------------------------------------------
    + _ext(
        Group.PROCESS,
        R_LIFECYCLE,
        "fork", "vfork", "clone", "execve", "execveat", "exit", "exit_group",
        "wait4", "waitid", "ptrace", "personality", "unshare", "uselib",
        "remap_file_pages",
    )
    + _ext(
        Group.SYSTEM,
        R_KERNEL_ADMIN,
        "kexec_load", "kexec_file_load", "reboot", "init_module",
        "finit_module", "delete_module", "bpf", "seccomp", "userfaultfd",
        "pivot_root", "nfsservctl", "_sysctl",
    )
)

#: The calls GENESYS implements as its proof of concept (Section IV: 14
#: system calls plus device-control ioctls, and the socket setup helpers
#: networking needs).
IMPLEMENTED_IN_GENESYS = frozenset(
    {
        "read", "write", "pread", "pwrite", "open", "close", "lseek",
        "sendto", "recvfrom", "socket", "bind",
        "mmap", "munmap", "madvise",
        "getrusage", "rt_sigqueueinfo", "ioctl",
    }
)

#: Additional readily-implementable calls this reproduction services
#: beyond the paper's proof-of-concept set, demonstrating that the
#: interface generalises (all classified READY above).
IMPLEMENTED_EXTENSIONS = frozenset(
    {
        "stat", "fstat", "access", "dup", "dup2", "pipe", "poll", "ftruncate",
        "unlink", "mkdir", "rmdir", "rename", "getdents", "fsync",
        "readv", "writev", "nanosleep", "gettimeofday", "clock_gettime", "connect",
        "getpid", "uname", "sysinfo",
    }
)

_BY_NAME: Dict[str, SyscallClass] = {entry.name: entry for entry in SYSCALL_TABLE}

# pread/pwrite appear as pread64/pwrite64 in the syscall table.
_ALIASES = {"pread": "pread64", "pwrite": "pwrite64"}


def classify(name: str) -> SyscallClass:
    """Classification entry for a syscall name (aliases resolved)."""
    canonical = _ALIASES.get(name, name)
    try:
        return _BY_NAME[canonical]
    except KeyError:
        raise KeyError(f"unknown system call {name!r}") from None


def total_syscalls() -> int:
    return len(SYSCALL_TABLE)


def count_by_category() -> Dict[Category, int]:
    counts = Counter(entry.category for entry in SYSCALL_TABLE)
    return {category: counts.get(category, 0) for category in Category}


def fraction(category: Category) -> float:
    """Fraction of all classified syscalls in ``category``."""
    return count_by_category()[category] / total_syscalls()


def by_group(category: Optional[Category] = None) -> Dict[Group, List[SyscallClass]]:
    out: Dict[Group, List[SyscallClass]] = {group: [] for group in Group}
    for entry in SYSCALL_TABLE:
        if category is None or entry.category is category:
            out[entry.group].append(entry)
    return out


def table2_rows() -> List[Dict[str, Optional[str]]]:
    """The paper's Table II: example non-implementable calls + reasons."""
    rows: List[Dict[str, Optional[str]]] = []
    for entry in SYSCALL_TABLE:
        if entry.category is Category.HW_CHANGES:
            rows.append(
                {"type": entry.group.value, "example": entry.name, "reason": entry.reason}
            )
    return rows


def summary() -> Dict[str, Any]:
    """Headline numbers matching the paper's Section IV claims."""
    counts = count_by_category()
    total = total_syscalls()
    return {
        "total": total,
        "ready": counts[Category.READY],
        "ready_pct": 100.0 * counts[Category.READY] / total,
        "hw_changes": counts[Category.HW_CHANGES],
        "hw_changes_pct": 100.0 * counts[Category.HW_CHANGES] / total,
        "extensive": counts[Category.EXTENSIVE],
        "extensive_pct": 100.0 * counts[Category.EXTENSIVE] / total,
        "implemented": sorted(IMPLEMENTED_IN_GENESYS),
    }
