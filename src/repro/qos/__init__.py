"""Overload control and graceful degradation for the syscall stack.

The robustness half of the probes -> policy loop (ROADMAP item 3), in
the gpu_ext spirit of extensible OS policies: every mechanism here is a
named, picklable program attached to an existing tracepoint or policy
hook, driven by sensors from :mod:`repro.metrics`.  Four layers:

* **Deadlines** (:mod:`repro.qos.deadline`) — per-invocation deadlines
  minted at ``Genesys.begin_invocation`` time and carried in the slot
  request; expired work is shed at every stage boundary (coalesce
  admit, workqueue pickup, dispatch) instead of serviced dead.
* **Admission** (:mod:`repro.qos.admission`) — a token bucket on the
  net ingress plus CoDel-style sojourn policing of bounded receive
  queues, replying fast-fail errnos where a reply socket exists.
* **Retry budget + circuit breaker** (:mod:`repro.qos.breaker`) —
  GPU-side EINTR/EAGAIN retries capped fleet-wide under congestion,
  refilled from the live completion rate.
* **Brownout** (:mod:`repro.qos.brownout`) — a hysteretic controller
  that degrades service (shrink coalescing windows, interrupt ->
  polling, shed lowest-priority classes) when windowed p99 or queue
  depth crosses thresholds, and restores when pressure subsides.

With no :class:`QosPlan` installed every decision point is dormant and
all experiment outputs are byte-identical to the policy-free stack.
"""

from repro.qos.admission import TokenBucketAdmission
from repro.qos.breaker import CircuitBreaker, RetryBudget
from repro.qos.brownout import BrownoutController
from repro.qos.deadline import EDEADLINE, DeadlinePolicy
from repro.qos.plan import QosController, QosPlan, install_qos_plan

__all__ = [
    "BrownoutController",
    "CircuitBreaker",
    "DeadlinePolicy",
    "EDEADLINE",
    "QosController",
    "QosPlan",
    "RetryBudget",
    "TokenBucketAdmission",
    "install_qos_plan",
]
