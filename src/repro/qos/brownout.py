"""The brownout controller: staged, hysteretic service degradation.

Sensors are windowed reads from a :class:`~repro.metrics.hub.MetricsHub`
(p99 syscall latency, workqueue depth); actuators are the stack's own
policy hooks.  Escalation is one level per tick when *either* sensor is
above its high-water mark, de-escalation one level per tick only when
*both* are below their low-water marks — the hysteresis band prevents
flapping at the threshold.

Levels (cumulative — level N implies everything below it):

* **0** — normal service.
* **1** — shrink the coalescing window (``coalesce.window`` program):
  trade batching efficiency for latency, the Fig-13 knee walked back.
* **2** — interrupt -> polling mode (``irq.mode`` absorbs top halves;
  this controller's tick calls ``Genesys.poll_scan``): under an
  interrupt storm the paper's polling CPU kernel wins (Fig 9).
* **3** — raise the priority floor: lowest-priority classes are shed
  at dispatch (``qos.shed`` reason ``priority``) until pressure clears.

The tick rides a *weak* timer (the MetricsHub pattern): a pure
policy pass that never keeps the simulation alive on its own.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from repro.metrics.hub import MetricsHub

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System


class _ScaleWindow:
    """``coalesce.window`` program: scale the decided window by a fixed
    factor (0.0 = flush every bundle immediately)."""

    __slots__ = ("factor",)

    def __init__(self, factor: float) -> None:
        self.factor = float(factor)

    def __call__(self, current: Any, *args: Any) -> Any:
        try:
            return float(current) * self.factor
        except (TypeError, ValueError):
            return None


class _PollVerdict:
    """``irq.mode`` program: absorb every top half while attached."""

    __slots__ = ()

    def __call__(self, current: Any, payload: Any) -> Any:
        return "poll"


class BrownoutController:
    """Hysteretic degradation ladder over the QoS actuators."""

    def __init__(
        self,
        system: "System",
        hub: MetricsHub,
        period_ns: float = 20_000.0,
        hi_p99_ns: float = 250_000.0,
        lo_p99_ns: float = 100_000.0,
        hi_depth: float = 8.0,
        lo_depth: float = 2.0,
        max_level: int = 2,
        window_scale: float = 0.0,
        priority_floor: int = 1,
    ) -> None:
        if period_ns <= 0:
            raise ValueError(f"period_ns must be positive, got {period_ns}")
        if not 0 <= max_level <= 3:
            raise ValueError(f"max_level must be in [0, 3], got {max_level}")
        if lo_p99_ns > hi_p99_ns or lo_depth > hi_depth:
            raise ValueError("brownout low-water marks must not exceed high-water")
        self.system = system
        self.hub = hub
        self.period_ns = float(period_ns)
        self.hi_p99_ns = float(hi_p99_ns)
        self.lo_p99_ns = float(lo_p99_ns)
        self.hi_depth = float(hi_depth)
        self.lo_depth = float(lo_depth)
        self.max_level = int(max_level)
        self.window_scale = float(window_scale)
        self.priority_floor = int(priority_floor)
        self.level = 0
        self.escalations = 0
        self.deescalations = 0
        self.ticks = 0
        self.peak_level = 0
        self._window_program: Optional[_ScaleWindow] = None
        self._poll_program: Optional[_PollVerdict] = None
        self._next_tick_ns = 0.0
        self._running = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "BrownoutController":
        if self._running:
            return self
        self._running = True
        self._next_tick_ns = (
            int(self.system.sim.now // self.period_ns) + 1
        ) * self.period_ns
        self._arm()
        return self

    def stop(self) -> None:
        self._running = False
        while self.level > 0:
            self._leave_level(self.level)
            self.level -= 1

    def _arm(self) -> None:
        # Weak: the controller observes and steers but never holds the
        # simulation open (sim.now is stale inside a weak callback, so
        # the boundary is tracked explicitly — the MetricsHub pattern).
        self.system.sim.call_at(self._next_tick_ns, self._tick, weak=True)

    # -- the control loop --------------------------------------------------

    def _tick(self) -> None:
        if not self._running:
            return
        self.ticks += 1
        genesys = self.system.genesys
        if self.level >= 2:
            # Polling mode: this tick *is* the polling CPU kernel.
            genesys.poll_scan()
        enabled = bool(genesys.qos_brownout_enabled)
        p99 = self.hub.read("syscall.latency", mode="p99")
        depth = self.hub.read("wq.depth")
        if not enabled:
            while self.level > 0:
                self._leave_level(self.level)
                self.level -= 1
                self.deescalations += 1
        elif (p99 > self.hi_p99_ns or depth > self.hi_depth) and (
            self.level < self.max_level
        ):
            self.level += 1
            self.escalations += 1
            if self.level > self.peak_level:
                self.peak_level = self.level
            self._enter_level(self.level)
        elif p99 < self.lo_p99_ns and depth < self.lo_depth and self.level > 0:
            self._leave_level(self.level)
            self.level -= 1
            self.deescalations += 1
        self._next_tick_ns += self.period_ns
        self._arm()

    # -- actuators ---------------------------------------------------------

    def _enter_level(self, level: int) -> None:
        probes = self.system.probes
        genesys = self.system.genesys
        if level == 1:
            self._window_program = _ScaleWindow(self.window_scale)
            probes.attach_policy("coalesce.window", self._window_program)
        elif level == 2:
            self._poll_program = _PollVerdict()
            probes.attach_policy("irq.mode", self._poll_program)
        elif level == 3:
            genesys.qos_priority_floor = self.priority_floor

    def _leave_level(self, level: int) -> None:
        probes = self.system.probes
        genesys = self.system.genesys
        if level == 1 and self._window_program is not None:
            probes.get_hook("coalesce.window").detach(self._window_program)
            self._window_program = None
        elif level == 2:
            if self._poll_program is not None:
                probes.get_hook("irq.mode").detach(self._poll_program)
                self._poll_program = None
            # Interrupts absorbed while polling left suppression marks
            # with no scan behind them; clear them and run one last
            # polling pass so nothing is stranded between modes.
            genesys._scan_suppressed.clear()
            genesys.poll_scan()
        elif level == 3:
            genesys.qos_priority_floor = 0

    def summary(self) -> dict:
        return {
            "level": self.level,
            "peak_level": self.peak_level,
            "ticks": self.ticks,
            "escalations": self.escalations,
            "deescalations": self.deescalations,
        }

    def __repr__(self) -> str:
        return (
            f"BrownoutController(level={self.level}, peak={self.peak_level}, "
            f"ticks={self.ticks})"
        )
