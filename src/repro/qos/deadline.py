"""Deadline minting policy for the ``qos.deadline`` hook.

A deadline is an absolute sim-time past which servicing the invocation
is wasted work.  ``Genesys.mint_deadline`` computes it from a delta at
submission; the program below supplies that delta — a flat default, or
per-syscall overrides (0 exempts a call entirely, which is how serving
plans keep the server's parked ``recvfrom`` loops deadline-free).

Shed completions return ``-ETIME`` ("timer expired").  POSIX has no
dedicated deadline errno, so the conventional alias:
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Tuple

from repro.oskernel.errors import Errno

#: The fast-fail errno surfaced for deadline-shed work.  POSIX spells
#: it ETIME; the QoS literature says deadline — same wire value.
EDEADLINE = Errno.ETIME


class DeadlinePolicy:
    """Named, picklable ``qos.deadline`` program.

    ``by_name`` maps syscall names to deadline deltas (ns); unlisted
    calls get ``default_ns`` when it is positive, else whatever the
    chain decided so far (the genesys knob value).
    """

    __slots__ = ("default_ns", "by_name")

    def __init__(
        self,
        default_ns: float = 0.0,
        by_name: Iterable[Tuple[str, float]] = (),
    ) -> None:
        self.default_ns = float(default_ns)
        self.by_name: Dict[str, float] = {
            name: float(delta) for name, delta in by_name
        }

    def __call__(self, current: Any, name: str) -> Any:
        if name in self.by_name:
            return self.by_name[name]
        if self.default_ns > 0:
            return self.default_ns
        return None

    def __repr__(self) -> str:
        return (
            f"DeadlinePolicy(default_ns={self.default_ns:.0f}, "
            f"{len(self.by_name)} per-name overrides)"
        )
