import sys

from repro.qos.cli import main

sys.exit(main())
