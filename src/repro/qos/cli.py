"""``python -m repro.qos`` — plan | demo.

``plan`` prints the default serving overload-control plan (or one
adjusted by flags) as JSON — the same document embedded in
``BENCH_overload.json``.  ``demo`` runs one offered-load point twice on
the same warm machine — bare, then with the plan installed — and prints
the goodput/latency comparison plus the QoS controller's counters; it
is the single-point sibling of ``python -m repro.serving overload``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.qos",
        description="Overload control plans and a one-point degradation demo.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan_parser = sub.add_parser(
        "plan", help="print the default serving QoS plan as JSON"
    )
    _add_shared_args(plan_parser)
    plan_parser.set_defaults(fn=_cmd_plan)

    demo_parser = sub.add_parser(
        "demo", help="one overload point, bare vs QoS plan, side by side"
    )
    _add_shared_args(demo_parser)
    demo_parser.add_argument(
        "--rps", type=int, default=0,
        help="offered RPS (0 = 2x the workload's knee)",
    )
    demo_parser.set_defaults(fn=_cmd_demo)
    return parser


def _add_shared_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", choices=("memcached", "udp-echo"),
                        default="memcached")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--sojourn-budget-us", type=float, default=None,
                        help="receive-queue sojourn budget (default: timeout/2)")
    parser.add_argument("--no-brownout", action="store_true",
                        help="disable the brownout controller")


def _plan_from(args: argparse.Namespace):
    from repro.serving.sweep import ServingConfig, default_overload_plan

    config = ServingConfig(workload=args.workload, seed=args.seed)
    plan = default_overload_plan(config)
    if args.sojourn_budget_us is not None:
        plan = plan.scaled(sojourn_budget_ns=args.sojourn_budget_us * 1e3)
    if args.no_brownout:
        plan = plan.scaled(brownout=False)
    return config, plan


def _cmd_plan(args: argparse.Namespace) -> int:
    _config, plan = _plan_from(args)
    print(json.dumps(plan.as_dict(), sort_keys=True, indent=2))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.serving import sweep as sweep_mod

    config, plan = _plan_from(args)
    rps = args.rps or 2 * sweep_mod.default_knee(config)
    bare = sweep_mod._overload_point_job(config, rps)
    qos = sweep_mod._overload_point_job(config, rps, plan=plan)
    print(f"{config.workload} @ {rps} RPS (offered):")
    for label, point in (("bare", bare), ("qos", qos)):
        latency = point["latency_ns"]
        lifecycle = point["lifecycle"]
        print(
            f"  {label:>4}: goodput {point['achieved_rps']:>9.0f} RPS "
            f"(completion {point['completion']:.3f}), "
            f"p99 {latency['p99'] / 1e3:.1f} us, "
            f"late {lifecycle['late']}, timeout {lifecycle['timeout']}, "
            f"rejected {lifecycle.get('rejected', 0)}"
        )
    summary = qos.get("qos", {})
    if summary:
        print(f"  controller: {json.dumps(summary, sort_keys=True)}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
