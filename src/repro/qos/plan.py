"""QoS plans: one declarative bundle wiring all four defence layers.

A :class:`QosPlan` is data — a frozen description of deadlines,
admission limits, retry budgets, and brownout thresholds.
:func:`install_qos_plan` turns it into a live :class:`QosController`
that attaches the named programs to the stack's hooks and (when any
layer needs sensors) stands up its own :class:`~repro.metrics.hub
.MetricsHub`.  ``QosController.remove`` restores every knob it
touched, so a plan can be installed for one phase of a run and torn
down for the next.

With the default (all-zero) plan nothing attaches and nothing changes:
the byte-identity guarantee of :mod:`repro.qos` is that experiments
without a plan emit exactly the policy-free event stream.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple, TYPE_CHECKING

from repro.metrics.hub import MetricsHub
from repro.oskernel.errors import Errno
from repro.qos.admission import TokenBucketAdmission
from repro.qos.breaker import CircuitBreaker, RetryBudget
from repro.qos.brownout import BrownoutController
from repro.qos.deadline import DeadlinePolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System


@dataclass(frozen=True)
class QosPlan:
    """Declarative overload-control configuration.

    Every layer is opt-in: a zero/empty field leaves that decision
    point dormant.  Fields group by layer:

    deadlines
        ``deadline_ns`` (flat delta for every blocking call; 0 = none),
        ``deadline_by_name`` (per-syscall overrides, 0 exempts a call),
        ``priority_floor`` (the floor brownout level 3 raises to).
    admission
        ``sojourn_budget_ns`` (CoDel-style head drop at recvfrom),
        ``admit_rate_rps``/``admit_burst`` (token bucket at enqueue),
        ``reject_replies``/``reject_errno`` (fast-fail frames vs
        silent drops for policed datagrams).
    retries
        ``retry_budget_ratio``/``retry_budget_floor`` (fleet-wide cap,
        refilled from completions), ``breaker_threshold``/
        ``breaker_cooldown_ns`` (circuit breaker on the invoke path).
    brownout
        ``brownout`` enables the controller; the remaining fields are
        its sensor window, tick period, hysteresis thresholds, ceiling
        level, and level-1 coalescing-window scale.
    """

    deadline_ns: float = 0.0
    deadline_by_name: Tuple[Tuple[str, float], ...] = ()
    priority_floor: int = 1
    sojourn_budget_ns: float = 0.0
    admit_rate_rps: float = 0.0
    admit_burst: int = 32
    reject_replies: bool = True
    reject_errno: int = int(Errno.EBUSY)
    retry_budget_ratio: float = 0.0
    retry_budget_floor: int = 4
    breaker_threshold: int = 0
    breaker_cooldown_ns: float = 200_000.0
    brownout: bool = False
    brownout_period_ns: float = 20_000.0
    sensor_window_ns: float = 50_000.0
    brownout_hi_p99_ns: float = 250_000.0
    brownout_lo_p99_ns: float = 100_000.0
    brownout_hi_depth: float = 8.0
    brownout_lo_depth: float = 2.0
    brownout_max_level: int = 2
    brownout_window_scale: float = 0.0

    def __post_init__(self) -> None:
        if self.deadline_ns != self.deadline_ns or self.deadline_ns < 0:
            raise ValueError(f"deadline_ns must be >= 0, got {self.deadline_ns}")
        for name, delta in self.deadline_by_name:
            if delta != delta or delta < 0:
                raise ValueError(f"deadline for {name!r} must be >= 0, got {delta}")
        if self.priority_floor < 0:
            raise ValueError(
                f"priority_floor must be >= 0, got {self.priority_floor}"
            )
        if self.sojourn_budget_ns < 0:
            raise ValueError(
                f"sojourn_budget_ns must be >= 0, got {self.sojourn_budget_ns}"
            )
        if self.admit_rate_rps < 0:
            raise ValueError(
                f"admit_rate_rps must be >= 0, got {self.admit_rate_rps}"
            )
        if self.admit_burst < 1:
            raise ValueError(f"admit_burst must be >= 1, got {self.admit_burst}")
        if self.retry_budget_ratio < 0:
            raise ValueError(
                f"retry_budget_ratio must be >= 0, got {self.retry_budget_ratio}"
            )
        if self.retry_budget_floor < 0:
            raise ValueError(
                f"retry_budget_floor must be >= 0, got {self.retry_budget_floor}"
            )
        if self.breaker_threshold < 0:
            raise ValueError(
                f"breaker_threshold must be >= 0, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown_ns <= 0:
            raise ValueError(
                f"breaker_cooldown_ns must be positive, got {self.breaker_cooldown_ns}"
            )
        if self.brownout_period_ns <= 0:
            raise ValueError(
                f"brownout_period_ns must be positive, got {self.brownout_period_ns}"
            )
        if (
            self.brownout_lo_p99_ns > self.brownout_hi_p99_ns
            or self.brownout_lo_depth > self.brownout_hi_depth
        ):
            raise ValueError("brownout low-water marks must not exceed high-water")
        if self.sensor_window_ns <= 0:
            raise ValueError(
                f"sensor_window_ns must be positive, got {self.sensor_window_ns}"
            )
        if not 0 <= self.brownout_max_level <= 3:
            raise ValueError(
                f"brownout_max_level must be in [0, 3], got {self.brownout_max_level}"
            )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready description (tuples become lists) for reports."""
        return {
            "deadline_ns": self.deadline_ns,
            "deadline_by_name": [list(pair) for pair in self.deadline_by_name],
            "priority_floor": self.priority_floor,
            "sojourn_budget_ns": self.sojourn_budget_ns,
            "admit_rate_rps": self.admit_rate_rps,
            "admit_burst": self.admit_burst,
            "reject_replies": self.reject_replies,
            "reject_errno": self.reject_errno,
            "retry_budget_ratio": self.retry_budget_ratio,
            "retry_budget_floor": self.retry_budget_floor,
            "breaker_threshold": self.breaker_threshold,
            "breaker_cooldown_ns": self.breaker_cooldown_ns,
            "brownout": self.brownout,
            "brownout_period_ns": self.brownout_period_ns,
            "sensor_window_ns": self.sensor_window_ns,
            "brownout_hi_p99_ns": self.brownout_hi_p99_ns,
            "brownout_lo_p99_ns": self.brownout_lo_p99_ns,
            "brownout_hi_depth": self.brownout_hi_depth,
            "brownout_lo_depth": self.brownout_lo_depth,
            "brownout_max_level": self.brownout_max_level,
            "brownout_window_scale": self.brownout_window_scale,
        }

    @property
    def active(self) -> bool:
        """True when any layer will attach anything."""
        return bool(
            self.deadline_ns > 0
            or self.deadline_by_name
            or self.sojourn_budget_ns > 0
            or self.admit_rate_rps > 0
            or self.retry_budget_ratio > 0
            or self.breaker_threshold > 0
            or self.brownout
        )

    def scaled(self, **overrides: Any) -> "QosPlan":
        """Copy with field overrides — sweep helper."""
        return replace(self, **overrides)


class QosController:
    """Live half of a :class:`QosPlan`: owns the attached programs and
    any private sensor hub, and knows how to take them all back out."""

    def __init__(self, plan: QosPlan, system: "System") -> None:
        self.plan = plan
        self.system = system
        self.hub: Optional[MetricsHub] = None
        self.deadline_policy: Optional[DeadlinePolicy] = None
        self.admission: Optional[TokenBucketAdmission] = None
        self.retry_budget: Optional[RetryBudget] = None
        self.breaker: Optional[CircuitBreaker] = None
        self.brownout: Optional[BrownoutController] = None
        self._saved_sojourn_ns: float = 0.0
        self._installed = False

    # -- lifecycle ---------------------------------------------------------

    def install(self) -> "QosController":
        if self._installed:
            return self
        self._installed = True
        plan = self.plan
        system = self.system
        probes = system.probes
        net = system.kernel.net

        if plan.retry_budget_ratio > 0 or plan.brownout:
            self.hub = MetricsHub(
                window_ns=plan.sensor_window_ns, label="qos"
            ).install(probes)

        if plan.deadline_ns > 0 or plan.deadline_by_name:
            self.deadline_policy = DeadlinePolicy(
                default_ns=plan.deadline_ns, by_name=plan.deadline_by_name
            )
            probes.attach_policy("qos.deadline", self.deadline_policy)

        self._saved_sojourn_ns = net.sojourn_budget_ns
        if plan.sojourn_budget_ns > 0:
            net.sojourn_budget_ns = float(plan.sojourn_budget_ns)

        if plan.admit_rate_rps > 0:
            self.admission = TokenBucketAdmission(
                probes,
                rate_rps=plan.admit_rate_rps,
                burst=plan.admit_burst,
                reject=plan.reject_replies,
                errno=plan.reject_errno,
            )
            probes.attach_policy("net.admit", self.admission)

        if plan.retry_budget_ratio > 0 and self.hub is not None:
            self.retry_budget = RetryBudget(
                self.hub,
                ratio=plan.retry_budget_ratio,
                floor=plan.retry_budget_floor,
            )
            probes.attach_policy("genesys.retry", self.retry_budget)

        if plan.breaker_threshold > 0:
            self.breaker = CircuitBreaker(
                probes,
                threshold=plan.breaker_threshold,
                cooldown_ns=plan.breaker_cooldown_ns,
                errno=plan.reject_errno,
            ).install(probes)

        if plan.brownout and self.hub is not None:
            self.brownout = BrownoutController(
                system,
                self.hub,
                period_ns=plan.brownout_period_ns,
                hi_p99_ns=plan.brownout_hi_p99_ns,
                lo_p99_ns=plan.brownout_lo_p99_ns,
                hi_depth=plan.brownout_hi_depth,
                lo_depth=plan.brownout_lo_depth,
                max_level=plan.brownout_max_level,
                window_scale=plan.brownout_window_scale,
                priority_floor=plan.priority_floor,
            ).start()
        return self

    def remove(self) -> None:
        """Detach every program and restore every knob.  The private
        sensor hub stays attached (feeds are passive observers on weak
        ticks); only the decision points are unwound."""
        if not self._installed:
            return
        self._installed = False
        probes = self.system.probes
        net = self.system.kernel.net
        if self.brownout is not None:
            self.brownout.stop()
        if self.breaker is not None:
            self.breaker.remove(probes)
        if self.retry_budget is not None:
            probes.get_hook("genesys.retry").detach(self.retry_budget)
        if self.admission is not None:
            probes.get_hook("net.admit").detach(self.admission)
        if self.deadline_policy is not None:
            probes.get_hook("qos.deadline").detach(self.deadline_policy)
        net.sojourn_budget_ns = self._saved_sojourn_ns

    # -- reporting ---------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        genesys = self.system.genesys
        net = self.system.kernel.net
        out: Dict[str, Any] = {
            "syscalls_shed": genesys.syscalls_shed,
            "sheds_by_stage": dict(sorted(genesys.sheds_by_stage.items())),
            "qos_fast_fails": genesys.qos_fast_fails,
            "polled_scans": genesys.polled_scans,
            "net_drops": dict(net.stats()["drops"]),
            "policy_rejects": net.policy_rejects,
        }
        if self.admission is not None:
            out["admission_policed"] = self.admission.policed
        if self.retry_budget is not None:
            out["retries_denied"] = self.retry_budget.denied
        if self.breaker is not None:
            out["breaker"] = {
                "state": self.breaker.state,
                "opens": self.breaker.opens,
                "fast_fails": self.breaker.fast_fails,
            }
        if self.brownout is not None:
            out["brownout"] = self.brownout.summary()
        return out

    def __repr__(self) -> str:
        return f"QosController(installed={self._installed}, plan={self.plan!r})"


def install_qos_plan(plan: QosPlan, system: "System") -> QosController:
    """Stand a plan up on a built :class:`~repro.system.System` and
    return the live controller (call ``.remove()`` to unwind)."""
    return QosController(plan, system).install()
