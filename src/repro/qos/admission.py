"""Token-bucket admission control for the ``net.admit`` hook.

Blind tail-drop (PR 7's bounded backlogs) sheds the *newest* arrivals
only after the queue is already hopeless.  The token bucket polices the
arrival rate at enqueue instead, and — where a reply socket exists —
answers policed datagrams with a fast-fail errno frame so the client
learns immediately rather than burning its timeout.

The companion sojourn policing (CoDel's insight: queue *time*, not
queue *length*, is the collapse signal) lives in ``Network.recvfrom``
behind ``sojourn_budget_ns``; see ``QosPlan.sojourn_budget_ns``.
"""

from __future__ import annotations

from typing import Any

from repro.oskernel.errors import Errno
from repro.probes.tracepoints import ProbeRegistry


class TokenBucketAdmission:
    """Named, picklable ``net.admit`` program.

    Refills continuously at ``rate_rps`` up to ``burst`` tokens;
    arrivals that find the bucket dry are policed — ``('reject',
    errno)`` when ``reject`` (the sender gets ``b"E" + reqid + errno``),
    plain ``'drop'`` otherwise.  Time comes from the registry clock, so
    the bucket is deterministic and checkpoint-safe.
    """

    __slots__ = ("registry", "rate_per_ns", "burst", "tokens", "last_ns",
                 "reject", "errno", "policed")

    def __init__(
        self,
        registry: ProbeRegistry,
        rate_rps: float,
        burst: int = 32,
        reject: bool = True,
        errno: int = int(Errno.EBUSY),
    ) -> None:
        if rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {rate_rps}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.registry = registry
        self.rate_per_ns = float(rate_rps) / 1e9
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last_ns = registry.now()
        self.reject = bool(reject)
        self.errno = int(errno)
        self.policed = 0

    def __call__(self, current: Any, sock_id: int, depth: int, nbytes: int) -> Any:
        now = self.registry.now()
        elapsed = now - self.last_ns
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate_per_ns)
            self.last_ns = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return current
        self.policed += 1
        return ("reject", self.errno) if self.reject else "drop"

    def __repr__(self) -> str:
        return (
            f"TokenBucketAdmission({self.rate_per_ns * 1e9:.0f} rps, "
            f"burst={self.burst:.0f}, policed={self.policed})"
        )
