"""Retry budget and circuit breaker for the GPU-side retry path.

PR 4 gave every blocking caller independent EINTR/EAGAIN retries with
exponential backoff — exactly the fleet behaviour that amplifies load
when the CPU kernel is drowning (each retry is a full slot-protocol
round trip).  Two cooperating guards:

* :class:`RetryBudget` — a ``genesys.retry`` program that vetoes retry
  grants once the fleet has spent its per-window budget, refilled from
  the live completion count (``hub.read("syscall.rate")``): when
  completions dry up, so do retries.
* :class:`CircuitBreaker` — rides the ``syscall.retry`` (failure) and
  ``syscall.complete`` (success) tracepoint streams; past a consecutive
  -failure threshold it opens and the ``qos.invoke`` hook fast-fails
  new blocking invocations with EBUSY before they are even submitted,
  letting one probe through per cooldown to test recovery.
"""

from __future__ import annotations

from typing import Any

from repro.metrics.hub import MetricsHub
from repro.oskernel.errors import Errno
from repro.probes.tracepoints import ProbeRegistry


class RetryBudget:
    """Named ``genesys.retry`` program: cap fleet-wide retries per
    metrics window at ``ratio`` x last window's completions (never
    below ``floor`` — a quiet system must still be allowed to retry).
    Only vetoes grants; never turns a deny into a retry.
    """

    __slots__ = ("hub", "ratio", "floor", "_window_index", "_budget", "denied")

    def __init__(self, hub: MetricsHub, ratio: float = 0.1, floor: int = 4) -> None:
        if ratio < 0:
            raise ValueError(f"ratio must be >= 0, got {ratio}")
        if floor < 0:
            raise ValueError(f"floor must be >= 0, got {floor}")
        self.hub = hub
        self.ratio = float(ratio)
        self.floor = float(floor)
        self._window_index = -1
        self._budget = float(floor)
        self.denied = 0

    def __call__(self, current: Any, name: str, result: Any, attempt: int) -> Any:
        if not current:
            return None
        index = int(self.hub.now() // self.hub.window_ns)
        if index != self._window_index:
            self._window_index = index
            completed = self.hub.read("syscall.rate", mode="count")
            self._budget = max(self.floor, self.ratio * completed)
        if self._budget >= 1.0:
            self._budget -= 1.0
            return None
        self.denied += 1
        return False

    def __repr__(self) -> str:
        return f"RetryBudget(ratio={self.ratio}, floor={self.floor:.0f}, denied={self.denied})"


class _FailureTap:
    """Observer on ``syscall.retry``: every fire is a transient failure."""

    __slots__ = ("breaker",)

    def __init__(self, breaker: "CircuitBreaker") -> None:
        self.breaker = breaker

    def __call__(self, *args: Any) -> None:
        self.breaker.note_failure()


class _SuccessTap:
    """Observer on ``syscall.complete``: every fire is a success."""

    __slots__ = ("breaker",)

    def __init__(self, breaker: "CircuitBreaker") -> None:
        self.breaker = breaker

    def __call__(self, *args: Any) -> None:
        self.breaker.note_success()


class CircuitBreaker:
    """Consecutive-failure breaker over the invocation stream.

    Also a ``qos.invoke`` program: while open (and inside the cooldown)
    it returns ``errno`` so ``DeviceApi`` fast-fails the invocation
    without a slot-protocol round trip; after each cooldown one probe
    invocation is admitted, and any completed call closes the breaker.
    """

    __slots__ = ("registry", "threshold", "cooldown_ns", "errno",
                 "failures", "state", "opened_at", "opens", "fast_fails",
                 "_taps")

    def __init__(
        self,
        registry: ProbeRegistry,
        threshold: int = 8,
        cooldown_ns: float = 200_000.0,
        errno: int = int(Errno.EBUSY),
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown_ns <= 0:
            raise ValueError(f"cooldown_ns must be positive, got {cooldown_ns}")
        self.registry = registry
        self.threshold = int(threshold)
        self.cooldown_ns = float(cooldown_ns)
        self.errno = int(errno)
        self.failures = 0
        self.state = "closed"
        self.opened_at = 0.0
        self.opens = 0
        self.fast_fails = 0
        self._taps: tuple = ()

    def note_failure(self) -> None:
        self.failures += 1
        if self.state == "closed" and self.failures >= self.threshold:
            self.state = "open"
            self.opened_at = self.registry.now()
            self.opens += 1

    def note_success(self) -> None:
        self.failures = 0
        if self.state == "open":
            self.state = "closed"

    def install(self, registry: ProbeRegistry) -> "CircuitBreaker":
        failure_tap = _FailureTap(self)
        success_tap = _SuccessTap(self)
        registry.attach("syscall.retry", failure_tap)
        registry.attach("syscall.complete", success_tap)
        registry.attach_policy("qos.invoke", self)
        self._taps = (failure_tap, success_tap)
        return self

    def remove(self, registry: ProbeRegistry) -> None:
        if self._taps:
            failure_tap, success_tap = self._taps
            registry.get("syscall.retry").detach(failure_tap)
            registry.get("syscall.complete").detach(success_tap)
            self._taps = ()
        registry.get_hook("qos.invoke").detach(self)

    # -- the qos.invoke program -------------------------------------------

    def __call__(self, current: Any, name: str) -> Any:
        if self.state != "open":
            return current
        now = self.registry.now()
        if now - self.opened_at >= self.cooldown_ns:
            # Half-open probe: admit this one; restart the cooldown so
            # at most one probe passes per cooldown until one succeeds.
            self.opened_at = now
            return current
        self.fast_fails += 1
        return self.errno

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.state}, failures={self.failures}/"
            f"{self.threshold}, opens={self.opens}, fast_fails={self.fast_fails})"
        )
