"""Chrome-trace export of a simulation run.

``export_chrome_trace(system)`` turns a finished :class:`~repro.system.
System` into the Trace Event Format consumed by chrome://tracing and
Perfetto (https://ui.perfetto.dev): CPU-side syscall servicing appears
as complete ("X") events on per-wavefront tracks, and CPU/GPU
utilisation plus disk throughput appear as counter ("C") tracks.
Attached probe programs with a time series (``repro.probes`` rate
meters) are merged in as additional counter tracks under a third
process group (pid 3), and attached span tracers (``repro.tracing``)
contribute per-stage invocation span tracks with GPU->CPU flow arrows
under a fourth (pid 4).  Every pid/tid carries "M" metadata so
Perfetto labels the tracks.

Usage::

    system = System()
    ... run workloads ...
    from repro.traceviz import export_chrome_trace, write_chrome_trace
    write_chrome_trace(system, "run.trace.json")
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.system import System

# Trace Event Format pids/tids are arbitrary labels; group by subsystem.
PID_SYSCALLS = 1
PID_COUNTERS = 2


def _syscall_events(system: System) -> List[dict]:
    events = []
    for name, hw_id, start_ns, end_ns in system.genesys.completion_log:
        events.append(
            {
                "name": name,
                "cat": "syscall",
                "ph": "X",
                "ts": start_ns / 1000.0,  # trace format wants microseconds
                "dur": max(end_ns - start_ns, 1) / 1000.0,
                "pid": PID_SYSCALLS,
                "tid": hw_id,
                "args": {"hw_wavefront": hw_id},
            }
        )
    return events


def _counter_events(system: System) -> List[dict]:
    events = []
    for label, tracker in (
        ("cpu_utilization", system.cpu.utilization),
        ("gpu_slot_utilization", system.gpu.utilization),
    ):
        for start, _end, fraction in tracker.segments():
            events.append(
                {
                    "name": label,
                    "cat": "utilization",
                    "ph": "C",
                    "ts": start / 1000.0,
                    "pid": PID_COUNTERS,
                    "args": {"busy": round(fraction, 4)},
                }
            )
    disk = system.kernel.disk
    if disk is not None and system.now > 0:
        bin_ns = max(1.0, system.now / 64)
        for when, rate in disk.throughput_series(bin_ns):
            events.append(
                {
                    "name": "disk_throughput_MBps",
                    "cat": "io",
                    "ph": "C",
                    "ts": when / 1000.0,
                    "pid": PID_COUNTERS,
                    "args": {"MBps": round(rate * 1000.0, 2)},
                }
            )
    return events


def _metadata_events(system: System) -> List[dict]:
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": PID_SYSCALLS,
            "args": {"name": "GENESYS syscall servicing"},
        },
        {
            "name": "process_name",
            "ph": "M",
            "pid": PID_COUNTERS,
            "args": {"name": "machine counters"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": PID_COUNTERS,
            "tid": 0,
            "args": {"name": "utilization + io"},
        },
    ]
    hw_ids = sorted({hw_id for _, hw_id, _, _ in system.genesys.completion_log})
    for hw_id in hw_ids:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": PID_SYSCALLS,
                "tid": hw_id,
                "args": {"name": f"hw wavefront {hw_id}"},
            }
        )
    return events


def export_chrome_trace(system: System) -> dict:
    """Build the Trace Event Format dict for a finished run."""
    from repro.metrics.export import metrics_counter_events
    from repro.probes.exporters import probe_counter_events
    from repro.tracing.export import span_events
    from repro.tracing.spans import span_tracers

    events = (
        _metadata_events(system)
        + _syscall_events(system)
        + _counter_events(system)
        + probe_counter_events(getattr(system, "probes", None))
        + span_events(span_tracers(getattr(system, "probes", None)))
        + metrics_counter_events(getattr(system, "probes", None))
    )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro (GENESYS reproduction)",
            "simulated_ns": system.now,
            "syscalls": system.genesys.syscalls_completed,
        },
    }


def write_chrome_trace(system: System, path: str) -> dict:
    """Export and write the trace JSON to ``path``; returns the dict."""
    trace = export_chrome_trace(system)
    with open(path, "w") as fh:
        json.dump(trace, fh)
    return trace
