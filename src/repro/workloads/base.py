"""Shared workload plumbing: results and deterministic data generation."""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class WorkloadResult:
    """Outcome of one workload variant run."""

    name: str
    variant: str
    runtime_ns: float
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def runtime_ms(self) -> float:
        return self.runtime_ns / 1e6

    def __repr__(self) -> str:
        return (
            f"WorkloadResult({self.name}/{self.variant}: "
            f"{self.runtime_ms:.3f} ms, {self.metrics})"
        )


class DeterministicRandom:
    """Tiny deterministic PRNG (xorshift) so workloads are reproducible
    without seeding global state."""

    def __init__(self, seed: int):
        self._state = (seed or 1) & 0xFFFFFFFFFFFFFFFF

    def next_u64(self) -> int:
        x = self._state
        x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 7
        x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
        self._state = x
        return x

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi]."""
        if hi < lo:
            raise ValueError("hi < lo")
        return lo + self.next_u64() % (hi - lo + 1)

    def random(self) -> float:
        return self.next_u64() / 2**64

    def bytes(self, n: int) -> bytes:
        out = bytearray()
        while len(out) < n:
            out.extend(self.next_u64().to_bytes(8, "little"))
        return bytes(out[:n])

    def text(self, n: int) -> bytes:
        """Printable filler text of length n."""
        raw = self.bytes(n)
        return bytes(97 + (b % 26) for b in raw)

    def choice(self, seq):
        return seq[self.randint(0, len(seq) - 1)]


def cheap_digest(data: bytes) -> int:
    """A stand-in checksum used where the workload only needs *a* digest."""
    return zlib.crc32(data)
