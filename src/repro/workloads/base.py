"""Shared workload plumbing: results and deterministic data generation."""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class WorkloadResult:
    """Outcome of one workload variant run."""

    name: str
    variant: str
    runtime_ns: float
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def runtime_ms(self) -> float:
        return self.runtime_ns / 1e6

    def __repr__(self) -> str:
        return (
            f"WorkloadResult({self.name}/{self.variant}: "
            f"{self.runtime_ms:.3f} ms, {self.metrics})"
        )


try:  # vectorised corpus generation; the scalar path needs nothing
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Maps a random byte to lowercase ascii, matching 97 + (b % 26).
_TEXT_TABLE = bytes(97 + (i % 26) for i in range(256))

_U64 = 0xFFFFFFFFFFFFFFFF


def _xs_step(x: int) -> int:
    """One xorshift64 step (must match DeterministicRandom.next_u64)."""
    x ^= (x << 13) & _U64
    x ^= x >> 7
    x ^= (x << 17) & _U64
    return x


def _xs_apply(cols, x: int) -> int:
    """Apply a GF(2)-linear map (given by its 64 basis images) to x."""
    out = 0
    i = 0
    while x:
        if x & 1:
            out ^= cols[i]
        x >>= 1
        i += 1
    return out


#: Basis images of one xorshift64 step: the step is linear over GF(2),
#: so any power of it is again a linear map — the classic jump-ahead.
_XS_STEP_COLS = [_xs_step(1 << i) for i in range(64)]


def _xs_jump_tables(k: int):
    """Byte-indexed lookup tables for the map advancing a state k steps.

    Eight tables of 256 entries; applying the jump is eight lookups and
    xors instead of up to 64 basis-column xors.
    """
    cols = [1 << i for i in range(64)]  # identity
    base = _XS_STEP_COLS
    while k:
        if k & 1:
            cols = [_xs_apply(base, c) for c in cols]
        k >>= 1
        if k:
            base = [_xs_apply(base, c) for c in base]
    tables = []
    for group in range(8):
        table = [0] * 256
        group_cols = cols[group * 8 : (group + 1) * 8]
        for v in range(1, 256):
            low = v & -v
            table[v] = table[v ^ low] ^ group_cols[low.bit_length() - 1]
        tables.append(table)
    return tables


_XS_JUMP_CACHE: dict = {}


class DeterministicRandom:
    """Tiny deterministic PRNG (xorshift) so workloads are reproducible
    without seeding global state."""

    def __init__(self, seed: int):
        self._state = (seed or 1) & 0xFFFFFFFFFFFFFFFF

    def next_u64(self) -> int:
        x = self._state
        x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 7
        x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
        self._state = x
        return x

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi]."""
        if hi < lo:
            raise ValueError("hi < lo")
        return lo + self.next_u64() % (hi - lo + 1)

    def random(self) -> float:
        return self.next_u64() / 2**64

    def bytes(self, n: int) -> bytes:
        m = (n + 7) >> 3  # u64 states to emit
        if _np is not None and m >= 8192:
            return self._bytes_vectorised(n, m)
        # Inlined xorshift steps + one join: identical byte stream and
        # final PRNG state as the per-call next_u64 loop, far fewer
        # temporaries.
        x = self._state
        chunks = []
        for _ in range(m):
            x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
            x ^= x >> 7
            x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
            chunks.append(x.to_bytes(8, "little"))
        self._state = x
        return b"".join(chunks)[:n]

    def _bytes_vectorised(self, n: int, m: int) -> bytes:
        """Bit-identical fast path for large corpora.

        xorshift64 is linear over GF(2), so the state K steps ahead is a
        linear map of the current one.  Lane j seeds at state j*K via the
        cached jump map, then all lanes advance one step per vector op,
        producing lane j's states s[j*K+1 .. (j+1)*K] — exactly the
        scalar sequence once the (K, L) matrix is transposed flat.
        """
        # More lanes shrink the numpy step loop (4 array ops per step);
        # fewer lanes shrink the scalar seed loop.  k ~ 64-256 balances.
        lanes = 1 << max(8, min(14, (m >> 7).bit_length()))
        k = -(-m // lanes)
        jump = _XS_JUMP_CACHE.get(k)
        if jump is None:
            jump = _XS_JUMP_CACHE[k] = _xs_jump_tables(k)
        t0, t1, t2, t3, t4, t5, t6, t7 = jump
        seeds = _np.empty(lanes, dtype=_np.uint64)
        s = self._state
        for j in range(lanes):
            seeds[j] = s
            s = (
                t0[s & 0xFF]
                ^ t1[(s >> 8) & 0xFF]
                ^ t2[(s >> 16) & 0xFF]
                ^ t3[(s >> 24) & 0xFF]
                ^ t4[(s >> 32) & 0xFF]
                ^ t5[(s >> 40) & 0xFF]
                ^ t6[(s >> 48) & 0xFF]
                ^ t7[s >> 56]
            )
        out = _np.empty((k, lanes), dtype=_np.uint64)
        vec = seeds
        c13, c7, c17 = _np.uint64(13), _np.uint64(7), _np.uint64(17)
        for t in range(k):
            vec = vec ^ (vec << c13)
            vec ^= vec >> c7
            vec ^= vec << c17
            out[t] = vec
        flat = out.T.astype("<u8").reshape(-1)[:m]
        self._state = int(flat[m - 1])
        return flat.tobytes()[:n]

    def text(self, n: int) -> bytes:
        """Printable filler text of length n."""
        return self.bytes(n).translate(_TEXT_TABLE)

    def choice(self, seq):
        return seq[self.randint(0, len(seq) - 1)]


def cheap_digest(data: bytes) -> int:
    """A stand-in checksum used where the workload only needs *a* digest."""
    return zlib.crc32(data)
