"""UDP echo served by GPU work-groups over GENESYS syscalls.

The minimal network workload: each request datagram is echoed back to
its sender unmodified.  With no table scan in the way, service time is
pure syscall-stack cost (recvfrom + sendto at work-group granularity),
which makes it the floor against which memcached's per-request compute
is judged — and a fast target for the serving harness's RPS sweeps.

Wire framing matches :mod:`repro.workloads.memcachedwl`'s serving mode:
requests are ``b"Q" + reqid(8B) + padding``; the echo reply is the whole
payload, so clients match on the request id at bytes ``[1:9]`` either
way.  A bare ``b"STOP"`` datagram terminates one work-group's loop.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.core.invocation import Granularity, Ordering, WaitMode
from repro.gpu.ops import Compute
from repro.system import System
from repro.workloads.memcachedwl import SERVE_STOP

#: Per-request touch-up cost on the GPU (cycles) — checksum-ish work so
#: the kernel is not literally zero compute between syscalls.
ECHO_CYCLES = 16.0
ECHO_CPU_NS = 120.0
ECHO_PORT = 7007


class UdpEchoWorkload:
    """Echo server in two variants: GENESYS work-group loops or CPU
    threads.  Both serve an external (open-loop) client stream until
    every server loop has consumed a STOP datagram."""

    def __init__(self, system: System, payload_bytes: int = 64):
        self.system = system
        self.payload_bytes = payload_bytes

    def serve_genesys(
        self,
        driver: Generator,
        num_workgroups: int = 8,
        workgroup_size: int = 64,
        rx_backlog: Optional[int] = None,
    ) -> Dict[str, object]:
        """GPU serving loop: recvfrom -> echo -> sendto per work-group.

        ``driver`` is the load-generating process body (see
        ``MemcachedWorkload.serve_genesys`` for the contract); when it
        returns, one STOP per work-group shuts the kernel down.
        """
        system = self.system
        kernel = system.kernel
        server = kernel.create_process("echo-serve")
        served = [0] * num_workgroups
        wg_opts = dict(
            granularity=Granularity.WORK_GROUP, ordering=Ordering.RELAXED,
            blocking=True, wait=WaitMode.POLL,
        )
        bufsize = max(64, self.payload_bytes)

        def server_kernel(ctx) -> Generator:
            fd = ctx.args[0]
            shared = ctx.group.shared
            if "buf" not in shared:
                shared["buf"] = system.memsystem.alloc_buffer(bufsize)
            buf = shared["buf"]
            while True:
                n, src = yield from ctx.sys.recvfrom(fd, buf, buf.size, **wg_opts)
                if bytes(buf.data[:n]) == SERVE_STOP:
                    return
                yield Compute(ECHO_CYCLES)
                if ctx.is_group_leader:
                    served[ctx.group_id] += 1
                yield from ctx.sys.sendto(fd, buf, n, src, **wg_opts)

        def main() -> Generator:
            fd = yield from kernel.call(server, "socket")
            yield from kernel.call(server, "bind", fd, ECHO_PORT)
            if rx_backlog is not None:
                kernel._socket_for(server, fd).rx_capacity = rx_backlog
            system.genesys.host_process = server
            launch = system.launch(
                server_kernel,
                global_size=num_workgroups * workgroup_size,
                workgroup_size=workgroup_size,
                args=(fd,),
                name="echo-serve-kernel",
            )
            yield system.sim.process(driver, name="serving-driver")
            kernel._socket_for(server, fd).rx_capacity = None
            ctl = yield from kernel.call(server, "socket")
            stop = system.memsystem.alloc_buffer(len(SERVE_STOP))
            stop.data[:] = SERVE_STOP
            for _ in range(num_workgroups):
                yield from kernel.call(
                    server, "sendto", ctl, stop, len(SERVE_STOP),
                    ("localhost", ECHO_PORT),
                )
            yield launch
            yield from kernel.call(server, "close", ctl)
            yield from kernel.call(server, "close", fd)

        system.run_to_completion(main(), name="udpecho-serve")
        return {"served": sum(served), "served_per_group": list(served)}

    def serve_cpu(self, driver: Generator, server_threads: int = 4) -> Dict[str, object]:
        """CPU baseline: ``server_threads`` recvfrom/sendto loops."""
        system = self.system
        kernel = system.kernel
        server = kernel.create_process("echo-serve-cpu")
        served = [0] * server_threads
        bufsize = max(64, self.payload_bytes)

        def server_thread(fd: int, tid: int) -> Generator:
            buf = system.memsystem.alloc_buffer(bufsize)
            while True:
                n, src = yield from kernel.call(server, "recvfrom", fd, buf, buf.size)
                if bytes(buf.data[:n]) == SERVE_STOP:
                    return
                yield from system.cpu.run(ECHO_CPU_NS)
                served[tid] += 1
                yield from kernel.call(server, "sendto", fd, buf, n, src)

        def main() -> Generator:
            fd = yield from kernel.call(server, "socket")
            yield from kernel.call(server, "bind", fd, ECHO_PORT)
            threads = [
                system.sim.process(server_thread(fd, tid), name=f"echo-s{tid}")
                for tid in range(server_threads)
            ]
            yield system.sim.process(driver, name="serving-driver")
            ctl = yield from kernel.call(server, "socket")
            stop = system.memsystem.alloc_buffer(len(SERVE_STOP))
            stop.data[:] = SERVE_STOP
            for _ in range(server_threads):
                yield from kernel.call(
                    server, "sendto", ctl, stop, len(SERVE_STOP),
                    ("localhost", ECHO_PORT),
                )
            for thread in threads:
                yield thread
            yield from kernel.call(server, "close", ctl)
            yield from kernel.call(server, "close", fd)

        system.run_to_completion(main(), name="udpecho-serve-cpu")
        return {"served": sum(served), "served_per_group": list(served)}
