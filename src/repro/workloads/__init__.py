"""The paper's end-to-end case studies (Table I / Section VIII).

Six applications, each with the baseline(s) the paper compares against:

* :mod:`miniamr` — adaptive-mesh stencil managing its own memory with
  ``getrusage`` + ``madvise`` (Figure 11).
* :mod:`signal_search` — CPU/GPU map-reduce using ``rt_sigqueueinfo``
  for partial-completion notification (Figure 12).
* :mod:`grepwl` — ``grep -F -l`` with work-item-granularity output to
  the console (Figure 13a).
* :mod:`wordcount` — the GPUfs workload: ``open``/``read``/``close``
  word counting from SSD (Figures 13b and 14).
* :mod:`memcachedwl` — UDP memcached with GPU-served GETs via
  ``sendto``/``recvfrom`` (Figure 15).
* :mod:`bmp_display` — framebuffer control via ``ioctl`` + ``mmap``
  (Figure 16).
"""

from repro.workloads.base import WorkloadResult
from repro.workloads.bmp_display import BmpDisplayWorkload
from repro.workloads.grepwl import GrepWorkload
from repro.workloads.memcachedwl import MemcachedWorkload
from repro.workloads.miniamr import MiniAmrWorkload
from repro.workloads.signal_search import SignalSearchWorkload
from repro.workloads.udpecho import UdpEchoWorkload
from repro.workloads.wordcount import WordcountWorkload

__all__ = [
    "BmpDisplayWorkload",
    "GrepWorkload",
    "MemcachedWorkload",
    "MiniAmrWorkload",
    "SignalSearchWorkload",
    "UdpEchoWorkload",
    "WordcountWorkload",
    "WorkloadResult",
]
