"""bmp-display: GPU device control via ioctl (Section VIII-E, Figure 16).

The GPU opens ``/dev/fb0``, issues a series of ioctls to query and set
the framebuffer mode, ``mmap``s the pixel memory, then blits a
previously-mmaped raster image onto the screen, one row per work-item.  "While not a critical GPGPU application, this ioctl
example demonstrates the generality and flexibility of OS interfaces
implemented by GENESYS."

The image format is a minimal BMP-like container: a 12-byte header
(magic, width, height) followed by rows of 32-bit pixels.
"""

from __future__ import annotations

import struct
from typing import Generator, Tuple

import numpy as np

from repro.core.invocation import Granularity, Ordering, WaitMode
from repro.gpu.ops import Do, MemRead, MemWrite, Sleep
from repro.oskernel.devices import (
    FBIOGET_VSCREENINFO,
    FBIOPAN_DISPLAY,
    FBIOPUT_VSCREENINFO,
    VarScreenInfo,
)
from repro.oskernel.fs import O_RDONLY
from repro.system import System
from repro.workloads.base import WorkloadResult

MAGIC = b"BMPR"
HEADER_BYTES = 12


def make_test_image(width: int, height: int) -> Tuple[bytes, np.ndarray]:
    """A deterministic gradient raster; returns (file bytes, pixel array)."""
    ys, xs = np.mgrid[0:height, 0:width]
    pixels = (
        ((xs * 255 // max(1, width - 1)) << 16)
        | ((ys * 255 // max(1, height - 1)) << 8)
        | ((xs + ys) % 256)
    ).astype(np.uint32)
    header = MAGIC + struct.pack("<II", width, height)
    return header + pixels.tobytes(), pixels


def parse_header(header: bytes) -> Tuple[int, int]:
    if header[:4] != MAGIC:
        raise ValueError("not a BMPR image")
    width, height = struct.unpack("<II", header[4:12])
    return width, height


class BmpDisplayWorkload:
    def __init__(self, system: System, width: int = 64, height: int = 64):
        self.system = system
        self.width = width
        self.height = height
        data, self.pixels = make_test_image(width, height)
        self.image_path = "/data/image.bmpr"
        system.kernel.fs.create_file(self.image_path, data)

    def run(self) -> WorkloadResult:
        system = self.system
        fb_dev = system.kernel.framebuffer
        width, height = self.width, self.height
        image_path = self.image_path
        row_bytes = width * 4
        start = system.now
        kernel_opts = dict(
            granularity=Granularity.KERNEL, ordering=Ordering.RELAXED,
            wait=WaitMode.POLL,
        )

        def kern(ctx) -> Generator:
            shared = ctx.kernel.shared
            if ctx.is_kernel_leader:
                # Kernel-granularity device setup (Table I: bmp-display
                # invokes ioctl/mmap once per kernel).
                fb = yield from ctx.sys.open("/dev/fb0", **kernel_opts)
                var = yield from ctx.sys.ioctl(fb, FBIOGET_VSCREENINFO, **kernel_opts)
                if (var.xres, var.yres) != (width, height):
                    new_mode = VarScreenInfo(width, height, 32)
                    ret = yield from ctx.sys.ioctl(
                        fb, FBIOPUT_VSCREENINFO, new_mode, **kernel_opts
                    )
                    assert ret == 0
                mapping = yield from ctx.sys.mmap(
                    width * height * 4, fb, 0, **kernel_opts
                )
                img = yield from ctx.sys.open(image_path, O_RDONLY, **kernel_opts)
                img_bytes = HEADER_BYTES + width * height * 4
                img_map = yield from ctx.sys.mmap(img_bytes, img, 0, **kernel_opts)
                shared["fb"] = fb
                shared["img"] = img
                shared["img_map"] = img_map
                shared["mapping"] = mapping
                shared["ready"] = True
            else:
                # Wait for device setup (kernel-scope flag; no global
                # barrier exists, so poll the shared flag).
                while not shared.get("ready"):
                    yield Sleep(500.0)
            mapping = shared["mapping"]
            img_map = shared["img_map"]
            # One work-item per row: read the row through the mmaped
            # image ("fill it with data from a previously mmaped raster
            # image") and blit it into the mmaped framebuffer.
            row = ctx.global_id
            if row >= height:
                return
            yield MemRead(img_map.addr + HEADER_BYTES + row * row_bytes, row_bytes)
            yield MemWrite(mapping.addr + row * row_bytes, row_bytes)
            row_view = img_map.view()[
                HEADER_BYTES + row * row_bytes : HEADER_BYTES + (row + 1) * row_bytes
            ]
            yield Do(
                lambda: mapping.array.reshape(-1)
                .view(np.uint8)
                .__setitem__(
                    slice(row * row_bytes, (row + 1) * row_bytes),
                    np.frombuffer(bytes(row_view), dtype=np.uint8),
                )
            )

        def final(ctx) -> Generator:
            # A second tiny kernel pans the display and closes the fds.
            fb = ctx.kernel.shared["fb"]
            ret = yield from ctx.sys.ioctl(fb, FBIOPAN_DISPLAY, None, **kernel_opts)
            assert ret == 0
            yield from ctx.sys.close(ctx.kernel.shared["img"], **kernel_opts)
            yield from ctx.sys.close(fb, **kernel_opts)

        # The finishing kernel needs the blit kernel's shared dict (open
        # fds, the mapping), so both kernels use one shared holder.
        shared_holder = {}

        def kern_wrapper(ctx):
            ctx.kernel.shared = shared_holder
            return kern(ctx)

        def final_wrapper(ctx):
            ctx.kernel.shared = shared_holder
            return final(ctx)

        def main2() -> Generator:
            yield system.launch(
                kern_wrapper, global_size=height,
                workgroup_size=min(64, height), name="bmp-blit",
            )
            yield system.launch(final_wrapper, 1, 1, name="bmp-finish")

        system.run_to_completion(main2(), name="bmp-display")
        displayed = np.array_equal(fb_dev.pixels, self.pixels)
        return WorkloadResult(
            "bmp-display",
            "genesys",
            system.now - start,
            {
                "displayed_correctly": bool(displayed),
                "mode": (fb_dev.var.xres, fb_dev.var.yres),
                "ioctls": fb_dev.ioctl_count,
                "pans": fb_dev.pan_count,
            },
        )
