"""Wordcount from SSD — the GPUfs workload (Figures 13b and 14).

Count occurrences of 64 search strings across a corpus of disk-backed
files.  Three variants, as in the paper:

* ``cpu`` — OpenMP-style: 4 CPU threads, each synchronously reading its
  files chunk-by-chunk and scanning them (I/O and compute alternate, so
  the disk idles while a thread scans: the ~30 MB/s CPU trace).
* ``gpu-nosyscall`` — the pre-GENESYS pattern of Figure 1 (left): the
  CPU loads a batch of files, launches a scan kernel, waits, repeats.
  No I/O/compute overlap plus a kernel-launch round trip per batch.
* ``genesys`` — one kernel; each work-group opens its file and reads it
  chunk-by-chunk at work-group granularity (blocking + weak ordering,
  the paper's best configuration), scanning chunks while dozens of
  other work-groups keep the SSD queue deep.

Scanning 64 patterns naively is expensive on a CPU core and cheap for a
work-group's worth of lanes — which is exactly why offloading frees the
CPU to service system calls (Figure 14's utilisation traces).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Tuple

from repro.core.invocation import Granularity, Ordering, WaitMode
from repro.gpu.ops import Compute
from repro.oskernel.fs import O_RDONLY
from repro.system import System
from repro.workloads.base import DeterministicRandom, WorkloadResult

#: 64-pattern scan costs.
CPU_SCAN_NS_PER_BYTE = 40.0
GPU_SCAN_CYCLES_PER_BYTE = 64.0
NUM_WORDS = 64


class WordcountWorkload:
    def __init__(
        self,
        system: System,
        num_files: int = 32,
        file_bytes: int = 65536,
        chunk_bytes: int = 32768,
        workgroup_size: int = 64,
        seed: int = 7,
    ):
        if system.kernel.disk is None:
            raise ValueError("wordcount needs a system with a block device")
        self.system = system
        self.num_files = num_files
        self.file_bytes = file_bytes
        self.chunk_bytes = chunk_bytes
        self.workgroup_size = workgroup_size
        rng = DeterministicRandom(seed)
        self.words: List[bytes] = [b"word%04d" % i for i in range(NUM_WORDS)]
        fs = system.kernel.fs
        if not fs.exists("/data/wc"):
            fs.mkdir("/data/wc")
        self.paths: List[str] = []
        self.expected: Dict[bytes, int] = {w: 0 for w in self.words}
        for i in range(num_files):
            body = bytearray(rng.text(file_bytes))
            used_slots = set()
            for _ in range(rng.randint(2, 8)):
                word = self.words[rng.randint(0, NUM_WORDS - 1)]
                # Place on a chunk-aligned stride so chunked scans see it;
                # one word per slot so expected counts stay exact.
                slot_width = len(word) + 8
                slots = (file_bytes // slot_width) - 1
                slot = rng.randint(0, slots)
                if slot in used_slots:
                    continue
                used_slots.add(slot)
                body[slot * slot_width : slot * slot_width + len(word)] = word
                self.expected[word] += 1
            path = f"/data/wc/file{i:04d}.txt"
            fs.create_file(path, bytes(body), on_disk=True)
            # Fresh page cache: reads must hit the SSD.
            fs.resolve(path).cached_pages.clear()
            self.paths.append(path)

    def drop_caches(self) -> None:
        """Empty every file's page cache (between variant runs)."""
        for path in self.paths:
            self.system.kernel.fs.resolve(path).cached_pages.clear()

    def _count_words(self, chunk: bytes, counts: Dict[bytes, int]) -> None:
        for word in self.words:
            hits = chunk.count(word)
            if hits:
                counts[word] = counts.get(word, 0) + hits

    # -- CPU variant ------------------------------------------------------------

    def run_cpu(self, threads: int = 4) -> WorkloadResult:
        system = self.system
        kernel = system.kernel
        proc = kernel.create_process("wordcount-cpu")
        counts: Dict[bytes, int] = {}
        start = system.now

        def worker(paths: List[str]) -> Generator:
            buf = system.memsystem.alloc_buffer(self.chunk_bytes)
            for path in paths:
                fd = yield from kernel.call(proc, "open", path, O_RDONLY)
                while True:
                    n = yield from kernel.call(proc, "read", fd, buf, self.chunk_bytes)
                    if n <= 0:
                        break
                    yield from system.cpu.run(n * CPU_SCAN_NS_PER_BYTE)
                    self._count_words(bytes(buf.data[:n]), counts)
                yield from kernel.call(proc, "close", fd)

        def main() -> Generator:
            workers = [
                system.sim.process(worker(self.paths[t::threads]), name=f"wc-t{t}")
                for t in range(threads)
            ]
            for w in workers:
                yield w

        system.run_to_completion(main(), name="wordcount-cpu")
        return WorkloadResult("wordcount", "cpu", system.now - start, {"counts": counts})

    # -- GPU without system calls (Figure 1 left) ----------------------------------

    def run_gpu_nosyscall(self, batch_files: int = 4) -> WorkloadResult:
        system = self.system
        kernel = system.kernel
        proc = kernel.create_process("wordcount-nosys")
        counts: Dict[bytes, int] = {}
        cycles = GPU_SCAN_CYCLES_PER_BYTE
        start = system.now
        staging: List[bytes] = []

        def scan_kernel(ctx) -> Generator:
            data = staging[ctx.group_id]
            per_item = -(-len(data) // ctx.group.size)
            lo = ctx.local_id * per_item
            hi = min(len(data), lo + per_item)
            if lo >= hi:
                return
            yield Compute((hi - lo) * cycles)
            self._count_words(data[lo:hi], counts)

        def main() -> Generator:
            buf = system.memsystem.alloc_buffer(self.file_bytes)
            for batch_start in range(0, len(self.paths), batch_files):
                batch = self.paths[batch_start : batch_start + batch_files]
                staging.clear()
                # Phase 1: the CPU loads the whole batch, serially (the
                # kernel cannot request data itself).
                for path in batch:
                    fd = yield from kernel.call(proc, "open", path, O_RDONLY)
                    data = bytearray()
                    while True:
                        n = yield from kernel.call(proc, "read", fd, buf, self.chunk_bytes)
                        if n <= 0:
                            break
                        data.extend(buf.data[:n])
                    yield from kernel.call(proc, "close", fd)
                    staging.append(bytes(data))
                # Phase 2: launch a kernel over the staged batch.
                yield system.launch(
                    scan_kernel,
                    global_size=len(staging) * self.workgroup_size,
                    workgroup_size=self.workgroup_size,
                    name="wc-scan",
                )

        system.run_to_completion(main(), name="wordcount-nosys")
        return WorkloadResult(
            "wordcount", "gpu-nosyscall", system.now - start, {"counts": counts}
        )

    # -- GENESYS ---------------------------------------------------------------

    def run_genesys(self) -> WorkloadResult:
        system = self.system
        counts: Dict[bytes, int] = {}
        cycles = GPU_SCAN_CYCLES_PER_BYTE
        chunk_bytes = self.chunk_bytes
        paths = self.paths
        bufs: Dict[int, object] = {}
        start = system.now
        # Work-group granularity, blocking, weak ordering: the paper's
        # best-performing configuration for this workload.
        wg_opts = dict(
            granularity=Granularity.WORK_GROUP,
            ordering=Ordering.RELAXED,
            blocking=True,
            wait=WaitMode.POLL,
        )

        def kern(ctx) -> Generator:
            if ctx.group_id >= len(paths):
                return
            path = paths[ctx.group_id]
            fd = yield from ctx.sys.open(path, O_RDONLY, **wg_opts)
            if ctx.group_id not in bufs:
                bufs[ctx.group_id] = system.memsystem.alloc_buffer(chunk_bytes)
            buf = bufs[ctx.group_id]
            offset = 0
            first = True
            while True:
                # GPUfs-style access: a stateful read for the first
                # chunk, position-absolute preads after (Table I lists
                # wordsearch under pread + read).
                if first:
                    n = yield from ctx.sys.read(fd, buf, chunk_bytes, **wg_opts)
                    first = False
                else:
                    n = yield from ctx.sys.pread(fd, buf, chunk_bytes, offset, **wg_opts)
                if n is None or n <= 0:
                    break
                offset += n
                data = bytes(buf.data[:n])
                per_item = -(-n // ctx.group.size)
                lo = ctx.local_id * per_item
                hi = min(n, lo + per_item)
                if lo < hi:
                    yield Compute((hi - lo) * cycles)
                    if ctx.is_group_leader:
                        # Functional tally once per chunk (the leader's
                        # lane aggregates, mirroring an LDS reduction).
                        self._count_words(data, counts)
            yield from ctx.sys.close(fd, **wg_opts)

        system.run_kernel(
            kern,
            global_size=len(paths) * self.workgroup_size,
            workgroup_size=self.workgroup_size,
            name="wordcount-genesys",
        )
        return WorkloadResult(
            "wordcount", "genesys", system.now - start, {"counts": counts}
        )
