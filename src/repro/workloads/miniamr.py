"""miniAMR: GPU-directed memory management (Section VIII-A, Figure 11).

A 3D-stencil adaptive-mesh-refinement proxy whose memory needs vary with
the (data-dependent) refinement level.  The dataset is sized just past
the physical-memory limit, so a version that never returns memory to the
OS thrashes the swap until the GPU driver's watchdog kills it — the
paper's baseline "simply does not complete".

With GENESYS, work-groups call ``getrusage`` directly from the GPU and,
whenever the resident set exceeds a watermark, ``madvise(MADV_DONTNEED)``
the blocks that the current refinement level no longer needs.  The
watermark trades memory footprint for runtime (rss-3GB vs rss-4GB in
Figure 11); everything here is scaled ~1000x down.
"""

from __future__ import annotations

import math
from typing import Generator, List, Optional

from repro.core.invocation import Granularity, Ordering, WaitMode
from repro.gpu.ops import Compute, Do, Sleep
from repro.oskernel.mm import GpuTimeoutError, MADV_DONTNEED
from repro.system import System
from repro.workloads.base import WorkloadResult

#: Stencil compute cost per touched page per timestep.
STENCIL_CYCLES_PER_PAGE = 400.0


class MiniAmrWorkload:
    def __init__(
        self,
        system: System,
        num_blocks: int = 48,
        block_bytes: int = 64 * 1024,
        timesteps: int = 24,
        workgroup_size: int = 16,
    ):
        self.system = system
        self.num_blocks = num_blocks
        self.block_bytes = block_bytes
        self.timesteps = timesteps
        self.workgroup_size = workgroup_size
        self.block_addrs: List[int] = []
        aspace = system.host.address_space
        for _ in range(num_blocks):
            self.block_addrs.append(aspace.mmap(block_bytes))

    @property
    def dataset_bytes(self) -> int:
        return self.num_blocks * self.block_bytes

    def active_blocks(self, step: int) -> List[int]:
        """Refinement schedule: the active fraction oscillates between
        ~45% and 100% of the mesh (turbulent regions refine and coarsen)."""
        frac = 0.50 + 0.15 * math.sin(2 * math.pi * step / 12.0)
        count = max(1, int(self.num_blocks * frac))
        # Rotate which blocks are active so the working set shifts.
        start = (step * 7) % self.num_blocks
        return [(start + i) % self.num_blocks for i in range(count)]

    def run(
        self,
        rss_watermark_bytes: Optional[int] = None,
        use_madvise: bool = True,
    ) -> WorkloadResult:
        """Run the simulation; without madvise this may raise
        :class:`GpuTimeoutError` (reported in the result instead)."""
        system = self.system
        aspace = system.host.address_space
        addrs = self.block_addrs
        block_bytes = self.block_bytes
        watermark = rss_watermark_bytes or int(0.75 * self.dataset_bytes)
        pages_per_block = block_bytes // system.config.page_bytes
        wg_opts = dict(
            granularity=Granularity.WORK_GROUP,
            ordering=Ordering.RELAXED,
            wait=WaitMode.POLL,
        )
        start = system.now
        timed_out: List[str] = []

        def step_kernel(ctx) -> Generator:
            active = ctx.args[0]
            # Each work-group owns a slice of active blocks.
            per_group = -(-len(active) // ctx.kernel.num_groups)
            lo = ctx.group_id * per_group
            hi = min(len(active), lo + per_group)
            for bidx in active[lo:hi]:
                addr = addrs[bidx]
                if ctx.is_group_leader:
                    # The group touches the block's pages (faulting them
                    # in through the driver if needed)...
                    stall, _majors = yield Do(
                        lambda a=addr: aspace.fault_in_gpu(a, block_bytes)
                    )
                    if stall:
                        yield Sleep(stall)
                # ...and everyone computes the stencil on its share.
                yield Compute(STENCIL_CYCLES_PER_PAGE * pages_per_block / ctx.group.size)
            if not use_madvise:
                return
            # GENESYS memory management: query RSS; above the watermark,
            # return the inactive blocks to the OS.
            if ctx.is_group_leader and ctx.group_id == 0:
                usage = yield from ctx.sys.getrusage(
                    granularity=Granularity.WORK_ITEM, wait=WaitMode.POLL
                )
                del usage  # decision below uses live RSS via the watermark
            rss = aspace.rss_bytes
            if rss > watermark:
                inactive = [i for i in range(len(addrs)) if i not in set(active)]
                per_group_inactive = [
                    b for j, b in enumerate(inactive)
                    if j % ctx.kernel.num_groups == ctx.group_id
                ]
                for bidx in per_group_inactive:
                    yield from ctx.sys.madvise(
                        addrs[bidx], block_bytes, MADV_DONTNEED,
                        blocking=False, **wg_opts
                    )

        def main() -> Generator:
            for step in range(self.timesteps):
                active = self.active_blocks(step)
                groups = min(8, len(active))
                yield system.launch(
                    step_kernel,
                    global_size=groups * self.workgroup_size,
                    workgroup_size=self.workgroup_size,
                    args=(active,),
                    name=f"amr-step{step}",
                )
                # Let outstanding madvise calls land before the next step.
                yield from system.genesys.drain()

        try:
            system.run_to_completion(main(), name="miniamr")
        except GpuTimeoutError as err:
            timed_out.append(str(err))
        variant = (
            f"madvise-wm{watermark // (1024 * 1024)}MB" if use_madvise else "baseline"
        )
        return WorkloadResult(
            "miniamr",
            variant,
            system.now - start,
            {
                "completed": not timed_out,
                "timeout": timed_out[0] if timed_out else None,
                "peak_rss_bytes": aspace.peak_rss_pages * aspace.page_bytes,
                "major_faults": aspace.major_faults,
                "minor_faults": aspace.minor_faults,
                "rss_series": aspace.rss_series(),
                "watermark_bytes": watermark if use_madvise else None,
            },
        )
