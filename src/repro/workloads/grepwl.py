"""grep -F -l on the GPU (paper Section VIII-C, Figure 13a).

Given a word list and a file list, report which files contain any of the
words, printing each filename to the console *as soon as it is found*.
The paper stresses that GPUfs cannot express this workload without
refactoring (custom APIs, no work-item-granularity invocation, no
console), while GENESYS ports it in hours using plain POSIX.

Variants:

* ``cpu`` — single-threaded CPU grep.
* ``openmp`` — 4 CPU threads, files partitioned across them.
* ``genesys-wi-poll`` / ``genesys-wi-halt`` — one work-item per file;
  the first match immediately writes the filename (non-blocking
  work-item invocation) and the work-item early-exits.  Waiting uses
  polling or halt-resume.
* ``genesys-wg`` — one work-group per file; the group shares the fd,
  every lane scans its slice of each chunk in parallel, and matches
  OR-reduce across the group.

Work-item variants scan chunk-by-chunk via stateful ``read`` (each
work-item owns its fd) and stop at the first match — the early-exit the
paper credits for work-item invocation.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from repro.core.invocation import Granularity, Ordering, WaitMode
from repro.gpu.ops import Barrier, Compute
from repro.oskernel.fs import O_RDONLY
from repro.system import System
from repro.workloads.base import DeterministicRandom, WorkloadResult

#: Multi-pattern scan costs: CPU Aho-Corasick-ish vs per-work-item GPU.
CPU_SCAN_NS_PER_BYTE = 2.5
GPU_SCAN_CYCLES_PER_BYTE = 6.0


class GrepWorkload:
    def __init__(
        self,
        system: System,
        num_files: int = 32,
        file_bytes: int = 65536,
        num_words: int = 16,
        match_fraction: float = 0.5,
        chunk_bytes: int = 16384,
        seed: int = 42,
    ):
        self.system = system
        self.num_files = num_files
        self.file_bytes = file_bytes
        self.chunk_bytes = chunk_bytes
        rng = DeterministicRandom(seed)
        self.words: List[bytes] = [
            b"needle%02d" % i for i in range(num_words)
        ]
        self.paths: List[str] = []
        self.expected_matches: List[str] = []
        fs = system.kernel.fs
        if not fs.exists("/data/grep"):
            fs.mkdir("/data/grep")
        for i in range(num_files):
            path = f"/data/grep/file{i:04d}.txt"
            body = bytearray(rng.text(file_bytes))
            if rng.random() < match_fraction:
                word = self.words[rng.randint(0, num_words - 1)]
                pos = rng.randint(0, file_bytes - len(word) - 1)
                body[pos : pos + len(word)] = word
                self.expected_matches.append(path)
            fs.create_file(path, bytes(body))
            self.paths.append(path)

    # -- functional scan -------------------------------------------------------

    def _contains_word(self, chunk: bytes) -> bool:
        return any(word in chunk for word in self.words)

    # -- CPU variants ------------------------------------------------------------

    def run_cpu(self, threads: int = 1) -> WorkloadResult:
        system = self.system
        kernel = system.kernel
        proc = kernel.create_process(f"grep-cpu{threads}")
        found: List[str] = []
        start = system.now

        def scan_files(paths: Sequence[str]) -> Generator:
            buf = system.memsystem.alloc_buffer(self.chunk_bytes)
            for path in paths:
                fd = yield from kernel.call(proc, "open", path, O_RDONLY)
                offset = 0
                while True:
                    n = yield from kernel.call(
                        proc, "pread", fd, buf, self.chunk_bytes, offset
                    )
                    if n <= 0:
                        break
                    yield from system.cpu.run(n * CPU_SCAN_NS_PER_BYTE)
                    if self._contains_word(bytes(buf.data[:n])):
                        line = system.memsystem.alloc_buffer(len(path) + 1)
                        line.data[:] = (path + "\n").encode()
                        yield from kernel.call(proc, "write", 1, line, line.size)
                        found.append(path)
                        break
                    offset += n
                yield from kernel.call(proc, "close", fd)

        def main() -> Generator:
            per_thread = [self.paths[t::threads] for t in range(threads)]
            workers = [
                system.sim.process(scan_files(chunk), name=f"grep-t{t}")
                for t, chunk in enumerate(per_thread)
            ]
            for worker in workers:
                yield worker

        system.run_to_completion(main(), name=f"grep-cpu{threads}")
        variant = "cpu" if threads == 1 else f"openmp{threads}"
        return WorkloadResult(
            "grep", variant, system.now - start, {"files_matched": sorted(found)}
        )

    # -- GENESYS variants ----------------------------------------------------------

    def run_genesys(
        self,
        granularity: Granularity = Granularity.WORK_ITEM,
        wait: WaitMode = WaitMode.POLL,
        workgroup_size: int = 64,
    ) -> WorkloadResult:
        system = self.system
        paths = self.paths
        chunk_bytes = self.chunk_bytes
        contains = self._contains_word
        cycles = GPU_SCAN_CYCLES_PER_BYTE
        start = system.now
        found: List[str] = []
        bufs = {}

        def file_index(ctx) -> Optional[int]:
            if granularity is Granularity.WORK_ITEM:
                idx = ctx.global_id
            else:
                idx = ctx.group_id
            return idx if idx < len(paths) else None

        max_word = max(len(word) for word in self.words)

        def emit_match(ctx, path: str) -> Generator:
            line = system.memsystem.alloc_buffer(len(path) + 1)
            line.data[:] = (path + "\n").encode()
            # First match: write the filename right away, non-blocking —
            # no need to wait for other files.
            yield from ctx.sys.write(1, line, line.size, blocking=False)
            found.append(path)

        def wi_kern(ctx) -> Generator:
            idx = file_index(ctx)
            if idx is None:
                return
            path = paths[idx]
            fd = yield from ctx.sys.open(path, O_RDONLY, wait=wait)
            buf = bufs.setdefault(idx, system.memsystem.alloc_buffer(chunk_bytes))
            matched = False
            while not matched:
                # Each work-item owns its fd, so the stateful read's
                # shared offset is private — Table I lists grep under
                # plain read/open/close.
                n = yield from ctx.sys.read(fd, buf, chunk_bytes, wait=wait)
                if n <= 0:
                    break
                yield Compute(n * cycles)
                if contains(bytes(buf.data[:n])):
                    matched = True
                    yield from emit_match(ctx, path)
            yield from ctx.sys.close(fd, blocking=False)

        def wg_kern(ctx) -> Generator:
            """Work-group variant: the group shares the fd and every
            lane scans its slice of each chunk in parallel; matches
            OR-reduce through group-shared state."""
            idx = file_index(ctx)
            if idx is None:
                return
            path = paths[idx]
            opts = dict(
                granularity=Granularity.WORK_GROUP,
                ordering=Ordering.RELAXED, wait=wait,
            )
            fd = yield from ctx.sys.open(path, O_RDONLY, **opts)
            buf = bufs.setdefault(idx, system.memsystem.alloc_buffer(chunk_bytes))
            shared = ctx.group.shared
            while True:
                # Producer call: the result broadcasts to every lane.
                n = yield from ctx.sys.read(fd, buf, chunk_bytes, **opts)
                if n <= 0:
                    break
                # Lane-parallel scan: each lane takes a slice (with a
                # word-length overlap so boundary matches aren't missed).
                per_lane = -(-n // ctx.group.size)
                lo = ctx.local_id * per_lane
                hi = min(n, lo + per_lane + max_word - 1)
                if lo < n:
                    yield Compute((hi - lo) * cycles)
                    if contains(bytes(buf.data[lo:hi])):
                        shared["hit"] = True
                yield Barrier()
                if shared.get("hit"):
                    if ctx.is_group_leader:
                        yield from emit_match(ctx, path)
                    break
                yield Barrier()
            yield from ctx.sys.close(
                fd, granularity=Granularity.WORK_GROUP,
                ordering=Ordering.RELAXED, blocking=False,
            )

        kern = wi_kern if granularity is Granularity.WORK_ITEM else wg_kern

        if granularity is Granularity.WORK_ITEM:
            global_size = len(paths)
            wg = min(workgroup_size, global_size)
        else:
            global_size = len(paths) * workgroup_size
            wg = workgroup_size
        system.run_kernel(kern, global_size, wg, name="grep-gpu")
        variant = {
            (Granularity.WORK_ITEM, WaitMode.POLL): "genesys-wi-poll",
            (Granularity.WORK_ITEM, WaitMode.HALT_RESUME): "genesys-wi-halt",
            (Granularity.WORK_GROUP, WaitMode.POLL): "genesys-wg",
            (Granularity.WORK_GROUP, WaitMode.HALT_RESUME): "genesys-wg-halt",
        }[(granularity, wait)]
        return WorkloadResult(
            "grep", variant, system.now - start, {"files_matched": sorted(found)}
        )

    def console_lines(self) -> List[str]:
        """Filenames printed to the console so far."""
        return [line for line in self.system.kernel.terminal.lines if line]
