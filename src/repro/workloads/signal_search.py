"""signal-search: GPU→CPU asynchronous notification (Section VIII-B).

A two-phase map-reduce.  Phase 1 — a highly parallel lookup over blocks
of a data array — fits the GPU; phase 2 — SHA-512 checksums of the
retrieved blocks — fits the CPU (hardware SHA acceleration).  Without
GPU signal support the phases serialise: the whole lookup kernel must
finish before the CPU may start hashing.  With GENESYS, each work-group
emits ``rt_sigqueueinfo`` as it completes its block, passing the block
id through the siginfo value, and a CPU thread draining ``sigwaitinfo``
overlaps hashing with the still-running kernel — the paper's ~14%
speedup (Figure 12).

Checksums are computed for real (hashlib.sha512).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Generator, List

from repro.core.invocation import Granularity, Ordering, WaitMode
from repro.gpu.ops import Compute
from repro.oskernel.signals import SIGRTMIN
from repro.system import System
from repro.workloads.base import DeterministicRandom, WorkloadResult

#: Per-byte costs: GPU parallel lookup and CPU SHA-512 (with SHA-NI).
GPU_LOOKUP_CYCLES_PER_BYTE = 130.0
CPU_SHA_NS_PER_BYTE = 1.5
SIG_BLOCK_DONE = SIGRTMIN + 2
#: Work-groups stride over the blocks, so block completions stagger in
#: time and the CPU can start hashing early ones while later ones run.
NUM_GROUPS = 8


class SignalSearchWorkload:
    def __init__(
        self,
        system: System,
        num_blocks: int = 32,
        block_bytes: int = 32768,
        workgroup_size: int = 64,
        seed: int = 11,
    ):
        self.system = system
        self.num_blocks = num_blocks
        self.block_bytes = block_bytes
        self.workgroup_size = workgroup_size
        rng = DeterministicRandom(seed)
        self.blocks: List[bytes] = [rng.bytes(block_bytes) for _ in range(num_blocks)]
        self.expected: Dict[int, str] = {
            i: hashlib.sha512(b).hexdigest() for i, b in enumerate(self.blocks)
        }

    def _lookup_kernel(self, on_block_done):
        """Phase-1 kernel: work-groups stride over the blocks; after each
        block, ``on_block_done`` (a sub-generator factory or None) runs."""
        blocks = self.blocks
        cycles = GPU_LOOKUP_CYCLES_PER_BYTE

        def kern(ctx) -> Generator:
            for block_id in range(ctx.group_id, len(blocks), ctx.kernel.num_groups):
                data = blocks[block_id]
                per_item = -(-len(data) // ctx.group.size)
                yield Compute(per_item * cycles)
                if on_block_done is not None:
                    # Work-group-granularity call: every lane participates
                    # (the API designates the leader internally).
                    yield from on_block_done(ctx, block_id)

        return kern

    def _hash_block(self, block_id: int, digests: Dict[int, str]) -> Generator:
        """CPU phase-2 work for one block (process body)."""
        data = self.blocks[block_id]
        yield from self.system.cpu.run(len(data) * CPU_SHA_NS_PER_BYTE)
        digests[block_id] = hashlib.sha512(data).hexdigest()

    # -- baseline: phases serialise -------------------------------------------

    def run_baseline(self) -> WorkloadResult:
        system = self.system
        digests: Dict[int, str] = {}
        start = system.now

        def main() -> Generator:
            groups = min(NUM_GROUPS, self.num_blocks)
            yield system.launch(
                self._lookup_kernel(None),
                global_size=groups * self.workgroup_size,
                workgroup_size=self.workgroup_size,
                name="lookup",
            )
            for block_id in range(self.num_blocks):
                yield from self._hash_block(block_id, digests)

        system.run_to_completion(main(), name="signal-search-base")
        return WorkloadResult(
            "signal-search", "baseline", system.now - start, {"digests": digests}
        )

    # -- GENESYS: signals overlap the phases ------------------------------------

    def run_genesys(self) -> WorkloadResult:
        system = self.system
        host = system.host
        digests: Dict[int, str] = {}
        start = system.now

        def on_done(ctx, block_id: int) -> Generator:
            # Non-blocking work-group invocation.  Strong ordering keeps
            # the group's lanes at the post-call barrier for the few
            # microseconds the leader needs to issue the signal, so the
            # notification leaves as soon as the block is done instead
            # of being dragged behind the next block's compute.
            yield from ctx.sys.rt_sigqueueinfo(
                host.pid,
                SIG_BLOCK_DONE,
                block_id,
                granularity=Granularity.WORK_GROUP,
                ordering=Ordering.STRONG,
                blocking=False,
                wait=WaitMode.POLL,
            )

        def cpu_consumer() -> Generator:
            for _ in range(self.num_blocks):
                info = yield from host.signals.sigwaitinfo()
                assert info.signo == SIG_BLOCK_DONE
                yield from self._hash_block(info.value, digests)

        def main() -> Generator:
            consumer = system.sim.process(cpu_consumer(), name="sha-consumer")
            groups = min(NUM_GROUPS, self.num_blocks)
            yield system.launch(
                self._lookup_kernel(on_done),
                global_size=groups * self.workgroup_size,
                workgroup_size=self.workgroup_size,
                name="lookup-sig",
            )
            yield consumer

        system.run_to_completion(main(), name="signal-search-genesys")
        return WorkloadResult(
            "signal-search", "genesys", system.now - start, {"digests": digests}
        )
