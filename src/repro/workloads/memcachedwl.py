"""UDP memcached with GPU-served GETs (Section VIII-D, Figure 15).

A binary-ish UDP memcached supporting SET and GET over a fixed-size
hash table shared between CPU and GPU.  GPUs accelerate GETs by
parallelising the bucket scan across a work-group's lanes — the win
grows with bucket occupancy (the paper reports 30-40% latency and
throughput gains at 1024 elements/bucket with 1KB values).  No RDMA is
assumed: everything rides ``sendto``/``recvfrom``.

Variants:

* ``cpu`` — 4 server threads: recvfrom, serial bucket scan, sendto.
* ``gpu-nosyscall`` — the CPU receives requests and launches a lookup
  kernel per small batch, then sends replies (no direct GPU I/O).
* ``genesys`` — a GPU kernel whose work-groups loop
  recvfrom → parallel scan → sendto at work-group granularity.

Clients are closed-loop: ``concurrency`` outstanding requests, so
throughput and latency are linked the way a fixed client pool links
them.  Payloads are real bytes; lookups return the actual stored values.
"""

from __future__ import annotations

import zlib
from typing import Dict, Generator, List, Optional, Tuple

from repro.core.invocation import Granularity, Ordering, WaitMode
from repro.gpu.ops import Compute, MemRead
from repro.system import System
from repro.workloads.base import DeterministicRandom, WorkloadResult

#: Per-element key-compare costs (pointer-chasing on CPU; per-lane GPU).
CPU_COMPARE_NS_PER_ELEM = 70.0
GPU_COMPARE_CYCLES_PER_ELEM = 12.0
SERVER_PORT = 11211

#: Serving-mode wire framing (shared with :mod:`repro.serving.clients`):
#: requests are ``b"Q" + reqid + b"GET " + key``, replies are
#: ``b"R" + reqid + value`` where ``reqid`` is 8 bytes big-endian.  A
#: bare ``b"STOP"`` datagram terminates one server work-group's loop.
SERVE_REQID_BYTES = 8
SERVE_HDR_BYTES = 1 + SERVE_REQID_BYTES
SERVE_STOP = b"STOP"


class HashTable:
    """Fixed-size bucketed table with real byte values."""

    def __init__(self, num_buckets: int, elems_per_bucket: int, value_bytes: int, seed: int):
        rng = DeterministicRandom(seed)
        self.num_buckets = num_buckets
        self.value_bytes = value_bytes
        self.buckets: List[List[Tuple[bytes, bytes]]] = [[] for _ in range(num_buckets)]
        self.keys: List[bytes] = []
        total = num_buckets * elems_per_bucket
        if value_bytes % 8 == 0:
            # Exactly ``total`` values are drawn across both fill phases,
            # and 8-aligned draws waste no PRNG tail bytes — so one bulk
            # draw sliced sequentially yields the identical value stream
            # far faster than per-element calls.
            pool = rng.bytes(total * value_bytes)
            offsets = iter(range(0, total * value_bytes, value_bytes))
            next_value = lambda: pool[(o := next(offsets)) : o + value_bytes]
        else:
            next_value = lambda: rng.bytes(value_bytes)
        count = 0
        while count < total:
            key = b"key%08d" % count
            bucket = self.bucket_of(key)
            if len(self.buckets[bucket]) < elems_per_bucket:
                self.buckets[bucket].append((key, next_value()))
                self.keys.append(key)
            count += 1
        # Top up under-full buckets so occupancy is uniform.
        extra = count
        for bucket_list in self.buckets:
            while len(bucket_list) < elems_per_bucket:
                key = b"alt%08d" % extra
                extra += 1
                if self.bucket_of(key) == self.buckets.index(bucket_list):
                    bucket_list.append((key, next_value()))

    def bucket_of(self, key: bytes) -> int:
        return zlib.crc32(key) % self.num_buckets

    def get(self, key: bytes) -> Optional[bytes]:
        for k, v in self.buckets[self.bucket_of(key)]:
            if k == key:
                return v
        return None

    def get_with_position(self, key: bytes) -> Tuple[Optional[bytes], int]:
        """Value plus how many elements were compared (the scan cost)."""
        bucket = self.buckets[self.bucket_of(key)]
        for idx, (k, v) in enumerate(bucket):
            if k == key:
                return v, idx + 1
        return None, len(bucket)

    def set(self, key: bytes, value: bytes) -> bool:
        bucket = self.buckets[self.bucket_of(key)]
        for idx, (k, _v) in enumerate(bucket):
            if k == key:
                bucket[idx] = (key, value)
                return True
        bucket.append((key, value))
        return False

    def bucket_len(self, key: bytes) -> int:
        return len(self.buckets[self.bucket_of(key)])


class MemcachedWorkload:
    def __init__(
        self,
        system: System,
        num_buckets: int = 8,
        elems_per_bucket: int = 1024,
        value_bytes: int = 1024,
        num_requests: int = 64,
        concurrency: int = 8,
        seed: int = 23,
        request_keys: Optional[List[bytes]] = None,
    ):
        self.system = system
        self.table = HashTable(num_buckets, elems_per_bucket, value_bytes, seed)
        self.value_bytes = value_bytes
        self.concurrency = concurrency
        if request_keys is None:
            # Legacy path: draw uniformly from the table's keys.  The rng
            # construction and draw sequence are byte-for-byte what they
            # always were, so default runs replay identically.
            rng = DeterministicRandom(seed + 1)
            request_keys = [rng.choice(self.table.keys) for _ in range(num_requests)]
        else:
            request_keys = list(request_keys)
            num_requests = len(request_keys)
        self.num_requests = num_requests
        self.request_keys: List[bytes] = request_keys
        self.latencies: List[float] = []

    # -- client ------------------------------------------------------------------

    def _client(self, proc, requests: List[bytes], replies: Dict[bytes, bytes]) -> Generator:
        system = self.system
        kernel = system.kernel
        fd = yield from kernel.call(proc, "socket")
        sendbuf = system.memsystem.alloc_buffer(64)
        recvbuf = system.memsystem.alloc_buffer(self.value_bytes + 16)
        for key in requests:
            payload = b"GET " + key
            sendbuf.data[: len(payload)] = payload
            issued = system.now
            yield from kernel.call(
                proc, "sendto", fd, sendbuf, len(payload), ("localhost", SERVER_PORT)
            )
            n, _src = yield from kernel.call(proc, "recvfrom", fd, recvbuf, recvbuf.size)
            self.latencies.append(system.now - issued)
            replies[key] = bytes(recvbuf.data[:n])
        yield from kernel.call(proc, "close", fd)

    def _run_clients(self, replies: Dict[bytes, bytes]) -> List:
        system = self.system
        shards = [self.request_keys[i :: self.concurrency] for i in range(self.concurrency)]
        procs = []
        for i, shard in enumerate(shards):
            proc = system.kernel.create_process(f"mc-client{i}")
            procs.append(system.sim.process(self._client(proc, shard, replies), name=f"mc-c{i}"))
        return procs

    def _result(self, variant: str, start: float, replies: Dict[bytes, bytes]) -> WorkloadResult:
        system = self.system
        elapsed = system.now - start
        lat = sorted(self.latencies)
        n = len(lat)
        return WorkloadResult(
            "memcached",
            variant,
            elapsed,
            {
                "replies": replies,
                "mean_latency_ns": sum(lat) / n if n else 0.0,
                "p99_latency_ns": lat[min(n - 1, int(0.99 * n))] if n else 0.0,
                "throughput_rps": n / (elapsed / 1e9) if elapsed else 0.0,
            },
        )

    # -- CPU server ------------------------------------------------------------------

    def run_cpu(self, server_threads: int = 4) -> WorkloadResult:
        system = self.system
        kernel = system.kernel
        table = self.table
        server = kernel.create_process("mc-server")
        replies: Dict[bytes, bytes] = {}
        self.latencies = []
        start = system.now

        def server_thread(fd: int, quota: int) -> Generator:
            buf = system.memsystem.alloc_buffer(64)
            out = system.memsystem.alloc_buffer(self.value_bytes)
            for _ in range(quota):
                n, src = yield from kernel.call(server, "recvfrom", fd, buf, buf.size)
                key = bytes(buf.data[4:n])
                value, compared = table.get_with_position(key)
                yield from system.cpu.run(compared * CPU_COMPARE_NS_PER_ELEM)
                out.data[: len(value)] = value
                yield from kernel.call(server, "sendto", fd, out, len(value), src)

        def main() -> Generator:
            fd = yield from kernel.call(server, "socket")
            yield from kernel.call(server, "bind", fd, SERVER_PORT)
            quotas = [
                len(self.request_keys[i::server_threads]) for i in range(server_threads)
            ]
            servers = [
                system.sim.process(server_thread(fd, quotas[i]), name=f"mc-s{i}")
                for i in range(server_threads)
            ]
            clients = self._run_clients(replies)
            for p in servers + clients:
                yield p
            yield from kernel.call(server, "close", fd)

        system.run_to_completion(main(), name="memcached-cpu")
        return self._result("cpu", start, replies)

    # -- GPU without syscalls ------------------------------------------------------

    def run_gpu_nosyscall(self, batch: int = 4) -> WorkloadResult:
        system = self.system
        kernel = system.kernel
        table = self.table
        server = kernel.create_process("mc-server-nosys")
        replies: Dict[bytes, bytes] = {}
        self.latencies = []
        start = system.now
        staged: List[Tuple[bytes, tuple]] = []
        found: Dict[bytes, bytes] = {}

        def lookup_kernel(ctx) -> Generator:
            if ctx.group_id >= len(staged):
                return
            key, _src = staged[ctx.group_id]
            bucket_len = table.bucket_len(key)
            per_item = -(-bucket_len // ctx.group.size)
            yield Compute(per_item * GPU_COMPARE_CYCLES_PER_ELEM)
            if ctx.is_group_leader:
                found[key] = table.get(key)

        def main() -> Generator:
            fd = yield from kernel.call(server, "socket")
            yield from kernel.call(server, "bind", fd, SERVER_PORT)
            clients = self._run_clients(replies)
            buf = system.memsystem.alloc_buffer(64)
            out = system.memsystem.alloc_buffer(self.value_bytes)
            served = 0
            while served < self.num_requests:
                staged.clear()
                found.clear()
                want = min(batch, self.num_requests - served)
                for _ in range(want):
                    n, src = yield from kernel.call(server, "recvfrom", fd, buf, buf.size)
                    staged.append((bytes(buf.data[4:n]), src))
                yield system.launch(
                    lookup_kernel,
                    global_size=len(staged) * 64,
                    workgroup_size=64,
                    name="mc-lookup",
                )
                for key, src in staged:
                    value = found[key]
                    out.data[: len(value)] = value
                    yield from kernel.call(server, "sendto", fd, out, len(value), src)
                served += want
            for p in clients:
                yield p
            yield from kernel.call(server, "close", fd)

        system.run_to_completion(main(), name="memcached-nosys")
        return self._result("gpu-nosyscall", start, replies)

    # -- GENESYS: GPU-served GETs ---------------------------------------------------

    def run_genesys(self, num_workgroups: int = 8, workgroup_size: int = 64) -> WorkloadResult:
        system = self.system
        kernel = system.kernel
        table = self.table
        server = kernel.create_process("mc-server-gpu")
        replies: Dict[bytes, bytes] = {}
        self.latencies = []
        start = system.now
        quota = [
            len(self.request_keys[i::num_workgroups]) for i in range(num_workgroups)
        ]
        recv_opts = dict(
            granularity=Granularity.WORK_GROUP, ordering=Ordering.RELAXED,
            blocking=True, wait=WaitMode.POLL,
        )
        send_opts = dict(
            granularity=Granularity.WORK_GROUP, ordering=Ordering.RELAXED,
            blocking=True, wait=WaitMode.POLL,
        )

        def server_kernel(ctx) -> Generator:
            fd = ctx.args[0]
            shared = ctx.group.shared
            if "rbuf" not in shared:
                shared["rbuf"] = system.memsystem.alloc_buffer(64)
                shared["obuf"] = system.memsystem.alloc_buffer(self.value_bytes)
            rbuf, obuf = shared["rbuf"], shared["obuf"]
            for _ in range(quota[ctx.group_id]):
                got = yield from ctx.sys.recvfrom(fd, rbuf, rbuf.size, **recv_opts)
                n, src = got
                key = bytes(rbuf.data[4:n])
                # Parallel bucket scan: each lane compares its share.
                bucket_len = table.bucket_len(key)
                per_item = -(-bucket_len // ctx.group.size)
                yield Compute(per_item * GPU_COMPARE_CYCLES_PER_ELEM)
                yield MemRead(obuf.addr, self.value_bytes)
                if ctx.is_group_leader:
                    value = table.get(key)
                    obuf.data[: len(value)] = value
                yield from ctx.sys.sendto(fd, obuf, self.value_bytes, src, **send_opts)

        def main() -> Generator:
            fd = yield from kernel.call(server, "socket")
            yield from kernel.call(server, "bind", fd, SERVER_PORT)
            # Route GPU syscalls through the server process's fd table.
            system.genesys.host_process = server
            launch = system.launch(
                server_kernel,
                global_size=num_workgroups * workgroup_size,
                workgroup_size=workgroup_size,
                args=(fd,),
                name="mc-server-kernel",
            )
            clients = self._run_clients(replies)
            yield launch
            for p in clients:
                yield p
            yield from kernel.call(server, "close", fd)

        system.run_to_completion(main(), name="memcached-genesys")
        return self._result("genesys", start, replies)

    # -- GENESYS serving mode: external open-loop client stream --------------------

    def serve_genesys(
        self,
        driver: Generator,
        num_workgroups: int = 8,
        workgroup_size: int = 64,
        rx_backlog: Optional[int] = None,
    ) -> Dict[str, object]:
        """Serve an externally generated request stream until it ends.

        Unlike :meth:`run_genesys` (closed-loop, fixed per-group quota),
        every work-group loops recvfrom -> parallel scan -> sendto until
        it consumes a ``SERVE_STOP`` datagram.  ``driver`` is a process
        body — typically :mod:`repro.serving`'s client fleet — that owns
        the load: it is started once the server socket is bound and the
        kernel launched, and when it returns the server posts exactly one
        STOP per work-group and joins the kernel.

        ``rx_backlog`` bounds the server socket's receive queue (see
        ``UdpSocket.rx_capacity``) so overload drops instead of queueing
        without limit; the bound is lifted for the STOP datagrams so
        shutdown cannot be dropped.

        Wire framing: ``b"Q" + reqid + b"GET " + key`` in,
        ``b"R" + reqid + value`` out (``SERVE_HDR_BYTES`` header).
        Replies are fixed-size (header + ``value_bytes``) so every lane
        can issue the coalesced sendto without reading a length the
        group leader may not have published yet.
        """
        system = self.system
        kernel = system.kernel
        table = self.table
        server = kernel.create_process("mc-serve")
        served = [0] * num_workgroups
        reply_bytes = SERVE_HDR_BYTES + self.value_bytes
        wg_opts = dict(
            granularity=Granularity.WORK_GROUP, ordering=Ordering.RELAXED,
            blocking=True, wait=WaitMode.POLL,
        )

        def server_kernel(ctx) -> Generator:
            fd = ctx.args[0]
            shared = ctx.group.shared
            if "rbuf" not in shared:
                shared["rbuf"] = system.memsystem.alloc_buffer(64)
                shared["obuf"] = system.memsystem.alloc_buffer(reply_bytes)
            rbuf, obuf = shared["rbuf"], shared["obuf"]
            while True:
                got = yield from ctx.sys.recvfrom(fd, rbuf, rbuf.size, **wg_opts)
                if not isinstance(got, tuple):
                    # A shed or reclaimed recvfrom surfaces as a negative
                    # errno (QoS deadline, watchdog): keep serving.
                    continue
                n, src = got
                msg = bytes(rbuf.data[:n])
                if msg == SERVE_STOP:
                    return
                key = msg[SERVE_HDR_BYTES + 4 :]  # skip header + b"GET "
                bucket_len = table.bucket_len(key)
                per_item = -(-bucket_len // ctx.group.size)
                yield Compute(per_item * GPU_COMPARE_CYCLES_PER_ELEM)
                yield MemRead(obuf.addr, self.value_bytes)
                if ctx.is_group_leader:
                    value = table.get(key) or bytes(self.value_bytes)
                    reply = b"R" + msg[1:SERVE_HDR_BYTES] + value
                    obuf.data[: len(reply)] = reply
                    served[ctx.group_id] += 1
                yield from ctx.sys.sendto(fd, obuf, reply_bytes, src, **wg_opts)

        def main() -> Generator:
            fd = yield from kernel.call(server, "socket")
            yield from kernel.call(server, "bind", fd, SERVER_PORT)
            if rx_backlog is not None:
                kernel._socket_for(server, fd).rx_capacity = rx_backlog
            system.genesys.host_process = server
            launch = system.launch(
                server_kernel,
                global_size=num_workgroups * workgroup_size,
                workgroup_size=workgroup_size,
                args=(fd,),
                name="mc-serve-kernel",
            )
            yield system.sim.process(driver, name="serving-driver")
            # The stream is over: lift the backlog bound so the STOPs
            # cannot be dropped, then stop each work-group.  Each group
            # consumes exactly one STOP (it returns immediately after),
            # so num_workgroups STOPs terminate all of them.
            kernel._socket_for(server, fd).rx_capacity = None
            ctl = yield from kernel.call(server, "socket")
            stop = system.memsystem.alloc_buffer(len(SERVE_STOP))
            stop.data[:] = SERVE_STOP
            for _ in range(num_workgroups):
                yield from kernel.call(
                    server, "sendto", ctl, stop, len(SERVE_STOP),
                    ("localhost", SERVER_PORT),
                )
            yield launch
            yield from kernel.call(server, "close", ctl)
            yield from kernel.call(server, "close", fd)

        system.run_to_completion(main(), name="memcached-serve")
        return {"served": sum(served), "served_per_group": list(served)}

    # -- concurrent SETs + GPU GETs ----------------------------------------------

    def run_concurrent_mixed(
        self, num_workgroups: int = 4, workgroup_size: int = 64, set_port: int = 11213
    ) -> WorkloadResult:
        """The paper's concurrency claim: while GPU work-groups serve
        GETs, a CPU thread concurrently handles SETs against the *same*
        hash table.  Each SET client re-GETs its key after the SET ack
        and must observe the new value (read-your-writes through the
        shared table)."""
        system = self.system
        kernel = system.kernel
        table = self.table
        server = kernel.create_process("mc-server-mixed")
        replies: Dict[bytes, bytes] = {}
        self.latencies = []
        start = system.now
        set_keys = self.table.keys[: len(self.request_keys) // 4 or 1]
        new_values = {
            key: bytes([0xA0 + i % 16]) * self.value_bytes
            for i, key in enumerate(set_keys)
        }
        observed_after_set: Dict[bytes, bytes] = {}

        quota = [
            len(self.request_keys[i::num_workgroups]) + len(set_keys[i::num_workgroups])
            for i in range(num_workgroups)
        ]
        wg_opts = dict(
            granularity=Granularity.WORK_GROUP, ordering=Ordering.RELAXED,
            blocking=True, wait=WaitMode.POLL,
        )

        def gpu_get_server(ctx) -> Generator:
            fd = ctx.args[0]
            shared = ctx.group.shared
            if "rbuf" not in shared:
                shared["rbuf"] = system.memsystem.alloc_buffer(64)
                shared["obuf"] = system.memsystem.alloc_buffer(self.value_bytes)
            rbuf, obuf = shared["rbuf"], shared["obuf"]
            for _ in range(quota[ctx.group_id]):
                n, src = yield from ctx.sys.recvfrom(fd, rbuf, rbuf.size, **wg_opts)
                key = bytes(rbuf.data[4:n])
                bucket_len = table.bucket_len(key)
                per_item = -(-bucket_len // ctx.group.size)
                yield Compute(per_item * GPU_COMPARE_CYCLES_PER_ELEM)
                if ctx.is_group_leader:
                    value = table.get(key) or b""
                    obuf.data[: len(value)] = value
                yield from ctx.sys.sendto(fd, obuf, self.value_bytes, src, **wg_opts)

        def cpu_set_server(set_fd: int) -> Generator:
            buf = system.memsystem.alloc_buffer(64 + self.value_bytes)
            ack = system.memsystem.alloc_buffer(2)
            ack.data[:] = b"OK"
            for _ in range(len(set_keys)):
                n, src = yield from kernel.call(server, "recvfrom", set_fd, buf, buf.size)
                payload = bytes(buf.data[:n])
                _, _, rest = payload.partition(b" ")
                key, _, value = rest.partition(b"=")
                yield from system.cpu.run(
                    table.bucket_len(key) * CPU_COMPARE_NS_PER_ELEM
                )
                table.set(key, value)
                yield from kernel.call(server, "sendto", set_fd, ack, 2, src)

        def set_then_get_client(key: bytes) -> Generator:
            proc = kernel.create_process(f"mc-setter-{key.decode()}")
            fd = yield from kernel.call(proc, "socket")
            payload = b"SET " + key + b"=" + new_values[key]
            sbuf = system.memsystem.alloc_buffer(len(payload))
            sbuf.data[:] = payload
            yield from kernel.call(
                proc, "sendto", fd, sbuf, len(payload), ("localhost", set_port)
            )
            rbuf = system.memsystem.alloc_buffer(self.value_bytes + 16)
            yield from kernel.call(proc, "recvfrom", fd, rbuf, rbuf.size)  # the ack
            # Now GET through the GPU: must observe the new value.
            get_payload = b"GET " + key
            sbuf.data[: len(get_payload)] = get_payload
            yield from kernel.call(
                proc, "sendto", fd, sbuf, len(get_payload), ("localhost", SERVER_PORT)
            )
            n, _src = yield from kernel.call(proc, "recvfrom", fd, rbuf, rbuf.size)
            observed_after_set[key] = bytes(rbuf.data[:n])
            yield from kernel.call(proc, "close", fd)

        def main() -> Generator:
            get_fd = yield from kernel.call(server, "socket")
            yield from kernel.call(server, "bind", get_fd, SERVER_PORT)
            set_fd = yield from kernel.call(server, "socket")
            yield from kernel.call(server, "bind", set_fd, set_port)
            system.genesys.host_process = server
            launch = system.launch(
                gpu_get_server,
                global_size=num_workgroups * workgroup_size,
                workgroup_size=workgroup_size,
                args=(get_fd,),
                name="mc-mixed-kernel",
            )
            setter_proc = system.sim.process(cpu_set_server(set_fd), name="set-server")
            workers = [
                system.sim.process(set_then_get_client(key), name=f"setter-{i}")
                for i, key in enumerate(set_keys)
            ]
            clients = self._run_clients(replies)
            yield launch
            yield setter_proc
            for p in workers + clients:
                yield p
            yield from kernel.call(server, "close", get_fd)
            yield from kernel.call(server, "close", set_fd)

        system.run_to_completion(main(), name="memcached-mixed")
        return WorkloadResult(
            "memcached",
            "concurrent-mixed",
            system.now - start,
            {
                "replies": replies,
                "sets": len(set_keys),
                "observed_after_set": observed_after_set,
                "new_values": new_values,
            },
        )

    def verify(self, replies: Dict[bytes, bytes]) -> bool:
        return all(replies.get(k) == self.table.get(k) for k in set(self.request_keys))
