"""Process-level run farm: shard embarrassingly parallel simulation work.

The paper's evaluation is a matrix of independent simulated experiments
(figures x workloads x seeds x sweep points); our reproduction ran every
cell serially in one Python process.  MGSim makes multi-GPU simulation
practical by running independent simulation work in parallel — this
package is the reproduction's version of that: a driver that shards a
job list across OS worker processes and merges the results in a way
that is provably independent of worker count and completion order.

Determinism contract
--------------------
* Every job carries its own key and its own seed/arguments; nothing a
  job computes depends on which shard ran it.  Shard assignment is the
  fixed round-robin ``jobs[i::num_shards]`` — deterministic for a given
  (job list, worker count), but *irrelevant* to results.
* :func:`run_jobs` returns ``[(key, result), ...]`` sorted by key, so
  the merged output is a pure function of the job list: 1-way, 2-way
  and 4-way farms produce identical merges (asserted by
  ``tests/test_runfarm.py``).

Workers are forked (POSIX) so imported modules and warm state are
shared copy-on-write; each job still builds its own fresh ``System`` —
simulated machines are never shipped between processes, only job specs
in and picklable results out.

CLI: ``python -m repro.runfarm --help`` (chaos matrix, pytest sharding,
matrix timing).
"""

from __future__ import annotations

import gc
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple

__all__ = [
    "Job",
    "chaos_matrix_jobs",
    "default_workers",
    "merge_reports",
    "run_chaos_matrix",
    "run_frontier",
    "run_jobs",
    "shard",
]


@dataclass(frozen=True)
class Job:
    """One unit of farm work: ``fn(**kwargs)`` on some worker process.

    ``key`` identifies the job in the merged output and must be unique
    and sortable; ``fn`` must be a module-level (picklable) callable.
    """

    key: tuple
    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)


def default_workers() -> int:
    """Number of workers to use when unspecified: the CPU count."""
    return os.cpu_count() or 1


def shard(items: Sequence, num_shards: int) -> List[list]:
    """Deterministic round-robin split: shard ``i`` gets items
    ``i, i+n, i+2n, ...``.  Every item lands in exactly one shard."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    return [list(items[i::num_shards]) for i in range(num_shards)]


def _run_shard(jobs: List[Job]) -> List[Tuple[tuple, Any]]:
    """Worker-process body: run one shard's jobs in order."""
    return [(job.key, job.fn(**job.kwargs)) for job in jobs]


def run_jobs(
    jobs: Sequence[Job], workers: int = 1, mp_context: str = "fork"
) -> List[Tuple[tuple, Any]]:
    """Run ``jobs`` across ``workers`` processes; merge sorted by key.

    The merge is worker-count- and completion-order-independent: the
    result is ``sorted((job.key, job.fn(**job.kwargs)))`` no matter how
    the work was split.  ``workers=1`` (or a single job) runs inline
    with no subprocesses — the reference the farmed runs must match.
    """
    jobs = list(jobs)
    keys = [job.key for job in jobs]
    if len(set(keys)) != len(keys):
        raise ValueError("job keys must be unique for an unambiguous merge")
    workers = max(1, min(int(workers), len(jobs) or 1))
    if workers == 1:
        merged = _run_shard(jobs)
    else:
        shards = [s for s in shard(jobs, workers) if s]
        ctx = multiprocessing.get_context(mp_context)
        # Freeze the parent heap before forking: a child garbage
        # collection writes into every inherited object's GC header,
        # copy-on-write-copying pages the child never meant to touch.
        # Freezing moves the parent's objects into the permanent
        # generation so forked workers leave them shared.
        gc.collect()
        gc.freeze()
        try:
            with ctx.Pool(processes=len(shards)) as pool:
                # imap_unordered: completion order is whatever the OS
                # makes it; the sort below makes the merge deterministic.
                merged = [
                    pair
                    for batch in pool.imap_unordered(_run_shard, shards)
                    for pair in batch
                ]
        finally:
            gc.unfreeze()
    return sorted(merged, key=lambda pair: pair[0])


# -- frontier exploration --------------------------------------------------


def run_frontier(
    seeds: Sequence,
    run_item: Callable[..., Any],
    expand: Callable[[Any, Any], Sequence],
    workers: int = 1,
    max_items: int = 0,
    key: Callable[[Any], tuple] = None,  # type: ignore[assignment]
    mp_context: str = "fork",
) -> Tuple[List[Tuple[Any, Any]], bool]:
    """Deterministic wave-parallel exploration of a growing frontier.

    Starts from ``seeds`` and repeatedly: sorts the pending items by
    ``key``, farms ``run_item(item=...)`` over them with
    :func:`run_jobs`, then calls ``expand(item, result)`` *in the
    parent* to produce new items.  An item whose key was already run
    (or is already pending) is dropped, so the set of items visited is
    a pure function of ``(seeds, run_item, expand, max_items)`` — the
    worker count only changes wall-clock time, never the frontier
    (asserted by ``tests/test_runfarm.py``).

    ``run_item`` must be a module-level (picklable) callable taking the
    item as its ``item`` keyword; ``expand`` runs in the parent and may
    close over driver state.  ``max_items > 0`` bounds the total number
    of items run; a wave is truncated *after sorting*, so the budgeted
    prefix is deterministic too.  Returns ``(results, truncated)`` with
    ``results`` sorted by key.
    """
    if key is None:
        key = lambda item: item  # noqa: E731 - identity default
    pending: List[Any] = list(seeds)
    seen = {key(item) for item in pending}
    if len(seen) != len(pending):
        raise ValueError("seed items must have unique keys")
    results: List[Tuple[tuple, Any, Any]] = []
    truncated = False
    while pending:
        pending.sort(key=key)
        if max_items > 0:
            budget = max_items - len(results)
            if budget <= 0:
                truncated = True
                break
            if len(pending) > budget:
                truncated = True
                pending = pending[:budget]
        wave = pending
        pending = []
        jobs = [
            Job(key=key(item), fn=run_item, kwargs={"item": item})
            for item in wave
        ]
        merged = run_jobs(jobs, workers=workers, mp_context=mp_context)
        by_key = dict(merged)
        for item in wave:
            result = by_key[key(item)]
            results.append((key(item), item, result))
            for child in expand(item, result):
                child_key = key(child)
                if child_key in seen:
                    continue
                seen.add(child_key)
                pending.append(child)
    results.sort(key=lambda row: row[0])
    return [(item, result) for _key, item, result in results], truncated


# -- chaos-matrix farming --------------------------------------------------


def _chaos_cell(
    experiment: str, seed: int, intensity: float, gsan: bool = False
) -> dict:
    """One chaos matrix cell, returned as a plain dict (JSON/pickle
    friendly across the process boundary).

    With ``gsan=True`` the cell runs under a fresh GSan per built
    System; the report grows a ``gsan`` section and any race the
    sanitizer finds fails the cell.
    """
    from repro.faults import chaos

    if not gsan:
        return chaos.run_one(experiment, seed, intensity=intensity).as_dict()

    from repro.probes.tracepoints import clear_global_plan, install_global_plan
    from repro.sanitizers.gsan import GSanPlan

    plan = GSanPlan()
    install_global_plan(plan)
    try:
        report = chaos.run_one(experiment, seed, intensity=intensity).as_dict()
    finally:
        clear_global_plan()
    findings = [str(violation) for violation in plan.finish()]
    report["gsan"] = {"events": plan.events, "violations": findings}
    if findings:
        report["ok"] = False
        report["violations"] = list(report["violations"]) + [
            f"gsan: {finding}" for finding in findings
        ]
    return report


def chaos_matrix_jobs(
    experiments: Sequence[str],
    seeds: Sequence[int],
    intensity: float = 1.0,
    gsan: bool = False,
) -> List[Job]:
    """The chaos matrix as farm jobs.

    Seed assignment is part of the job spec — ``(experiment, seed)`` is
    the key — so sharding can never change which seed a cell runs with.
    """
    return [
        Job(
            key=(experiment, seed),
            fn=_chaos_cell,
            kwargs={
                "experiment": experiment,
                "seed": seed,
                "intensity": intensity,
                "gsan": gsan,
            },
        )
        for experiment in experiments
        for seed in seeds
    ]


def run_chaos_matrix(
    experiments: Sequence[str],
    seeds: Sequence[int],
    workers: int = 1,
    intensity: float = 1.0,
    gsan: bool = False,
) -> List[Tuple[tuple, dict]]:
    """Farmed equivalent of ``repro.faults.chaos.run_matrix`` (reports
    as dicts, sorted by (experiment, seed))."""
    return run_jobs(
        chaos_matrix_jobs(experiments, seeds, intensity=intensity, gsan=gsan),
        workers=workers,
    )


def merge_reports(results: Sequence[Tuple[tuple, dict]]) -> dict:
    """Summarise merged chaos cells: totals plus per-experiment rollup."""
    summary: Dict[str, Any] = {
        "cells": len(results),
        "ok": sum(1 for _, report in results if report.get("ok")),
        "by_experiment": {},
    }
    for (experiment, _seed), report in results:
        rollup = summary["by_experiment"].setdefault(
            experiment, {"cells": 0, "ok": 0, "injected": 0}
        )
        rollup["cells"] += 1
        rollup["ok"] += 1 if report.get("ok") else 0
        rollup["injected"] += int(report.get("injected", 0))
    summary["failed"] = summary["cells"] - summary["ok"]
    return summary
