"""``python -m repro.runfarm`` — the run-farm command line.

Subcommands
-----------
``chaos``
    Farm the chaos matrix (``repro.faults``) across worker processes
    and print a merged, order-independent summary.  Exits nonzero if
    any cell fails its invariants — the sharded equivalent of the
    serial chaos smoke.

``pytest``
    Shard the test suite's files round-robin across workers, each an
    independent ``python -m pytest`` subprocess; exits nonzero if any
    shard fails.  Used by CI to run tier-1 on 4 workers.

``matrix-bench``
    Time the same chaos matrix serial vs farmed (the perf harness's
    matrix rows use the same machinery in-process).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import subprocess
import sys
import time
from typing import List

from repro.runfarm import (
    default_workers,
    merge_reports,
    run_chaos_matrix,
    shard,
)


def _parse_seeds(text: str) -> List[int]:
    """``1,2,5`` or ``1:6`` (half-open range) or a mix of both."""
    seeds: List[int] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" in part:
            lo, hi = part.split(":", 1)
            seeds.extend(range(int(lo), int(hi)))
        else:
            seeds.append(int(part))
    if not seeds:
        raise argparse.ArgumentTypeError(f"no seeds in {text!r}")
    return seeds


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import chaos

    experiments = (
        list(chaos.EXPERIMENTS)
        if args.experiments == "all"
        else [e.strip() for e in args.experiments.split(",") if e.strip()]
    )
    start = time.perf_counter()
    results = run_chaos_matrix(
        experiments,
        args.seeds,
        workers=args.workers,
        intensity=args.intensity,
        gsan=args.gsan,
    )
    wall = time.perf_counter() - start
    summary = merge_reports(results)
    summary["wall_s"] = round(wall, 3)
    summary["workers"] = args.workers
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(
                {"summary": summary, "cells": [r for _, r in results]}, fh, indent=2
            )
    for (experiment, seed), report in results:
        status = "ok" if report["ok"] else "FAIL"
        line = (
            f"  {experiment:<10} seed={seed:<4} {status:<5} "
            f"injected={report['injected']}"
        )
        if "gsan" in report:
            line += f" gsan_events={report['gsan']['events']}"
        print(line)
        for violation in report["violations"]:
            print(f"      {violation}")
    print(
        f"chaos matrix: {summary['cells']} cells, {summary['ok']} ok, "
        f"{summary['failed']} failed on {args.workers} worker(s) in {wall:.2f}s"
    )
    return 0 if summary["failed"] == 0 else 1


def _cmd_pytest(args: argparse.Namespace) -> int:
    files = sorted(glob.glob(os.path.join(args.tests, "test_*.py")))
    if not files:
        print(f"no test files under {args.tests!r}", file=sys.stderr)
        return 2
    shards = [s for s in shard(files, args.workers) if s]
    env = dict(os.environ)
    src = os.path.abspath("src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    start = time.perf_counter()
    procs = [
        subprocess.Popen(
            [sys.executable, "-m", "pytest", "-q", *args.pytest_args, *shard_files],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        for shard_files in shards
    ]
    failed = 0
    for index, proc in enumerate(procs):
        output, _ = proc.communicate()
        tail = [line for line in output.strip().splitlines() if line.strip()][-1:]
        status = "ok" if proc.returncode == 0 else f"FAIL rc={proc.returncode}"
        print(f"shard {index}/{len(procs)} ({len(shards[index])} files): {status}"
              f" — {tail[0] if tail else ''}")
        if proc.returncode != 0:
            failed += 1
            print(output)
    wall = time.perf_counter() - start
    print(
        f"pytest farm: {len(procs)} shard(s), {failed} failed, "
        f"{wall:.1f}s wall on {args.workers} worker(s)"
    )
    if args.budget_s and wall > args.budget_s:
        print(f"wall-time budget exceeded: {wall:.1f}s > {args.budget_s:.1f}s")
        return 3
    return 0 if failed == 0 else 1


def _cmd_matrix_bench(args: argparse.Namespace) -> int:
    start = time.perf_counter()
    serial = run_chaos_matrix(args.experiments, args.seeds, workers=1)
    serial_wall = time.perf_counter() - start
    start = time.perf_counter()
    farmed = run_chaos_matrix(args.experiments, args.seeds, workers=args.workers)
    farmed_wall = time.perf_counter() - start
    identical = serial == farmed
    speedup = serial_wall / farmed_wall if farmed_wall > 0 else float("inf")
    print(
        f"matrix ({len(serial)} cells): serial {serial_wall:.2f}s, "
        f"{args.workers}-worker {farmed_wall:.2f}s — {speedup:.2f}x, "
        f"merge identical: {identical}"
    )
    return 0 if identical else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runfarm", description=__doc__.split("\n", 1)[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    chaos_p = sub.add_parser("chaos", help="farm the chaos matrix")
    chaos_p.add_argument("--experiments", default="all")
    chaos_p.add_argument("--seeds", type=_parse_seeds, default=list(range(1, 7)))
    chaos_p.add_argument("--workers", type=int, default=default_workers())
    chaos_p.add_argument("--intensity", type=float, default=1.0)
    chaos_p.add_argument(
        "--gsan", action="store_true",
        help="run every cell under the GSan race sanitizer; any "
        "violation fails the cell",
    )
    chaos_p.add_argument("--json", help="write merged cells + summary to this file")
    chaos_p.set_defaults(fn=_cmd_chaos)

    pytest_p = sub.add_parser("pytest", help="shard the test suite")
    pytest_p.add_argument("--tests", default="tests")
    pytest_p.add_argument("--workers", type=int, default=default_workers())
    pytest_p.add_argument(
        "--budget-s", type=float, default=0.0,
        help="fail if total wall time exceeds this many seconds",
    )
    pytest_p.add_argument("pytest_args", nargs="*", default=[])
    pytest_p.set_defaults(fn=_cmd_pytest)

    bench_p = sub.add_parser("matrix-bench", help="serial vs farmed matrix wall time")
    bench_p.add_argument(
        "--experiments", type=lambda t: [e for e in t.split(",") if e],
        default=["fig2", "grep"],
    )
    bench_p.add_argument("--seeds", type=_parse_seeds, default=list(range(1, 7)))
    bench_p.add_argument("--workers", type=int, default=4)
    bench_p.set_defaults(fn=_cmd_matrix_bench)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
