"""Open-loop load generation, RPS sweeps, and SLO curves.

The paper's serving workloads (memcached over GENESYS, udp-echo) are
evaluated elsewhere in this repo with closed-loop clients: a fixed pool
of outstanding requests, so offered load collapses to whatever the
server sustains and saturation/tail behaviour is invisible.  This
package is the missing half of that methodology:

* :mod:`repro.serving.arrivals` — open-loop arrival processes (Poisson
  and bursty ON/OFF), seeded, decoupled from service completion;
* :mod:`repro.serving.clients` — a fleet of simulated clients
  multiplexed over the UDP stack with zipfian key popularity and
  per-request lifecycle tracking;
* :mod:`repro.serving.sweep` — warmup/measure/drain windows, fixed-RPS
  points, RPS-grid sweeps, and bisection for the max sustainable
  throughput under an SLO;
* :mod:`repro.serving.report` — the schema-versioned
  ``BENCH_serving.json`` trajectory file and its structural checker.

CLI: ``python -m repro.serving run|sweep|report``.
"""

from repro.serving.arrivals import ArrivalSpec, arrival_times
from repro.serving.clients import ClientFleet, RequestRecord, ZipfKeys, build_schedule
from repro.serving.report import SCHEMA, SCHEMA_VERSION, check_report, render
from repro.serving.sweep import (
    ServingConfig,
    run_point,
    run_point_on,
    sweep,
)

__all__ = [
    "ArrivalSpec",
    "ClientFleet",
    "RequestRecord",
    "SCHEMA",
    "SCHEMA_VERSION",
    "ServingConfig",
    "ZipfKeys",
    "arrival_times",
    "build_schedule",
    "check_report",
    "render",
    "run_point",
    "run_point_on",
    "sweep",
]
