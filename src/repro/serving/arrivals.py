"""Open-loop arrival processes, fully seeded.

Closed-loop clients (``MemcachedWorkload._run_clients``) issue the next
request only after the previous reply: offered load tracks service rate
and the server can never be pushed past saturation.  Open-loop arrivals
are the opposite contract — request *times* are drawn up front from a
stochastic process and honoured regardless of completions, which is
what exposes queueing collapse and tail latency.

Two processes, both driven only by
:class:`~repro.workloads.base.DeterministicRandom` so a seed pins the
whole timestamp stream:

* ``poisson`` — exponential inter-arrival gaps at the target rate; the
  memoryless baseline every serving paper starts from.
* ``onoff`` — a bursty modulation: exponentially distributed ON and OFF
  phases (mean cycle ``period_ns``, ON fraction ``on_fraction``), with
  Poisson arrivals *during ON only* at ``rate / on_fraction`` so the
  long-run average still matches the target RPS.  Same offered load,
  much nastier queue dynamics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.workloads.base import DeterministicRandom

KINDS = ("poisson", "onoff")


@dataclass(frozen=True)
class ArrivalSpec:
    """Which process, plus the ON/OFF shape parameters (ignored for
    ``poisson``)."""

    kind: str = "poisson"
    #: Long-run fraction of time spent in the ON phase.
    on_fraction: float = 0.5
    #: Mean length of one ON+OFF cycle, in simulated ns.
    period_ns: float = 100_000.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown arrival kind {self.kind!r}; choose from {KINDS}")
        if not 0.0 < self.on_fraction <= 1.0:
            raise ValueError(f"on_fraction must be in (0, 1], got {self.on_fraction}")
        if self.period_ns <= 0.0:
            raise ValueError(f"period_ns must be positive, got {self.period_ns}")

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "on_fraction": self.on_fraction,
            "period_ns": self.period_ns,
        }


def _exp(rng: DeterministicRandom, mean: float) -> float:
    """One exponential draw via inversion.  ``random()`` is in [0, 1),
    so ``1 - u`` is in (0, 1] and the log is always finite."""
    return -math.log(1.0 - rng.random()) * mean


def _poisson_times(
    rng: DeterministicRandom, rps: float, duration_ns: float
) -> List[float]:
    mean_gap = 1e9 / rps
    times: List[float] = []
    t = _exp(rng, mean_gap)
    while t < duration_ns:
        times.append(t)
        t += _exp(rng, mean_gap)
    return times


def _onoff_times(
    rng: DeterministicRandom,
    rps: float,
    duration_ns: float,
    on_fraction: float,
    period_ns: float,
) -> List[float]:
    mean_on = period_ns * on_fraction
    mean_off = period_ns * (1.0 - on_fraction)
    mean_gap = (1e9 / rps) * on_fraction  # burst rate = rps / on_fraction
    times: List[float] = []
    t = 0.0
    while t < duration_ns:
        on_end = t + _exp(rng, mean_on)
        while t < duration_ns:
            gap = _exp(rng, mean_gap)
            if t + gap >= on_end:
                # Residual gap at the phase edge is discarded; the
                # exponential is memoryless, so this keeps the burst
                # rate exact without carrying state across phases.
                break
            t += gap
            if t < duration_ns:
                times.append(t)
        t = on_end
        if mean_off > 0.0:
            t += _exp(rng, mean_off)
    return times


def arrival_times(
    spec: ArrivalSpec, rps: float, duration_ns: float, seed: int
) -> List[float]:
    """The full arrival-timestamp stream for one run, in simulated ns
    relative to the run's start.  Strictly a function of its arguments:
    same (spec, rps, duration, seed) -> identical list."""
    if rps <= 0.0:
        raise ValueError(f"rps must be positive, got {rps}")
    if duration_ns <= 0.0:
        raise ValueError(f"duration_ns must be positive, got {duration_ns}")
    rng = DeterministicRandom(seed)
    if spec.kind == "poisson":
        return _poisson_times(rng, rps, duration_ns)
    return _onoff_times(rng, rps, duration_ns, spec.on_fraction, spec.period_ns)
