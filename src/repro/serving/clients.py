"""A fleet of open-loop clients multiplexed over the simulated UDP stack.

Each client is one UDP socket plus a receiver loop; requests are
pre-scheduled (see :mod:`repro.serving.arrivals`) and sprayed round-robin
across the fleet, so a client can easily have several requests
outstanding — the open-loop property.  Requests carry an 8-byte
request id (the serving wire framing of
:mod:`repro.workloads.memcachedwl`), so replies are matched by id, not
by ordering, and every request's lifecycle is tracked individually:
sent, completed, completed-late, or timed out.

Key popularity is zipfian (:class:`ZipfKeys`): rank r is drawn with
probability proportional to ``1/r^s`` over a deterministic (seeded
Fisher-Yates) permutation of the key population, so "which keys are
hot" varies with the permutation seed while the popularity *shape* is
pinned by ``s``.  ``s = 0`` degenerates to uniform.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Dict, Generator, List, Optional, Sequence

from repro.sim.engine import AnyOf
from repro.workloads.base import DeterministicRandom

#: Serving wire framing (kept in sync with repro.workloads.memcachedwl):
#: request  = b"Q" + reqid(8B big-endian) + body
#: reply    = b"R" + reqid(8B big-endian) + value   (echo: request bytes)
#: reject   = b"E" + reqid(8B big-endian) + errno(1B)   (QoS fast-fail)
REQID_BYTES = 8
HDR_BYTES = 1 + REQID_BYTES
REJECT_MARKER = ord("E")


def pack_reqid(reqid: int) -> bytes:
    return reqid.to_bytes(REQID_BYTES, "big")


def unpack_reqid(payload: bytes) -> int:
    return int.from_bytes(payload[1:HDR_BYTES], "big")


class ZipfKeys:
    """Zipfian popularity over a deterministically permuted key list."""

    def __init__(self, keys: Sequence[bytes], s: float = 0.99, perm_seed: int = 1):
        if not keys:
            raise ValueError("ZipfKeys needs a non-empty key population")
        if s < 0.0:
            raise ValueError(f"zipf exponent must be >= 0, got {s}")
        self.s = s
        self.perm_seed = perm_seed
        order = list(range(len(keys)))
        rng = DeterministicRandom(perm_seed)
        for i in range(len(order) - 1, 0, -1):
            j = rng.randint(0, i)
            order[i], order[j] = order[j], order[i]
        #: Popularity rank -> key: self.keys[0] is the hottest key.
        self.keys: List[bytes] = [keys[i] for i in order]
        cum: List[float] = []
        total = 0.0
        for rank in range(len(self.keys)):
            total += (rank + 1) ** -s
            cum.append(total)
        self._cum = cum
        self._total = total

    def draw(self, rng: DeterministicRandom) -> bytes:
        u = rng.random() * self._total
        idx = bisect_right(self._cum, u)
        return self.keys[min(idx, len(self.keys) - 1)]


class RequestRecord:
    """Lifecycle of one open-loop request."""

    __slots__ = ("reqid", "client", "key", "sched_ns", "payload", "sent_ns",
                 "reply_ns", "reject_errno")

    def __init__(self, reqid: int, client: int, key: Optional[bytes],
                 sched_ns: float, payload: bytes):
        self.reqid = reqid
        self.client = client
        self.key = key
        self.sched_ns = sched_ns  # intended send time, relative to run start
        self.payload = payload
        self.sent_ns: Optional[float] = None  # absolute sim time
        self.reply_ns: Optional[float] = None  # absolute sim time
        #: Errno from a ``b"E"`` fast-fail frame; a rejected request is a
        #: deliberate server decision, not a client failure.
        self.reject_errno: Optional[int] = None

    def latency_ns(self) -> Optional[float]:
        if self.reply_ns is None or self.sent_ns is None:
            return None
        return self.reply_ns - self.sent_ns

    def status(self, timeout_ns: float) -> str:
        if self.reject_errno is not None:
            return "rejected"
        latency = self.latency_ns()
        if latency is None:
            return "timeout"
        # A reply landing exactly at the deadline still counts: the SLO
        # contract is "within timeout_ns", inclusive.
        return "completed" if latency <= timeout_ns else "late"


def build_schedule(
    times: Sequence[float],
    num_clients: int,
    make_payload: Callable[[int, Optional[bytes]], bytes],
    popularity: Optional[ZipfKeys] = None,
    key_seed: int = 1,
) -> List[RequestRecord]:
    """Turn an arrival-timestamp stream into concrete requests.

    Key draws come from a dedicated rng seeded with ``key_seed`` so the
    key sequence is independent of (and composable with) the arrival
    stream's seed.  Clients are assigned round-robin — deterministic and
    guaranteeing the fleet multiplexes rather than serialises.
    """
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    rng = DeterministicRandom(key_seed)
    schedule: List[RequestRecord] = []
    for reqid, t in enumerate(times):
        key = popularity.draw(rng) if popularity is not None else None
        schedule.append(
            RequestRecord(reqid, reqid % num_clients, key, t, make_payload(reqid, key))
        )
    return schedule


class ClientFleet:
    """Drive a schedule of open-loop requests against a UDP server.

    ``driver()`` is the process body the serving-mode workloads
    (``serve_genesys``) expect: it sends every scheduled request at its
    appointed simulated time regardless of completions, waits out one
    request-timeout of drain after the last send, then returns.  Replies
    arriving after a request's timeout still complete its record (they
    classify as ``late``); requests with no reply classify ``timeout``.
    """

    def __init__(
        self,
        system,
        dest,
        schedule: Sequence[RequestRecord],
        num_clients: int,
        timeout_ns: float = 1_000_000.0,
        check_reply: Optional[Callable[[RequestRecord, bytes], bool]] = None,
    ):
        self.system = system
        self.net = system.kernel.net
        self.dest = tuple(dest)
        self.schedule = list(schedule)
        self.num_clients = num_clients
        self.timeout_ns = timeout_ns
        #: Optional payload validator; failures count in ``bad_replies``
        #: (the safety signal chaos runs assert on).
        self.check_reply = check_reply
        self.sent = 0
        self.bad_replies = 0
        self.dup_replies = 0
        self.unmatched_replies = 0
        self._by_reqid: Dict[int, RequestRecord] = {
            record.reqid: record for record in self.schedule
        }
        self._remaining = len(self.schedule)
        self._per_client = [0] * num_clients
        for record in self.schedule:
            self._per_client[record.client] += 1

    # -- lifecycle rollups --------------------------------------------------

    def counts(self) -> Dict[str, int]:
        counts = {"sent": self.sent, "completed": 0, "late": 0, "timeout": 0,
                  "rejected": 0,
                  "dup_replies": self.dup_replies,
                  "bad_replies": self.bad_replies}
        for record in self.schedule:
            counts[record.status(self.timeout_ns)] += 1
        return counts

    # -- simulation processes ----------------------------------------------

    def driver(self) -> Generator:
        sim = self.system.sim
        net = self.net
        base = sim.now
        socks = [net.socket() for _ in range(self.num_clients)]
        stop = sim.event(name="fleet-stop")
        all_done = sim.event(name="fleet-done")
        receivers = [
            sim.process(
                self._receiver(socks[ci], ci, stop, all_done), name=f"cl-rx{ci}"
            )
            for ci in range(self.num_clients)
            if self._per_client[ci]
        ]
        senders = []
        for record in self.schedule:
            when = base + record.sched_ns
            if sim.now < when:
                yield sim.wake_at(when, name="next-arrival")
            record.sent_ns = sim.now
            self.sent += 1
            # Fire-and-forget: the link transfer must not back-pressure
            # the arrival clock, or the load stops being open-loop.
            senders.append(
                sim.process(
                    net.sendto(socks[record.client], record.payload, self.dest),
                    name=f"cl-tx{record.reqid}",
                )
            )
        deadline = sim.now + self.timeout_ns
        while self._remaining > 0 and sim.now < deadline:
            yield AnyOf([all_done, sim.wake_at(deadline, name="fleet-drain")])
        stop.succeed()
        for proc in senders:
            yield proc
        for proc in receivers:
            yield proc
        for sock in socks:
            net.close(sock)

    def _receiver(self, sock, ci: int, stop, all_done) -> Generator:
        sim = self.system.sim
        outstanding = self._per_client[ci]
        while outstanding > 0:
            if len(sock.queue) == 0:
                if stop.triggered:
                    return
                yield AnyOf([sock.queue.when_nonempty(), stop])
                continue
            datagram = yield sock.queue.get()
            record = self._by_reqid.get(unpack_reqid(datagram.payload))
            if record is None or record.client != ci:
                self.unmatched_replies += 1
                continue
            if record.reply_ns is not None or record.reject_errno is not None:
                self.dup_replies += 1
                continue
            if datagram.payload and datagram.payload[0] == REJECT_MARKER:
                # QoS fast-fail frame: a deliberate server verdict, so no
                # payload validation — classify ``rejected``, not ``bad``.
                record.reject_errno = (
                    datagram.payload[HDR_BYTES]
                    if len(datagram.payload) > HDR_BYTES else 0
                )
                record.reply_ns = sim.now
                outstanding -= 1
                self._remaining -= 1
                if self._remaining == 0 and not all_done.triggered:
                    all_done.succeed()
                continue
            if self.check_reply is not None and not self.check_reply(
                record, datagram.payload
            ):
                self.bad_replies += 1
            record.reply_ns = sim.now
            outstanding -= 1
            self._remaining -= 1
            if self._remaining == 0 and not all_done.triggered:
                all_done.succeed()
