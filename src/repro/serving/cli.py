"""``python -m repro.serving`` — run | sweep | report.

``run`` executes one fixed-RPS point and prints its stats; ``sweep``
walks an RPS grid (optionally farmed), bisects for the max sustainable
throughput under the SLO, and writes ``BENCH_serving.json``; ``report``
pretty-prints a trajectory file and (with ``--check``) gates on the
structural schema validation CI uses.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.serving import report as report_mod
from repro.serving.arrivals import ArrivalSpec
from repro.serving.sweep import (
    DEFAULT_MULTIPLIERS,
    ServingConfig,
    default_grid,
    default_knee,
    default_overload_plan,
    overload_curve,
    run_point,
    sweep,
)


def _add_config_args(parser: argparse.ArgumentParser) -> None:
    defaults = ServingConfig()
    parser.add_argument("--workload", choices=("memcached", "udp-echo"),
                        default=defaults.workload)
    parser.add_argument("--arrival", choices=("poisson", "onoff"),
                        default="poisson", help="arrival process")
    parser.add_argument("--on-fraction", type=float, default=0.5,
                        help="ON/OFF: fraction of time in the ON phase")
    parser.add_argument("--period-ns", type=float, default=100_000.0,
                        help="ON/OFF: mean ON+OFF cycle length")
    parser.add_argument("--zipf-s", type=float, default=defaults.zipf_s,
                        help="key popularity exponent (0 = uniform)")
    parser.add_argument("--seed", type=int, default=defaults.seed)
    parser.add_argument("--clients", type=int, default=defaults.num_clients,
                        help="number of simulated client sockets")
    parser.add_argument("--timeout-us", type=float,
                        default=defaults.timeout_ns / 1e3,
                        help="per-request deadline in microseconds")
    parser.add_argument("--warmup-us", type=float,
                        default=defaults.warmup_ns / 1e3)
    parser.add_argument("--measure-us", type=float,
                        default=defaults.measure_ns / 1e3)
    parser.add_argument("--window-us", type=float,
                        default=defaults.report_window_ns / 1e3,
                        help="report window width for the per-point "
                             "time-series (microseconds)")
    parser.add_argument("--workgroups", type=int,
                        default=defaults.num_workgroups)
    parser.add_argument("--workgroup-size", type=int,
                        default=defaults.workgroup_size)
    parser.add_argument("--rx-backlog", type=int, default=defaults.rx_backlog,
                        help="server receive-queue bound (0 = unbounded)")
    parser.add_argument("--slo-p99-us", type=float,
                        default=defaults.slo_p99_ns / 1e3)
    parser.add_argument("--slo-completion", type=float,
                        default=defaults.slo_completion)


def _config_from(args: argparse.Namespace) -> ServingConfig:
    return ServingConfig(
        workload=args.workload,
        arrival=ArrivalSpec(
            kind=args.arrival,
            on_fraction=args.on_fraction,
            period_ns=args.period_ns,
        ),
        zipf_s=args.zipf_s,
        seed=args.seed,
        num_clients=args.clients,
        timeout_ns=args.timeout_us * 1e3,
        warmup_ns=args.warmup_us * 1e3,
        measure_ns=args.measure_us * 1e3,
        report_window_ns=args.window_us * 1e3,
        num_workgroups=args.workgroups,
        workgroup_size=args.workgroup_size,
        rx_backlog=args.rx_backlog or None,
        slo_p99_ns=args.slo_p99_us * 1e3,
        slo_completion=args.slo_completion,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    config = _config_from(args)
    point = run_point(config, args.rps)
    latency = point["latency_ns"]
    print(
        f"{config.workload} @ {args.rps} RPS ({config.arrival.kind}): "
        f"offered {point['offered_rps']:.0f}, achieved "
        f"{point['achieved_rps']:.0f} ({point['completion']:.3f}), "
        f"p50/p95/p99 = {latency['p50'] / 1e3:.1f}/"
        f"{latency['p95'] / 1e3:.1f}/{latency['p99'] / 1e3:.1f} us, "
        f"SLO {'ok' if point['slo_ok'] else 'MISS'}"
    )
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(json.dumps(point, sort_keys=True, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    config = _config_from(args)
    grid = [int(rps) for rps in args.rps] or default_grid(config)
    doc = sweep(config, grid, workers=args.workers)
    print(report_mod.render(doc))
    with open(args.out, "w") as fh:
        fh.write(report_mod.to_json(doc))
    print(f"wrote {args.out}")
    return 0


def _cmd_overload(args: argparse.Namespace) -> int:
    config = _config_from(args)
    plan = default_overload_plan(config)
    if args.sojourn_budget_us is not None:
        plan = plan.scaled(sojourn_budget_ns=args.sojourn_budget_us * 1e3)
    if args.no_brownout:
        plan = plan.scaled(brownout=False)
    doc = overload_curve(
        config,
        plan=plan,
        knee_rps=args.knee or default_knee(config),
        multipliers=args.multipliers,
        workers=args.workers,
    )
    print(report_mod.render_overload(doc))
    with open(args.out, "w") as fh:
        fh.write(report_mod.to_json(doc))
    print(f"wrote {args.out}")
    if args.check:
        problems = report_mod.check_overload(doc)
        if problems:
            for problem in problems:
                print(f"OVERLOAD: {problem}", file=sys.stderr)
            return 1
        print("overload gate ok")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    with open(args.path) as fh:
        doc = json.load(fh)
    problems = report_mod.check_report(doc)
    if args.check:
        if problems:
            for problem in problems:
                print(f"SCHEMA: {problem}", file=sys.stderr)
            return 1
        print(f"{args.path}: schema ok "
              f"({len(doc['points'])} points, "
              f"{len(doc['bisection'])} bisection probes)")
        return 0
    if problems:
        for problem in problems:
            print(f"warning: {problem}", file=sys.stderr)
    print(report_mod.render(doc))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Open-loop load generation, RPS sweeps, and SLO curves.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="one fixed-RPS point")
    _add_config_args(run_parser)
    run_parser.add_argument("--rps", type=int, default=100_000)
    run_parser.add_argument("--json", default=None,
                            help="also write the point stats to this file")
    run_parser.set_defaults(fn=_cmd_run)

    sweep_parser = sub.add_parser(
        "sweep", help="RPS grid + SLO bisection -> BENCH_serving.json"
    )
    _add_config_args(sweep_parser)
    sweep_parser.add_argument("--rps", type=int, nargs="*", default=[],
                              help="explicit grid (default: workload preset)")
    sweep_parser.add_argument("--workers", type=int, default=1,
                              help="farm sweep points over N processes")
    sweep_parser.add_argument("--out", default="BENCH_serving.json")
    sweep_parser.set_defaults(fn=_cmd_sweep)

    over_parser = sub.add_parser(
        "overload",
        help="offered-vs-goodput through 2-3x the knee, baseline vs QoS",
    )
    _add_config_args(over_parser)
    over_parser.add_argument("--knee", type=int, default=0,
                             help="knee RPS (0 = workload preset)")
    over_parser.add_argument("--multipliers", type=float, nargs="*",
                             default=list(DEFAULT_MULTIPLIERS),
                             help="offered-load multiples of the knee")
    over_parser.add_argument("--sojourn-budget-us", type=float, default=None,
                             help="override the plan's receive-queue sojourn "
                                  "budget (default: timeout/2)")
    over_parser.add_argument("--no-brownout", action="store_true",
                             help="disable the brownout controller in the plan")
    over_parser.add_argument("--workers", type=int, default=1,
                             help="farm points over N processes")
    over_parser.add_argument("--out", default="BENCH_overload.json")
    over_parser.add_argument("--check", action="store_true",
                             help="exit non-zero unless the no-collapse "
                                  "goodput gate holds")
    over_parser.set_defaults(fn=_cmd_overload)

    report_parser = sub.add_parser("report", help="render / validate a trajectory")
    report_parser.add_argument("path")
    report_parser.add_argument("--check", action="store_true",
                               help="exit non-zero unless the schema validates")
    report_parser.set_defaults(fn=_cmd_report)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
