"""Fixed-RPS points, RPS-grid sweeps, and SLO bisection.

Methodology (the standard serving-benchmark shape):

* every *point* runs one fixed offered RPS through three windows —
  **warmup** (requests sent, excluded from stats), **measure** (the
  window all reported numbers come from), and **drain** (one request
  timeout after the last send, so stragglers can classify);
* a *sweep* walks an ascending RPS grid, then **bisects** between the
  highest grid point that met the SLO and the lowest that missed it to
  find the max sustainable throughput — SLO = p99 latency at or under a
  target AND completion (achieved/offered) at or above a floor;
* sweep points are independent simulations, so they farm across
  :mod:`repro.runfarm` workers, each restored from one warm
  :mod:`repro.sim.snapshot` (the memcached table fill is paid exactly
  once per sweep).  The warm blob rides to forked workers copy-on-write
  via a module global; restoring it is also what makes the serial
  (``workers=1``) and farmed sweeps byte-identical.

Latency percentiles reuse :func:`repro.tracing.analysis.summarize`
(nearest-rank) over the per-request latency timeline the client fleet
records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runfarm import Job, run_jobs
from repro.serving.arrivals import ArrivalSpec, arrival_times
from repro.serving.clients import (
    HDR_BYTES,
    ClientFleet,
    ZipfKeys,
    build_schedule,
    pack_reqid,
)
from repro.sim import snapshot
from repro.system import System
from repro.tracing import analysis

WORKLOADS = ("memcached", "udp-echo")

#: Per-point arrival/key seeds must differ across points of one sweep
#: (or every point would replay the same timestamp stream scaled) while
#: staying a pure function of (config seed, rps).
_POINT_SEED_STRIDE = 1_000_003


@dataclass(frozen=True)
class ServingConfig:
    """Everything a serving run needs besides the offered RPS."""

    workload: str = "memcached"
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    zipf_s: float = 0.99
    seed: int = 1
    num_clients: int = 256
    #: Per-request deadline; replies after it classify ``late``.
    timeout_ns: float = 400_000.0
    warmup_ns: float = 150_000.0
    measure_ns: float = 600_000.0
    #: Width of the per-point report windows the measure interval is
    #: sliced into (time-series in ``BENCH_serving.json``, schema v2).
    report_window_ns: float = 100_000.0
    num_workgroups: int = 4
    workgroup_size: int = 16
    #: Server receive-queue bound (datagrams); None = unbounded.
    rx_backlog: Optional[int] = 512
    # memcached table shape (ignored by udp-echo)
    num_buckets: int = 8
    elems_per_bucket: int = 64
    value_bytes: int = 256
    # udp-echo request size (ignored by memcached)
    payload_bytes: int = 64
    # SLO for sweeps
    slo_p99_ns: float = 150_000.0
    slo_completion: float = 0.99
    bisect_iters: int = 5

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown serving workload {self.workload!r}; choose from {WORKLOADS}"
            )

    def point_seed(self, rps: int) -> int:
        return self.seed * _POINT_SEED_STRIDE + int(rps)

    def as_dict(self) -> dict:
        doc = {
            "workload": self.workload,
            "arrival": self.arrival.as_dict(),
            "zipf_s": self.zipf_s,
            "seed": self.seed,
            "num_clients": self.num_clients,
            "timeout_ns": self.timeout_ns,
            "warmup_ns": self.warmup_ns,
            "measure_ns": self.measure_ns,
            "report_window_ns": self.report_window_ns,
            "num_workgroups": self.num_workgroups,
            "workgroup_size": self.workgroup_size,
            "rx_backlog": self.rx_backlog,
            "num_buckets": self.num_buckets,
            "elems_per_bucket": self.elems_per_bucket,
            "value_bytes": self.value_bytes,
            "payload_bytes": self.payload_bytes,
        }
        return doc

    def slo_dict(self) -> dict:
        return {
            "p99_ns": self.slo_p99_ns,
            "min_completion": self.slo_completion,
        }


# -- workload glue -----------------------------------------------------------


def build_target(config: ServingConfig, system: Optional[System] = None):
    """Fresh (or caller-provided) machine plus a warm serving workload."""
    if system is None:
        system = System()
    if config.workload == "memcached":
        from repro.workloads.memcachedwl import MemcachedWorkload

        workload = MemcachedWorkload(
            system,
            num_buckets=config.num_buckets,
            elems_per_bucket=config.elems_per_bucket,
            value_bytes=config.value_bytes,
            seed=config.seed,
            request_keys=[],
        )
    else:
        from repro.workloads.udpecho import UdpEchoWorkload

        workload = UdpEchoWorkload(system, payload_bytes=config.payload_bytes)
    system.sim.run()  # quiesce so the pair is checkpointable
    return system, workload


def _target_port(config: ServingConfig) -> int:
    if config.workload == "memcached":
        from repro.workloads.memcachedwl import SERVER_PORT

        return SERVER_PORT
    from repro.workloads.udpecho import ECHO_PORT

    return ECHO_PORT


def _make_schedule(config: ServingConfig, workload, rps: int):
    duration_ns = config.warmup_ns + config.measure_ns
    point_seed = config.point_seed(rps)
    times = arrival_times(config.arrival, float(rps), duration_ns, point_seed)
    if config.workload == "memcached":
        popularity = ZipfKeys(
            workload.table.keys, s=config.zipf_s, perm_seed=config.seed
        )

        def make_payload(reqid: int, key: Optional[bytes]) -> bytes:
            return b"Q" + pack_reqid(reqid) + b"GET " + key

    else:
        popularity = None
        pad = b"x" * max(0, config.payload_bytes - 9)

        def make_payload(reqid: int, key: Optional[bytes]) -> bytes:
            return b"Q" + pack_reqid(reqid) + pad

    return build_schedule(
        times,
        config.num_clients,
        make_payload,
        popularity=popularity,
        key_seed=point_seed + 17,
    )


# -- one fixed-RPS point -----------------------------------------------------


def memcached_reply_check(workload):
    """Reply validator for memcached serving: the value bytes must be
    exactly what the (shared) table holds for the requested key."""

    def check(record, payload: bytes) -> bool:
        return payload[HDR_BYTES:] == workload.table.get(record.key)

    return check


class _MeasureDropTap:
    """Pure ``net.drop`` observer: backlog-drop counts per measure
    window and per destination socket.  Closure-free on purpose (the
    determinism/pickle contract for observers) and computed directly in
    ``run_point_on`` rather than via a hub, so farmed sweep points —
    which restore from a snapshot and never see the global attach plan —
    report the same windows as serial ones."""

    __slots__ = ("registry", "t0", "window_ns", "windows", "total", "by_socket")

    def __init__(self, registry, t0: float, window_ns: float, nwin: int):
        self.registry = registry
        self.t0 = t0
        self.window_ns = window_ns
        self.windows: List[Dict[str, int]] = [{} for _ in range(nwin)]
        self.total = 0
        self.by_socket: Dict[str, int] = {}

    def __call__(self, reason, sock_id) -> None:
        if reason != "backlog":
            return
        index = int((self.registry.now() - self.t0) // self.window_ns)
        if 0 <= index < len(self.windows):
            key = str(sock_id)
            self.total += 1
            self.by_socket[key] = self.by_socket.get(key, 0) + 1
            window = self.windows[index]
            window[key] = window.get(key, 0) + 1


def run_point_on(
    system: System, workload, config: ServingConfig, rps: int, check_reply=None
) -> dict:
    """Run one fixed-RPS serving window on an already-built machine.

    This is the composition surface: chaos plans, GSan, or span tracers
    attached to ``system`` all ride along.  Returns the point's stats
    dict (measure-window only, plus whole-run lifecycle counts).
    """
    rps = int(rps)
    schedule = _make_schedule(config, workload, rps)
    dest = ("localhost", _target_port(config))
    fleet = ClientFleet(
        system, dest, schedule, config.num_clients,
        timeout_ns=config.timeout_ns, check_reply=check_reply,
    )
    lo, hi = config.warmup_ns, config.warmup_ns + config.measure_ns
    window_ns = config.report_window_ns
    nwin = max(1, int(math.ceil(config.measure_ns / window_ns - 1e-9)))
    # The point runs relative to the machine's current clock (restored
    # snapshots resume mid-timeline), so window origins are offsets from
    # the run start.
    run_start = system.now
    drop_tap = _MeasureDropTap(
        system.probes, run_start + lo, window_ns, nwin
    )
    system.probes.attach("net.drop", drop_tap)
    try:
        served = workload.serve_genesys(
            fleet.driver(),
            num_workgroups=config.num_workgroups,
            workgroup_size=config.workgroup_size,
            rx_backlog=config.rx_backlog,
        )
    finally:
        system.probes.get("net.drop").detach(drop_tap)
    elapsed = system.now - run_start
    window = [r for r in schedule if lo <= r.sched_ns < hi]
    completed = [r for r in window if r.status(config.timeout_ns) == "completed"]
    latencies = [r.latency_ns() for r in completed]
    offered_rps = len(window) / config.measure_ns * 1e9
    achieved_rps = len(completed) / config.measure_ns * 1e9
    completion = len(completed) / len(window) if window else 1.0
    latency = analysis.summarize(latencies)
    windows = []
    for k in range(nwin):
        wlo = lo + k * window_ns
        whi = min(hi, wlo + window_ns)
        span = whi - wlo
        rows = [r for r in window if wlo <= r.sched_ns < whi]
        done = [r for r in rows if r.status(config.timeout_ns) == "completed"]
        drops_in = drop_tap.windows[k]
        windows.append(
            {
                "t0_ns": wlo,
                "sent": len(rows),
                "completed": len(done),
                "completion": len(done) / len(rows) if rows else 1.0,
                "achieved_rps": len(done) / span * 1e9 if span > 0 else 0.0,
                "latency_ns": analysis.summarize(
                    [r.latency_ns() for r in done]
                ),
                "drops": {
                    "backlog": sum(drops_in.values()),
                    "by_socket": dict(sorted(drops_in.items())),
                },
            }
        )
    point = {
        "rps_target": rps,
        "offered_rps": offered_rps,
        "achieved_rps": achieved_rps,
        "completion": completion,
        "latency_ns": latency,
        "lifecycle": fleet.counts(),
        "served": served["served"],
        "net": system.kernel.net.stats(),
        "elapsed_ns": elapsed,
        "window_ns": window_ns,
        "windows": windows,
        "drops": {
            "backlog": drop_tap.total,
            "by_socket": dict(sorted(drop_tap.by_socket.items())),
        },
    }
    point["slo_ok"] = bool(
        window
        and latency["p99"] <= config.slo_p99_ns
        and completion >= config.slo_completion
    )
    return point


#: Warm snapshot blob shared with forked farm workers (copy-on-write).
#: Module-level on purpose: `Job.kwargs` must stay small and picklable,
#: and every worker of one sweep restores the *same* warm machine.
_FARM_WARM: Optional[bytes] = None


def run_point(config: ServingConfig, rps: int, warm: Optional[bytes] = None) -> dict:
    """Build (or restore) a machine and run one fixed-RPS point."""
    if warm is None:
        system, workload = build_target(config)
    else:
        restored = snapshot.load(warm)
        system, workload = restored.system, restored.extra
    return run_point_on(system, workload, config, rps)


def _sweep_point_job(config: ServingConfig, rps: int) -> dict:
    """Module-level farm job body: one sweep point from the warm blob."""
    return run_point(config, rps, warm=_FARM_WARM)


# -- the sweep driver --------------------------------------------------------


def _passes(point: dict) -> bool:
    return bool(point["slo_ok"])


def _bisect_max_sustainable(
    config: ServingConfig,
    grid_points: List[dict],
) -> Tuple[float, List[dict]]:
    """Binary-search between the SLO pass/fail bracket from the grid.

    Returns ``(max_sustainable_rps, probe_points)``.  With no failing
    grid point the top of the grid is the (lower-bound) answer; with no
    passing point the answer is 0.
    """
    passing = [p["rps_target"] for p in grid_points if _passes(p)]
    failing = [p["rps_target"] for p in grid_points if not _passes(p)]
    if not passing:
        return 0.0, []
    lo = max(passing)
    above = [rps for rps in failing if rps > lo]
    if not above:
        return float(lo), []
    hi = min(above)
    probes: List[dict] = []
    for _ in range(config.bisect_iters):
        mid = (lo + hi) // 2
        if mid <= lo or mid >= hi:
            break
        point = _sweep_point_job(config, mid)
        probes.append(point)
        if _passes(point):
            lo = mid
        else:
            hi = mid
    return float(lo), probes


def sweep(
    config: ServingConfig, rps_grid: Sequence[int], workers: int = 1
) -> dict:
    """Walk an RPS grid (farmed), bisect for the SLO knee, and return
    the ``BENCH_serving.json`` document (see :mod:`repro.serving.report`).

    The warm machine is built and checkpointed once; every point —
    serial or farmed, grid or bisection probe — restores from that same
    blob, which is why worker count cannot change the curves.
    """
    from repro.serving import report

    global _FARM_WARM
    grid = sorted({int(rps) for rps in rps_grid})
    if not grid:
        raise ValueError("rps_grid must contain at least one positive RPS")
    if grid[0] <= 0:
        raise ValueError(f"rps grid must be positive, got {grid[0]}")
    system, workload = build_target(config)
    warm_blob = system.checkpoint(extra=workload)
    _FARM_WARM = warm_blob
    try:
        jobs = [
            Job(key=(rps,), fn=_sweep_point_job, kwargs={"config": config, "rps": rps})
            for rps in grid
        ]
        merged = run_jobs(jobs, workers=workers)
        points = [result for _key, result in merged]
        max_rps, probes = _bisect_max_sustainable(config, points)
    finally:
        _FARM_WARM = None
    return report.build(config, points, probes, max_rps)


# -- overload mode (repro.qos evaluation) ------------------------------------

#: Measured SLO knees of the seed stacks (see BENCH_serving.json);
#: overload curves default to sweeping multiples of these.
DEFAULT_KNEE = {"memcached": 110_000, "udp-echo": 130_000}

#: Offered-load multipliers for the overload curve: below, at, and
#: through 2-3x the knee — the regime where the unprotected stack's
#: goodput collapses.
DEFAULT_MULTIPLIERS = (0.5, 1.0, 1.5, 2.0, 3.0)


def default_knee(config: ServingConfig) -> int:
    return DEFAULT_KNEE[config.workload]


def default_overload_plan(config: ServingConfig):
    """The serving overload-control plan: CoDel-style sojourn policing
    on the server's bounded receive queue (stale work is rejected at
    dequeue instead of served dead) plus the brownout controller capped
    at level 2 (level 3 would shed the priority-0 serving traffic
    itself).  No GPU-side deadlines: the server's parked ``recvfrom``
    loops are legitimately long-lived."""
    from repro.qos import QosPlan

    return QosPlan(
        sojourn_budget_ns=config.timeout_ns / 2,
        brownout=True,
        brownout_max_level=2,
        brownout_period_ns=20_000.0,
        sensor_window_ns=50_000.0,
        brownout_hi_p99_ns=config.slo_p99_ns,
        brownout_lo_p99_ns=config.slo_p99_ns / 3,
    )


def _overload_point_job(config: ServingConfig, rps: int, plan=None) -> dict:
    """Module-level farm job body: one overload point, optionally with a
    QoS plan installed on the restored machine before load starts."""
    if _FARM_WARM is None:
        system, workload = build_target(config)
    else:
        restored = snapshot.load(_FARM_WARM)
        system, workload = restored.system, restored.extra
    controller = None
    if plan is not None and plan.active:
        from repro.qos import install_qos_plan

        controller = install_qos_plan(plan, system)
    point = run_point_on(system, workload, config, rps)
    if controller is not None:
        point["qos"] = controller.summary()
    return point


def overload_curve(
    config: ServingConfig,
    plan=None,
    knee_rps: Optional[int] = None,
    multipliers: Sequence[float] = DEFAULT_MULTIPLIERS,
    workers: int = 1,
) -> dict:
    """Offered-vs-goodput curves through overload, baseline and QoS
    side by side in one document (``BENCH_overload.json``).

    Every offered-load point runs twice from the same warm snapshot:
    once bare (the collapsing baseline) and once with ``plan``
    installed.  Goodput is ``achieved_rps`` — replies within the
    client timeout.  The document's ``gate`` compares the QoS curve's
    goodput at ~2x the knee against its goodput at the knee.
    """
    from repro.serving import report

    global _FARM_WARM
    if plan is None:
        plan = default_overload_plan(config)
    if knee_rps is None:
        knee_rps = default_knee(config)
    knee_rps = int(knee_rps)
    if knee_rps <= 0:
        raise ValueError(f"knee_rps must be positive, got {knee_rps}")
    grid = sorted({max(1, int(round(knee_rps * m))) for m in multipliers})
    system, workload = build_target(config)
    _FARM_WARM = system.checkpoint(extra=workload)
    try:
        jobs = []
        for rps in grid:
            jobs.append(Job(key=("base", rps), fn=_overload_point_job,
                            kwargs={"config": config, "rps": rps}))
            jobs.append(Job(key=("qos", rps), fn=_overload_point_job,
                            kwargs={"config": config, "rps": rps, "plan": plan}))
        merged = run_jobs(jobs, workers=workers)
    finally:
        _FARM_WARM = None
    baseline = [result for key, result in merged if key[0] == "base"]
    qos_points = [result for key, result in merged if key[0] == "qos"]
    return report.build_overload(config, plan, knee_rps, baseline, qos_points)


def default_grid(config: ServingConfig) -> List[int]:
    """A coarse grid bracketing the stacks' measured capacity."""
    if config.workload == "memcached":
        return [50_000, 100_000, 150_000, 200_000, 300_000]
    return [50_000, 100_000, 200_000, 300_000, 400_000]


def scaled_config(config: ServingConfig, **overrides) -> ServingConfig:
    """`dataclasses.replace` with validation re-run (frozen config)."""
    return replace(config, **overrides)
