"""The ``BENCH_serving.json`` trajectory document.

Schema-versioned so later PRs are judged on served RPS under an SLO,
not just microbenchmark latency: a point's shape is stable, reruns with
the same seed serialize byte-identically (``to_json`` is canonical:
sorted keys, fixed indent, no wall-clock timestamps), and
:func:`check_report` is the structural gate CI runs on the artifact.
"""

from __future__ import annotations

import json
from typing import List

SCHEMA = "repro-serving-bench"
#: v2: every point carries a ``windows`` time-series (per measure
#: window: sent/completed/completion/achieved_rps/latency_ns/drops),
#: its ``window_ns`` width, and point-level backlog ``drops`` counts
#: (global + per destination socket).
#: v3: ``lifecycle`` gains a ``rejected`` class — requests answered
#: with a QoS fast-fail frame (``b"E" + reqid + errno``), a deliberate
#: server verdict distinct from ``timeout``/``late``/``bad``.
SCHEMA_VERSION = 3

#: The overload-comparison document (``BENCH_overload.json``): the same
#: offered-load grid run bare and with a QoS plan, plus the goodput
#: retention gate CI enforces.
OVERLOAD_SCHEMA = "repro-serving-overload"
OVERLOAD_VERSION = 1
#: QoS goodput at ~2x the knee must hold this fraction of QoS goodput
#: at the knee (the ISSUE's "within 15%" no-collapse criterion).
OVERLOAD_MIN_RATIO = 0.85

_TOP_KEYS = (
    "schema", "version", "workload", "arrival", "zipf_s", "seed",
    "config", "slo", "points", "bisection", "max_sustainable_rps",
)
_POINT_KEYS = (
    "rps_target", "offered_rps", "achieved_rps", "completion",
    "latency_ns", "lifecycle", "served", "net", "elapsed_ns", "slo_ok",
    "window_ns", "windows", "drops",
)
_LATENCY_KEYS = ("count", "mean", "p50", "p95", "p99", "max")
_LIFECYCLE_KEYS = ("sent", "completed", "late", "timeout", "rejected",
                   "dup_replies")
_WINDOW_KEYS = (
    "t0_ns", "sent", "completed", "completion", "achieved_rps",
    "latency_ns", "drops",
)
_DROP_KEYS = ("backlog", "by_socket")


def build(config, points: List[dict], bisection: List[dict],
          max_sustainable_rps: float) -> dict:
    return {
        "schema": SCHEMA,
        "version": SCHEMA_VERSION,
        "workload": config.workload,
        "arrival": config.arrival.as_dict(),
        "zipf_s": config.zipf_s,
        "seed": config.seed,
        "config": config.as_dict(),
        "slo": config.slo_dict(),
        "points": list(points),
        "bisection": list(bisection),
        "max_sustainable_rps": max_sustainable_rps,
    }


def to_json(doc: dict) -> str:
    """Canonical serialization: byte-identical for identical docs."""
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def _check_drops(where: str, drops) -> List[str]:
    if drops is None:
        return []
    if not isinstance(drops, dict):
        return [f"{where} is not an object"]
    problems = [f"{where} missing {key!r}" for key in _DROP_KEYS if key not in drops]
    by_socket = drops.get("by_socket")
    if by_socket is not None and not isinstance(by_socket, dict):
        problems.append(f"{where}.by_socket is not an object")
    return problems


def check_report(doc: dict) -> List[str]:
    """Structural validation; returns human-readable problems (empty ==
    the document is a well-formed serving trajectory)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, want object"]
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    if doc.get("version") != SCHEMA_VERSION:
        problems.append(
            f"version is {doc.get('version')!r}, want {SCHEMA_VERSION}"
        )
    for key in _TOP_KEYS:
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    points = doc.get("points")
    if not isinstance(points, list) or not points:
        problems.append("points must be a non-empty list")
        points = []
    targets = [p.get("rps_target") for p in points if isinstance(p, dict)]
    if any(b <= a for a, b in zip(targets, targets[1:])):
        problems.append(f"points' rps_target grid is not strictly increasing: {targets}")
    for where, point in (
        [(f"points[{i}]", p) for i, p in enumerate(points)]
        + [(f"bisection[{i}]", p) for i, p in enumerate(doc.get("bisection") or [])]
    ):
        if not isinstance(point, dict):
            problems.append(f"{where} is {type(point).__name__}, want object")
            continue
        for key in _POINT_KEYS:
            if key not in point:
                problems.append(f"{where} missing {key!r}")
        latency = point.get("latency_ns")
        if isinstance(latency, dict):
            for key in _LATENCY_KEYS:
                if key not in latency:
                    problems.append(f"{where}.latency_ns missing {key!r}")
        elif "latency_ns" in point:
            problems.append(f"{where}.latency_ns is not an object")
        lifecycle = point.get("lifecycle")
        if isinstance(lifecycle, dict):
            for key in _LIFECYCLE_KEYS:
                if key not in lifecycle:
                    problems.append(f"{where}.lifecycle missing {key!r}")
        elif "lifecycle" in point:
            problems.append(f"{where}.lifecycle is not an object")
        problems.extend(_check_drops(f"{where}.drops", point.get("drops")))
        windows = point.get("windows")
        if isinstance(windows, list):
            if not windows:
                problems.append(f"{where}.windows must be non-empty")
            starts = []
            for j, win in enumerate(windows):
                wwhere = f"{where}.windows[{j}]"
                if not isinstance(win, dict):
                    problems.append(
                        f"{wwhere} is {type(win).__name__}, want object"
                    )
                    continue
                for key in _WINDOW_KEYS:
                    if key not in win:
                        problems.append(f"{wwhere} missing {key!r}")
                wlat = win.get("latency_ns")
                if isinstance(wlat, dict):
                    for key in _LATENCY_KEYS:
                        if key not in wlat:
                            problems.append(f"{wwhere}.latency_ns missing {key!r}")
                elif "latency_ns" in win:
                    problems.append(f"{wwhere}.latency_ns is not an object")
                problems.extend(
                    _check_drops(f"{wwhere}.drops", win.get("drops"))
                )
                if isinstance(win.get("t0_ns"), (int, float)):
                    starts.append(win["t0_ns"])
            if any(b <= a for a, b in zip(starts, starts[1:])):
                problems.append(
                    f"{where}.windows t0_ns not strictly increasing"
                )
        elif "windows" in point:
            problems.append(f"{where}.windows is not a list")
        window_ns = point.get("window_ns")
        if "window_ns" in point and (
            not isinstance(window_ns, (int, float)) or window_ns <= 0
        ):
            problems.append(
                f"{where}.window_ns is {window_ns!r}, want a positive number"
            )
    max_rps = doc.get("max_sustainable_rps")
    if not isinstance(max_rps, (int, float)) or max_rps < 0:
        problems.append(f"max_sustainable_rps is {max_rps!r}, want a number >= 0")
    slo = doc.get("slo")
    if not isinstance(slo, dict) or "p99_ns" not in slo or "min_completion" not in slo:
        problems.append("slo must be an object with p99_ns and min_completion")
    return problems


# -- the overload-comparison document ----------------------------------------


def _nearest_point(points: List[dict], rps: float) -> dict:
    return min(points, key=lambda p: abs(p["rps_target"] - rps))


def build_overload(config, plan, knee_rps: int, baseline: List[dict],
                   qos_points: List[dict],
                   min_ratio: float = OVERLOAD_MIN_RATIO) -> dict:
    """Assemble ``BENCH_overload.json``: both curves plus the goodput
    retention gate (QoS goodput at ~2x knee vs at the knee)."""
    knee = _nearest_point(qos_points, knee_rps)
    twox = _nearest_point(qos_points, 2 * knee_rps)
    base_knee = _nearest_point(baseline, knee_rps)
    base_twox = _nearest_point(baseline, 2 * knee_rps)
    knee_goodput = knee["achieved_rps"]
    twox_goodput = twox["achieved_rps"]
    ratio = twox_goodput / knee_goodput if knee_goodput > 0 else 0.0
    base_ratio = (
        base_twox["achieved_rps"] / base_knee["achieved_rps"]
        if base_knee["achieved_rps"] > 0 else 0.0
    )
    return {
        "schema": OVERLOAD_SCHEMA,
        "version": OVERLOAD_VERSION,
        "workload": config.workload,
        "config": config.as_dict(),
        "knee_rps": int(knee_rps),
        "plan": plan.as_dict(),
        "baseline": list(baseline),
        "qos": list(qos_points),
        "gate": {
            "knee_goodput_rps": knee_goodput,
            "goodput_2x_rps": twox_goodput,
            "ratio": ratio,
            "baseline_ratio": base_ratio,
            "min_ratio": min_ratio,
            "ok": bool(ratio >= min_ratio),
        },
    }


_OVERLOAD_TOP_KEYS = (
    "schema", "version", "workload", "config", "knee_rps", "plan",
    "baseline", "qos", "gate",
)
_GATE_KEYS = (
    "knee_goodput_rps", "goodput_2x_rps", "ratio", "baseline_ratio",
    "min_ratio", "ok",
)


def check_overload(doc: dict) -> List[str]:
    """Structural + gate validation of an overload document.  An empty
    return means well-formed AND the no-collapse gate held."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, want object"]
    if doc.get("schema") != OVERLOAD_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, want {OVERLOAD_SCHEMA!r}"
        )
    for key in _OVERLOAD_TOP_KEYS:
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    for curve in ("baseline", "qos"):
        points = doc.get(curve)
        if not isinstance(points, list) or not points:
            problems.append(f"{curve} must be a non-empty list of points")
            continue
        for i, point in enumerate(points):
            if not isinstance(point, dict):
                problems.append(f"{curve}[{i}] is not an object")
                continue
            for key in ("rps_target", "achieved_rps", "completion",
                        "latency_ns", "lifecycle"):
                if key not in point:
                    problems.append(f"{curve}[{i}] missing {key!r}")
    gate = doc.get("gate")
    if not isinstance(gate, dict):
        problems.append("gate must be an object")
    else:
        for key in _GATE_KEYS:
            if key not in gate:
                problems.append(f"gate missing {key!r}")
        if not gate.get("ok", False):
            problems.append(
                f"goodput gate FAILED: 2x-knee/knee ratio "
                f"{gate.get('ratio', 0.0):.3f} < min {gate.get('min_ratio')!r}"
            )
    return problems


def render_overload(doc: dict) -> str:
    """Side-by-side offered-vs-goodput table, baseline vs QoS."""
    base = {p["rps_target"]: p for p in doc["baseline"]}
    qos = {p["rps_target"]: p for p in doc["qos"]}
    gate = doc["gate"]
    lines = [
        f"overload: {doc['workload']}  knee={doc['knee_rps']} RPS  "
        f"sojourn_budget={doc['plan']['sojourn_budget_ns'] / 1e3:.0f} us  "
        f"brownout={'on' if doc['plan']['brownout'] else 'off'}",
        f"{'offered':>8} | {'base good':>10} {'compl':>6} {'p99us':>7} | "
        f"{'qos good':>10} {'compl':>6} {'p99us':>7} {'rejected':>8}",
    ]
    for rps in sorted(set(base) | set(qos)):
        b, q = base.get(rps), qos.get(rps)
        row = f"{rps:>8} |"
        if b is not None:
            row += (f" {b['achieved_rps']:>10.0f} {b['completion']:>6.3f} "
                    f"{b['latency_ns']['p99'] / 1e3:>7.1f} |")
        else:
            row += f" {'-':>10} {'-':>6} {'-':>7} |"
        if q is not None:
            row += (f" {q['achieved_rps']:>10.0f} {q['completion']:>6.3f} "
                    f"{q['latency_ns']['p99'] / 1e3:>7.1f} "
                    f"{q['lifecycle'].get('rejected', 0):>8}")
        lines.append(row)
    lines.append(
        f"goodput retention at 2x knee: qos {gate['ratio']:.3f} "
        f"(baseline {gate['baseline_ratio']:.3f}), "
        f"gate {'ok' if gate['ok'] else 'FAILED'} "
        f"(min {gate['min_ratio']:.2f})"
    )
    return "\n".join(lines)


def render(doc: dict) -> str:
    """Human-readable curve table for one trajectory document."""
    lines = [
        f"serving: {doc['workload']}  arrival={doc['arrival']['kind']}  "
        f"zipf_s={doc['zipf_s']}  seed={doc['seed']}",
        f"SLO: p99 <= {doc['slo']['p99_ns'] / 1e3:.0f} us and completion >= "
        f"{doc['slo']['min_completion']:.2f}",
        f"{'target':>8} {'offered':>9} {'achieved':>9} {'compl':>6} "
        f"{'p50us':>7} {'p95us':>7} {'p99us':>7} {'drops':>6} {'slo':>4}",
    ]
    for point in sorted(
        doc["points"] + doc["bisection"], key=lambda p: p["rps_target"]
    ):
        latency = point["latency_ns"]
        drops = (point.get("drops") or {}).get("backlog", 0)
        lines.append(
            f"{point['rps_target']:>8} {point['offered_rps']:>9.0f} "
            f"{point['achieved_rps']:>9.0f} {point['completion']:>6.3f} "
            f"{latency['p50'] / 1e3:>7.1f} {latency['p95'] / 1e3:>7.1f} "
            f"{latency['p99'] / 1e3:>7.1f} {drops:>6} "
            f"{'ok' if point['slo_ok'] else 'MISS':>4}"
        )
    lines.append(f"max sustainable RPS under SLO: {doc['max_sustainable_rps']:.0f}")
    return "\n".join(lines)
