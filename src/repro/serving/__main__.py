import sys

from repro.serving.cli import main

sys.exit(main())
