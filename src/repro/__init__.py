"""GENESYS reproduction: generic system calls for GPUs (ISCA 2018).

A full-system discrete-event simulation of the paper's platform — a GPU
execution hierarchy, a shared memory system, and a Linux-like OS
substrate — with the GENESYS generic GPU system-call interface layered
on top.  Start with :class:`repro.system.System`; write GPU kernels as
generator functions and invoke POSIX calls from them via ``ctx.sys``.

Example::

    from repro import System, Granularity, Ordering

    system = System()
    system.kernel.fs.create_file("/tmp/data", b"x" * 4096)

    def kern(ctx):
        fd = yield from ctx.sys.open("/tmp/data",
                                     granularity=Granularity.WORK_GROUP)
        buf = ctx.kernel.shared["buf"]
        n = yield from ctx.sys.pread(fd, buf, 64, 64 * ctx.global_id)
        ...
"""

from repro.core import (
    CoalescingConfig,
    DeviceApi,
    Genesys,
    GenesysError,
    Granularity,
    Ordering,
    OrderingError,
    SyscallKind,
    WaitMode,
)
from repro.gpu import Barrier, Compute, Gpu, KernelLaunch, MemRead, MemWrite
from repro.machine import MachineConfig, paper_machine, small_machine
from repro.memory.buffers import Buffer
from repro.oskernel import Errno, LinuxKernel, OsError, OsProcess
from repro.system import System

__version__ = "1.0.0"

__all__ = [
    "Barrier",
    "Buffer",
    "CoalescingConfig",
    "Compute",
    "DeviceApi",
    "Errno",
    "Genesys",
    "GenesysError",
    "Gpu",
    "Granularity",
    "KernelLaunch",
    "LinuxKernel",
    "MachineConfig",
    "MemRead",
    "MemWrite",
    "Ordering",
    "OrderingError",
    "OsError",
    "OsProcess",
    "SyscallKind",
    "System",
    "WaitMode",
    "paper_machine",
    "small_machine",
    "__version__",
]
