"""Attachable probe programs: counters, latency histograms, rate meters.

These are the observer-side building blocks — the moral equivalents of
``BPF_MAP_TYPE_ARRAY`` counters, ``hist()`` in bpftrace, and a
per-interval event rate.  All of them are *pure observers*: they read
the fire arguments and the registry clock, accumulate into private
state, and never touch the simulator.  Attaching any mix of them leaves
experiment outputs byte-identical (the determinism contract in
:mod:`repro.probes.tracepoints`).

Each program implements:

* ``bind(tracepoint)`` — called by ``ProbeRegistry.attach``; lets the
  program remember what it measures and registers it for export;
* ``__call__(*fire_args)`` — the observer body;
* ``snapshot()`` — a JSON-ready dict for the metrics exporter;
* ``series()`` — optional ``[(t_ns, value), ...]`` samples for the
  Perfetto counter-track merge (empty when the program has no
  time dimension).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from repro.probes.tracepoints import ProbeRegistry, Tracepoint


def percentile_from_log2_buckets(buckets: Dict[int, int], q: float) -> float:
    """Nearest-rank percentile over log2 buckets; 0.0 when empty.

    Bucket *b* holds values in ``[2^b, 2^(b+1))`` (bucket 0 also absorbs
    sub-1.0 values); the reported percentile is the holding bucket's
    upper edge — a conservative bound, exact to within one power of two.
    A single-sample histogram answers every ``q`` with that sample's
    bucket edge rather than raising.
    """
    total = sum(buckets.values())
    if total == 0:
        return 0.0
    q = min(max(q, 0.0), 100.0)
    rank = max(1, int(math.ceil(q / 100.0 * total)))
    seen = 0
    for bucket in sorted(buckets):
        seen += buckets[bucket]
        if seen >= rank:
            return float(2 ** (bucket + 1))
    return float(2 ** (max(buckets) + 1))


class ProbeProgram:
    """Base class wiring the bind/snapshot plumbing."""

    kind = "probe"

    def __init__(self, registry: ProbeRegistry, name: Optional[str] = None):
        self.registry = registry
        self.name = name
        self.tracepoint: Optional[Tracepoint] = None

    def bind(self, tracepoint: Tracepoint) -> None:
        self.tracepoint = tracepoint
        if self.name is None:
            self.name = tracepoint.name

    def __call__(self, *values: Any) -> None:
        raise NotImplementedError

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "tracepoint": self.tracepoint.name if self.tracepoint else None,
        }

    def series(self) -> List[Tuple[float, float]]:
        return []


class CounterProbe(ProbeProgram):
    """Counts fires; with ``key_arg`` set, counts per distinct value of
    that fire argument (e.g. hits per syscall name)."""

    kind = "counter"

    def __init__(
        self,
        registry: ProbeRegistry,
        name: Optional[str] = None,
        key_arg: Optional[int] = None,
    ):
        super().__init__(registry, name)
        self.key_arg = key_arg
        self.count = 0
        self.by_key: Dict[str, int] = {}

    def __call__(self, *values: Any) -> None:
        self.count += 1
        if self.key_arg is not None and self.key_arg < len(values):
            key = str(values[self.key_arg])
            self.by_key[key] = self.by_key.get(key, 0) + 1

    def snapshot(self) -> dict:
        out = super().snapshot()
        out["count"] = self.count
        if self.key_arg is not None:
            out["by_key"] = dict(sorted(self.by_key.items()))
        return out


class LatencyHistogram(ProbeProgram):
    """Log2-bucketed histogram over one numeric fire argument.

    Bucket *i* holds values in ``[2^i, 2^(i+1))`` ns (bucket 0 also
    takes everything below 1 ns) — the familiar bpftrace ``hist()``
    shape, which keeps the snapshot small at any latency scale.
    """

    kind = "histogram"

    def __init__(
        self,
        registry: ProbeRegistry,
        name: Optional[str] = None,
        value_arg: int = 0,
    ):
        super().__init__(registry, name)
        self.value_arg = value_arg
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def __call__(self, *values: Any) -> None:
        if self.value_arg >= len(values):
            return
        value = values[self.value_arg]
        if not isinstance(value, (int, float)):
            return
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        bucket = int(math.floor(math.log2(value))) if value >= 1.0 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (bucket upper edge); 0.0 when the
        histogram is empty, well-defined for a single sample."""
        return percentile_from_log2_buckets(self.buckets, q)

    def snapshot(self) -> dict:
        out = super().snapshot()
        out.update(
            count=self.count,
            mean=self.mean,
            min=self.min,
            max=self.max,
            buckets={
                f"[{2**b if b else 0}, {2**(b+1)})": n
                for b, n in sorted(self.buckets.items())
            },
        )
        return out


class RateMeter(ProbeProgram):
    """Fires per time bin — the one program with a time series.

    Samples the registry clock at each fire and buckets counts into
    ``bin_ns``-wide bins; ``series()`` reports the *rate* (fires per
    second of simulated time) at each bin start, which the exporter
    turns into a Perfetto "C" counter track.
    """

    kind = "rate"

    def __init__(
        self,
        registry: ProbeRegistry,
        name: Optional[str] = None,
        bin_ns: float = 10_000.0,
    ):
        super().__init__(registry, name)
        if bin_ns <= 0:
            raise ValueError("bin_ns must be positive")
        self.bin_ns = float(bin_ns)
        self.count = 0
        self.bins: Dict[int, int] = {}

    def __call__(self, *values: Any) -> None:
        self.count += 1
        index = int(self.registry.now() // self.bin_ns)
        self.bins[index] = self.bins.get(index, 0) + 1

    def series(self) -> List[Tuple[float, float]]:
        scale = 1e9 / self.bin_ns  # events per simulated second
        return [
            (index * self.bin_ns, count * scale)
            for index, count in sorted(self.bins.items())
        ]

    def rate_at(self, t_ns: float) -> float:
        """Rate (fires/second) of the bin containing ``t_ns``; 0.0 for
        bins that saw no fires (including before/after the run)."""
        count = self.bins.get(int(t_ns // self.bin_ns), 0)
        return count * 1e9 / self.bin_ns

    def rate_between(self, t0_ns: float, t1_ns: float) -> float:
        """Mean rate over ``[t0_ns, t1_ns)``; zero-duration (or
        inverted) intervals report 0.0 instead of raising.  Partial
        bins at the edges are pro-rated by overlap."""
        duration = t1_ns - t0_ns
        if duration <= 0:
            return 0.0
        fires = 0.0
        for index, count in self.bins.items():
            bin_lo = index * self.bin_ns
            overlap = min(bin_lo + self.bin_ns, t1_ns) - max(bin_lo, t0_ns)
            if overlap > 0:
                fires += count * (overlap / self.bin_ns)
        return fires * 1e9 / duration

    def snapshot(self) -> dict:
        out = super().snapshot()
        out.update(count=self.count, bin_ns=self.bin_ns, bins=len(self.bins))
        return out
