"""Exporters: JSON metrics snapshots and Perfetto counter tracks.

Two consumers of attached probe state:

* :func:`metrics_snapshot` — a JSON-ready dict of every tracepoint's
  hit count, every hook's decision/override counts, and every attached
  program's snapshot.  The CLI writes this with
  :func:`write_metrics_snapshot`; CI asserts on it.
* :func:`probe_counter_events` — Trace Event Format "C" events built
  from the ``series()`` of attached programs (rate meters), which
  :mod:`repro.traceviz` merges into its Perfetto export as a
  ``probes`` process group.
"""

from __future__ import annotations

import json
from typing import Any, List, Optional

from repro.probes.tracepoints import ProbeRegistry

#: pid of the probe counter tracks in the Chrome-trace export
#: (1 = syscalls, 2 = machine counters in ``repro.traceviz``).
PID_PROBES = 3

SNAPSHOT_SCHEMA = 1


def metrics_snapshot(registry: ProbeRegistry, experiment: Optional[str] = None) -> dict:
    """Everything the attached probes know, as one JSON-ready dict."""
    tracepoints = {}
    for name in sorted(registry.tracepoints):
        tp = registry.tracepoints[name]
        tracepoints[name] = {
            "hits": tp.hits,
            "observers": tp.observers,
            "args": list(tp.args),
        }
    hooks = {}
    for name in sorted(registry.hooks):
        hook = registry.hooks[name]
        hooks[name] = {
            "programs": hook.programs,
            "decisions": hook.decisions,
            "overrides": hook.overrides,
        }
    return {
        "schema": SNAPSHOT_SCHEMA,
        "experiment": experiment,
        "simulated_ns": registry.now(),
        "tracepoints": tracepoints,
        "hooks": hooks,
        "programs": [program.snapshot() for program in registry.programs],
    }


def write_metrics_snapshot(
    registry: ProbeRegistry, path: str, experiment: Optional[str] = None
) -> dict:
    """Write :func:`metrics_snapshot` to ``path``; returns the dict."""
    snapshot = metrics_snapshot(registry, experiment)
    with open(path, "w") as fh:
        json.dump(snapshot, fh, indent=2)
        fh.write("\n")
    return snapshot


def probe_counter_events(registry: Any, pid: int = PID_PROBES) -> List[dict]:
    """Trace Event Format "C" events from every program with a series.

    ``registry`` may be ``None`` (systems predating probes) — returns
    ``[]`` so :mod:`repro.traceviz` can call this unconditionally.
    """
    if registry is None:
        return []
    events: List[dict] = []
    named = False
    for program in registry.programs:
        series = program.series()
        if not series:
            continue
        if not named:
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "args": {"name": "probes"},
                }
            )
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": "probe counters"},
                }
            )
            named = True
        track = f"probe:{program.name}"
        for t_ns, value in series:
            events.append(
                {
                    "name": track,
                    "cat": "probe",
                    "ph": "C",
                    "ts": t_ns / 1000.0,  # trace format wants microseconds
                    "pid": pid,
                    "args": {"value": round(value, 4)},
                }
            )
    return events
