"""`repro.probes`: eBPF-style tracepoints + policy hooks for the stack.

The subsystem in one breath: the simulated stack declares static
**tracepoints** (observe) and **policy hooks** (decide) in a per-System
:class:`ProbeRegistry`; user **programs** — counters, latency
histograms, rate meters, fixed/choice policies — attach at runtime;
**exporters** turn attached state into JSON snapshots and Perfetto
counter tracks; and ``python -m repro.probes run <experiment>
--attach ...`` does all of it from the command line.

Guarantees (tested):

* observer probes never perturb simulated results — experiment outputs
  are byte-identical attached vs. detached;
* a detached tracepoint costs one attribute check — under ~2% on the
  ``benchmarks/perf`` end-to-end drivers.

See the "Probes & policy hooks" section of ``docs/architecture.md``.
"""

from repro.probes.exporters import (
    PID_PROBES,
    metrics_snapshot,
    probe_counter_events,
    write_metrics_snapshot,
)
from repro.probes.policy import PolicyHook, choose, fixed
from repro.probes.programs import (
    CounterProbe,
    LatencyHistogram,
    ProbeProgram,
    RateMeter,
    percentile_from_log2_buckets,
)
from repro.probes.tracepoints import (
    NULL_TRACEPOINT,
    ProbeRegistry,
    Tracepoint,
    apply_global_plan,
    clear_global_plan,
    install_global_plan,
)

__all__ = [
    "NULL_TRACEPOINT",
    "PID_PROBES",
    "CounterProbe",
    "LatencyHistogram",
    "PolicyHook",
    "ProbeProgram",
    "ProbeRegistry",
    "RateMeter",
    "Tracepoint",
    "apply_global_plan",
    "choose",
    "clear_global_plan",
    "fixed",
    "install_global_plan",
    "metrics_snapshot",
    "percentile_from_log2_buckets",
    "probe_counter_events",
    "write_metrics_snapshot",
]
