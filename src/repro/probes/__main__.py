import os
import sys

from repro.probes.cli import main

if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:  # e.g. `python -m repro.probes list | head`
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)
