"""Static tracepoints and the per-machine probe registry.

The shape follows gpu_ext's eBPF-for-GPUs argument (see PAPERS.md):
the simulated stack declares *static hook points* — tracepoints for
observation, policy hooks for decisions — and user programs attach to
them at runtime.  Two properties are load-bearing:

* **Near-zero detached cost.**  Every instrumentation site is guarded
  by a plain attribute check (``if tp.enabled: tp.fire(...)``), the
  software analogue of a nop-sled static key: when nothing is attached
  the site costs one attribute load and a branch, and no argument tuple
  is ever built.
* **Observer determinism.**  ``fire`` invokes observers synchronously,
  in attach order, with plain Python values.  Observers are given no
  simulator handle, cannot yield, and must not mutate simulated state —
  so attaching any number of observer programs leaves every simulated
  timestamp and result byte-identical (enforced by
  ``tests/test_probes_determinism.py``).  Policy hooks
  (:mod:`repro.probes.policy`) are the one sanctioned way to *change*
  behaviour, and they are separate objects at separate sites.

A :class:`ProbeRegistry` is created per :class:`~repro.system.System`
and threaded through every layer; components constructed standalone
make a private registry so their tracepoints always exist.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.probes.policy import PolicyHook

Observer = Callable[..., None]


class Tracepoint:
    """One named static observation point.

    ``args`` documents the positional values ``fire`` passes to every
    observer (the tracepoint's stable ABI); ``hits`` counts delivered
    fires (detached fires are skipped at the call site and never
    counted).
    """

    __slots__ = ("name", "args", "doc", "enabled", "hits", "_observers")

    def __init__(self, name: str, args: Sequence[str] = (), doc: str = ""):
        self.name = name
        self.args: Tuple[str, ...] = tuple(args)
        self.doc = doc
        self.enabled = False
        self.hits = 0
        self._observers: List[Observer] = []

    @property
    def observers(self) -> int:
        return len(self._observers)

    def attach(self, observer: Observer) -> Observer:
        """Attach ``observer`` (called as ``observer(*fire_args)``)."""
        if not callable(observer):
            raise TypeError(f"observer for {self.name!r} is not callable")
        self._observers.append(observer)
        self.enabled = True
        return observer

    def detach(self, observer: Observer) -> None:
        """Detach one observer; unknown observers are ignored."""
        try:
            self._observers.remove(observer)
        except ValueError:
            return
        if not self._observers:
            self.enabled = False

    def detach_all(self) -> None:
        self._observers.clear()
        self.enabled = False

    def fire(self, *values: Any) -> None:
        """Deliver one event to every observer (call only when enabled)."""
        self.hits += 1
        for observer in self._observers:
            observer(*values)

    def __repr__(self) -> str:
        state = f"{len(self._observers)} attached" if self.enabled else "detached"
        return f"Tracepoint({self.name!r}, {state}, hits={self.hits})"


class _NullTracepoint(Tracepoint):
    """Inert default for instrumented classes constructed standalone.

    Always disabled; attaching to it is a bug (the instance was never
    bound to a registry), so it refuses loudly instead of dropping
    events silently.
    """

    __slots__ = ()

    def attach(self, observer: Observer) -> Observer:
        raise RuntimeError(
            "cannot attach to the null tracepoint: this component was not "
            "bound to a ProbeRegistry"
        )


#: Shared inert tracepoint used as the class-level default on
#: instrumented classes (e.g. ``Cache.tp_hit``) so fire sites never
#: need a None check.
NULL_TRACEPOINT = _NullTracepoint("<null>")


class ProbeRegistry:
    """All tracepoints and policy hooks of one simulated machine.

    Components declare their hook points with :meth:`tracepoint` /
    :meth:`hook` (idempotent per name); user code looks them up by name
    and attaches programs.  ``sim`` provides the clock that time-series
    programs (rate meters) sample.
    """

    def __init__(self, sim: Any = None):
        self.sim = sim
        self.tracepoints: Dict[str, Tracepoint] = {}
        self.hooks: Dict[str, PolicyHook] = {}
        #: Probe-program instances attached through this registry, in
        #: attach order — what exporters snapshot.
        self.programs: List[Any] = []

    # -- declaration (component side) ------------------------------------

    def tracepoint(self, name: str, args: Sequence[str] = (), doc: str = "") -> Tracepoint:
        """Create-or-get the tracepoint ``name`` (idempotent)."""
        existing = self.tracepoints.get(name)
        if existing is not None:
            return existing
        tp = Tracepoint(name, args, doc)
        self.tracepoints[name] = tp
        return tp

    def hook(self, name: str, args: Sequence[str] = (), doc: str = "") -> PolicyHook:
        """Create-or-get the policy hook ``name`` (idempotent)."""
        existing = self.hooks.get(name)
        if existing is not None:
            return existing
        hook = PolicyHook(name, args, doc)
        self.hooks[name] = hook
        return hook

    # -- lookup / attach (user side) --------------------------------------

    def get(self, name: str) -> Tracepoint:
        try:
            return self.tracepoints[name]
        except KeyError:
            raise KeyError(
                f"unknown tracepoint {name!r}; known: {', '.join(sorted(self.tracepoints))}"
            ) from None

    def get_hook(self, name: str) -> PolicyHook:
        try:
            return self.hooks[name]
        except KeyError:
            raise KeyError(
                f"unknown policy hook {name!r}; known: {', '.join(sorted(self.hooks))}"
            ) from None

    def match(self, pattern: str) -> List[Tracepoint]:
        """Tracepoints matching ``pattern``: an exact name, ``*`` for
        all, or a ``prefix*`` glob (e.g. ``mem.*``)."""
        if pattern == "*":
            return [self.tracepoints[name] for name in sorted(self.tracepoints)]
        if pattern.endswith("*"):
            prefix = pattern[:-1]
            return [
                self.tracepoints[name]
                for name in sorted(self.tracepoints)
                if name.startswith(prefix)
            ]
        return [self.get(pattern)]

    def attach(self, name: str, observer: Observer) -> Observer:
        """Attach ``observer`` to the tracepoint ``name``; probe
        programs (anything with a ``bind`` method) are recorded for
        snapshot export."""
        tp = self.get(name)
        tp.attach(observer)
        bind = getattr(observer, "bind", None)
        if bind is not None:
            bind(tp)
            self.programs.append(observer)
        return observer

    def attach_policy(self, hook_name: str, program: Callable) -> Callable:
        """Attach a policy program to the hook ``hook_name``."""
        return self.get_hook(hook_name).attach(program)

    def detach_all(self) -> None:
        """Detach every observer and policy program."""
        for tp in self.tracepoints.values():
            tp.detach_all()
        for hook in self.hooks.values():
            hook.detach_all()
        self.programs.clear()

    # -- services ---------------------------------------------------------

    def now(self) -> float:
        """Current simulated time (0.0 when no simulator is bound)."""
        return self.sim.now if self.sim is not None else 0.0

    def catalogue(self) -> Dict[str, dict]:
        """Name → {args, doc, kind} for every tracepoint and hook."""
        out: Dict[str, dict] = {}
        for name in sorted(self.tracepoints):
            tp = self.tracepoints[name]
            out[name] = {"kind": "tracepoint", "args": list(tp.args), "doc": tp.doc}
        for name in sorted(self.hooks):
            hook = self.hooks[name]
            out[name] = {"kind": "hook", "args": list(hook.args), "doc": hook.doc}
        return out

    def __repr__(self) -> str:
        return (
            f"ProbeRegistry({len(self.tracepoints)} tracepoints, "
            f"{len(self.hooks)} hooks, {len(self.programs)} programs)"
        )


class _RecorderTap:
    """One tracepoint's tap into a :class:`StreamRecorder`."""

    __slots__ = ("recorder", "name")

    def __init__(self, recorder: "StreamRecorder", name: str) -> None:
        self.recorder = recorder
        self.name = name

    def __call__(self, *args) -> None:
        recorder = self.recorder
        recorder.events.append((recorder.registry.now(), self.name, args))


class StreamRecorder:
    """Observer recording ``(t_ns, tracepoint, args)`` for every matched
    tracepoint — built from plain classes (no closures) so a checkpoint
    taken while recording pickles the recorder with the machine and the
    resumed run keeps appending to the same stream.
    """

    def __init__(self, registry: "ProbeRegistry") -> None:
        self.registry = registry
        self.events: List[tuple] = []

    def attach(self, *patterns: str) -> "StreamRecorder":
        """Attach to every tracepoint matching the given patterns (see
        :meth:`ProbeRegistry.match`); returns self for chaining."""
        seen = set()
        for pattern in patterns:
            for tp in self.registry.match(pattern):
                if tp.name not in seen:
                    seen.add(tp.name)
                    self.registry.attach(tp.name, _RecorderTap(self, tp.name))
        return self


# -- global attach plan --------------------------------------------------
#
# Experiments construct their Systems internally, so the probes CLI
# cannot attach to them directly.  Instead it installs a *plan*: a
# callable applied to every ProbeRegistry a System creates while the
# plan is installed.  This is the only piece of module-global state in
# the subsystem; tests and the CLI always clear it in a finally block.

_GLOBAL_PLAN: Optional[Callable[["ProbeRegistry"], None]] = None


def install_global_plan(plan: Callable[["ProbeRegistry"], None]) -> None:
    """Apply ``plan(registry)`` to every subsequently-built System."""
    global _GLOBAL_PLAN
    _GLOBAL_PLAN = plan


def clear_global_plan() -> None:
    global _GLOBAL_PLAN
    _GLOBAL_PLAN = None


def apply_global_plan(registry: "ProbeRegistry") -> None:
    """Called by ``System.__init__`` once all tracepoints exist."""
    if _GLOBAL_PLAN is not None:
        _GLOBAL_PLAN(registry)
