"""Command-line probe runner.

Usage::

    python -m repro.probes list                     # tracepoint catalogue
    python -m repro.probes run fig2 \\
        --attach counter:* \\
        --attach hist:syscall.complete \\
        --attach rate:irq.raised:5000 \\
        --policy coalesce.window=20000 \\
        --metrics probes_metrics.json

Attach specs (``--attach``, repeatable)::

    counter:PATTERN[:key=N]   count fires; PATTERN is a name, prefix*
                              glob, or *; key=N also counts per value
                              of fire argument N
    hist:NAME[:value=N]       log2 latency histogram over argument N
                              (default 0) of tracepoint NAME
    rate:NAME[:bin_ns]        fires/second time series in bin_ns bins
    spans                     per-invocation span tracer (repro.tracing);
                              --metrics then includes a schema-versioned
                              span summary section per System

Policies (``--policy``, repeatable) pin a decision point to a constant,
e.g. ``--policy coalesce.window=20000`` — the CLI twin of writing
``/sys/genesys/coalesce_window_ns``.

Because experiments build their Systems internally, the CLI installs a
global *attach plan* that every ``System.__init__`` applies to its
fresh registry; the plan is cleared again before the process exits.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from repro.probes import policy as policy_mod
from repro.probes.exporters import metrics_snapshot
from repro.probes.programs import CounterProbe, LatencyHistogram, RateMeter
from repro.probes.tracepoints import (
    ProbeRegistry,
    clear_global_plan,
    install_global_plan,
)


class SpecError(ValueError):
    """A malformed --attach / --policy argument."""


def apply_attach_spec(registry: ProbeRegistry, spec: str) -> int:
    """Attach the programs ``spec`` describes; returns how many."""
    kind, _, rest = spec.partition(":")
    if kind == "spans":
        if rest not in ("", "*"):
            raise SpecError(f"--attach {spec!r}: spans takes no target")
        from repro.tracing.spans import SpanTracer

        SpanTracer(registry).install()
        return 1
    if not rest:
        raise SpecError(f"--attach {spec!r}: expected KIND:TARGET")
    if kind == "counter":
        pattern, _, option = rest.partition(":")
        key_arg = None
        if option:
            if not option.startswith("key="):
                raise SpecError(f"--attach {spec!r}: counter option must be key=N")
            key_arg = _parse_int(spec, option[4:])
        matches = registry.match(pattern)
        for tp in matches:
            registry.attach(tp.name, CounterProbe(registry, key_arg=key_arg))
        return len(matches)
    if kind == "hist":
        name, _, option = rest.partition(":")
        value_arg = 0
        if option:
            if not option.startswith("value="):
                raise SpecError(f"--attach {spec!r}: hist option must be value=N")
            value_arg = _parse_int(spec, option[6:])
        registry.attach(name, LatencyHistogram(registry, value_arg=value_arg))
        return 1
    if kind == "rate":
        name, _, option = rest.partition(":")
        bin_ns = float(_parse_int(spec, option)) if option else 10_000.0
        registry.attach(name, RateMeter(registry, bin_ns=bin_ns))
        return 1
    raise SpecError(f"--attach {spec!r}: unknown kind {kind!r} (counter|hist|rate|spans)")


def apply_policy_spec(registry: ProbeRegistry, spec: str) -> None:
    """Attach a fixed-value policy program per ``HOOK=VALUE``."""
    hook_name, sep, raw = spec.partition("=")
    if not sep or not raw:
        raise SpecError(f"--policy {spec!r}: expected HOOK=VALUE")
    try:
        value = float(raw) if ("." in raw or "e" in raw.lower()) else int(raw)
    except ValueError:
        raise SpecError(f"--policy {spec!r}: VALUE must be numeric") from None
    registry.attach_policy(hook_name, policy_mod.fixed(value))


def _parse_int(spec: str, raw: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise SpecError(f"--attach {spec!r}: {raw!r} is not an integer") from None


def _print_catalogue() -> None:
    from repro.system import System

    registry = System().probes
    for name, info in registry.catalogue().items():
        args = ", ".join(info["args"])
        tag = "hook" if info["kind"] == "hook" else "tp  "
        print(f"{tag} {name:<26} ({args})  {info['doc']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.probes",
        description="Attach tracepoint probes and policies to an experiment run.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="print the tracepoint + hook catalogue")
    run_p = sub.add_parser("run", help="run one experiment with probes attached")
    run_p.add_argument("experiment", help="experiment name (see python -m repro.experiments)")
    run_p.add_argument(
        "--attach",
        action="append",
        default=[],
        metavar="SPEC",
        help="counter:PATTERN[:key=N] | hist:NAME[:value=N] | rate:NAME[:bin_ns] | spans",
    )
    run_p.add_argument(
        "--policy",
        action="append",
        default=[],
        metavar="HOOK=VALUE",
        help="pin a policy hook to a constant (e.g. coalesce.window=20000)",
    )
    run_p.add_argument(
        "--metrics",
        metavar="PATH",
        help="write the probe metrics snapshot JSON here",
    )
    run_p.add_argument(
        "--quiet", action="store_true", help="suppress the experiment's own tables"
    )
    args = parser.parse_args(argv)

    if args.command == "list":
        _print_catalogue()
        return 0

    from repro import experiments

    registries: List[ProbeRegistry] = []

    def plan(registry: ProbeRegistry) -> None:
        registries.append(registry)
        try:
            for spec in args.attach:
                apply_attach_spec(registry, spec)
            for spec in args.policy:
                apply_policy_spec(registry, spec)
        except (SpecError, KeyError) as err:
            # Surface bad specs immediately instead of at System #2.
            raise SystemExit(f"error: {err}") from None

    install_global_plan(plan)
    try:
        try:
            result = experiments.run(args.experiment)
        except KeyError as err:
            print(err, file=sys.stderr)
            return 2
    finally:
        clear_global_plan()

    if not args.quiet:
        print(result.render())
    if not registries:
        print("warning: experiment built no System; nothing was probed", file=sys.stderr)

    if args.metrics:
        snapshot = {
            "schema": 1,
            "experiment": args.experiment,
            "num_systems": len(registries),
            "systems": [
                metrics_snapshot(registry, experiment=args.experiment)
                for registry in registries
            ],
        }
        with open(args.metrics, "w") as fh:
            json.dump(snapshot, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.metrics}")
    return 0
