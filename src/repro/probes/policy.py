"""Policy hooks: decision points an attached program may override.

Where tracepoints only *observe*, a policy hook sits at a designated
decision in the stack — the coalescing window about to be armed, the
worker about to be picked, the page about to be evicted — and lets an
attached program replace the default.  This is the reproduction of
gpu_ext's thesis: user-supplied programs steer GPU/OS policy through
static, typed hook points instead of kernel patches.

The contract mirrors an eBPF program return code: a program receives
``(default, *args)`` and returns either a replacement value or ``None``
to keep the current value.  Programs run in attach order, each seeing
the previous program's choice, so later programs can veto earlier ones.
Hook sites guard on ``hook.active`` the same way tracepoint sites guard
on ``tp.enabled``, so a detached hook costs one attribute check.

Unlike observers, policy programs are *expected* to change simulated
results — that is their purpose — so the byte-identical determinism
guarantee applies only to observer probes, never to attached policies.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

PolicyProgram = Callable[..., Any]


class PolicyHook:
    """One named decision point.

    ``decisions`` counts consultations; ``overrides`` counts the
    consultations where at least one program changed the value.
    """

    __slots__ = ("name", "args", "doc", "active", "decisions", "overrides", "_programs")

    def __init__(self, name: str, args: Sequence[str] = (), doc: str = ""):
        self.name = name
        self.args: Tuple[str, ...] = tuple(args)
        self.doc = doc
        self.active = False
        self.decisions = 0
        self.overrides = 0
        self._programs: List[PolicyProgram] = []

    @property
    def programs(self) -> int:
        return len(self._programs)

    def attach(self, program: PolicyProgram) -> PolicyProgram:
        """Attach ``program`` (called as ``program(current, *args)``)."""
        if not callable(program):
            raise TypeError(f"policy program for {self.name!r} is not callable")
        self._programs.append(program)
        self.active = True
        return program

    def detach(self, program: PolicyProgram) -> None:
        try:
            self._programs.remove(program)
        except ValueError:
            return
        if not self._programs:
            self.active = False

    def detach_all(self) -> None:
        self._programs.clear()
        self.active = False

    def decide(self, default: Any, *args: Any) -> Any:
        """Run the program chain over ``default`` (call only when active)."""
        self.decisions += 1
        value = default
        for program in self._programs:
            choice = program(value, *args)
            if choice is not None:
                value = choice
        if value is not default and value != default:
            self.overrides += 1
        return value

    def __repr__(self) -> str:
        state = f"{len(self._programs)} programs" if self.active else "inactive"
        return (
            f"PolicyHook({self.name!r}, {state}, "
            f"decisions={self.decisions}, overrides={self.overrides})"
        )


class _FixedPolicy:
    """Callable (and picklable, unlike a closure — checkpoints may pickle
    attached programs) always-``value`` policy program."""

    __slots__ = ("policy_value",)

    def __init__(self, value: Any) -> None:
        self.policy_value = value  # introspectable for snapshots/tests

    def __call__(self, current: Any, *args: Any) -> Any:
        return self.policy_value

    def __repr__(self) -> str:
        return f"fixed({self.policy_value!r})"


def fixed(value: Any) -> PolicyProgram:
    """A policy program that always answers ``value``.

    This is what the sysfs knobs and the CLI's ``--policy HOOK=VALUE``
    flag build on: pinning a decision to a constant.
    """
    return _FixedPolicy(value)


def choose(fn: Callable[..., Optional[Any]]) -> PolicyProgram:
    """Adapter documenting intent: ``fn(current, *args) -> value | None``."""
    return fn
