"""The latency-regression gate: recorded baselines + banded comparison.

``python -m repro.tracing record fig7`` runs an experiment with tracing
attached and writes the per-stage latency distribution (count, p50,
p95, p99, mean, max — nearest-rank, hence deterministic) to
``benchmarks/latency/<experiment>.json``.  ``python -m repro.tracing
gate`` re-runs the experiment and fails if any stage's percentile
exceeds its recorded value by more than the tolerance band — so a PR
that regresses, say, the workqueue stage's p95 fails CI visibly instead
of silently shifting the paper's latency composition.

The simulator is deterministic, so a freshly recorded baseline always
gates green; the band (default 10% relative + 1 ns absolute) exists to
absorb deliberate, small, reviewed shifts without re-recording on every
touch.  Count changes always fail: a different number of invocations
means the workload itself changed and the baseline must be re-recorded
deliberately.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Sequence

from repro.tracing.analysis import e2e_stats, stage_stats
from repro.tracing.spans import InvocationTrace

BASELINE_SCHEMA = 1

#: Metrics compared against the tolerance band.
GATED_METRICS = ("p50", "p95", "p99")

DEFAULT_TOLERANCE = 0.10
DEFAULT_ABS_NS = 1.0

#: Default baseline directory, relative to the repository root.
DEFAULT_DIR = os.path.join("benchmarks", "latency")


def build_baseline(experiment: str, traces: Sequence[InvocationTrace]) -> dict:
    """The JSON-ready baseline document for one experiment's traces."""
    return {
        "schema": BASELINE_SCHEMA,
        "experiment": experiment,
        "invocations": len(traces),
        "stages": stage_stats(traces),
        "end_to_end": e2e_stats(traces),
    }


def baseline_path(directory: str, experiment: str) -> str:
    return os.path.join(directory, f"{experiment}.json")


def write_baseline(directory: str, baseline: dict) -> str:
    os.makedirs(directory, exist_ok=True)
    path = baseline_path(directory, baseline["experiment"])
    with open(path, "w") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_baseline(directory: str, experiment: str) -> dict:
    path = baseline_path(directory, experiment)
    with open(path) as fh:
        baseline = json.load(fh)
    if baseline.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: baseline schema {baseline.get('schema')!r} != {BASELINE_SCHEMA}"
        )
    return baseline


def recorded_experiments(directory: str) -> List[str]:
    """Experiments with a baseline file in ``directory`` (sorted)."""
    if not os.path.isdir(directory):
        return []
    return sorted(
        name[:-5]
        for name in os.listdir(directory)
        if name.endswith(".json")
    )


class GateCheck:
    """One compared metric: baseline vs current vs allowed ceiling."""

    __slots__ = ("experiment", "stage", "metric", "baseline", "current", "limit", "ok")

    def __init__(self, experiment, stage, metric, baseline, current, limit):
        self.experiment = experiment
        self.stage = stage
        self.metric = metric
        self.baseline = baseline
        self.current = current
        self.limit = limit
        self.ok = current <= limit

    def render(self) -> str:
        verdict = "ok  " if self.ok else "FAIL"
        return (
            f"{verdict} {self.experiment:<10} {self.stage:<12} {self.metric:<5} "
            f"baseline={self.baseline:>12.1f}  current={self.current:>12.1f}  "
            f"limit={self.limit:>12.1f}"
        )


class GateResult:
    """All checks for one experiment, plus structural failures."""

    def __init__(self, experiment: str):
        self.experiment = experiment
        self.checks: List[GateCheck] = []
        self.errors: List[str] = []

    @property
    def passed(self) -> bool:
        return not self.errors and all(check.ok for check in self.checks)

    @property
    def failures(self) -> List[GateCheck]:
        return [check for check in self.checks if not check.ok]

    def render(self) -> str:
        lines = [f"--- gate: {self.experiment} ---"]
        lines.extend(f"FAIL {self.experiment:<10} {err}" for err in self.errors)
        lines.extend(check.render() for check in self.checks)
        verdict = "PASS" if self.passed else "FAIL"
        lines.append(
            f"{verdict}: {self.experiment} "
            f"({len(self.checks)} checks, {len(self.failures)} over tolerance, "
            f"{len(self.errors)} structural)"
        )
        return "\n".join(lines)


def compare(
    baseline: dict,
    current: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    abs_ns: float = DEFAULT_ABS_NS,
) -> GateResult:
    """Band-compare ``current`` (same shape as a baseline) to ``baseline``."""
    result = GateResult(baseline["experiment"])
    if current["invocations"] != baseline["invocations"]:
        result.errors.append(
            f"invocation count changed: baseline {baseline['invocations']}, "
            f"current {current['invocations']} (re-record the baseline if "
            f"this is intentional)"
        )

    def check_block(stage: str, base_stats: Optional[dict], cur_stats: Optional[dict]):
        if base_stats is None:
            return  # a new stage appeared: informational, not gated
        if cur_stats is None:
            result.errors.append(f"stage {stage!r} vanished from the current run")
            return
        if cur_stats["count"] != base_stats["count"]:
            result.errors.append(
                f"stage {stage!r} count changed: baseline {base_stats['count']}, "
                f"current {cur_stats['count']}"
            )
        for metric in GATED_METRICS:
            base_value = base_stats[metric]
            limit = base_value * (1.0 + tolerance) + abs_ns
            result.checks.append(
                GateCheck(
                    result.experiment, stage, metric,
                    base_value, cur_stats[metric], limit,
                )
            )

    for stage, base_stats in baseline["stages"].items():
        check_block(stage, base_stats, current["stages"].get(stage))
    check_block("end-to-end", baseline["end_to_end"], current["end_to_end"])
    return result


def gate_experiment(
    experiment: str,
    traces: Sequence[InvocationTrace],
    directory: str,
    tolerance: float = DEFAULT_TOLERANCE,
    abs_ns: float = DEFAULT_ABS_NS,
) -> GateResult:
    """Compare a fresh run's ``traces`` to the recorded baseline."""
    baseline = load_baseline(directory, experiment)
    current = build_baseline(experiment, traces)
    return compare(baseline, current, tolerance=tolerance, abs_ns=abs_ns)
