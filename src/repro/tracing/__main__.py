"""``python -m repro.tracing`` entry point."""

import sys

from repro.tracing.cli import main

if __name__ == "__main__":
    sys.exit(main())
