"""Critical-path latency analysis over collected invocation traces.

Consumes :class:`~repro.tracing.spans.InvocationTrace` lists and
produces the paper's latency-composition views: per-stage and
per-syscall p50/p95/p99, the blocking/non-blocking and granularity
splits of Figures 7/8, critical-path attribution (which stage dominates
each invocation, and each stage's share of the total end-to-end time),
and slowest-N listings with full timelines.

All statistics are deterministic (nearest-rank percentiles over sorted
values) so the regression gate can compare them across runs exactly.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Sequence

from repro.tracing.spans import STAGE_ORDER, InvocationTrace


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (need not be sorted)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def summarize(values: Sequence[float]) -> dict:
    """count/total/mean/p50/p95/p99/max of a duration sample."""
    if not values:
        return {
            "count": 0, "total": 0.0, "mean": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
        }
    ordered = sorted(values)
    total = sum(ordered)

    def rank(q: float) -> float:
        return ordered[min(max(1, math.ceil(q / 100.0 * len(ordered))), len(ordered)) - 1]

    return {
        "count": len(ordered),
        "total": total,
        "mean": total / len(ordered),
        "p50": rank(50),
        "p95": rank(95),
        "p99": rank(99),
        "max": ordered[-1],
    }


def stage_durations(traces: Iterable[InvocationTrace]) -> Dict[str, List[float]]:
    """Stage -> list of span durations across ``traces``."""
    out: Dict[str, List[float]] = {}
    for trace in traces:
        for stage, duration in trace.spans():
            out.setdefault(stage, []).append(duration)
    return out


def stage_stats(traces: Iterable[InvocationTrace]) -> Dict[str, dict]:
    """Stage -> summary, in canonical stage order."""
    durations = stage_durations(traces)
    return {
        stage: summarize(durations[stage])
        for stage in STAGE_ORDER
        if stage in durations
    }


def e2e_stats(traces: Iterable[InvocationTrace]) -> dict:
    return summarize([trace.end_to_end() for trace in traces])


def by_key(
    traces: Iterable[InvocationTrace],
    key: Callable[[InvocationTrace], str],
) -> Dict[str, dict]:
    """End-to-end summaries grouped by ``key(trace)`` (sorted keys)."""
    groups: Dict[str, List[float]] = {}
    for trace in traces:
        groups.setdefault(key(trace), []).append(trace.end_to_end())
    return {name: summarize(values) for name, values in sorted(groups.items())}


def critical_path(traces: Sequence[InvocationTrace]) -> Dict[str, dict]:
    """Per-stage attribution: total time, share of all end-to-end time,
    and how many invocations that stage dominated."""
    totals: Dict[str, float] = {}
    dominant: Dict[str, int] = {}
    grand_total = 0.0
    for trace in traces:
        worst_stage, worst = None, -1.0
        for stage, duration in trace.spans():
            totals[stage] = totals.get(stage, 0.0) + duration
            grand_total += duration
            if duration > worst:
                worst_stage, worst = stage, duration
        if worst_stage is not None:
            dominant[worst_stage] = dominant.get(worst_stage, 0) + 1
    return {
        stage: {
            "total": totals[stage],
            "share": totals[stage] / grand_total if grand_total else 0.0,
            "dominant": dominant.get(stage, 0),
        }
        for stage in STAGE_ORDER
        if stage in totals
    }


def slowest(traces: Sequence[InvocationTrace], n: int = 5) -> List[InvocationTrace]:
    """The ``n`` slowest invocations by end-to-end latency.

    Ties break on invocation id so the listing is deterministic.
    """
    return sorted(
        traces, key=lambda t: (-t.end_to_end(), t.invocation_id)
    )[:n]


def reconciliation_error(trace: InvocationTrace) -> float:
    """|sum of stage durations - end-to-end| — 0 up to float rounding."""
    return abs(sum(d for _, d in trace.spans()) - trace.end_to_end())


# -- rendering -----------------------------------------------------------


def _table(title: str, headers: Sequence[str], rows: List[Sequence]) -> str:
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    lines = [f"=== {title} ==="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _stat_row(label: str, stats: dict, extra: Sequence = ()) -> List:
    return [
        label,
        stats["count"],
        f"{stats['mean']:.0f}",
        f"{stats['p50']:.0f}",
        f"{stats['p95']:.0f}",
        f"{stats['p99']:.0f}",
        f"{stats['max']:.0f}",
        *extra,
    ]


def render_report(
    traces: Sequence[InvocationTrace],
    title: str = "span report",
    slowest_n: int = 5,
) -> str:
    """The full text report (stage table, splits, slowest-N)."""
    if not traces:
        return f"=== {title} ===\nno completed invocations traced"
    sections = []

    stages = stage_stats(traces)
    attribution = critical_path(traces)
    rows = [
        _stat_row(
            stage,
            stats,
            (
                f"{attribution[stage]['share'] * 100:.1f}%",
                attribution[stage]["dominant"],
            ),
        )
        for stage, stats in stages.items()
    ]
    e2e = e2e_stats(traces)
    rows.append(_stat_row("end-to-end", e2e, ("100.0%", len(traces))))
    sections.append(
        _table(
            f"{title}: stage latency (ns)",
            ["stage", "count", "mean", "p50", "p95", "p99", "max", "cp-share", "dominant"],
            rows,
        )
    )

    sections.append(
        _table(
            "end-to-end by syscall (ns)",
            ["syscall", "count", "mean", "p50", "p95", "p99", "max"],
            [
                _stat_row(name, stats)
                for name, stats in by_key(traces, lambda t: t.name).items()
            ],
        )
    )

    axes = by_key(
        traces,
        lambda t: f"{t.granularity}/{'blocking' if t.blocking else 'non-blocking'}",
    )
    sections.append(
        _table(
            "end-to-end by granularity x blocking (ns)",
            ["axis", "count", "mean", "p50", "p95", "p99", "max"],
            [_stat_row(name, stats) for name, stats in axes.items()],
        )
    )

    if slowest_n > 0:
        sections.append(
            _table(
                f"slowest {slowest_n} invocations",
                ["#", "syscall", "hw", "e2e (ns)", "timeline"],
                [
                    (
                        trace.invocation_id,
                        trace.name,
                        trace.hw_id,
                        f"{trace.end_to_end():.0f}",
                        trace.timeline(),
                    )
                    for trace in slowest(traces, slowest_n)
                ],
            )
        )

    return "\n\n".join(sections)
