"""Per-invocation span tracing with critical-path latency attribution.

Built on the :mod:`repro.probes` tracepoints: a :class:`SpanTracer`
attaches pure observers that join each syscall's ``invocation_id``
across every pipeline stage (submit, signal, interrupt, coalesce,
workqueue, dispatch, service, resume), :mod:`repro.tracing.analysis`
turns the collected traces into the paper's latency-composition views,
:mod:`repro.tracing.export` renders them as Perfetto span tracks, and
:mod:`repro.tracing.gate` compares fresh runs against committed
baselines (``python -m repro.tracing report|record|gate``).
"""

from repro.tracing.spans import (
    SPAN_SNAPSHOT_SCHEMA,
    STAGE_ORDER,
    InvocationTrace,
    SpanTracer,
    install_tracer,
    span_tracers,
)

__all__ = [
    "SPAN_SNAPSHOT_SCHEMA",
    "STAGE_ORDER",
    "InvocationTrace",
    "SpanTracer",
    "install_tracer",
    "span_tracers",
]
