"""Perfetto / Chrome Trace Event Format export of invocation spans.

Span traces become a fourth process group in the combined
:mod:`repro.traceviz` export (pid 1 = syscall servicing, 2 = machine
counters, 3 = probe counter tracks): one thread track per pipeline
stage, each invocation's stage span as a complete ("X") event, and a
flow arrow ("s"/"f") linking the GPU-side submit to the CPU-side
service so Perfetto draws the cross-processor hand-off.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.tracing.spans import STAGE_ORDER, InvocationTrace, SpanTracer

#: pid of the span tracks (1/2/3 are taken — see repro.traceviz and
#: repro.probes.exporters).
PID_SPANS = 4

#: Stage -> tid; enumerated in pipeline order so Perfetto sorts the
#: tracks top-to-bottom in execution order.
STAGE_TIDS = {stage: tid for tid, stage in enumerate(STAGE_ORDER, start=1)}


def _metadata() -> List[dict]:
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": PID_SPANS,
            "args": {"name": "syscall spans"},
        }
    ]
    for stage, tid in STAGE_TIDS.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": PID_SPANS,
                "tid": tid,
                "args": {"name": f"stage: {stage}"},
            }
        )
        events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": PID_SPANS,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    return events


def _trace_events(trace: InvocationTrace) -> List[dict]:
    events = []
    t_prev = trace.t0
    for stage, duration in trace.spans():
        tid = STAGE_TIDS.get(stage, 0)
        events.append(
            {
                "name": f"{trace.name}:{stage}",
                "cat": "span",
                "ph": "X",
                "ts": t_prev / 1000.0,  # TEF wants microseconds
                "dur": max(duration, 1.0) / 1000.0,
                "pid": PID_SPANS,
                "tid": tid,
                "args": {
                    "invocation_id": trace.invocation_id,
                    "syscall": trace.name,
                    "stage": stage,
                    "hw_wavefront": trace.hw_id,
                    "granularity": trace.granularity,
                    "blocking": trace.blocking,
                    "wait": trace.wait,
                },
            }
        )
        t_prev += duration
    # Flow arrow: GPU-side submit (slot READY) -> CPU-side service.
    marks = dict(trace.marks)
    if "submit" in marks and "service" in marks:
        flow_common = {
            "name": "gpu-to-cpu",
            "cat": "flow",
            "id": trace.invocation_id,
            "pid": PID_SPANS,
        }
        events.append(
            {
                **flow_common,
                "ph": "s",
                "ts": marks["submit"] / 1000.0,
                "tid": STAGE_TIDS["submit"],
            }
        )
        service_start = marks.get("dispatch", marks["service"])
        events.append(
            {
                **flow_common,
                "ph": "f",
                "bp": "e",
                "ts": service_start / 1000.0,
                "tid": STAGE_TIDS["service"],
            }
        )
    return events


def span_events(tracers: Iterable[SpanTracer]) -> List[dict]:
    """All TEF events for the completed traces of ``tracers``.

    Returns ``[]`` when no tracer has completed invocations, so callers
    can merge unconditionally.
    """
    traces = [trace for tracer in tracers for trace in tracer.completed]
    if not traces:
        return []
    events = _metadata()
    for trace in traces:
        events.extend(_trace_events(trace))
    return events


def tef_dict(tracers: Iterable[SpanTracer]) -> dict:
    """A standalone Trace Event Format document of just the spans."""
    tracers = list(tracers)
    return {
        "traceEvents": span_events(tracers),
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.tracing (GENESYS reproduction)",
            "invocations": sum(len(t.completed) for t in tracers),
        },
    }
