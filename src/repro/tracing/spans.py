"""Per-invocation span tracing over the ``repro.probes`` tracepoints.

Every GPU system call gets a unique ``invocation_id`` minted by
:meth:`repro.core.genesys.Genesys.begin_invocation` at submit time; the
span-grade tracepoints (``syscall.claim``, ``syscall.submit``,
``syscall.irq``, ``coalesce.add``, ``scan.enqueue``, ``scan.start``,
``syscall.dispatch``, ``syscall.complete``, ``syscall.resume``) carry it
through every stage of the paper's Figure-2 pipeline.  A
:class:`SpanTracer` attaches pure observers to those tracepoints and
reconstructs, per invocation, an ordered timeline of *marks*; the span
between two consecutive marks is named after the stage the later mark
terminates:

==========  ====================================================
stage       interval it measures
==========  ====================================================
submit      slot claim + populate + publish (claim -> READY)
signal      the s_sendmsg raising the CPU interrupt
interrupt   interrupt-controller queue + top-half handler
coalesce    waiting in the coalescer's bundle window
workqueue   workqueue queue time + worker dispatch delay
dispatch    worker context switch + in-bundle serialisation
service     CPU-side servicing (PROCESSING -> FINISHED/FREE)
resume      completion -> the blocked caller proceeds
==========  ====================================================

Spans telescope: the sum of an invocation's stage durations equals its
end-to-end latency *exactly* (each boundary timestamp is shared by the
adjacent stages), which is what lets the regression gate reason about
stage budgets.  Invocations that ride a scan task enqueued before their
interrupt fired (suppressed-IRQ stragglers) legitimately skip the
interrupt/coalesce/workqueue marks; their ``dispatch`` span absorbs
that wait, and the telescoping property still holds.

Like every probes observer, the tracer is read-only: it sees plain
values and the registry clock, never the simulator — attaching it leaves
all simulated timestamps byte-identical (enforced alongside the other
probes by ``tests/test_probes_determinism.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.probes.tracepoints import ProbeRegistry

#: Canonical stage order (also the order marks arrive in sim time).
STAGE_ORDER: Tuple[str, ...] = (
    "submit",
    "signal",
    "interrupt",
    "coalesce",
    "workqueue",
    "dispatch",
    "service",
    "resume",
    # Fault/recovery marks (only present when injection or the watchdog
    # actually fired; orthogonal to the happy-path pipeline above).
    "timeout",
    "retry",
)

#: Schema version of :meth:`SpanTracer.snapshot` (and of the span
#: sections the probes metrics exporter embeds).  2 added the fault/
#: recovery annotations: ``retries``, ``timeouts``, ``degraded_rescans``.
SPAN_SNAPSHOT_SCHEMA = 2


class InvocationTrace:
    """One invocation's journey: identity plus an ordered mark list."""

    __slots__ = (
        "invocation_id",
        "name",
        "hw_id",
        "lane",
        "granularity",
        "blocking",
        "wait",
        "suppressed_irq",
        "scan_id",
        "retries",
        "timed_out",
        "marks",
        "_seen",
    )

    def __init__(
        self,
        invocation_id: int,
        name: str,
        hw_id: int,
        lane: int,
        granularity: str,
        blocking: bool,
        wait: str,
    ):
        self.invocation_id = invocation_id
        self.name = name
        self.hw_id = hw_id
        self.lane = lane
        self.granularity = granularity
        self.blocking = blocking
        self.wait = wait
        self.suppressed_irq = False
        self.scan_id: Optional[int] = None
        #: Retry attempt this invocation's failure triggered (0 = none);
        #: the follow-up attempt is a fresh invocation id.
        self.retries = 0
        #: True when the watchdog reclaimed this invocation's slot with
        #: ``-ETIMEDOUT`` instead of a worker finishing it.
        self.timed_out = False
        #: [(stage, t_ns), ...] — first entry is the "claim" origin.
        self.marks: List[Tuple[str, float]] = []
        self._seen: set = set()

    def mark(self, stage: str, t_ns: float) -> None:
        """Record ``stage`` at ``t_ns`` (idempotent per stage)."""
        if stage in self._seen:
            return
        self._seen.add(stage)
        self.marks.append((stage, t_ns))

    @property
    def complete(self) -> bool:
        """Whether the invocation reached its terminal mark."""
        return ("resume" if self.blocking else "service") in self._seen

    def _ordered(self) -> List[Tuple[str, float]]:
        """Marks in chronological order.

        Appends are time-ordered in all but one pathological
        interleaving (a straggler assigned to a second scan that starts
        after the first scan already dispatched it), so the stable sort
        is a no-op almost always — but it guarantees non-negative spans.
        """
        return sorted(self.marks, key=lambda mark: mark[1])

    @property
    def t0(self) -> float:
        return self.marks[0][1]

    @property
    def t_end(self) -> float:
        return self._ordered()[-1][1]

    def end_to_end(self) -> float:
        """Claim start to the last recorded mark, in ns."""
        return self.t_end - self.t0

    def spans(self) -> List[Tuple[str, float]]:
        """``[(stage, duration_ns), ...]`` between consecutive marks.

        The durations telescope: ``sum(d for _, d in spans())`` equals
        :meth:`end_to_end` exactly.
        """
        ordered = self._ordered()
        out = []
        for i in range(1, len(ordered)):
            stage, t = ordered[i]
            out.append((stage, t - ordered[i - 1][1]))
        return out

    def timeline(self) -> str:
        """Human-readable one-line timeline for slowest-N listings."""
        parts = [f"t0={self.t0:.0f}ns"]
        for stage, dur in self.spans():
            parts.append(f"{stage}={dur:.0f}")
        return " ".join(parts)

    def __repr__(self) -> str:
        state = "complete" if self.complete else f"open@{self.marks[-1][0]}"
        notes = ""
        if self.retries:
            notes += f" retried(attempt={self.retries})"
        if self.timed_out:
            notes += " timed-out"
        return (
            f"InvocationTrace(#{self.invocation_id} {self.name} hw={self.hw_id} "
            f"{self.granularity} {'blocking' if self.blocking else 'non-blocking'} "
            f"{state}{notes})"
        )


class SpanTracer:
    """Reconstructs per-invocation timelines from span tracepoints.

    Duck-types the probe-program protocol (``snapshot``/``series``) so
    the metrics exporter and Perfetto merge pick it up from
    ``registry.programs`` like any other attached program.
    """

    kind = "spans"
    name = "spans"
    tracepoint = None

    def __init__(self, registry: ProbeRegistry):
        self.registry = registry
        #: invocation_id -> open trace.
        self.active: Dict[int, InvocationTrace] = {}
        #: Finalised traces in completion order.
        self.completed: List[InvocationTrace] = []
        #: hw_id -> traces signalled but not yet assigned to a scan.
        self._awaiting: Dict[int, List[InvocationTrace]] = {}
        #: scan_id -> traces whose bundle became that scan task.
        self._scan_members: Dict[int, List[InvocationTrace]] = {}
        #: invocation_id -> finalized trace (``syscall.retry`` fires
        #: after the failed attempt already resumed, so annotation must
        #: reach completed traces too).
        self._by_id: Dict[int, InvocationTrace] = {}
        #: Fault/recovery annotation totals (schema 2).
        self.retries = 0
        self.timeouts = 0
        self.degraded_rescans = 0

    def install(self) -> "SpanTracer":
        """Attach all observers and register for snapshot export."""
        reg = self.registry
        reg.attach("syscall.claim", self._on_claim)
        reg.attach("syscall.submit", self._on_submit)
        reg.attach("syscall.irq", self._on_irq)
        reg.attach("coalesce.add", self._on_coalesce_add)
        reg.attach("scan.enqueue", self._on_scan_enqueue)
        reg.attach("scan.start", self._on_scan_start)
        reg.attach("syscall.dispatch", self._on_dispatch)
        reg.attach("syscall.complete", self._on_complete)
        reg.attach("syscall.resume", self._on_resume)
        reg.attach("syscall.retry", self._on_retry)
        reg.attach("recover.slot_reclaim", self._on_slot_reclaim)
        reg.attach("recover.degraded", self._on_degraded)
        reg.programs.append(self)
        return self

    # -- observers (pure: fire args + registry clock only) ----------------

    def _on_claim(self, invocation_id, name, hw_id, lane, granularity, blocking, wait):
        trace = InvocationTrace(
            invocation_id, name, hw_id, lane, granularity, blocking, wait
        )
        trace.mark("claim", self.registry.now())
        self.active[invocation_id] = trace

    def _on_submit(self, granularity, invocation_id, name, hw_id, blocking):
        trace = self.active.get(invocation_id)
        if trace is not None:
            trace.mark("submit", self.registry.now())

    def _on_irq(self, invocation_id, hw_id, suppressed):
        trace = self.active.get(invocation_id)
        if trace is None:
            return
        trace.mark("signal", self.registry.now())
        trace.suppressed_irq = bool(suppressed)
        self._awaiting.setdefault(hw_id, []).append(trace)

    def _on_coalesce_add(self, hw_id):
        now = self.registry.now()
        for trace in self._awaiting.get(hw_id, ()):
            trace.mark("interrupt", now)

    def _on_scan_enqueue(self, scan_id, hw_ids):
        now = self.registry.now()
        members = self._scan_members.setdefault(scan_id, [])
        for hw_id in hw_ids:
            for trace in self._awaiting.pop(hw_id, ()):
                trace.mark("coalesce", now)
                trace.scan_id = scan_id
                members.append(trace)

    def _on_scan_start(self, scan_id, hw_ids):
        now = self.registry.now()
        for trace in self._scan_members.pop(scan_id, ()):
            if "dispatch" not in trace._seen:  # already taken by another scan
                trace.mark("workqueue", now)

    def _on_dispatch(self, name, hw_id, invocation_id):
        trace = self.active.get(invocation_id)
        if trace is None:
            return
        trace.mark("dispatch", self.registry.now())
        # Stragglers serviced by a scan enqueued before their IRQ fired
        # never joined a bundle; drop them from the awaiting pool.
        waiting = self._awaiting.get(hw_id)
        if waiting and trace in waiting:
            waiting.remove(trace)

    def _on_complete(self, name, hw_id, service_ns, invocation_id, blocking):
        trace = self.active.get(invocation_id)
        if trace is None:
            return
        trace.mark("service", self.registry.now())
        if not blocking:
            self._finalize(trace)

    def _on_resume(self, invocation_id, name, hw_id):
        trace = self.active.get(invocation_id)
        if trace is None:
            return
        trace.mark("resume", self.registry.now())
        self._finalize(trace)

    def _on_retry(self, invocation_id, name, errno, attempt, backoff_ns):
        self.retries += 1
        trace = self.active.get(invocation_id) or self._by_id.get(invocation_id)
        if trace is not None:
            trace.mark("retry", self.registry.now())
            trace.retries = attempt

    def _on_slot_reclaim(self, invocation_id, name, slot_index, was_state):
        self.timeouts += 1
        trace = self.active.get(invocation_id)
        if trace is None:
            return
        trace.mark("timeout", self.registry.now())
        trace.timed_out = True
        # A reclaimed non-blocking invocation has no waiter to resume;
        # the -ETIMEDOUT status is its terminal mark.
        if not trace.blocking:
            self._finalize(trace)

    def _on_degraded(self, hw_ids):
        self.degraded_rescans += 1

    def _finalize(self, trace: InvocationTrace) -> None:
        del self.active[trace.invocation_id]
        self.completed.append(trace)
        self._by_id[trace.invocation_id] = trace

    # -- export protocol ---------------------------------------------------

    def snapshot(self) -> dict:
        """Schema-versioned span summary for the metrics exporter."""
        from repro.tracing.analysis import e2e_stats, stage_stats

        return {
            "kind": self.kind,
            "name": self.name,
            "tracepoint": None,
            "schema": SPAN_SNAPSHOT_SCHEMA,
            "invocations": len(self.completed),
            "open": len(self.active),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "degraded_rescans": self.degraded_rescans,
            "stages": stage_stats(self.completed),
            "end_to_end": e2e_stats(self.completed),
        }

    def series(self) -> List[Tuple[float, float]]:
        return []

    def __repr__(self) -> str:
        return (
            f"SpanTracer({len(self.completed)} completed, "
            f"{len(self.active)} open)"
        )


def install_tracer(registry: ProbeRegistry) -> SpanTracer:
    """Plan-compatible helper: build and install a tracer on ``registry``."""
    return SpanTracer(registry).install()


def span_tracers(registry) -> List[SpanTracer]:
    """All SpanTracers installed on ``registry`` (``None``-safe)."""
    if registry is None:
        return []
    return [p for p in registry.programs if isinstance(p, SpanTracer)]
