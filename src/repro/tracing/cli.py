"""Command-line span tracing, reporting, and the latency gate.

Usage::

    python -m repro.tracing report fig7 [--slowest 5] [--json out.json]
                                        [--tef spans.trace.json] [--quiet]
    python -m repro.tracing record fig7 fig2 [--dir benchmarks/latency]
    python -m repro.tracing gate [fig7 ...] [--dir benchmarks/latency]
                                 [--tolerance 0.10] [--abs-ns 1.0]

``report`` runs one experiment with a :class:`SpanTracer` attached to
every System it builds (the same global-attach-plan mechanism the
probes CLI uses) and prints per-stage p50/p95/p99, critical-path
attribution, Figure-7/8 axis splits, and the slowest invocations.
``record`` writes the per-stage distributions as committed baselines;
``gate`` re-runs and fails (exit 1) when a stage's percentile drifts
past the tolerance band — CI runs it on every PR.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Tuple

from repro.probes.tracepoints import (
    ProbeRegistry,
    clear_global_plan,
    install_global_plan,
)
from repro.tracing import analysis, gate as gate_mod
from repro.tracing.export import tef_dict
from repro.tracing.spans import SpanTracer, InvocationTrace


def run_traced(experiment: str) -> Tuple[object, List[SpanTracer]]:
    """Run ``experiment`` with a SpanTracer on every System it builds."""
    from repro import experiments

    tracers: List[SpanTracer] = []

    def plan(registry: ProbeRegistry) -> None:
        tracers.append(SpanTracer(registry).install())

    install_global_plan(plan)
    try:
        result = experiments.run(experiment)
    finally:
        clear_global_plan()
    return result, tracers


def collect_traces(tracers: List[SpanTracer]) -> List[InvocationTrace]:
    return [trace for tracer in tracers for trace in tracer.completed]


def _cmd_report(args) -> int:
    result, tracers = run_traced(args.experiment)
    traces = collect_traces(tracers)
    if not args.quiet:
        print(result.render())
        print()
    print(analysis.render_report(traces, title=args.experiment, slowest_n=args.slowest))
    if args.json:
        document = gate_mod.build_baseline(args.experiment, traces)
        document["by_syscall"] = analysis.by_key(traces, lambda t: t.name)
        document["critical_path"] = analysis.critical_path(traces)
        with open(args.json, "w") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    if args.tef:
        with open(args.tef, "w") as fh:
            json.dump(tef_dict(tracers), fh)
        print(f"wrote {args.tef}")
    return 0 if traces else 1


def _cmd_record(args) -> int:
    for experiment in args.experiments:
        _, tracers = run_traced(experiment)
        traces = collect_traces(tracers)
        if not traces:
            print(f"error: {experiment} traced no invocations", file=sys.stderr)
            return 1
        baseline = gate_mod.build_baseline(experiment, traces)
        path = gate_mod.write_baseline(args.dir, baseline)
        print(f"recorded {experiment}: {baseline['invocations']} invocations -> {path}")
    return 0


def _cmd_gate(args) -> int:
    experiments = args.experiments or gate_mod.recorded_experiments(args.dir)
    if not experiments:
        print(f"error: no baselines under {args.dir!r}; run `record` first",
              file=sys.stderr)
        return 2
    all_passed = True
    for experiment in experiments:
        try:
            baseline = gate_mod.load_baseline(args.dir, experiment)
        except FileNotFoundError:
            print(f"error: no baseline for {experiment!r} under {args.dir!r}",
                  file=sys.stderr)
            return 2
        _, tracers = run_traced(experiment)
        current = gate_mod.build_baseline(experiment, collect_traces(tracers))
        result = gate_mod.compare(
            baseline, current, tolerance=args.tolerance, abs_ns=args.abs_ns
        )
        print(result.render())
        all_passed = all_passed and result.passed
    print("gate:", "PASS" if all_passed else "FAIL")
    return 0 if all_passed else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tracing",
        description="Per-invocation span tracing and the latency-regression gate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report_p = sub.add_parser("report", help="trace one experiment and print the analysis")
    report_p.add_argument("experiment", help="experiment name (see python -m repro.experiments)")
    report_p.add_argument("--slowest", type=int, default=5, metavar="N",
                          help="how many slowest invocations to list (default 5)")
    report_p.add_argument("--json", metavar="PATH", help="also write the stats as JSON")
    report_p.add_argument("--tef", metavar="PATH",
                          help="also write a Perfetto/chrome://tracing span trace")
    report_p.add_argument("--quiet", action="store_true",
                          help="suppress the experiment's own tables")

    record_p = sub.add_parser("record", help="record latency baselines")
    record_p.add_argument("experiments", nargs="+", metavar="EXPERIMENT")
    record_p.add_argument("--dir", default=gate_mod.DEFAULT_DIR,
                          help=f"baseline directory (default {gate_mod.DEFAULT_DIR})")

    gate_p = sub.add_parser("gate", help="compare fresh runs against recorded baselines")
    gate_p.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                        help="experiments to gate (default: every recorded baseline)")
    gate_p.add_argument("--dir", default=gate_mod.DEFAULT_DIR,
                        help=f"baseline directory (default {gate_mod.DEFAULT_DIR})")
    gate_p.add_argument("--tolerance", type=float, default=gate_mod.DEFAULT_TOLERANCE,
                        help="relative tolerance band (default 0.10)")
    gate_p.add_argument("--abs-ns", type=float, default=gate_mod.DEFAULT_ABS_NS,
                        help="absolute tolerance floor in ns (default 1.0)")

    args = parser.parse_args(argv)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "record":
        return _cmd_record(args)
    return _cmd_gate(args)
