"""The explorer: guided runs, DPOR branching, farmed frontiers.

Stateless model checking in the Verisoft/CHESS style: each explored
schedule is one *fresh, fully deterministic* run of a scenario, guided
by a sparse choice map (``{decision -> rank}``; absent decisions take
the FIFO entry).  The explorer runs the root (pure-FIFO) schedule,
reads the decisions it recorded, and branches: for each contested pop
within the depth bound and each alternative within the preemption
bound, a child schedule prefixed with that one extra choice.  Children
re-run from scratch — no simulator state is ever forked — so the whole
frontier shards over :func:`repro.runfarm.run_frontier` worker
processes, and the set of schedules visited is a pure function of the
scenario and bounds, independent of the worker count.

Pruning (DPOR with sleep sets)
------------------------------
A child that merely swaps two *commuting* steps reaches the same state
the parent already covered.  When branching away from a decision, the
parent's chosen entry is put to sleep in the child, tagged with the
footprint it had when the parent executed it (the GSan scope set, see
:mod:`repro.modelcheck.schedule`).  Inside the child, the sleeping
entry wakes as soon as any dependent step runs — the interleavings
genuinely differ, keep exploring — but if the run reaches the sleeping
entry still asleep, every step between the branch and here commuted
with it, the run is a permutation of an explored one, and it aborts as
:class:`~repro.modelcheck.schedule.SleepBlocked` (counted as pruned,
oracle skipped).  An alternative already asleep at its decision is not
branched to at all.  Unknown footprints degrade to "dependent with
everything", so imprecision costs pruning, never coverage; the
equivalence tests assert DPOR finds the same violations as exhaustive
exploration with strictly fewer runs.

The oracle on every non-pruned branch: GSan's verdict, the scenario
audit (chaos invariants / deadlock checks), and any model exception
the run raised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.syscall_area import SlotStateError
from repro.faults.plan import FaultPlan
from repro.modelcheck.schedule import (
    EffectCollector,
    GuidedTieBreak,
    SleepBlocked,
    effects_from_wire,
)
from repro.modelcheck.scenarios import build_scenario
from repro.oskernel.workqueue import DrainTimeout
from repro.runfarm import run_frontier
from repro.sim.engine import SimulationError

__all__ = ["Bounds", "ExploreReport", "explore", "run_schedule"]

#: A schedule's identity: the densified choice map as a sorted tuple.
Choices = Tuple[Tuple[int, int], ...]

#: Wire form of a sleep set: ``(seq, footprint)`` pairs, footprint
#: ``None`` (unknown) or a sorted scope tuple.
SleepWire = Tuple[Tuple[int, Optional[Tuple[str, ...]]], ...]


@dataclass(frozen=True)
class Bounds:
    """Exploration bounds: how much of the schedule space to walk.

    ``max_depth`` bounds *which* decisions may branch (the first N
    contested pops); ``max_preemptions`` bounds how many non-FIFO
    choices one schedule may stack; ``max_schedules`` bounds the total
    runs (budget truncation is deterministic: waves are sorted before
    the cut).  ``dpor=False`` disables sleep sets — exhaustive within
    the bounds — for the equivalence tests and ``--no-dpor``.
    """

    max_schedules: int = 256
    max_depth: int = 12
    max_preemptions: int = 4
    dpor: bool = True


@dataclass
class ExploreReport:
    """What one exploration covered and what it found."""

    scenario: str
    schedules: int
    blocked: int
    pruned: int
    truncated: bool
    violating: List[dict]
    visited: List[Choices] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violating

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "schedules": self.schedules,
            "blocked": self.blocked,
            "pruned": self.pruned,
            "truncated": self.truncated,
            "ok": self.ok,
            "violating": [dict(v) for v in self.violating],
        }


def run_schedule(
    scenario: str,
    choices: Union[Choices, Sequence[Sequence[int]]],
    sleep: Optional[SleepWire] = None,
    profile: Optional[str] = None,
    plan: Union[FaultPlan, dict, None] = None,
    seed: int = 0,
    record_limit: int = 64,
) -> dict:
    """One guided run of ``scenario``; returns a plain (picklable) dict.

    The result carries the oracle verdict (``violations``, ``rules``,
    ``error``, ``ok``) and the recorded ``decisions`` the explorer
    branches on.  ``blocked`` runs were pruned by a sleep set: their
    oracle is skipped (the schedule is redundant, not buggy).
    """
    built = build_scenario(scenario, profile=profile, plan=plan, seed=seed).build()
    collector = EffectCollector().install(built.registry)
    choice_map = {int(d): int(r) for d, r in choices}
    sleep_map = {int(seq): effects_from_wire(wire) for seq, wire in (sleep or ())}
    policy = GuidedTieBreak(
        choices=choice_map,
        sleep=sleep_map,
        # A sleep set is inherited at the newest branch point — the
        # largest guided decision — and dormant through the shared prefix.
        sleep_from=max(choice_map) if sleep_map and choice_map else None,
        collector=collector,
        record_limit=record_limit,
    )
    built.sim.tie_break = policy
    blocked = False
    error: Optional[str] = None
    try:
        built.execute()
    except SleepBlocked:
        blocked = True
    except (SlotStateError, SimulationError, DrainTimeout, AssertionError) as exc:
        error = f"{type(exc).__name__}: {exc}"
    policy.finalize()
    violations: List[str] = []
    rules: Dict[str, int] = {}
    if not blocked:
        for violation in built.sanitizer.finish():
            violations.append(violation.render())
        rules = built.sanitizer.rules_hit()
        try:
            audit = built.audit()
        except Exception as exc:  # a crashed machine may not audit cleanly
            audit = [f"audit-error: {type(exc).__name__}: {exc}"]
        for finding in audit:
            violations.append(finding)
            rules["invariant"] = rules.get("invariant", 0) + 1
        if error is not None:
            violations.append(f"model-error: {error}")
    return {
        "choices": tuple((int(d), int(r)) for d, r in choices),
        "blocked": blocked,
        "error": error,
        "ok": not violations and error is None and not blocked,
        "violations": violations,
        "rules": rules,
        "events": built.sanitizer.events,
        "pops": policy.pops,
        "decisions": [
            {
                "index": decision.index,
                "chosen": decision.chosen,
                "blocked": decision.blocked,
                "effect": None
                if decision.effect is None
                else tuple(sorted(decision.effect)),
                "candidates": [
                    (candidate.rank, candidate.seq, candidate.label)
                    for candidate in decision.candidates
                ],
                "sleep_at": tuple(
                    (seq, None if eff is None else tuple(sorted(eff)))
                    for seq, eff in sorted(decision.sleep_at.items())
                ),
            }
            for decision in policy.decisions
        ],
    }


# -- frontier plumbing ------------------------------------------------------
#
# Items must be picklable (they cross the runfarm process boundary) and
# keyed purely by the choice map, so the visited set is worker-count
# independent: item = (choices, sleep_wire, spec_dict).


def _item_key(item: tuple) -> tuple:
    return item[0]


def _explore_cell(item: tuple) -> dict:
    choices, sleep, spec = item
    return run_schedule(
        spec["scenario"],
        choices,
        sleep=sleep,
        profile=spec["profile"],
        plan=spec["plan"],
        seed=spec["seed"],
        record_limit=spec["record_limit"],
    )


def explore(
    scenario: str,
    profile: Optional[str] = None,
    plan: Union[FaultPlan, dict, None] = None,
    seed: int = 0,
    bounds: Bounds = Bounds(),
    workers: int = 1,
    record_limit: int = 64,
) -> ExploreReport:
    """Walk the schedule space of ``scenario`` within ``bounds``."""
    if isinstance(plan, FaultPlan):
        plan = plan.as_dict()
    spec = {
        "scenario": scenario,
        "profile": profile,
        "plan": plan,
        "seed": seed,
        "record_limit": record_limit,
    }
    pruned_children = [0]

    def expand(item: tuple, result: dict) -> List[tuple]:
        choices = item[0]
        if len(choices) >= bounds.max_preemptions:
            return []
        guided_max = max((index for index, _rank in choices), default=-1)
        children: List[tuple] = []
        for record in result["decisions"]:
            index = record["index"]
            if index <= guided_max:
                continue  # an ancestor already branched here
            if index >= bounds.max_depth:
                break
            sleep_at = {
                seq: wire for seq, wire in record["sleep_at"]
            }
            chosen_seq = record["candidates"][record["chosen"]][1]
            for rank, seq, _label in record["candidates"]:
                if rank == record["chosen"]:
                    continue
                if bounds.dpor and seq in sleep_at:
                    pruned_children[0] += 1
                    continue
                if bounds.dpor:
                    entries = dict(sleep_at)
                    if not record["blocked"]:
                        entries[chosen_seq] = record["effect"]
                    child_sleep: SleepWire = tuple(
                        (s, None if e is None else tuple(e))
                        for s, e in sorted(entries.items())
                    )
                else:
                    child_sleep = ()
                child_choices = tuple(sorted(choices + ((index, rank),)))
                children.append((child_choices, child_sleep, spec))
        return children

    results, truncated = run_frontier(
        [((), (), spec)],
        _explore_cell,
        expand,
        workers=workers,
        max_items=bounds.max_schedules,
        key=_item_key,
    )
    violating = [
        {
            "choices": list(item[0]),
            "rules": result["rules"],
            "violations": result["violations"],
            "error": result["error"],
        }
        for item, result in results
        if not result["blocked"] and not result["ok"]
    ]
    blocked_runs = sum(1 for _item, result in results if result["blocked"])
    return ExploreReport(
        scenario=scenario,
        schedules=len(results),
        blocked=blocked_runs,
        pruned=pruned_children[0] + blocked_runs,
        truncated=truncated,
        violating=violating,
        visited=[item[0] for item, _result in results],
    )
