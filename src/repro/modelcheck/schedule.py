"""Controllable scheduling: tie-break policies, step effects, sleep sets.

The engine's :attr:`~repro.sim.engine.Simulator.tie_break` hook hands a
policy every heap entry sharing the minimum timestamp.  This module
provides the two policies the model checker uses:

* :class:`FifoTieBreak` — always picks entry 0, reproducing the plain
  ``heappop`` order bit-exactly (the identity the byte-identity tests
  assert over the whole experiment suite);
* :class:`GuidedTieBreak` — replays a sparse ``{decision -> rank}``
  choice map and records a :class:`Decision` at every *contested* pop
  (more than one runnable entry tied), which is what the explorer
  branches on.

A *decision* is counted only when two or more tied entries are
actionable — an unfinished process resume or a live strong callback.
Tombstones, weak (pure-observer) wakeups, and resumes of finished
processes cannot change the simulation no matter where they pop, so
ties against them are not choice points; this keeps the branching
factor at the real concurrency, not the heap population.

Step effects and independence
-----------------------------
Dynamic partial-order reduction needs to know when two scheduler steps
*commute*.  The footprint of a step is the set of GSan protocol scopes
(``slot:N`` / ``inv:N`` / ``task:N`` / ``scan:N`` / ``wf:N``) of the
tracepoints it fired, collected by :class:`EffectCollector` between
consecutive pops — the same attribution GSan's happens-before clocks
use.  Effects are three-valued:

* :data:`PURE` (the empty frozenset) — tombstone and weak-observer
  steps, which the engine guarantees are non-perturbing;
* a non-empty frozenset — every fired event mapped to a scope;
* ``None`` — *unknown*: the step fired nothing (it may still have
  mutated shared Python state) or fired an event with no scope.
  Unknown is conservatively dependent with everything, so imprecision
  only costs pruning, never soundness.

Sleep sets ride on this: a sleeping entry (one whose schedule was
already covered by a sibling branch) is woken when a dependent step
executes; a run asked to *execute* a sleeping entry is redundant by
construction and aborts with :class:`SleepBlocked`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, NamedTuple, Optional, Tuple

from repro.probes.tracepoints import ProbeRegistry
from repro.sanitizers.gsan import SCOPE_NEUTRAL, event_scopes
from repro.sim.engine import HeapEntry, Simulator

__all__ = [
    "Candidate",
    "Decision",
    "EffectCollector",
    "Effects",
    "FifoSchedulePlan",
    "FifoTieBreak",
    "GuidedTieBreak",
    "PURE",
    "ScheduleError",
    "SleepBlocked",
    "effects_from_wire",
    "effects_to_wire",
    "independent",
]

#: A step footprint: ``None`` = unknown (dependent with everything),
#: otherwise the frozenset of protocol scopes the step touched.
Effects = Optional[FrozenSet[str]]

#: The footprint of a step that provably touches nothing.
PURE: FrozenSet[str] = frozenset()


def independent(a: Effects, b: Effects) -> bool:
    """Whether two steps with these footprints commute.

    Unknown (``None``) footprints never commute with anything; known
    footprints commute exactly when their scope sets are disjoint.
    """
    return a is not None and b is not None and not (a & b)


def effects_to_wire(effects: Effects) -> Optional[Tuple[str, ...]]:
    """Picklable/JSON-safe form: ``None`` stays ``None`` (unknown),
    a frozenset becomes a sorted tuple (empty tuple = :data:`PURE`)."""
    return None if effects is None else tuple(sorted(effects))

def effects_from_wire(wire: Optional[Tuple[str, ...]]) -> Effects:
    return None if wire is None else frozenset(wire)


class ScheduleError(RuntimeError):
    """A choice map does not fit the run it is guiding."""


class SleepBlocked(Exception):
    """The run was asked to execute a sleeping (already-covered) entry.

    Raised by :class:`GuidedTieBreak` mid-run; the explorer catches it,
    skips the oracle (the schedule is redundant, not buggy), and counts
    the run as pruned.
    """

    def __init__(self, decision: Optional[int], seq: int) -> None:
        where = f"decision {decision}" if decision is not None else "a forced pop"
        super().__init__(f"entry seq={seq} is asleep at {where}")
        self.decision = decision
        self.seq = seq


class Candidate(NamedTuple):
    """One actionable alternative at a contested pop."""

    rank: int  # position among the actionable entries, FIFO order
    seq: int  # the heap entry's global sequence number (its identity)
    label: str  # process name / callback kind, for humans


class Decision:
    """The record of one contested pop, as the explorer branches on it."""

    __slots__ = ("index", "candidates", "chosen", "sleep_at", "effect", "blocked")

    def __init__(
        self,
        index: int,
        candidates: Tuple[Candidate, ...],
        chosen: int,
        sleep_at: Dict[int, Effects],
    ) -> None:
        self.index = index
        self.candidates = candidates
        self.chosen = chosen
        #: Sleep set in force when this decision was taken: alternatives
        #: whose seq appears here need no child branch (already covered).
        self.sleep_at = sleep_at
        #: Footprint of the chosen step, filled in once it has executed.
        self.effect: Effects = None
        #: True when the chosen entry was itself asleep (run aborted).
        self.blocked = False


def _is_actionable(entry: HeapEntry) -> bool:
    """Whether popping ``entry`` can change the simulation.

    Process resumes of unfinished processes and live strong callbacks
    are actionable; tombstones, weak observers, and finished-process
    resumes are inert no matter where they pop.
    """
    _when, _seq, proc, value, _exc = entry
    if proc is not None:
        return not proc.finished
    return value.fn is not None and not value.weak


def _label(entry: HeapEntry) -> str:
    _when, _seq, proc, value, exc = entry
    if proc is not None:
        kind = "throw" if exc is not None else "resume"
        return f"{kind}:{proc.name}"
    return "callback"


class _EffectTap:
    """One tracepoint's feed into an :class:`EffectCollector` (a class,
    not a closure, mirroring GSan's observers)."""

    __slots__ = ("collector", "name")

    def __init__(self, collector: "EffectCollector", name: str) -> None:
        self.collector = collector
        self.name = name

    def __call__(self, *values: object) -> None:
        self.collector.note(self.name, values)


class EffectCollector:
    """Accumulates the protocol-scope footprint of the current step.

    Attach to every tracepoint of a registry; the tie-break policy
    drains it at each pop boundary to classify the step that just ran.
    Attaching is a pure observation — same guarantee as GSan.
    """

    def __init__(self) -> None:
        self.fired = 0
        self._scopes: set = set()
        self._unscoped = False
        self._step_fired = False

    def install(self, registry: ProbeRegistry) -> "EffectCollector":
        for name in registry.tracepoints:
            registry.attach(name, _EffectTap(self, name))
        return self

    def note(self, name: str, values: Tuple) -> None:
        self.fired += 1
        self._step_fired = True
        scopes = event_scopes(name, values)
        if scopes:
            self._scopes.update(scopes)
        elif name not in SCOPE_NEUTRAL:
            self._unscoped = True

    def take(self) -> Tuple[bool, bool, FrozenSet[str]]:
        """``(fired_anything, fired_unscoped, scopes)`` since last take."""
        out = (self._step_fired, self._unscoped, frozenset(self._scopes))
        self._step_fired = False
        self._unscoped = False
        self._scopes.clear()
        return out


class FifoTieBreak:
    """The identity policy: always pop the FIFO-first tied entry.

    Installing it must leave every run bit-identical to the default
    ``tie_break = None`` fast path — the neutrality contract the
    determinism tests assert across the whole experiment suite.
    Picklable, so it survives checkpoints and global attach plans.
    """

    def __call__(self, sim: Simulator, ready: List[HeapEntry]) -> int:
        return 0


class FifoSchedulePlan:
    """Global attach plan installing :class:`FifoTieBreak` on every
    System built while installed (``probes.install_global_plan``)."""

    def __init__(self) -> None:
        self.installed = 0

    def __call__(self, registry: ProbeRegistry) -> None:
        if registry.sim is not None:
            registry.sim.tie_break = FifoTieBreak()
            self.installed += 1


class GuidedTieBreak:
    """Replay a sparse choice map; record decisions; enforce sleep sets.

    ``choices`` maps decision index (counting contested pops only) to
    the rank of the actionable entry to pop; absent indices default to
    rank 0, i.e. FIFO.  An empty map replays the exact FIFO schedule —
    which is why certificates need no sleep machinery to replay.

    ``sleep`` maps heap-entry seq to the footprint that entry had when
    a sibling branch executed it from the same prefix.  A sleeping
    entry wakes when a dependent (or unknown) step runs; executing a
    still-sleeping entry raises :class:`SleepBlocked`.

    ``sleep_from`` is the decision index at which the sleep set comes
    into force — the branch point.  Before it, the run replays the
    parent's prefix verbatim, where the sleeping entries had not yet
    been put to sleep; enforcing (or waking) them during the prefix
    would be wrong in both directions, so the set lies dormant until
    the branch decision has been taken.
    """

    def __init__(
        self,
        choices: Optional[Dict[int, int]] = None,
        sleep: Optional[Dict[int, Effects]] = None,
        sleep_from: Optional[int] = None,
        collector: Optional[EffectCollector] = None,
        record_limit: int = 256,
    ) -> None:
        self.choices: Dict[int, int] = dict(choices or {})
        self.sleep: Dict[int, Effects] = dict(sleep or {})
        self.decisions: List[Decision] = []
        self.record_limit = record_limit
        self.pops = 0
        self._collector = collector
        self._index = 0
        self._sleep_active = sleep_from is None
        self._sleep_from = sleep_from
        self._last_inert: Optional[bool] = None  # kind of the running step
        self._pending: Optional[Decision] = None  # decision awaiting effect

    # -- step accounting ------------------------------------------------

    def _close_step(self) -> None:
        """Classify the step that ran since the previous pop: assign its
        footprint to the decision that chose it and wake sleepers."""
        if self._collector is None:
            return
        fired, unscoped, scopes = self._collector.take()
        inert = self._last_inert
        self._last_inert = None
        if inert is None:
            return  # nothing ran yet (pre-run setup fires are discarded)
        if inert:
            effect: Effects = PURE
        elif unscoped or not fired:
            effect = None
        else:
            effect = scopes
        if self._pending is not None:
            self._pending.effect = effect
            self._pending = None
        if self.sleep and self._sleep_active:
            if effect is None:
                self.sleep.clear()
            else:
                for seq in [
                    seq
                    for seq, asleep in self.sleep.items()
                    if not independent(effect, asleep)
                ]:
                    del self.sleep[seq]

    def finalize(self) -> None:
        """Account for the final step once the run has drained."""
        self._close_step()

    # -- the policy ------------------------------------------------------

    def __call__(self, sim: Simulator, ready: List[HeapEntry]) -> int:
        self._close_step()
        self.pops += 1
        actionable = [
            index for index, entry in enumerate(ready) if _is_actionable(entry)
        ]
        if len(actionable) <= 1:
            choice = 0
            if actionable and actionable[0] == 0 and self._sleep_active:
                seq = ready[0][1]
                if seq in self.sleep:
                    # The sole runnable step is asleep: the entire
                    # continuation was covered by a sibling branch.
                    raise SleepBlocked(None, seq)
        else:
            index = self._index
            self._index += 1
            if self._sleep_from is not None and index == self._sleep_from:
                self._sleep_active = True
            rank = self.choices.get(index, 0)
            if not 0 <= rank < len(actionable):
                raise ScheduleError(
                    f"decision {index}: choice map wants rank {rank} but only "
                    f"{len(actionable)} entries are actionable"
                )
            choice = actionable[rank]
            record: Optional[Decision] = None
            if len(self.decisions) < self.record_limit:
                record = Decision(
                    index,
                    tuple(
                        Candidate(r, ready[i][1], _label(ready[i]))
                        for r, i in enumerate(actionable)
                    ),
                    rank,
                    dict(self.sleep),
                )
                self.decisions.append(record)
            seq = ready[choice][1]
            if self._sleep_active and seq in self.sleep:
                if record is not None:
                    record.blocked = True
                raise SleepBlocked(index, seq)
            self._pending = record
        self._last_inert = not _is_actionable(ready[choice])
        return choice
