"""GMC: schedule-space model checking of the slot protocol.

The reproduction's runs are deterministic: the event heap breaks
same-timestamp ties FIFO, so every test sees exactly one interleaving
of the paper's lock-free slot protocol.  GSan (:mod:`repro.sanitizers`)
checks that one interleaving deeply — but a bug that needs the *other*
order of two tied events is invisible to any single run.  GMC closes
that gap with stateless model checking in the Verisoft/CHESS style:

* the engine's :attr:`~repro.sim.engine.Simulator.tie_break` hook makes
  the schedule controllable without perturbing the default (FIFO stays
  bit-identical across the whole experiment suite);
* the explorer (:mod:`repro.modelcheck.explore`) enumerates tie-break
  choices up to depth/preemption bounds, pruning commuting reorderings
  with sleep-set DPOR driven by GSan's own happens-before scope
  attribution;
* GSan plus the chaos invariants act as the oracle on every branch,
  composing with seeded :class:`~repro.faults.plan.FaultPlan`\\ s so
  schedules and fault points are explored jointly;
* violating schedules shrink to minimal, replayable certificates
  (:mod:`repro.modelcheck.certificate`), and frontiers shard over
  :func:`repro.runfarm.run_frontier` worker processes without changing
  the set of schedules visited.

CLI: ``python -m repro.modelcheck {explore,corpus,replay,scenarios}``.
"""

from repro.modelcheck.certificate import (
    densify,
    load_certificate,
    make_certificate,
    replay,
    save_certificate,
    shrink,
)
from repro.modelcheck.corpus import ORDERING_BUGS, OrderingBug, check_corpus
from repro.modelcheck.explore import Bounds, ExploreReport, explore, run_schedule
from repro.modelcheck.scenarios import build_scenario, scenario_names
from repro.modelcheck.schedule import (
    EffectCollector,
    FifoSchedulePlan,
    FifoTieBreak,
    GuidedTieBreak,
    ScheduleError,
    SleepBlocked,
    independent,
)

__all__ = [
    "Bounds",
    "EffectCollector",
    "ExploreReport",
    "FifoSchedulePlan",
    "FifoTieBreak",
    "GuidedTieBreak",
    "ORDERING_BUGS",
    "OrderingBug",
    "ScheduleError",
    "SleepBlocked",
    "build_scenario",
    "check_corpus",
    "densify",
    "explore",
    "independent",
    "load_certificate",
    "make_certificate",
    "replay",
    "run_schedule",
    "save_certificate",
    "scenario_names",
    "shrink",
]
