"""Replayable schedule certificates: serialize, shrink, replay.

A certificate is the complete recipe for reproducing one explored
schedule: the scenario name, the exact fault plan (embedded as a
document, not a profile reference, so replays survive profile
retuning), and the densified choice map.  Replay needs no sleep-set
machinery — a choice map plus FIFO continuation is fully
deterministic — so a certificate written by a 4-worker farmed
exploration replays byte-identically in a bare interpreter:

    python -m repro.modelcheck replay gmc_certs/lost-doorbell.json

Violating schedules are *shrunk* before certification: greedy
1-minimal reduction, repeatedly dropping any single choice whose
removal still reproduces one of the target rules.  The corpus bugs
shrink to a single choice — the one reordered pop that is the bug.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.modelcheck.explore import run_schedule

__all__ = [
    "CERT_FORMAT",
    "CERT_VERSION",
    "densify",
    "load_certificate",
    "make_certificate",
    "render_certificate",
    "replay",
    "save_certificate",
    "shrink",
]

CERT_FORMAT = "gmc-certificate"
CERT_VERSION = 1

Choices = Tuple[Tuple[int, int], ...]


def densify(choices: Iterable[Sequence[int]]) -> Choices:
    """Canonical form: drop rank-0 (FIFO) entries, sort by decision."""
    return tuple(
        sorted((int(d), int(r)) for d, r in choices if int(r) != 0)
    )


def make_certificate(
    scenario: str,
    choices: Iterable[Sequence[int]],
    plan: Optional[dict] = None,
    profile: Optional[str] = None,
    seed: int = 0,
    rules: Optional[Dict[str, int]] = None,
    violations: Optional[List[str]] = None,
) -> dict:
    """Build a certificate document (plain dict, JSON-serializable).

    ``plan`` is the exact fault-plan document
    (:meth:`~repro.faults.plan.FaultPlan.as_dict`); ``profile`` is
    recorded as provenance only — replay uses the embedded plan.
    """
    return {
        "format": CERT_FORMAT,
        "version": CERT_VERSION,
        "scenario": scenario,
        "choices": [list(pair) for pair in densify(choices)],
        "plan": plan,
        "profile": profile,
        "seed": seed,
        "rules": dict(rules or {}),
        "violations": list(violations or []),
    }


def save_certificate(cert: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(cert, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_certificate(path: str) -> dict:
    with open(path) as fh:
        cert = json.load(fh)
    if not isinstance(cert, dict) or cert.get("format") != CERT_FORMAT:
        raise ValueError(f"{path}: not a {CERT_FORMAT} document")
    if cert.get("version") != CERT_VERSION:
        raise ValueError(
            f"{path}: certificate version {cert.get('version')}, "
            f"this build reads v{CERT_VERSION}"
        )
    return cert


def replay(cert: Union[dict, str]) -> dict:
    """Re-run a certificate's schedule; returns the run-result dict.

    Accepts a loaded document or a path.  The replay is guided purely
    by the choice map (no sleep sets), so two replays of one
    certificate produce byte-identical tracepoint streams — the
    determinism contract ``tests/test_modelcheck_determinism.py``
    asserts.
    """
    if isinstance(cert, str):
        cert = load_certificate(cert)
    return run_schedule(
        cert["scenario"],
        densify(cert["choices"]),
        plan=cert.get("plan"),
        seed=int(cert.get("seed", 0)),
    )


def shrink(
    scenario: str,
    choices: Iterable[Sequence[int]],
    must_hit: Iterable[str],
    plan: Optional[dict] = None,
    seed: int = 0,
) -> Tuple[Choices, int]:
    """Greedy 1-minimal shrink: drop choices while the bug reproduces.

    A candidate reproduces when a fresh guided run still hits at least
    one of the ``must_hit`` GSan rules.  Returns the shrunk choice map
    (1-minimal: removing any single remaining choice loses the bug)
    and the number of reduction runs spent.
    """
    target = set(must_hit)
    if not target:
        raise ValueError("shrink needs at least one rule to preserve")

    def reproduces(candidate: Choices) -> bool:
        result = run_schedule(scenario, candidate, plan=plan, seed=seed)
        return not result["blocked"] and any(
            rule in result["rules"] for rule in target
        )

    current = densify(choices)
    if not reproduces(current):
        raise ValueError(
            f"schedule does not reproduce any of {sorted(target)} on "
            f"{scenario!r}; nothing to shrink"
        )
    attempts = 1
    changed = True
    while changed:
        changed = False
        for index in range(len(current)):
            trial = current[:index] + current[index + 1 :]
            attempts += 1
            if reproduces(trial):
                current = trial
                changed = True
                break
    return current, attempts


def render_certificate(cert: dict, result: Optional[dict] = None) -> str:
    """Human-readable certificate summary (+ replay verdict if given)."""
    lines = [
        f"GMC certificate: scenario {cert['scenario']!r}",
        f"  choices: "
        + (
            ", ".join(f"decision {d} -> rank {r}" for d, r in cert["choices"])
            or "(pure FIFO)"
        ),
    ]
    if cert.get("profile") or cert.get("plan"):
        lines.append(
            f"  fault plan: embedded"
            + (f" (from profile {cert['profile']!r})" if cert.get("profile") else "")
        )
    if cert.get("rules"):
        lines.append(
            "  rules: "
            + ", ".join(f"{k}={v}" for k, v in sorted(cert["rules"].items()))
        )
    if result is not None:
        lines.append("")
        lines.append("replayed verdict:")
        for violation in result["violations"]:
            lines.append(violation)
    return "\n".join(lines)
