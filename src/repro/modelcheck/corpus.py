"""Seeded ordering bugs that single-schedule GSan provably misses.

The GSan corpus (:mod:`repro.sanitizers.corpus`) seeds bugs that are
visible on *the* schedule a deterministic run produces.  This corpus
seeds the complementary class: bugs that are invisible on the FIFO
schedule — the sanitizer attaches, watches the whole run, and reports
a clean bill — and only fire when two same-timestamp events are taken
in the other order.  Each entry is therefore a proof obligation in two
halves, asserted by ``tests/test_modelcheck_corpus.py`` and the CI
corpus gate:

* ``run_schedule(bug, choices=())`` — the FIFO schedule — is clean;
* ``explore(bug)`` finds a schedule on which GSan flags
  ``expected_rule``, and shrinking yields a minimal replayable
  certificate.

The bugs are the classic weak-memory/interrupt races of the paper's
protocol, expressed as *scheduling* races between same-timestamp
callbacks (the discrete-event analogue of an unfenced store pair):

* ``ready-publish-race`` — the READY publish is issued concurrently
  with the payload write instead of after it (a missing release
  fence): reordered, the CPU-visible READY precedes the request.
* ``lost-doorbell`` — doorbell coalescing tests the scan-live flag
  without re-checking after the scan's clearing store: reordered, a
  publish lands in the window and its wakeup is swallowed.
* ``watchdog-finish-race`` — a worker publishes its completion before
  the slot-state swap and finishes without the stale-finish guard:
  reordered against the watchdog's staleness check, the invocation
  completes twice.
"""

from __future__ import annotations

from typing import Callable, List

from repro.core.invocation import SyscallRequest
from repro.core.syscall_area import SlotState, SyscallArea
from repro.machine import small_machine
from repro.memory.system import MemorySystem
from repro.oskernel.process import OsProcess
from repro.probes.tracepoints import ProbeRegistry
from repro.sanitizers.gsan import GSan
from repro.sim.engine import Simulator

from repro.modelcheck.scenarios import ScenarioRun, deadlock_audit

__all__ = ["ORDERING_BUGS", "OrderingBug", "check_bug", "check_corpus"]


class OrderingBug:
    """One seeded schedule-sensitive bug and the rule that catches it."""

    __slots__ = ("name", "description", "expected_rule", "build")

    def __init__(
        self,
        name: str,
        description: str,
        expected_rule: str,
        build: Callable[[], ScenarioRun],
    ) -> None:
        self.name = name
        self.description = description
        self.expected_rule = expected_rule
        self.build = build


def _fixture() -> tuple:
    sim = Simulator()
    config = small_machine()
    registry = ProbeRegistry(sim)
    area = SyscallArea(sim, config, MemorySystem(sim, config), probes=registry)
    return sim, registry, area


def _build_ready_publish_race() -> ScenarioRun:
    # The GPU lane claims a slot, then issues the payload write and the
    # READY publish as two independently scheduled stores (both land at
    # t=15) instead of ordering the publish after the write — the
    # missing release fence.  FIFO happens to run them write-first.
    sim, registry, area = _fixture()
    sanitizer = GSan().install(registry)
    slot = area.slot_for(0, 0)
    request = SyscallRequest("getrusage", (), False, OsProcess(sim, "wi0"))

    def gpu():
        yield 10
        assert slot.try_claim()
        sim.call_later(5, lambda: slot.populate(request))
        sim.call_later(5, slot.set_ready)

    def cpu_scan():
        yield 20
        if slot.state is SlotState.READY:
            slot.start_processing()
            slot.finish(0)

    procs = [
        sim.process(gpu(), name="gpu-lane"),
        sim.process(cpu_scan(), name="cpu-scan"),
    ]

    def audit() -> List[str]:
        return deadlock_audit(procs)

    return ScenarioRun(sim, registry, sanitizer, sim.run, audit)


def _build_lost_doorbell() -> ScenarioRun:
    # Doorbell coalescing: a ring while a scan is live is dropped on
    # the assumption the live scan will see the new slot.  The scan
    # clears its live flag with a *scheduled* store, so a ring that
    # ties with the clearing store races it — reordered, the ring sees
    # the flag still up, coalesces, and nobody ever scans the slot.
    sim, registry, area = _fixture()
    tp_halt = registry.tracepoint(
        "wavefront.halt",
        ("hw_id", "live_lanes"),
        "a wavefront parked awaiting its syscall completion",
    )
    tp_resume = registry.tracepoint(
        "wavefront.resume",
        ("hw_id", "halted_ns"),
        "a parked wavefront woke up",
    )
    sanitizer = GSan().install(registry)
    scan_live = [False]

    def clear() -> None:
        scan_live[0] = False

    def sweep() -> None:
        scan_live[0] = True
        for slot in area.materialized():
            if slot.state is SlotState.READY:
                slot.start_processing()
                slot.finish(0)
        sim.call_later(6, clear)

    def ring() -> None:
        # BUG: no re-check after the clearing store; a publish that
        # landed after the sweep's pass is silently coalesced away.
        if scan_live[0]:
            return
        sim.call_later(2, sweep)

    def wavefront(hw_id: int, start: float):
        def body():
            yield start
            slot = area.slot_for(hw_id, 0)
            assert slot.try_claim()
            slot.populate(
                SyscallRequest("getrusage", (), True, OsProcess(sim, f"wf{hw_id}"))
            )
            slot.set_ready()
            halted_at = sim.now
            if tp_halt.enabled:
                tp_halt.fire(hw_id, 1)
            sim.call_later(2, ring)
            yield slot.completion
            if tp_resume.enabled:
                tp_resume.fire(hw_id, sim.now - halted_at)
            slot.consume()

        return body()

    procs = [
        sim.process(wavefront(0, 10), name="wf0"),
        sim.process(wavefront(1, 18), name="wf1"),
    ]

    def audit() -> List[str]:
        return deadlock_audit(procs)

    return ScenarioRun(sim, registry, sanitizer, sim.run, audit)


def _build_watchdog_finish_race() -> ScenarioRun:
    # The worker publishes ``syscall.complete`` *before* the slot-state
    # swap and finishes without the stale-finish guard (no ``expected``
    # request).  The watchdog's staleness check ties with the worker's
    # resume: reordered, the watchdog reclaims the slot first and the
    # worker's completion lands on top — a double completion the guard
    # exists to refuse.
    sim, registry, area = _fixture()
    tp_claim = registry.tracepoint(
        "syscall.claim",
        ("invocation_id", "name", "hw_id", "lane", "granularity", "blocking", "wait"),
        "a lane claimed a slot for an invocation",
    )
    tp_submit = registry.tracepoint(
        "syscall.submit",
        ("granularity", "invocation_id", "name", "hw_id", "blocking"),
        "an invocation's READY publish was accounted",
    )
    tp_dispatch = registry.tracepoint(
        "syscall.dispatch",
        ("name", "hw_id", "invocation_id"),
        "a CPU worker started executing an invocation",
    )
    tp_complete = registry.tracepoint(
        "syscall.complete",
        ("name", "hw_id", "service_ns", "invocation_id", "blocking"),
        "a CPU worker published an invocation's completion",
    )
    tp_resume = registry.tracepoint(
        "syscall.resume",
        ("invocation_id", "name", "hw_id"),
        "a blocked caller resumed after its completion",
    )
    tp_reclaim = registry.tracepoint(
        "recover.slot_reclaim",
        ("invocation_id", "name", "slot_index", "was_state"),
        "the watchdog forced a stuck slot to completion",
    )
    sanitizer = GSan().install(registry)
    slot = area.slot_for(0, 0)
    dispatched_at = [0.0]

    def gpu():
        yield 10
        assert slot.try_claim()
        slot.populate(SyscallRequest("getrusage", (), True, OsProcess(sim, "wf0")))
        if tp_claim.enabled:
            tp_claim.fire(1, "getrusage", 0, 0, "work-item", True, "halt_resume")
        slot.set_ready()
        if tp_submit.enabled:
            tp_submit.fire("work-item", 1, "getrusage", 0, True)
        yield slot.completion
        if tp_resume.enabled:
            tp_resume.fire(1, "getrusage", 0)
        slot.consume()

    def worker():
        yield 20
        slot.start_processing()
        dispatched_at[0] = sim.now
        if tp_dispatch.enabled:
            tp_dispatch.fire("getrusage", 0, 1)
        yield 10
        # BUG: completion published before the state swap, and the
        # finish carries no expected-request guard to refuse going
        # stale — the two halves of the defended race both removed.
        if tp_complete.enabled:
            tp_complete.fire("getrusage", 0, sim.now - dispatched_at[0], 1, True)
        slot.finish(0)

    def check() -> None:
        if slot.state is SlotState.PROCESSING:
            if tp_reclaim.enabled:
                tp_reclaim.fire(1, "getrusage", slot.index, slot.state.value)
            slot.reclaim(-110)

    def watchdog():
        yield 25
        sim.call_later(5, check)

    procs = [
        sim.process(gpu(), name="gpu-lane"),
        sim.process(worker(), name="cpu-worker"),
        sim.process(watchdog(), name="watchdog"),
    ]

    def audit() -> List[str]:
        return deadlock_audit(procs)

    return ScenarioRun(sim, registry, sanitizer, sim.run, audit)


ORDERING_BUGS: List[OrderingBug] = [
    OrderingBug(
        "ready-publish-race",
        "READY publish scheduled concurrently with the payload write "
        "(missing release fence): reordered, READY precedes the request",
        "protocol-error",
        _build_ready_publish_race,
    ),
    OrderingBug(
        "lost-doorbell",
        "doorbell coalescing without a re-check after the scan-live "
        "clearing store: a publish in the window loses its wakeup",
        "lost-wakeup",
        _build_lost_doorbell,
    ),
    OrderingBug(
        "watchdog-finish-race",
        "completion published before the state swap with the stale-finish "
        "guard removed: racing the watchdog completes the invocation twice",
        "duplicate-completion",
        _build_watchdog_finish_race,
    ),
]


def check_bug(bug: OrderingBug, workers: int = 1) -> dict:
    """Run the two-halves proof for one bug; returns a report dict.

    FIFO must be clean, exploration must find ``expected_rule``, and
    the shrunk certificate must still reproduce it on replay.
    """
    from repro.modelcheck.certificate import make_certificate, shrink
    from repro.modelcheck.explore import Bounds, explore, run_schedule

    fifo = run_schedule(bug.name, ())
    fifo_clean = (
        not fifo["violations"] and fifo["error"] is None and not fifo["blocked"]
    )
    report = explore(bug.name, bounds=Bounds(max_schedules=256), workers=workers)
    hits = [
        finding
        for finding in report.violating
        if bug.expected_rule in finding["rules"]
    ]
    out = {
        "bug": bug.name,
        "expected_rule": bug.expected_rule,
        "fifo_clean": fifo_clean,
        "found": bool(hits),
        "schedules": report.schedules,
        "pruned": report.pruned,
        "certificate": None,
    }
    if hits:
        shrunk, attempts = shrink(
            bug.name, hits[0]["choices"], {bug.expected_rule}
        )
        replayed = run_schedule(bug.name, shrunk)
        out["shrink_attempts"] = attempts
        out["replay_hits_rule"] = bug.expected_rule in replayed["rules"]
        out["certificate"] = make_certificate(
            bug.name,
            shrunk,
            rules=replayed["rules"],
            violations=replayed["violations"],
        )
    return out


def check_corpus(workers: int = 1) -> List[dict]:
    """The CI gate body: :func:`check_bug` over every seeded bug."""
    return [check_bug(bug, workers=workers) for bug in ORDERING_BUGS]
