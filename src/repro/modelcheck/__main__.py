import sys

from repro.modelcheck.cli import main

if __name__ == "__main__":
    sys.exit(main())
