"""What one explored schedule runs: scenario builders and oracles.

A *scenario* is a recipe for one deterministic run of the slot
protocol: build a fresh machine (or micro-fixture), wire a GSan
sanitizer into its probe registry, execute a workload body, and audit
the end state.  The explorer re-builds the scenario once per schedule,
so every branch starts from a virgin machine and the only varying
input is the tie-break choice map.

Three families are registered:

* the chaos workloads (``fig2``, ``grep``, ``memcached``, …) — full
  :class:`~repro.system.System` machines running the same scenario
  bodies the chaos harness uses, optionally under a seeded
  :class:`~repro.faults.plan.FaultPlan` so schedules and fault points
  are explored *jointly*;
* the seeded ordering bugs of :mod:`repro.modelcheck.corpus` — micro
  slot-protocol fixtures whose bug only fires on a reordered schedule;
* micro structure scenarios defined here (``slot-commute``) — correct
  protocol fixtures with a known schedule-space shape, used to pin
  down explorer behaviour (e.g. that DPOR actually prunes commuting
  reorderings of fully-instrumented, disjoint-slot steps).

The oracle for every branch is the union of GSan's verdict, the chaos
invariants (for workload scenarios), per-scenario deadlock checks, and
any model exception the run raised.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

from repro.faults.chaos import (
    DEFAULT_DRAIN_TIMEOUT_NS,
    EXPERIMENTS,
    PROFILES,
    check_invariants,
    run_scenario,
)
from repro.faults.plan import FaultPlan, install_plan
from repro.probes.tracepoints import ProbeRegistry
from repro.sanitizers.gsan import GSan
from repro.sim.engine import Process, Simulator

__all__ = [
    "ModelScenario",
    "ScenarioRun",
    "build_scenario",
    "resolve_plan",
    "scenario_names",
]


class ScenarioRun:
    """One built scenario instance, ready to run under a policy."""

    __slots__ = ("sim", "registry", "sanitizer", "_body", "_audit")

    def __init__(
        self,
        sim: Simulator,
        registry: ProbeRegistry,
        sanitizer: GSan,
        body: Callable[[], object],
        audit: Optional[Callable[[], List[str]]] = None,
    ) -> None:
        self.sim = sim
        self.registry = registry
        self.sanitizer = sanitizer
        self._body = body
        self._audit = audit

    def execute(self) -> object:
        """Run the workload body (may raise model errors)."""
        return self._body()

    def audit(self) -> List[str]:
        """Scenario-specific end-state findings beyond GSan's."""
        return self._audit() if self._audit is not None else []


class ModelScenario:
    """A named, repeatable scenario recipe."""

    __slots__ = ("name", "description", "_build")

    def __init__(
        self, name: str, description: str, build: Callable[[], ScenarioRun]
    ) -> None:
        self.name = name
        self.description = description
        self._build = build

    def build(self) -> ScenarioRun:
        """A fresh instance: new machine, new sanitizer, virgin clocks."""
        _reset_identity_counters()
        return self._build()


def _reset_identity_counters() -> None:
    """Model checking is *stateless*: every explored schedule re-runs
    its scenario from scratch, and a certificate's streams must be
    byte-identical no matter how many runs preceded it in the process.
    The simulated OS hands out pids, inode numbers, socket ids, and
    kernel ids from class-level counters (continued across checkpoints
    by ``repro.sim.snapshot``); left alone they accumulate across
    in-process runs and leak schedule-independent noise into tracepoint
    streams (``net.backlog``'s ``sock_id``, for one).  Rewind them to
    their import-time values so each build really is a virgin world.
    """
    from repro.gpu.hierarchy import KernelInstance
    from repro.oskernel.fs import Inode
    from repro.oskernel.net import UdpSocket
    from repro.oskernel.process import OsProcess

    Inode._next_ino = 1
    UdpSocket._next_id = 0
    OsProcess._next_pid = 100
    KernelInstance._next_id = 0


def deadlock_audit(procs: Sequence[Process]) -> List[str]:
    """The micro-scenario liveness oracle: every spawned process must
    have finished once the heap drained."""
    return [
        f"deadlock: process {proc.name!r} never finished"
        for proc in procs
        if not proc.finished
    ]


def resolve_plan(
    profile: Optional[str] = None,
    plan: Union[FaultPlan, dict, None] = None,
    seed: int = 0,
) -> Optional[FaultPlan]:
    """The fault plan a scenario runs under, if any.

    ``plan`` (a :class:`FaultPlan` or its ``as_dict`` document — the
    form certificates embed) wins over ``profile`` (a chaos profile
    name, seeded with ``seed``).  The resolved plan is exact: replaying
    a certificate re-creates the identical fault schedule.
    """
    if plan is not None:
        if isinstance(plan, dict):
            return FaultPlan.from_dict(plan)
        return plan
    if profile is not None:
        if profile not in PROFILES:
            raise KeyError(
                f"unknown fault profile {profile!r}; "
                f"choose from {sorted(PROFILES)}"
            )
        return PROFILES[profile].with_seed(seed)
    return None


def _build_workload(name: str, plan: Optional[FaultPlan]) -> ScenarioRun:
    from repro.system import System

    system = System()
    system.drain_timeout_ns = DEFAULT_DRAIN_TIMEOUT_NS
    sanitizer = GSan().install(system.probes)
    if plan is not None:
        install_plan(plan, system.probes)

    def body() -> object:
        return run_scenario(name, system)

    def audit() -> List[str]:
        return check_invariants(system)

    return ScenarioRun(system.sim, system.probes, sanitizer, body, audit)


def _workload_scenario(name: str, plan: Optional[FaultPlan]) -> ModelScenario:
    return ModelScenario(
        name,
        f"chaos scenario {name!r} on a fresh System"
        + (" under a seeded fault plan" if plan is not None else ""),
        lambda: _build_workload(name, plan),
    )


def _build_slot_commute() -> ScenarioRun:
    # Correct protocol on two *independent* slots, every step a fully
    # tracepoint-instrumented callback.  The two publishes tie, and the
    # two services tie; each pair commutes (disjoint slot scopes), so
    # DPOR must prune both swapped schedules as sleep-blocked — the
    # positive pruning case the explorer tests pin down.
    from repro.core.invocation import SyscallRequest
    from repro.core.syscall_area import SlotState, SyscallArea
    from repro.machine import small_machine
    from repro.memory.system import MemorySystem
    from repro.oskernel.process import OsProcess

    sim = Simulator()
    config = small_machine()
    registry = ProbeRegistry(sim)
    area = SyscallArea(sim, config, MemorySystem(sim, config), probes=registry)
    sanitizer = GSan().install(registry)
    slots = [area.slot_for(hw_id, 0) for hw_id in (0, 1)]
    requests = [
        SyscallRequest("getrusage", (), False, OsProcess(sim, f"wi{hw_id}"))
        for hw_id in (0, 1)
    ]

    def publish(which: int) -> Callable[[], None]:
        def fire() -> None:
            assert slots[which].try_claim()
            slots[which].populate(requests[which])
            slots[which].set_ready()

        return fire

    def service(which: int) -> Callable[[], None]:
        def fire() -> None:
            if slots[which].state is SlotState.READY:
                slots[which].start_processing()
                slots[which].finish(0)

        return fire

    def driver():
        yield 10
        sim.call_later(5, publish(0))
        sim.call_later(5, publish(1))
        yield 10
        sim.call_later(5, service(0))
        sim.call_later(5, service(1))

    procs = [sim.process(driver(), name="driver")]

    def audit() -> List[str]:
        return deadlock_audit(procs)

    return ScenarioRun(sim, registry, sanitizer, sim.run, audit)


MICRO_SCENARIOS: List[ModelScenario] = [
    ModelScenario(
        "slot-commute",
        "correct two-slot protocol whose tied steps all commute: the "
        "DPOR positive-pruning case",
        _build_slot_commute,
    ),
]


def build_scenario(
    name: str,
    profile: Optional[str] = None,
    plan: Union[FaultPlan, dict, None] = None,
    seed: int = 0,
) -> ModelScenario:
    """Resolve a scenario by name: a chaos workload, a corpus bug, or a
    micro structure scenario."""
    resolved = resolve_plan(profile=profile, plan=plan, seed=seed)
    if name in EXPERIMENTS:
        return _workload_scenario(name, resolved)
    from repro.modelcheck.corpus import ORDERING_BUGS

    micro = list(MICRO_SCENARIOS) + [
        ModelScenario(bug.name, bug.description, bug.build)
        for bug in ORDERING_BUGS
    ]
    for scenario in micro:
        if scenario.name == name:
            if resolved is not None:
                raise ValueError(
                    f"micro scenario {name!r} takes no fault plan: its "
                    f"behaviour is fixed by the scenario body itself"
                )
            return scenario
    raise KeyError(
        f"unknown scenario {name!r}; choose from {', '.join(scenario_names())}"
    )


def scenario_names() -> List[str]:
    from repro.modelcheck.corpus import ORDERING_BUGS

    return (
        list(EXPERIMENTS)
        + [scenario.name for scenario in MICRO_SCENARIOS]
        + [bug.name for bug in ORDERING_BUGS]
    )
