"""``python -m repro.modelcheck`` — the GPU model checker (GMC).

Subcommands:

``explore``
    Walk the schedule space of one scenario within depth/preemption/
    budget bounds (optionally under a fault profile, so schedules and
    fault points are explored jointly).  Prints a coverage summary;
    exits 1 and writes certificates if any schedule violates.

``corpus``
    The seeded ordering-bug gate: for each bug, assert the FIFO
    schedule is GSan-clean, that exploration finds the expected rule,
    and that the shrunk certificate replays.  Writes the minimal
    certificates; exits 1 if any bug is missed.

``replay``
    Re-run a certificate and print the violation timeline.

Examples::

    python -m repro.modelcheck explore --scenario fig2 --profile fig2 \\
        --schedules 64 --depth 8 --workers 4
    python -m repro.modelcheck corpus --cert-dir gmc_certs
    python -m repro.modelcheck replay gmc_certs/lost-doorbell.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.modelcheck.certificate import (
    make_certificate,
    render_certificate,
    replay,
    save_certificate,
    shrink,
)
from repro.modelcheck.corpus import check_corpus
from repro.modelcheck.explore import Bounds, explore
from repro.modelcheck.scenarios import resolve_plan, scenario_names


def _write_cert(cert: dict, cert_dir: str, stem: str) -> str:
    os.makedirs(cert_dir, exist_ok=True)
    path = os.path.join(cert_dir, f"{stem}.json")
    save_certificate(cert, path)
    return path


def _cmd_explore(args: argparse.Namespace) -> int:
    plan = resolve_plan(profile=args.profile, seed=args.seed)
    plan_doc = plan.as_dict() if plan is not None else None
    bounds = Bounds(
        max_schedules=args.schedules,
        max_depth=args.depth,
        max_preemptions=args.preemptions,
        dpor=not args.no_dpor,
    )
    report = explore(
        args.scenario,
        plan=plan_doc,
        seed=args.seed,
        bounds=bounds,
        workers=args.workers,
    )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(
            f"gmc explore {args.scenario}: {report.schedules} schedule(s) "
            f"visited, {report.pruned} pruned"
            f"{' (budget truncated)' if report.truncated else ''}, "
            f"{len(report.violating)} violating"
        )
    if not report.violating:
        return 0
    for number, finding in enumerate(report.violating):
        cert = make_certificate(
            args.scenario,
            finding["choices"],
            plan=plan_doc,
            profile=args.profile,
            seed=args.seed,
            rules=finding["rules"],
            violations=finding["violations"],
        )
        if args.shrink:
            rules = set(finding["rules"])
            if rules:
                shrunk, _attempts = shrink(
                    args.scenario, finding["choices"], rules,
                    plan=plan_doc, seed=args.seed,
                )
                cert["choices"] = [list(pair) for pair in shrunk]
        path = _write_cert(cert, args.cert_dir, f"{args.scenario}-{number}")
        if not args.json:
            print(f"violating schedule -> {path}")
            for line in finding["violations"]:
                print(line)
    return 1


def _cmd_corpus(args: argparse.Namespace) -> int:
    reports = check_corpus(workers=args.workers)
    ok = True
    for report in reports:
        passed = (
            report["fifo_clean"]
            and report["found"]
            and report.get("replay_hits_rule", False)
        )
        ok = ok and passed
        if report["certificate"] is not None:
            path = _write_cert(
                report["certificate"], args.cert_dir, report["bug"]
            )
            report["certificate_path"] = path
        if not args.json:
            status = "ok  " if passed else "FAIL"
            print(
                f"{status} {report['bug']}: fifo_clean={report['fifo_clean']} "
                f"found={report['found']} rule={report['expected_rule']} "
                f"schedules={report['schedules']} pruned={report['pruned']}"
            )
            if report["certificate"] is not None:
                choices = report["certificate"]["choices"]
                print(
                    f"     minimal certificate ({len(choices)} choice(s)) "
                    f"-> {report.get('certificate_path', '(unwritten)')}"
                )
    if args.json:
        print(json.dumps({"bugs": reports, "ok": ok}, indent=2))
    elif ok:
        print(
            f"gmc corpus: {len(reports)}/{len(reports)} seeded ordering bugs "
            f"found with minimal replayable certificates"
        )
    return 0 if ok else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.modelcheck.certificate import load_certificate

    cert = load_certificate(args.certificate)
    result = replay(cert)
    if args.json:
        out = dict(result)
        out["choices"] = [list(pair) for pair in out["choices"]]
        print(json.dumps(out, indent=2, default=str))
    else:
        print(render_certificate(cert, result))
    return 0 if not result["ok"] else 2  # 0: bug reproduced; 2: clean run


def _cmd_scenarios(args: argparse.Namespace) -> int:
    for name in scenario_names():
        print(name)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.modelcheck",
        description="GMC: schedule-space model checking of the slot protocol",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("explore", help="walk a scenario's schedule space")
    exp.add_argument("--scenario", required=True)
    exp.add_argument("--profile", default=None, help="chaos fault profile name")
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument("--schedules", type=int, default=256, help="run budget")
    exp.add_argument("--depth", type=int, default=12, help="branchable decisions")
    exp.add_argument("--preemptions", type=int, default=4)
    exp.add_argument("--workers", type=int, default=1)
    exp.add_argument("--no-dpor", action="store_true", help="disable pruning")
    exp.add_argument("--no-shrink", dest="shrink", action="store_false")
    exp.add_argument("--cert-dir", default="gmc_certs")
    exp.add_argument("--json", action="store_true")
    exp.set_defaults(fn=_cmd_explore)

    corpus = sub.add_parser(
        "corpus", help="prove every seeded ordering bug is found"
    )
    corpus.add_argument("--workers", type=int, default=1)
    corpus.add_argument("--cert-dir", default="gmc_certs")
    corpus.add_argument("--json", action="store_true")
    corpus.set_defaults(fn=_cmd_corpus)

    rep = sub.add_parser("replay", help="re-run a schedule certificate")
    rep.add_argument("certificate", help="path to a gmc-certificate JSON")
    rep.add_argument("--json", action="store_true")
    rep.set_defaults(fn=_cmd_replay)

    scen = sub.add_parser("scenarios", help="list model-checkable scenarios")
    scen.set_defaults(fn=_cmd_scenarios)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
