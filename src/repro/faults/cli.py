"""``python -m repro.faults`` — chaos runs and fault-plan inspection.

Subcommands:

``chaos``
    Run the chaos matrix: each named experiment under each seed's
    fault plan, asserting the liveness/safety invariants.  Exits 1 if
    any run violates an invariant — this is the CI smoke entry point.

``list``
    Show the built-in chaos profiles and which fault classes each
    enables.

Examples::

    python -m repro.faults chaos --experiments fig2,grep --seeds 1,2,3
    python -m repro.faults chaos --json
    python -m repro.faults list
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.faults.chaos import (
    DEFAULT_DRAIN_TIMEOUT_NS,
    EXPERIMENTS,
    PROFILES,
    run_matrix,
)

DEFAULT_SEEDS = (1, 2, 3)


def _parse_csv(raw: str) -> List[str]:
    return [item.strip() for item in raw.split(",") if item.strip()]


def _cmd_list(args: argparse.Namespace) -> int:
    print(f"{'experiment':<12} {'fault classes':<52} recovery")
    print("-" * 100)
    for name, plan in PROFILES.items():
        classes = ",".join(plan.active_classes()) or "-"
        watchdog = (
            f"watchdog={plan.watchdog_period_ns:g}ns"
            if plan.watchdog_period_ns
            else "watchdog=off"
        )
        slot = (
            f"slot_timeout={plan.slot_timeout_ns:g}ns"
            if plan.slot_timeout_ns
            else "slot_timeout=off"
        )
        print(f"{name:<12} {classes:<52} {watchdog} {slot}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    experiments = _parse_csv(args.experiments)
    unknown = [e for e in experiments if e not in PROFILES]
    if unknown:
        print(
            f"unknown experiment(s) {unknown}; choose from {sorted(PROFILES)}",
            file=sys.stderr,
        )
        return 2
    seeds = [int(s) for s in _parse_csv(args.seeds)]
    reports = run_matrix(
        experiments,
        seeds,
        intensity=args.intensity,
        drain_timeout_ns=args.drain_timeout_ns,
    )
    if args.json:
        print(json.dumps([r.as_dict() for r in reports], indent=2))
    else:
        header = (
            f"{'experiment':<12} {'seed':>4} {'ok':<4} {'sim ns':>12} "
            f"{'faults':>6} {'retries':>7} {'reclaims':>8} {'requeues':>8} "
            f"{'degraded':>8}"
        )
        print(header)
        print("-" * len(header))
        for r in reports:
            print(
                f"{r.experiment:<12} {r.seed:>4} {'ok' if r.ok else 'FAIL':<4} "
                f"{r.elapsed_ns:>12.0f} {r.injected:>6} "
                f"{r.recovery['syscall_retries']:>7} "
                f"{r.recovery['slots_reclaimed']:>8} "
                f"{r.recovery['tasks_requeued']:>8} "
                f"{r.recovery['degraded_rescans']:>8}"
            )
            for violation in r.violations:
                print(f"    violation: {violation}")
    failures = [r for r in reports if not r.ok]
    if failures:
        print(
            f"\n{len(failures)}/{len(reports)} chaos run(s) violated invariants",
            file=sys.stderr,
        )
        return 1
    if not args.json:
        print(f"\nall {len(reports)} chaos run(s) held every invariant")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    chaos = sub.add_parser("chaos", help="run the chaos invariant matrix")
    chaos.add_argument(
        "--experiments",
        default=",".join(EXPERIMENTS),
        help=f"comma-separated subset of {list(EXPERIMENTS)}",
    )
    chaos.add_argument(
        "--seeds",
        default=",".join(str(s) for s in DEFAULT_SEEDS),
        help="comma-separated fault-plan seeds",
    )
    chaos.add_argument(
        "--intensity",
        type=float,
        default=1.0,
        help="scale every fault rate by this factor (clamped to 1.0)",
    )
    chaos.add_argument(
        "--drain-timeout-ns",
        type=float,
        default=DEFAULT_DRAIN_TIMEOUT_NS,
        help="simulated-time liveness bound per run",
    )
    chaos.add_argument("--json", action="store_true", help="machine-readable output")
    chaos.set_defaults(fn=_cmd_chaos)

    lister = sub.add_parser("list", help="show built-in chaos profiles")
    lister.set_defaults(fn=_cmd_list)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
