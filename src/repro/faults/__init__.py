"""Deterministic fault injection and recovery for the GENESYS stack.

The subsystem has two halves:

* :mod:`repro.faults.plan` — :class:`FaultPlan` (a seeded, declarative
  description of faults to inject) and :class:`FaultInjector` (policy
  programs attached to the stack's ``fault.*`` hooks, all randomness
  drawn from one ``DeterministicRandom`` so runs replay exactly).
* :mod:`repro.faults.chaos` — per-workload chaos profiles, the runner,
  and :func:`check_invariants`, the liveness/safety postconditions every
  faulted run must satisfy.

``python -m repro.faults chaos`` runs the invariant matrix from the
command line; with no plan installed the stack's behaviour (and every
experiment's output) is byte-identical to a build without this package.
"""

from repro.faults.chaos import (
    DEFAULT_DRAIN_TIMEOUT_NS,
    EXPERIMENTS,
    PROFILES,
    ChaosReport,
    check_invariants,
    record_fault_stream,
    recovery_stats,
    run_matrix,
    run_one,
    run_scenario,
)
from repro.faults.plan import (
    FAULT_HOOKS,
    FaultInjector,
    FaultPlan,
    clear_global_fault_plan,
    install_global_fault_plan,
    install_plan,
)
from repro.oskernel.workqueue import DrainTimeout

__all__ = [
    "DEFAULT_DRAIN_TIMEOUT_NS",
    "EXPERIMENTS",
    "FAULT_HOOKS",
    "PROFILES",
    "ChaosReport",
    "DrainTimeout",
    "FaultInjector",
    "FaultPlan",
    "check_invariants",
    "clear_global_fault_plan",
    "install_global_fault_plan",
    "install_plan",
    "record_fault_stream",
    "recovery_stats",
    "run_matrix",
    "run_one",
    "run_scenario",
]
