"""Chaos harness: run workloads under seeded fault plans and check
that the recovery machinery holds the stack's liveness and safety
invariants.

Each experiment gets a *profile* — the fault classes it can survive by
construction.  grep and the Figure-2 walkthrough tolerate every class
(their kernels treat any non-positive syscall result as EOF), so their
profiles throw the whole taxonomy at them.  The memcached GET server's
closed-loop clients have no application-level retransmit, so its
profile sticks to faults the stack itself recovers (lost doorbells,
stalled workers, transient errnos, delayed datagrams); datagram loss
and duplication are exercised by the ``udp-echo`` scenario, whose
client implements the classic retransmit-with-dedup loop on top of the
faulty network.

Invariants checked after every run (:func:`check_invariants`):

* **definite status** — every issued invocation either completed or was
  reclaimed with ``-ETIMEDOUT``; nothing is left outstanding,
* **no slot leaks** — every materialized syscall-area slot is FREE,
* **no duplicate or lost completions** — ``issued ==
  syscalls_completed + slots_reclaimed`` exactly,
* **drained queues** — the workqueue has no backlog or in-flight tasks,
* **bounded termination** — the run finishes under a simulated-time
  drain deadline (enforced by ``System.drain_timeout_ns``; a wedge the
  watchdog cannot clear surfaces as ``DrainTimeout``, not a hang).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.core.syscall_area import SlotState
from repro.gpu.hierarchy import WorkItemCtx
from repro.probes.tracepoints import ProbeRegistry
from repro.faults.plan import FaultInjector, FaultPlan, install_plan
from repro.oskernel.workqueue import DrainTimeout
from repro.system import System

#: Liveness bound for chaos runs, in simulated ns.  Generous: the
#: faulted workloads finish in a few hundred microseconds; a run that
#: needs two simulated seconds is wedged.
DEFAULT_DRAIN_TIMEOUT_NS = 2_000_000_000.0

ECHO_PORT = 7777

PROFILES: Dict[str, FaultPlan] = {
    # Figure-2 style open/pread/close walkthrough: error-tolerant kernel,
    # every fault class enabled.
    "fig2": FaultPlan(
        irq_drop=0.15,
        irq_delay=0.15,
        worker_stall=0.15,
        worker_kill=0.05,
        slot_wedge=0.05,
        slot_corrupt=0.05,
        errno_rate=0.15,
        watchdog_period_ns=50_000.0,
        slot_timeout_ns=400_000.0,
        worker_timeout_ns=150_000.0,
    ),
    # grep (Section VIII-B): filesystem-heavy, kernels treat n<=0 as EOF.
    "grep": FaultPlan(
        irq_drop=0.10,
        irq_delay=0.15,
        worker_stall=0.10,
        worker_kill=0.03,
        slot_wedge=0.03,
        slot_corrupt=0.05,
        errno_rate=0.10,
        watchdog_period_ns=50_000.0,
        slot_timeout_ns=500_000.0,
        worker_timeout_ns=200_000.0,
    ),
    # memcached (Section VIII-D): closed-loop clients, so only faults the
    # stack itself absorbs.  slot_timeout is disabled because a blocking
    # recvfrom legitimately holds its slot in PROCESSING until a request
    # arrives — reclaiming it would invent a timeout the protocol never
    # had.
    "memcached": FaultPlan(
        irq_drop=0.08,
        irq_delay=0.15,
        worker_stall=0.10,
        errno_rate=0.08,
        net_delay=0.20,
        watchdog_period_ns=50_000.0,
        slot_timeout_ns=0.0,
        worker_timeout_ns=200_000.0,
    ),
    # Datagram loss/duplication with an application-level retransmit
    # loop: the fault classes memcached's profile must exclude.
    "udp-echo": FaultPlan(
        net_drop=0.20,
        net_dup=0.10,
        net_delay=0.20,
        watchdog_period_ns=0.0,
    ),
    # The serving harness (repro.serving) at moderate open-loop load:
    # lost doorbells and killed workqueue workers while a GPU memcached
    # kernel serves a timed request stream.  Open-loop clients already
    # classify late/lost replies, so the invariants here are liveness
    # (the run drains) and safety (no corrupted reply values) — not
    # completion.  slot_timeout is disabled for the same reason as the
    # memcached profile: a blocking recvfrom legitimately parks its
    # slot in PROCESSING while waiting for a request.
    "serving": FaultPlan(
        irq_drop=0.10,
        worker_kill=0.05,
        watchdog_period_ns=50_000.0,
        slot_timeout_ns=0.0,
        worker_timeout_ns=150_000.0,
    ),
    # Overload control under fire: the serving scenario pushed past its
    # knee (open-loop overload) with a QoS plan installed, while
    # doorbells drop and workqueue workers die.  Exercises sojourn
    # head-drop, fast-fail reject frames, and the brownout controller
    # alongside the watchdog recovery paths.  slot_timeout stays
    # disabled (parked blocking recvfrom), so invariants are liveness,
    # reply integrity, and the shed-aware completion accounting.
    "qos": FaultPlan(
        irq_drop=0.10,
        worker_kill=0.05,
        watchdog_period_ns=50_000.0,
        slot_timeout_ns=0.0,
        worker_timeout_ns=150_000.0,
    ),
}

EXPERIMENTS = tuple(PROFILES)


@dataclass
class ChaosReport:
    experiment: str
    seed: int
    ok: bool
    elapsed_ns: float
    violations: List[str]
    injected: int
    by_action: Dict[str, int]
    recovery: Dict[str, int]
    detail: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "seed": self.seed,
            "ok": self.ok,
            "elapsed_ns": self.elapsed_ns,
            "violations": list(self.violations),
            "injected": self.injected,
            "by_action": dict(self.by_action),
            "recovery": dict(self.recovery),
            "detail": dict(self.detail),
        }


def check_invariants(system: System) -> List[str]:
    """Safety/liveness invariants that must hold once a run drains.
    Returns a list of human-readable violations (empty == clean)."""
    violations: List[str] = []
    genesys = system.genesys
    workqueue = system.kernel.workqueue
    if genesys.outstanding != 0:
        violations.append(
            f"{genesys.outstanding} invocation(s) still outstanding after drain"
        )
    if workqueue.outstanding != 0:
        violations.append(
            f"workqueue still has {workqueue.outstanding} in-flight task(s)"
        )
    if workqueue.backlog != 0:
        violations.append(f"workqueue backlog is {workqueue.backlog}, want 0")
    leaked = [
        slot.index
        for slot in genesys.area.materialized()
        if slot.state is not SlotState.FREE
    ]
    if leaked:
        violations.append(f"slot leak: slots {leaked} not FREE after drain")
    issued = sum(genesys.invocation_counts.values())
    settled = (
        genesys.syscalls_completed
        + genesys.slots_reclaimed
        + genesys.syscalls_shed
    )
    if issued != settled:
        violations.append(
            f"completion accounting broken: issued={issued} but "
            f"completed={genesys.syscalls_completed} + "
            f"reclaimed={genesys.slots_reclaimed} + "
            f"shed={genesys.syscalls_shed} = {settled} "
            "(duplicate or lost completion)"
        )
    return violations


def recovery_stats(system: System) -> Dict[str, int]:
    genesys = system.genesys
    workqueue = system.kernel.workqueue
    return {
        "syscall_retries": genesys.syscall_retries,
        "slots_reclaimed": genesys.slots_reclaimed,
        "syscalls_shed": genesys.syscalls_shed,
        "degraded_rescans": genesys.degraded,
        "watchdog_ticks": genesys.watchdog_ticks,
        "slot_protocol_errors": genesys.area.protocol_errors,
        "tasks_requeued": workqueue.tasks_requeued,
        "workers_respawned": workqueue.workers_respawned,
        "worker_forfeits": workqueue.forfeits,
    }


# -- scenarios ----------------------------------------------------------------


def _run_fig2(system: System) -> Dict[str, object]:
    """Figure-2 walkthrough widened to 16 work-items so the fault plan
    has a population to sample from: open -> pread -> close per item."""
    fs = system.kernel.fs
    if not fs.exists("/tmp/chaos"):
        fs.mkdir("/tmp/chaos")
    n_items = 16
    file_bytes = 4096
    for i in range(n_items):
        fs.create_file(f"/tmp/chaos/f{i:02d}", bytes([0x40 + i % 26]) * file_bytes)
    bufs = [system.memsystem.alloc_buffer(file_bytes) for _ in range(n_items)]
    reads: Dict[int, int] = {}

    def kern(ctx: WorkItemCtx) -> Generator:
        idx = ctx.global_id
        fd = yield from ctx.sys.open(f"/tmp/chaos/f{idx:02d}")
        if fd >= 0:
            n = yield from ctx.sys.pread(fd, bufs[idx], file_bytes, 0)
            reads[idx] = n
            yield from ctx.sys.close(fd)
        else:
            reads[idx] = fd

    system.run_kernel(kern, n_items, 8, name="fig2-chaos")
    good = sum(1 for n in reads.values() if n == file_bytes)
    return {"items": n_items, "full_reads": good}


def _run_grep(system: System) -> Dict[str, object]:
    from repro.workloads.grepwl import GrepWorkload

    workload = GrepWorkload(
        system, num_files=12, file_bytes=8192, num_words=8, chunk_bytes=4096
    )
    result = workload.run_genesys()
    found = result.metrics["files_matched"]
    expected = set(workload.expected_matches)
    false_hits = [path for path in found if path not in expected]
    detail: Dict[str, object] = {
        "files": 12,
        "matched": len(found),
        "expected": len(expected),
    }
    # Safety: faults may lose matches (a corrupted read looks like EOF)
    # but must never invent one.
    if false_hits:
        detail["false_matches"] = false_hits
    return detail


def _run_memcached(system: System) -> Dict[str, object]:
    from repro.workloads.memcachedwl import MemcachedWorkload

    workload = MemcachedWorkload(
        system, num_requests=24, concurrency=4, value_bytes=256
    )
    result = workload.run_genesys(num_workgroups=4, workgroup_size=16)
    return {
        "requests": 24,
        "replies": len(result.metrics["replies"]),
        "mean_latency_ns": round(result.metrics["mean_latency_ns"], 1),
    }


def _run_udp_echo(system: System) -> Dict[str, object]:
    """Lossy-network scenario: the client retransmits sequence-numbered
    pings until the matching pong arrives, deduplicating replies — the
    recovery pattern datagram drop/dup faults demand from applications."""
    net = system.kernel.net
    sim = system.sim
    server_sock = net.socket()
    net.bind(server_sock, ECHO_PORT)
    client_sock = net.socket()
    n_pings = 24
    retransmit_after_ns = 30_000.0
    stats = {"sends": 0, "dup_replies": 0}
    acked: set = set()

    def server() -> Generator:
        while True:
            datagram = yield server_sock.queue.get()
            yield from net.sendto(
                server_sock, datagram.payload, datagram.source
            )

    def client() -> Generator:
        from repro.sim.engine import AnyOf

        for seq in range(n_pings):
            payload = b"PING %04d" % seq
            while seq not in acked:
                yield from net.sendto(
                    client_sock, payload, ("localhost", ECHO_PORT)
                )
                stats["sends"] += 1
                deadline = sim.now + retransmit_after_ns
                while seq not in acked and sim.now < deadline:
                    if len(client_sock.queue) == 0:
                        yield AnyOf(
                            [
                                client_sock.queue.when_nonempty(),
                                sim.wake_at(deadline, name="echo-rto"),
                            ]
                        )
                    if len(client_sock.queue):
                        reply = yield client_sock.queue.get()
                        got = int(reply.payload.split()[1])
                        if got in acked:
                            stats["dup_replies"] += 1
                        acked.add(got)
        net.close(client_sock)

    sim.process(server(), name="echo-server")
    sim.run_process(client(), name="echo-client")
    net.close(server_sock)
    if len(acked) != n_pings:
        raise AssertionError(
            f"echo client finished with {len(acked)}/{n_pings} acks"
        )
    return {
        "pings": n_pings,
        "sends": stats["sends"],
        "retransmits": stats["sends"] - n_pings,
        "dup_replies": stats["dup_replies"],
    }


def _run_serving(system: System) -> Dict[str, object]:
    """The serving harness riding a faulty machine: one fixed-RPS
    open-loop point against the GPU memcached server.  Every completed
    reply's value bytes are checked against the table — a fault may
    delay or lose a reply (the lifecycle absorbs that) but must never
    corrupt one."""
    from repro.serving.sweep import (
        ServingConfig,
        build_target,
        memcached_reply_check,
        run_point_on,
    )

    config = ServingConfig(
        num_clients=32,
        warmup_ns=100_000.0,
        measure_ns=300_000.0,
        timeout_ns=400_000.0,
        elems_per_bucket=64,
        value_bytes=256,
        num_workgroups=4,
        workgroup_size=16,
    )
    _system, workload = build_target(config, system=system)
    point = run_point_on(
        system, workload, config, rps=100_000,
        check_reply=memcached_reply_check(workload),
    )
    lifecycle = point["lifecycle"]
    if lifecycle["bad_replies"]:
        raise AssertionError(
            f"{lifecycle['bad_replies']} corrupted reply value(s) reached a client"
        )
    return {
        "rps": 100_000,
        "sent": lifecycle["sent"],
        "completed": lifecycle["completed"],
        "late": lifecycle["late"],
        "timeout": lifecycle["timeout"],
        "served": point["served"],
    }


def _run_qos(system: System) -> Dict[str, object]:
    """Overload + faults + QoS: the serving scenario at ~2x its knee
    with the default overload-control plan installed.  The plan must
    keep the run live (sojourn policing sheds the stale backlog) and —
    as in every serving scenario — no completed reply may be corrupt."""
    from repro.serving.sweep import (
        ServingConfig,
        build_target,
        default_overload_plan,
        memcached_reply_check,
        run_point_on,
    )

    config = ServingConfig(
        num_clients=32,
        warmup_ns=100_000.0,
        measure_ns=300_000.0,
        timeout_ns=400_000.0,
        elems_per_bucket=64,
        value_bytes=256,
        num_workgroups=4,
        workgroup_size=16,
    )
    _system, workload = build_target(config, system=system)
    from repro.qos import install_qos_plan

    controller = install_qos_plan(default_overload_plan(config), system)
    point = run_point_on(
        system, workload, config, rps=220_000,
        check_reply=memcached_reply_check(workload),
    )
    lifecycle = point["lifecycle"]
    if lifecycle["bad_replies"]:
        raise AssertionError(
            f"{lifecycle['bad_replies']} corrupted reply value(s) reached a client"
        )
    return {
        "rps": 220_000,
        "sent": lifecycle["sent"],
        "completed": lifecycle["completed"],
        "late": lifecycle["late"],
        "timeout": lifecycle["timeout"],
        "rejected": lifecycle["rejected"],
        "served": point["served"],
        "qos": controller.summary(),
    }


_SCENARIOS = {
    "fig2": _run_fig2,
    "grep": _run_grep,
    "memcached": _run_memcached,
    "udp-echo": _run_udp_echo,
    "serving": _run_serving,
    "qos": _run_qos,
}

#: Tracepoints that make up the fault/recovery event stream (prefix
#: match plus the two named singles).
FAULT_STREAM_PREFIXES = ("fault.", "recover.")
FAULT_STREAM_NAMES = ("slot.protocol_error", "syscall.retry")


def record_fault_stream(registry: ProbeRegistry) -> List[tuple]:
    """Attach observers that append ``(t_ns, tracepoint, args)`` for
    every fault/recovery tracepoint; returns the (live) event list.
    Two runs with the same plan seed must produce equal streams — the
    determinism property ``tests/test_chaos.py`` asserts."""
    events: List[tuple] = []
    for name in registry.tracepoints:
        if name.startswith(FAULT_STREAM_PREFIXES) or name in FAULT_STREAM_NAMES:

            def observer(*args: object, _name: str = name) -> None:
                events.append((registry.now(), _name, args))

            registry.attach(name, observer)
    return events


def run_scenario(experiment: str, system: System) -> Dict[str, object]:
    """Run one chaos scenario body against an already-built ``system``
    (no plan installed, no invariant checks) — the building block for
    tests that need to hold the machine."""
    return _SCENARIOS[experiment](system)


def run_one(
    experiment: str,
    seed: int,
    intensity: float = 1.0,
    drain_timeout_ns: float = DEFAULT_DRAIN_TIMEOUT_NS,
    plan: Optional[FaultPlan] = None,
) -> ChaosReport:
    """Build a fresh machine, attach the experiment's (seeded) fault
    profile, run the scenario, and check every invariant."""
    if experiment not in _SCENARIOS:
        raise ValueError(
            f"unknown chaos experiment {experiment!r}; "
            f"choose from {sorted(_SCENARIOS)}"
        )
    if plan is None:
        plan = PROFILES[experiment].with_seed(seed)
        if intensity != 1.0:
            plan = plan.scaled(intensity)
    system = System()
    system.drain_timeout_ns = drain_timeout_ns
    injector: FaultInjector = install_plan(plan, system.probes)
    start = system.now
    violations: List[str] = []
    detail: Dict[str, object] = {}
    try:
        detail = _SCENARIOS[experiment](system)
    except DrainTimeout as exc:
        violations.append(f"liveness: {exc}")
    except AssertionError as exc:
        violations.append(f"safety: {exc}")
    violations.extend(check_invariants(system))
    if "false_matches" in detail:
        violations.append(f"safety: invented matches {detail['false_matches']}")
    summary = injector.summary()
    return ChaosReport(
        experiment=experiment,
        seed=seed,
        ok=not violations,
        elapsed_ns=system.now - start,
        violations=violations,
        injected=summary["injected"],
        by_action=summary["by_action"],
        recovery=recovery_stats(system),
        detail=detail,
    )


def run_matrix(
    experiments: List[str],
    seeds: List[int],
    intensity: float = 1.0,
    drain_timeout_ns: float = DEFAULT_DRAIN_TIMEOUT_NS,
) -> List[ChaosReport]:
    return [
        run_one(experiment, seed, intensity, drain_timeout_ns)
        for experiment in experiments
        for seed in seeds
    ]
