"""Deterministic fault plans and the injector that applies them.

A :class:`FaultPlan` is a declarative description of *what can go
wrong* — per-decision probabilities for each fault class plus the
recovery knobs (watchdog period, slot/worker timeouts) that should be
active while the faults fly.  A :class:`FaultInjector` turns the plan
into policy programs attached to the ``fault.*`` hooks the stack
declares (see ``repro.probes``):

========================  ================================================
hook                      decision
========================  ================================================
``fault.irq``             drop or delay a GPU->CPU doorbell interrupt
``fault.worker``          kill or stall a workqueue worker at task pickup
``fault.slot``            wedge or corrupt a syscall-area slot
``fault.errno``           inject a transient errno instead of executing
``fault.net``             drop, duplicate, or delay a UDP datagram
========================  ================================================

All randomness comes from one :class:`DeterministicRandom` seeded from
``plan.seed`` and consumed in simulated-event order, so a given
(plan, workload) pair replays the exact same fault sequence every run —
the property the determinism tests in ``tests/test_chaos.py`` assert.

The injector also pins the recovery configuration through the
``genesys.watchdog`` / ``genesys.slot_timeout`` / ``genesys.worker_timeout``
policy hooks, so installing a plan both breaks the machine and arms the
machinery that is supposed to survive it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.oskernel.errors import Errno
from repro.probes import policy as policy_mod
from repro.probes.tracepoints import (
    ProbeRegistry,
    clear_global_plan,
    install_global_plan,
)
from repro.workloads.base import DeterministicRandom

#: Hooks a FaultInjector may attach to, in the order they are wired.
FAULT_HOOKS = (
    "fault.irq",
    "fault.worker",
    "fault.slot",
    "fault.errno",
    "fault.net",
)

_RATE_FIELDS = (
    "irq_drop",
    "irq_delay",
    "worker_stall",
    "worker_kill",
    "slot_wedge",
    "slot_corrupt",
    "net_drop",
    "net_dup",
    "net_delay",
    "errno_rate",
)

_RANGE_FIELDS = ("irq_delay_ns", "worker_stall_ns", "net_delay_ns")


@dataclass(frozen=True)
class FaultPlan:
    """One seeded description of faults to inject plus recovery knobs.

    Rates are per-decision probabilities in ``[0, 1]``; within one hook
    the alternatives are tried in declaration order (e.g. a doorbell is
    first rolled against ``irq_drop``, then ``irq_delay``), so the sum
    of a hook's rates may not exceed 1.  ``*_ns`` ranges are inclusive
    ``(lo, hi)`` bounds sampled uniformly.
    """

    seed: int = 1
    # -- interrupt path ----------------------------------------------------
    irq_drop: float = 0.0
    irq_delay: float = 0.0
    irq_delay_ns: Tuple[float, float] = (2_000.0, 50_000.0)
    # -- workqueue workers -------------------------------------------------
    worker_stall: float = 0.0
    worker_stall_ns: Tuple[float, float] = (20_000.0, 400_000.0)
    worker_kill: float = 0.0
    # -- syscall-area slots ------------------------------------------------
    slot_wedge: float = 0.0
    slot_corrupt: float = 0.0
    # -- UDP datagrams -----------------------------------------------------
    net_drop: float = 0.0
    net_dup: float = 0.0
    net_delay: float = 0.0
    net_delay_ns: Tuple[float, float] = (1_000.0, 20_000.0)
    # -- transient errnos at dispatch --------------------------------------
    errno_rate: float = 0.0
    errnos: Tuple[int, ...] = (int(Errno.EINTR), int(Errno.EAGAIN))
    # -- global budget -----------------------------------------------------
    max_faults: Optional[int] = None
    # -- recovery knobs installed alongside the faults ---------------------
    watchdog_period_ns: float = 50_000.0
    slot_timeout_ns: float = 2_000_000.0
    worker_timeout_ns: float = 500_000.0
    max_retries: int = 6

    def __post_init__(self) -> None:
        for field in _RATE_FIELDS:
            rate = getattr(self, field)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{field}={rate!r} outside [0, 1]")
        for pair in (
            ("irq_drop", "irq_delay"),
            ("worker_kill", "worker_stall"),
            ("slot_wedge", "slot_corrupt"),
            ("net_drop", "net_dup", "net_delay"),
        ):
            total = sum(getattr(self, field) for field in pair)
            if total > 1.0:
                raise ValueError(f"rates {pair} sum to {total} > 1")
        for field in _RANGE_FIELDS:
            lo, hi = getattr(self, field)
            if lo < 0 or hi < lo:
                raise ValueError(f"{field}={(lo, hi)!r} is not a valid range")
        if not self.errnos and self.errno_rate:
            raise ValueError("errno_rate > 0 with an empty errnos tuple")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    # -- conveniences ------------------------------------------------------

    def with_seed(self, seed: int) -> "FaultPlan":
        return dataclasses.replace(self, seed=seed)

    def scaled(self, factor: float) -> "FaultPlan":
        """Same plan with every rate multiplied by ``factor`` (clamped
        to 1.0) — chaos intensity dial."""
        if factor < 0:
            raise ValueError("factor must be >= 0")
        changes = {
            field: min(1.0, getattr(self, field) * factor)
            for field in _RATE_FIELDS
        }
        return dataclasses.replace(self, **changes)

    def active_classes(self) -> List[str]:
        return [field for field in _RATE_FIELDS if getattr(self, field) > 0.0]

    def as_dict(self) -> dict:
        """A JSON-serialisable description of this plan.

        Round-trips through :meth:`from_dict`; used by
        ``repro.modelcheck`` schedule certificates so a counterexample
        found under a fault plan replays with the *exact* plan embedded
        in the certificate rather than a profile name that may drift.
        """
        doc = dataclasses.asdict(self)
        for field in _RANGE_FIELDS:
            doc[field] = list(doc[field])
        doc["errnos"] = list(doc["errnos"])
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`as_dict` output.

        Unknown keys are rejected so a certificate written by a newer
        schema fails loudly instead of silently dropping a fault class.
        """
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {', '.join(unknown)}")
        kwargs = dict(doc)
        for field in _RANGE_FIELDS:
            if field in kwargs:
                lo, hi = kwargs[field]
                kwargs[field] = (float(lo), float(hi))
        if "errnos" in kwargs:
            kwargs["errnos"] = tuple(int(e) for e in kwargs["errnos"])
        return cls(**kwargs)

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        parts += [
            f"{field}={getattr(self, field):g}"
            for field in _RATE_FIELDS
            if getattr(self, field) > 0.0
        ]
        if self.max_faults is not None:
            parts.append(f"max_faults={self.max_faults}")
        parts.append(f"watchdog={self.watchdog_period_ns:g}ns")
        return " ".join(parts)


class _WidenRetry:
    """Picklable ``genesys.retry`` program treating the plan's injected
    errnos as transient (see FaultInjector._install)."""

    __slots__ = ("extra", "max_retries")

    def __init__(self, extra: frozenset, max_retries: int) -> None:
        self.extra = extra
        self.max_retries = max_retries

    def __call__(
        self, current: object, name: str, result: object, attempt: int
    ) -> Optional[bool]:
        if current:
            return None
        if (
            isinstance(result, int)
            and result < 0
            and -result in self.extra
            and attempt < self.max_retries
        ):
            return True
        return None


class FaultInjector:
    """Attaches a :class:`FaultPlan` to one machine's probe registry.

    The injector is purely a set of policy programs: the components keep
    their own ``fault.*.injected`` tracepoints and counters, so the
    injector only *decides*; the layer owning the hook *applies* and
    records.  ``injected`` counts decisions that returned a fault,
    ``decisions`` counts every consultation.
    """

    def __init__(self, plan: FaultPlan, registry: ProbeRegistry) -> None:
        self.plan = plan
        self.registry = registry
        self.rng = DeterministicRandom(plan.seed)
        self.decisions = 0
        self.injected = 0
        self.by_action: dict = {}
        self._attached: List[Tuple[str, object]] = []
        self._install()

    # -- bookkeeping -------------------------------------------------------

    def _budget_left(self) -> bool:
        return self.plan.max_faults is None or self.injected < self.plan.max_faults

    def _note(self, action: str) -> None:
        self.injected += 1
        self.by_action[action] = self.by_action.get(action, 0) + 1

    def _uniform_ns(self, bounds: Tuple[float, float]) -> float:
        lo, hi = bounds
        return lo + (hi - lo) * self.rng.random()

    # -- decision programs -------------------------------------------------

    def _irq(self, current: object, payload: object) -> object:
        self.decisions += 1
        if current is not None or not self._budget_left():
            return None
        roll = self.rng.random()
        plan = self.plan
        if roll < plan.irq_drop:
            self._note("irq.drop")
            return "drop"
        if roll < plan.irq_drop + plan.irq_delay:
            self._note("irq.delay")
            return ("delay", self._uniform_ns(plan.irq_delay_ns))
        return None

    def _worker(self, current: object, worker_id: int, task_index: int) -> object:
        self.decisions += 1
        if current is not None or not self._budget_left():
            return None
        roll = self.rng.random()
        plan = self.plan
        if roll < plan.worker_kill:
            self._note("worker.kill")
            return "kill"
        if roll < plan.worker_kill + plan.worker_stall:
            self._note("worker.stall")
            return ("stall", self._uniform_ns(plan.worker_stall_ns))
        return None

    def _slot(self, current: object, hw_id: int, slot_index: int, name: str) -> object:
        self.decisions += 1
        if current is not None or not self._budget_left():
            return None
        roll = self.rng.random()
        plan = self.plan
        if roll < plan.slot_wedge:
            self._note("slot.wedge")
            return "wedge"
        if roll < plan.slot_wedge + plan.slot_corrupt:
            self._note("slot.corrupt")
            return "corrupt"
        return None

    def _errno(self, current: object, name: str, invocation_id: object) -> Optional[int]:
        self.decisions += 1
        if current is not None or not self._budget_left():
            return None
        plan = self.plan
        if self.rng.random() < plan.errno_rate:
            errno = plan.errnos[self.rng.randint(0, len(plan.errnos) - 1)]
            self._note("errno")
            return int(errno)
        return None

    def _net(self, current: object, dest: object, nbytes: int) -> object:
        self.decisions += 1
        if current is not None or not self._budget_left():
            return None
        roll = self.rng.random()
        plan = self.plan
        if roll < plan.net_drop:
            self._note("net.drop")
            return "drop"
        if roll < plan.net_drop + plan.net_dup:
            self._note("net.dup")
            return "dup"
        if roll < plan.net_drop + plan.net_dup + plan.net_delay:
            self._note("net.delay")
            return ("delay", self._uniform_ns(plan.net_delay_ns))
        return None

    # -- wiring ------------------------------------------------------------

    def _attach(self, hook_name: str, program: Callable) -> None:
        self.registry.attach_policy(hook_name, program)
        self._attached.append((hook_name, program))

    def _install(self) -> None:
        plan = self.plan
        if plan.irq_drop or plan.irq_delay:
            self._attach("fault.irq", self._irq)
        if plan.worker_stall or plan.worker_kill:
            self._attach("fault.worker", self._worker)
        if plan.slot_wedge or plan.slot_corrupt:
            self._attach("fault.slot", self._slot)
        if plan.errno_rate:
            self._attach("fault.errno", self._errno)
        if plan.net_drop or plan.net_dup or plan.net_delay:
            self._attach("fault.net", self._net)
        # Recovery knobs ride the same hooks the sysfs files use.
        if plan.watchdog_period_ns:
            self._attach(
                "genesys.watchdog", policy_mod.fixed(float(plan.watchdog_period_ns))
            )
        self._attach(
            "genesys.slot_timeout", policy_mod.fixed(float(plan.slot_timeout_ns))
        )
        self._attach(
            "genesys.worker_timeout", policy_mod.fixed(float(plan.worker_timeout_ns))
        )
        # Injected errnos outside the default transient set (EINTR,
        # EAGAIN) must still be retried, or the fault would surface as a
        # permanent failure the workload never asked for.
        extra = {int(e) for e in plan.errnos} - {
            int(Errno.EINTR),
            int(Errno.EAGAIN),
        }
        if plan.errno_rate and extra:
            self._attach(
                "genesys.retry", _WidenRetry(frozenset(extra), plan.max_retries)
            )

    def remove(self) -> None:
        """Detach every program this injector installed."""
        for hook_name, program in self._attached:
            hook = self.registry.hooks.get(hook_name)
            if hook is not None:
                hook.detach(program)
        self._attached.clear()

    def summary(self) -> dict:
        return {
            "seed": self.plan.seed,
            "decisions": self.decisions,
            "injected": self.injected,
            "by_action": dict(sorted(self.by_action.items())),
        }


def install_plan(plan: FaultPlan, registry: ProbeRegistry) -> FaultInjector:
    """Attach ``plan`` to an already-built machine's registry."""
    return FaultInjector(plan, registry)


def install_global_fault_plan(plan: FaultPlan) -> None:
    """Arrange for every subsequently constructed ``System`` to get
    ``plan`` attached (rides the probes global attach plan, so it
    occupies the same single slot the probes CLI uses)."""

    def apply(registry: ProbeRegistry) -> None:
        FaultInjector(plan, registry)

    install_global_plan(apply)


def clear_global_fault_plan() -> None:
    clear_global_plan()
