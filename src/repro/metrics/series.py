"""Windowed estimator primitives for the metrics plane.

Every estimator here is *lazily self-windowing*: samples carry their own
sim timestamp and the estimator derives the window index as
``int(t_ns // window_ns)``.  A window closes automatically the moment a
sample lands in a later one — no timer callback is required for
correctness, which is what keeps exported series independent of whether
the hub's (weak, droppable) flush tick ever ran.  The tick exists only
to close windows promptly for live ``gtop`` output and to carry gauge
levels forward across idle windows.

All estimators are closure-free and hold no simulator handle, so a
System carrying them stays snapshot-safe, and all read paths tolerate
the awkward cases called out in the issue: empty-window reads,
single-sample percentiles, and zero-duration intervals return zeros
instead of raising.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.probes.programs import percentile_from_log2_buckets

__all__ = [
    "EwmaRate",
    "LevelSeries",
    "WindowedCounter",
    "WindowedGauge",
    "WindowedLog2Histogram",
    "WindowedRatio",
    "percentile_from_buckets",
]

#: Shared with the whole-run probe programs: nearest-rank over log2
#: buckets, empty -> 0.0, single-sample answers every q.
percentile_from_buckets = percentile_from_log2_buckets


class EwmaRate:
    """Exponentially-weighted moving average over per-window rates.

    Updated once per closed window with that window's events/second;
    ``value`` is 0.0 until the first window closes.
    """

    __slots__ = ("alpha", "value", "primed")

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.value = 0.0
        self.primed = False

    def update(self, rate: float) -> float:
        if self.primed:
            self.value += self.alpha * (rate - self.value)
        else:
            self.value = rate
            self.primed = True
        return self.value


class WindowedSeries:
    """Base: fixed sim-time windows with bounded closed-window history.

    ``windows`` is a list of ``(t0_ns, value)`` pairs for closed windows
    in time order; the value type is subclass-specific.  Windows with no
    samples are only materialised when the flush tick walks over them
    (counters/ratios/levels close them as zeros; gauges carry the last
    level forward), so a run with the hub detached at the end simply has
    a sparse tail rather than wrong data.
    """

    kind = "series"

    def __init__(
        self, window_ns: float, name: str = "", max_windows: int = 4096
    ) -> None:
        if window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {window_ns}")
        if max_windows < 1:
            raise ValueError(f"max_windows must be >= 1, got {max_windows}")
        self.window_ns = float(window_ns)
        self.name = name
        self.max_windows = max_windows
        self.windows: List[Tuple[float, object]] = []
        self._cur_index: Optional[int] = None

    # -- subclass protocol --------------------------------------------------

    def _close(self) -> object:
        """Return the closed value of the current window and reset the
        accumulator.  Subclasses override."""
        raise NotImplementedError

    def _empty_value(self) -> Optional[object]:
        """Value recorded for a flushed-over window that saw no samples,
        or None to leave the gap sparse."""
        return None

    # -- windowing machinery ------------------------------------------------

    def index_of(self, t_ns: float) -> int:
        return int(t_ns // self.window_ns)

    def _append(self, index: int, value: object) -> None:
        self.windows.append((index * self.window_ns, value))
        if len(self.windows) > self.max_windows:
            del self.windows[: len(self.windows) - self.max_windows]

    def _note(self, index: int) -> None:
        """Route a sample timestamped into window ``index``: close the
        current window first if the sample belongs to a later one."""
        cur = self._cur_index
        if cur is None:
            self._cur_index = index
        elif index > cur:
            self._append(cur, self._close())
            gap = self._empty_value()
            if gap is not None:
                # Windows beyond the history bound would be trimmed
                # straight away; skip materialising them.
                start = max(cur + 1, index - self.max_windows)
                for missed in range(start, index):
                    self._append(missed, gap)
            self._cur_index = index

    def flush(self, index: int) -> None:
        """Close the in-progress window if ``index`` is past it (tick
        path).  A fresh, empty window then begins at ``index``."""
        self._note(index)

    # -- reads --------------------------------------------------------------

    def last_closed(self) -> Optional[Tuple[float, object]]:
        return self.windows[-1] if self.windows else None

    def closed(self, last: Optional[int] = None) -> List[Tuple[float, object]]:
        if last is None or last >= len(self.windows):
            return list(self.windows)
        if last <= 0:
            return []
        return self.windows[-last:]

    def export_series(self) -> Dict[str, List[Tuple[float, float]]]:
        """Flatten closed windows to scalar sub-series keyed by suffix
        ('' = the primary value).  Subclasses override."""
        raise NotImplementedError


class WindowedCounter(WindowedSeries):
    """Event counter: per-window counts plus an EWMA of the window rate.

    ``add`` defaults to counting one event; pass ``n`` to accumulate a
    quantity (bytes, pages, stall-ns).  ``read`` modes: ``"count"`` sums
    raw window values, ``"rate"`` converts to events/second, and
    ``"fraction"`` divides by window span (for duration accumulators
    like DRAM stall-ns, yielding a busy/stall fraction).
    """

    kind = "counter"

    def __init__(
        self,
        window_ns: float,
        name: str = "",
        max_windows: int = 4096,
        ewma_alpha: float = 0.3,
    ) -> None:
        super().__init__(window_ns, name=name, max_windows=max_windows)
        self._count = 0.0
        self.total = 0.0
        self.by_key: Dict[object, float] = {}
        self.ewma = EwmaRate(ewma_alpha)

    def add(self, t_ns: float, n: float = 1.0, key: object = None) -> None:
        self._note(self.index_of(t_ns))
        self._count += n
        self.total += n
        if key is not None:
            self.by_key[key] = self.by_key.get(key, 0.0) + n

    def _close(self) -> object:
        count, self._count = self._count, 0.0
        self.ewma.update(count / self.window_ns * 1e9)
        return count

    def _empty_value(self) -> Optional[object]:
        return 0.0

    def rate_of(self, count: float) -> float:
        return count / self.window_ns * 1e9

    def read(self, last: int = 1, mode: str = "rate") -> float:
        values = [float(v) for _, v in self.closed(last)]  # type: ignore[arg-type]
        if not values:
            return 0.0
        if mode == "count":
            return sum(values)
        span_ns = len(values) * self.window_ns
        if span_ns <= 0:
            return 0.0
        if mode == "fraction":
            return sum(values) / span_ns
        return sum(values) / span_ns * 1e9

    def export_series(self) -> Dict[str, List[Tuple[float, float]]]:
        counts = [(t0, float(v)) for t0, v in self.windows]  # type: ignore[misc]
        return {
            "": counts,
            "rate": [(t0, self.rate_of(v)) for t0, v in counts],
        }


class WindowedRatio(WindowedSeries):
    """Paired numerator/denominator counter; window value = num/den.

    Used for hit rates and shares (page-cache hits/lookups, suppressed
    IRQs/completions).  Windows with a zero denominator close to 0.0.
    """

    kind = "ratio"

    def __init__(
        self, window_ns: float, name: str = "", max_windows: int = 4096
    ) -> None:
        super().__init__(window_ns, name=name, max_windows=max_windows)
        self._num = 0.0
        self._den = 0.0
        self.total_num = 0.0
        self.total_den = 0.0

    def add(self, t_ns: float, num: float, den: float) -> None:
        self._note(self.index_of(t_ns))
        self._num += num
        self._den += den
        self.total_num += num
        self.total_den += den

    def _close(self) -> object:
        num, self._num = self._num, 0.0
        den, self._den = self._den, 0.0
        return num / den if den > 0 else 0.0

    def _empty_value(self) -> Optional[object]:
        return 0.0

    def read(self, last: int = 1) -> float:
        values = [float(v) for _, v in self.closed(last)]  # type: ignore[arg-type]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def export_series(self) -> Dict[str, List[Tuple[float, float]]]:
        return {"": [(t0, float(v)) for t0, v in self.windows]}  # type: ignore[misc]


class WindowedGauge(WindowedSeries):
    """Sampled level (queue depth, occupancy count, resident pages).

    Each window closes to ``(mean, min, max, last)`` over the samples it
    saw.  The flush tick calls :meth:`carry` so idle windows report the
    level as it stood (a queue that stays at depth 7 with no traffic is
    still at depth 7), which is the behaviour a top-like view needs.
    """

    kind = "gauge"

    def __init__(
        self, window_ns: float, name: str = "", max_windows: int = 4096
    ) -> None:
        super().__init__(window_ns, name=name, max_windows=max_windows)
        self._sum = 0.0
        self._n = 0
        self._min = 0.0
        self._max = 0.0
        self.last: Optional[float] = None

    def set(self, t_ns: float, value: float) -> None:
        self._note(self.index_of(t_ns))
        value = float(value)
        if self._n == 0:
            self._min = value
            self._max = value
        else:
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
        self._sum += value
        self._n += 1
        self.last = value

    def _close(self) -> object:
        if self._n == 0:
            level = self.last if self.last is not None else 0.0
            value = (level, level, level, level)
        else:
            value = (self._sum / self._n, self._min, self._max, self.last)
        self._sum = 0.0
        self._n = 0
        return value

    def _empty_value(self) -> Optional[object]:
        level = self.last if self.last is not None else 0.0
        return (level, level, level, level)

    def carry(self, index: int) -> None:
        """Tick path: close up to ``index``, carrying the level forward."""
        self._note(index)

    def flush(self, index: int) -> None:
        self.carry(index)

    def read(self, last: int = 1, mode: str = "mean") -> float:
        rows = self.closed(last)
        if not rows:
            return float(self.last) if self.last is not None else 0.0
        field = {"mean": 0, "min": 1, "max": 2, "last": 3}[mode]
        values = [float(v[field]) for _, v in rows]  # type: ignore[index]
        if mode == "min":
            return min(values)
        if mode == "max":
            return max(values)
        if mode == "last":
            return values[-1]
        return sum(values) / len(values)

    def export_series(self) -> Dict[str, List[Tuple[float, float]]]:
        rows = self.windows
        return {
            "": [(t0, float(v[0])) for t0, v in rows],  # type: ignore[index]
            "max": [(t0, float(v[2])) for t0, v in rows],  # type: ignore[index]
        }


class WindowedLog2Histogram(WindowedSeries):
    """Log2-bucketed value distribution with windowed percentiles.

    Window value is a compact dict ``{count, mean, p50, p95, p99, max}``
    computed from the window's buckets at close time (percentiles are
    bucket upper edges — see :func:`percentile_from_buckets`).  Whole-run
    buckets are kept too, so lifetime percentiles remain available.
    """

    kind = "histogram"

    FIELDS = ("count", "mean", "p50", "p95", "p99", "max")

    def __init__(
        self, window_ns: float, name: str = "", max_windows: int = 4096
    ) -> None:
        super().__init__(window_ns, name=name, max_windows=max_windows)
        self._buckets: Dict[int, int] = {}
        self._sum = 0.0
        self._count = 0
        self._max = 0.0
        self.lifetime_buckets: Dict[int, int] = {}
        self.lifetime_count = 0

    @staticmethod
    def bucket_of(value: float) -> int:
        return int(math.floor(math.log2(value))) if value >= 1.0 else 0

    def observe(self, t_ns: float, value: float) -> None:
        self._note(self.index_of(t_ns))
        value = float(value)
        bucket = self.bucket_of(value)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        self._sum += value
        self._count += 1
        if value > self._max:
            self._max = value
        self.lifetime_buckets[bucket] = self.lifetime_buckets.get(bucket, 0) + 1
        self.lifetime_count += 1

    def _close(self) -> object:
        if self._count == 0:
            value = {
                "count": 0, "mean": 0.0, "p50": 0.0,
                "p95": 0.0, "p99": 0.0, "max": 0.0,
            }
        else:
            value = {
                "count": self._count,
                "mean": self._sum / self._count,
                "p50": percentile_from_buckets(self._buckets, 50.0),
                "p95": percentile_from_buckets(self._buckets, 95.0),
                "p99": percentile_from_buckets(self._buckets, 99.0),
                "max": self._max,
            }
        self._buckets = {}
        self._sum = 0.0
        self._count = 0
        self._max = 0.0
        return value

    def _empty_value(self) -> Optional[object]:
        return {
            "count": 0, "mean": 0.0, "p50": 0.0,
            "p95": 0.0, "p99": 0.0, "max": 0.0,
        }

    def percentile(self, q: float) -> float:
        """Lifetime nearest-rank percentile (0.0 when empty)."""
        return percentile_from_buckets(self.lifetime_buckets, q)

    def read(self, last: int = 1, mode: str = "p95") -> float:
        rows = self.closed(last)
        if not rows:
            return 0.0
        stats = [v for _, v in rows]  # type: ignore[misc]
        if mode == "count":
            return float(sum(s["count"] for s in stats))  # type: ignore[index]
        if mode == "max":
            return max(float(s["max"]) for s in stats)  # type: ignore[index]
        if mode == "mean":
            total = sum(s["count"] for s in stats)  # type: ignore[index]
            if total == 0:
                return 0.0
            weighted = sum(
                float(s["mean"]) * s["count"] for s in stats  # type: ignore[index]
            )
            return weighted / total
        populated = [s for s in stats if s["count"]]  # type: ignore[index]
        if not populated:
            return 0.0
        return max(float(s[mode]) for s in populated)  # type: ignore[index]

    def export_series(self) -> Dict[str, List[Tuple[float, float]]]:
        out: Dict[str, List[Tuple[float, float]]] = {}
        for field in ("count", "mean", "p50", "p95", "p99", "max"):
            out[field] = [
                (t0, float(v[field]))  # type: ignore[index]
                for t0, v in self.windows
            ]
        return out


class LevelSeries(WindowedSeries):
    """Time-weighted level integrator — the honest utilization measure.

    ``set(t, level)`` records that the level changed at ``t``; each
    window closes to the time-weighted mean of the level across the
    window, splitting dwell time that spans a boundary across the
    windows it covers.  A worker that is busy for the first quarter of a
    window reads 0.25, however many tracepoint fires that took.
    """

    kind = "level"

    def __init__(
        self, window_ns: float, name: str = "", max_windows: int = 4096
    ) -> None:
        super().__init__(window_ns, name=name, max_windows=max_windows)
        self._level = 0.0
        self._last_t: Optional[float] = None
        self._area = 0.0  # level-ns accumulated in the current window

    def _advance_to(self, t_ns: float) -> None:
        """Integrate the current level from _last_t to t_ns, closing any
        windows the dwell spans."""
        if self._last_t is None:
            self._cur_index = self.index_of(t_ns)
            self._last_t = t_ns
            return
        if t_ns <= self._last_t:
            return
        assert self._cur_index is not None
        target = self.index_of(t_ns)
        if target - self._cur_index > self.max_windows:
            # Every window we could materialise before this point would
            # be trimmed by the history bound; fast-forward to the last
            # max_windows span (the standing level covers it entirely).
            skip_to = target - self.max_windows
            self._cur_index = skip_to
            self._last_t = skip_to * self.window_ns
            self._area = 0.0
        boundary = (self._cur_index + 1) * self.window_ns
        while t_ns >= boundary:
            self._area += self._level * (boundary - self._last_t)
            self._append(self._cur_index, self._area / self.window_ns)
            self._area = 0.0
            self._last_t = boundary
            self._cur_index += 1
            boundary += self.window_ns
        self._area += self._level * (t_ns - self._last_t)
        self._last_t = t_ns

    def set(self, t_ns: float, level: float) -> None:
        self._advance_to(t_ns)
        self._level = float(level)

    def _close(self) -> object:  # pragma: no cover - flush path used instead
        area, self._area = self._area, 0.0
        return area / self.window_ns

    def flush(self, index: int) -> None:
        """Close every window before ``index`` by integrating the
        standing level up to that boundary."""
        self._advance_to(index * self.window_ns)

    @property
    def level(self) -> float:
        return self._level

    def read(self, last: int = 1) -> float:
        values = [float(v) for _, v in self.closed(last)]  # type: ignore[arg-type]
        if not values:
            return self._level
        return sum(values) / len(values)

    def export_series(self) -> Dict[str, List[Tuple[float, float]]]:
        return {"": [(t0, float(v)) for t0, v in self.windows]}  # type: ignore[misc]
