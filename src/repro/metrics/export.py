"""Exporters for the windowed metrics plane.

Four sinks, all fed from ``MetricsHub.export_series()``:

* :func:`prometheus_text` — Prometheus exposition format (one gauge per
  windowed reading plus lifetime ``_total`` counters), for scraping a
  run's final state or diffing in CI.
* :func:`csv_text` — long-form ``metric,t0_ns,value`` rows, the archival
  format the CI smoke step schema-checks.
* :func:`metrics_counter_events` — Trace Event Format "C" counter
  tracks merged into the :mod:`repro.traceviz` Perfetto export as a
  ``metrics`` process (pid 5, next to syscalls=1, counters=2, probes=3,
  spans=4).
* :func:`series_payload` — a JSON-ready dict embedded in reports
  (``BENCH_serving.json`` carries its serving-specific sibling).
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

from repro.metrics.hub import MetricsHub, metrics_hubs

__all__ = [
    "METRICS_SCHEMA",
    "PID_METRICS",
    "csv_text",
    "metrics_counter_events",
    "prometheus_text",
    "series_payload",
]

#: pid of the metrics counter tracks in the Chrome-trace export
#: (1 = syscalls, 2 = machine counters, 3 = probes, 4 = spans).
PID_METRICS = 5

METRICS_SCHEMA = 1

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def prometheus_text(hub: MetricsHub, experiment: str = "") -> str:
    """Prometheus exposition text for ``hub``'s current state.

    Counters surface their lifetime total (TYPE counter) and the last
    closed window's rate (TYPE gauge); gauges/levels/ratios surface the
    last window's primary reading; histograms surface windowed
    p50/p95/p99 plus a lifetime observation counter.  Output is sorted
    and deterministic for a given run.
    """
    hub.finalize()
    labels = f'{{experiment="{experiment}"}}' if experiment else ""
    lines: List[str] = []

    def emit(name: str, kind: str, help_text: str, value: float) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name}{labels} {value:.6g}")

    for name in sorted(hub.metrics):
        estimator = hub.metrics[name]
        spec = hub.specs[name]
        base = _prom_name(name)
        help_text = spec.help or name
        kind = estimator.kind
        if kind == "counter":
            emit(base + "_total", "counter", help_text + " (lifetime)",
                 estimator.total)  # type: ignore[attr-defined]
            emit(base, "gauge", help_text + " (last window)",
                 hub.read(name))
        elif kind == "histogram":
            emit(base + "_count_total", "counter",
                 help_text + " (lifetime observations)",
                 float(estimator.lifetime_count))  # type: ignore[attr-defined]
            for q in ("p50", "p95", "p99"):
                emit(f"{base}_{q}", "gauge",
                     help_text + f" (windowed {q})",
                     hub.read(name, mode=q))
        elif kind == "gauge":
            emit(base, "gauge", help_text + " (window mean)",
                 hub.read(name))
            emit(base + "_max", "gauge", help_text + " (window max)",
                 hub.read(name, mode="max"))
        else:  # level / ratio
            emit(base, "gauge", help_text, hub.read(name))
    return "\n".join(lines) + "\n"


def csv_text(hub: MetricsHub) -> str:
    """Long-form CSV of every closed window: ``metric,t0_ns,value``."""
    hub.finalize()
    rows = ["metric,t0_ns,value"]
    for key, series in sorted(hub.export_series().items()):
        for t0, value in series:
            rows.append(f"{key},{t0:.0f},{value:.6g}")
    return "\n".join(rows) + "\n"


def series_payload(hub: MetricsHub) -> Dict[str, Any]:
    """JSON-ready windowed series for embedding in reports."""
    hub.finalize()
    return {
        "schema": METRICS_SCHEMA,
        "window_ns": hub.window_ns,
        "ticks": hub.ticks,
        "label": hub.label,
        "series": {
            key: [[t0, value] for t0, value in series]
            for key, series in sorted(hub.export_series().items())
        },
    }


def metrics_counter_events(registry: Any, pid: int = PID_METRICS) -> List[dict]:
    """Trace Event Format "C" events for every hub on ``registry``.

    ``registry`` may be ``None`` (systems predating probes) — returns
    ``[]`` so :mod:`repro.traceviz` can call this unconditionally.
    """
    hubs = metrics_hubs(registry)
    if not hubs:
        return []
    events: List[dict] = []
    named = False
    multi = len(hubs) > 1
    for hub in hubs:
        hub.finalize()
        exported = hub.export_series()
        if not any(exported.values()):
            continue
        if not named:
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "args": {"name": "metrics"},
                }
            )
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": "windowed metrics"},
                }
            )
            named = True
        prefix = f"{hub.label}:" if multi and hub.label else ""
        for key in sorted(exported):
            series = exported[key]
            if not series:
                continue
            track = f"metric:{prefix}{key}"
            for t_ns, value in series:
                events.append(
                    {
                        "name": track,
                        "cat": "metric",
                        "ph": "C",
                        "ts": t_ns / 1000.0,  # trace format wants microseconds
                        "pid": pid,
                        "args": {"value": round(value, 4)},
                    }
                )
    return events


def write_prometheus(
    hub: MetricsHub, path: str, experiment: str = ""
) -> None:
    with open(path, "w") as fh:
        fh.write(prometheus_text(hub, experiment))


def write_csv(hub: MetricsHub, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(csv_text(hub))


def merged_hub_payloads(registry: Optional[Any]) -> List[Dict[str, Any]]:
    """Per-hub series payloads for multi-System reports."""
    return [series_payload(hub) for hub in metrics_hubs(registry)]
