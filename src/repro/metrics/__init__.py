"""repro.metrics — sim-time-windowed telemetry riding the tracepoint stream.

The observability stack's whole-run aggregates (probe snapshots, span
percentiles) answer *how much*; this package answers *when*.  A
:class:`~repro.metrics.hub.MetricsHub` attaches pure observers to the
machine's tracepoints and folds every fire into fixed-window series —
rates, EWMA, log2 histograms with windowed percentiles, gauges, and
time-weighted utilization levels — indexed by simulated time.

Everything here honours the probes determinism contract: observers are
synchronous, get no simulator handle, and never mutate simulated state;
the hub's periodic tick is a *weak* engine callback that neither
advances the clock nor keeps the run alive, so attached and detached
runs stay byte-identical and detached runs schedule zero metrics events.

``hub.read(name, window)`` is the API ROADMAP item 3's feedback
controllers will consume; :mod:`repro.metrics.export` feeds Prometheus
text, CSV, Perfetto counter tracks, and the serving report's
per-window time-series.
"""

from repro.metrics.hub import MetricsHub, MetricsHubPlan, metrics_hubs
from repro.metrics.series import (
    EwmaRate,
    LevelSeries,
    WindowedCounter,
    WindowedGauge,
    WindowedLog2Histogram,
    WindowedRatio,
)

__all__ = [
    "EwmaRate",
    "LevelSeries",
    "MetricsHub",
    "MetricsHubPlan",
    "WindowedCounter",
    "WindowedGauge",
    "WindowedLog2Histogram",
    "WindowedRatio",
    "metrics_hubs",
]
