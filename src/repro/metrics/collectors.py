"""Tracepoint-to-estimator feeds and the default metric catalog.

A *feed* is a pure observer: attached to one tracepoint, it timestamps
the fire via the hub and folds the arguments into a windowed estimator.
Feeds are closure-free classes (SLOT002) so a System carrying an
installed hub stays checkpointable, and they never touch simulator
state — the only side effect beyond their own accumulators is asking
the hub to (weakly) arm its flush tick.

The catalog below is the wiring table the issue calls for: utilization
and occupancy accounting over the existing syscall/fs/net/dram stream
plus the gauge-grade fire sites added alongside this package
(``gpu.wf.occupancy``, ``gpu.lanes.runnable``, ``wq.depth``,
``wq.busy``, ``slot.occupancy``, ``fs.pagecache.resident``,
``syscall.inflight``, ``dram.queue``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.metrics.series import (
    LevelSeries,
    WindowedCounter,
    WindowedGauge,
    WindowedLog2Histogram,
    WindowedRatio,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.metrics.hub import MetricsHub

__all__ = [
    "CATALOG",
    "CountFeed",
    "GaugeFeed",
    "LevelFeed",
    "MetricSpec",
    "ObserveFeed",
    "RatioFeed",
    "ShareFeed",
    "build_estimator",
]


def _as_float(value: object) -> float:
    return float(value) if value is not None else 0.0


class CountFeed:
    """Count fires (or accumulate ``args[amount_arg]``) into a counter.

    ``gate_arg`` skips fires whose flagged argument is truthy (used to
    count only non-suppressed interrupts); ``key_arg`` also buckets the
    lifetime total by that argument (drop reasons).
    """

    __slots__ = ("hub", "metric", "amount_arg", "key_arg", "gate_arg")

    def __init__(
        self,
        hub: "MetricsHub",
        metric: WindowedCounter,
        amount_arg: Optional[int] = None,
        key_arg: Optional[int] = None,
        gate_arg: Optional[int] = None,
    ) -> None:
        self.hub = hub
        self.metric = metric
        self.amount_arg = amount_arg
        self.key_arg = key_arg
        self.gate_arg = gate_arg

    def __call__(self, *args: object) -> None:
        if self.gate_arg is not None and args[self.gate_arg]:
            return
        t_ns = self.hub.pulse()
        amount = (
            _as_float(args[self.amount_arg])
            if self.amount_arg is not None
            else 1.0
        )
        key = args[self.key_arg] if self.key_arg is not None else None
        self.metric.add(t_ns, amount, key=key)


class ObserveFeed:
    """Feed ``args[value_arg]`` into a log2 histogram."""

    __slots__ = ("hub", "metric", "value_arg")

    def __init__(
        self, hub: "MetricsHub", metric: WindowedLog2Histogram, value_arg: int
    ) -> None:
        self.hub = hub
        self.metric = metric
        self.value_arg = value_arg

    def __call__(self, *args: object) -> None:
        self.metric.observe(self.hub.pulse(), _as_float(args[self.value_arg]))


class GaugeFeed:
    """Sample ``args[value_arg]`` (optionally ``/ args[den_arg]``) into a
    gauge."""

    __slots__ = ("hub", "metric", "value_arg", "den_arg")

    def __init__(
        self,
        hub: "MetricsHub",
        metric: WindowedGauge,
        value_arg: int,
        den_arg: Optional[int] = None,
    ) -> None:
        self.hub = hub
        self.metric = metric
        self.value_arg = value_arg
        self.den_arg = den_arg

    def __call__(self, *args: object) -> None:
        t_ns = self.hub.pulse()
        value = _as_float(args[self.value_arg])
        if self.den_arg is not None:
            den = _as_float(args[self.den_arg])
            value = value / den if den > 0 else 0.0
        self.metric.set(t_ns, value)


class LevelFeed:
    """Track a time-weighted level: ``args[num_arg]`` scaled by
    ``args[den_arg]`` when given (busy workers / pool size, halted
    wavefronts / live wavefronts)."""

    __slots__ = ("hub", "metric", "num_arg", "den_arg")

    def __init__(
        self,
        hub: "MetricsHub",
        metric: LevelSeries,
        num_arg: int,
        den_arg: Optional[int] = None,
    ) -> None:
        self.hub = hub
        self.metric = metric
        self.num_arg = num_arg
        self.den_arg = den_arg

    def __call__(self, *args: object) -> None:
        t_ns = self.hub.pulse()
        level = _as_float(args[self.num_arg])
        if self.den_arg is not None:
            den = _as_float(args[self.den_arg])
            level = level / den if den > 0 else 0.0
        self.metric.set(t_ns, level)


class RatioFeed:
    """Accumulate ``args[amount_arg]`` into a ratio's numerator and/or
    denominator — attach one per contributing tracepoint (page-cache
    hits feed num+den, misses feed den only)."""

    __slots__ = ("hub", "metric", "amount_arg", "to_num")

    def __init__(
        self,
        hub: "MetricsHub",
        metric: WindowedRatio,
        amount_arg: int,
        to_num: bool,
    ) -> None:
        self.hub = hub
        self.metric = metric
        self.amount_arg = amount_arg
        self.to_num = to_num

    def __call__(self, *args: object) -> None:
        amount = _as_float(args[self.amount_arg])
        self.metric.add(
            self.hub.pulse(), amount if self.to_num else 0.0, amount
        )


class ShareFeed:
    """Accumulate the share of fires whose ``args[flag_arg]`` is truthy
    (suppressed-IRQ share)."""

    __slots__ = ("hub", "metric", "flag_arg")

    def __init__(
        self, hub: "MetricsHub", metric: WindowedRatio, flag_arg: int
    ) -> None:
        self.hub = hub
        self.metric = metric
        self.flag_arg = flag_arg

    def __call__(self, *args: object) -> None:
        self.metric.add(
            self.hub.pulse(), 1.0 if args[self.flag_arg] else 0.0, 1.0
        )


class MetricSpec:
    """One catalog row: estimator kind, source tracepoint(s), wiring.

    ``sources`` is a tuple of ``(tracepoint_name, feed_kind, feed_args)``
    triples; most metrics have one source, ratios may have several.
    ``unit`` and ``help`` flow through to the exporters.
    """

    __slots__ = ("name", "kind", "sources", "unit", "help", "read_mode")

    def __init__(
        self,
        name: str,
        kind: str,
        sources: Tuple[Tuple[str, str, dict], ...],
        unit: str = "",
        help: str = "",
        read_mode: str = "",
    ) -> None:
        self.name = name
        self.kind = kind
        self.sources = sources
        self.unit = unit
        self.help = help
        self.read_mode = read_mode


def build_estimator(
    spec: MetricSpec, window_ns: float, max_windows: int
):
    if spec.kind == "counter":
        return WindowedCounter(window_ns, name=spec.name, max_windows=max_windows)
    if spec.kind == "histogram":
        return WindowedLog2Histogram(
            window_ns, name=spec.name, max_windows=max_windows
        )
    if spec.kind == "gauge":
        return WindowedGauge(window_ns, name=spec.name, max_windows=max_windows)
    if spec.kind == "level":
        return LevelSeries(window_ns, name=spec.name, max_windows=max_windows)
    if spec.kind == "ratio":
        return WindowedRatio(window_ns, name=spec.name, max_windows=max_windows)
    raise ValueError(f"unknown estimator kind {spec.kind!r}")


FEED_KINDS = {
    "count": CountFeed,
    "observe": ObserveFeed,
    "gauge": GaugeFeed,
    "level": LevelFeed,
    "ratio": RatioFeed,
    "share": ShareFeed,
}


CATALOG: Tuple[MetricSpec, ...] = (
    MetricSpec(
        "syscall.rate", "counter",
        (("syscall.complete", "count", {}),),
        unit="calls/s", help="completed syscall invocations per second",
    ),
    MetricSpec(
        "syscall.latency", "histogram",
        (("syscall.complete", "observe", {"value_arg": 2}),),
        unit="ns", help="syscall service time (PROCESSING span)",
    ),
    MetricSpec(
        "syscall.inflight", "gauge",
        (("syscall.inflight", "gauge", {"value_arg": 0}),),
        unit="calls", help="invocations in flight",
    ),
    MetricSpec(
        "gpu.halt_fraction", "level",
        (("gpu.wf.occupancy", "level", {"num_arg": 0, "den_arg": 1}),),
        unit="fraction",
        help="time-weighted share of live wavefronts halted on syscalls",
    ),
    MetricSpec(
        "gpu.lanes.runnable", "gauge",
        (("gpu.lanes.runnable", "gauge", {"value_arg": 1, "den_arg": 2}),),
        unit="fraction",
        help="runnable share of live lanes at wavefront dispatch",
    ),
    MetricSpec(
        "wq.depth", "gauge",
        (("wq.depth", "gauge", {"value_arg": 0}),),
        unit="tasks", help="workqueue backlog depth",
    ),
    MetricSpec(
        "wq.busy_fraction", "level",
        (("wq.busy", "level", {"num_arg": 0, "den_arg": 1}),),
        unit="fraction", help="time-weighted worker-pool busy fraction",
    ),
    MetricSpec(
        "slot.occupancy", "level",
        (("slot.occupancy", "level", {"num_arg": 0, "den_arg": 1}),),
        unit="fraction",
        help="time-weighted share of syscall-area slots not FREE",
    ),
    MetricSpec(
        "pagecache.hit_rate", "ratio",
        (
            ("fs.pagecache.hit", "ratio", {"amount_arg": 0, "to_num": True}),
            ("fs.pagecache.miss", "ratio", {"amount_arg": 0, "to_num": False}),
        ),
        unit="fraction", help="page-cache hit share of looked-up pages",
    ),
    MetricSpec(
        "pagecache.resident", "gauge",
        (("fs.pagecache.resident", "gauge", {"value_arg": 0}),),
        unit="pages", help="resident page-cache size",
    ),
    MetricSpec(
        "net.tx.rate", "counter",
        (("net.tx", "count", {}),),
        unit="pkts/s", help="datagrams transmitted per second",
    ),
    MetricSpec(
        "net.rx.rate", "counter",
        (("net.rx", "count", {}),),
        unit="pkts/s", help="datagrams received per second",
    ),
    MetricSpec(
        "net.tx.bytes", "counter",
        (("net.tx", "count", {"amount_arg": 0}),),
        unit="B/s", help="transmit byte rate",
    ),
    MetricSpec(
        "net.rx.bytes", "counter",
        (("net.rx", "count", {"amount_arg": 0}),),
        unit="B/s", help="receive byte rate",
    ),
    MetricSpec(
        "net.backlog.depth", "gauge",
        (("net.backlog", "gauge", {"value_arg": 0}),),
        unit="pkts", help="socket receive-queue depth after enqueue",
    ),
    MetricSpec(
        "net.drop.rate", "counter",
        (("net.drop", "count", {"key_arg": 0}),),
        unit="pkts/s", help="datagrams dropped per second (keyed by reason)",
    ),
    MetricSpec(
        "net.sojourn", "histogram",
        (("net.sojourn", "observe", {"value_arg": 0}),),
        unit="ns", help="receive-queue wait of dequeued datagrams",
    ),
    MetricSpec(
        "wq.sojourn", "histogram",
        (("wq.sojourn", "observe", {"value_arg": 0}),),
        unit="ns", help="queue wait of workqueue tasks at pickup",
    ),
    MetricSpec(
        "qos.shed.rate", "counter",
        (("qos.shed", "count", {"key_arg": 0}),),
        unit="sheds/s", help="requests shed per second (keyed by stage)",
    ),
    MetricSpec(
        "irq.rate", "counter",
        (("syscall.irq", "count", {"gate_arg": 2}),),
        unit="irqs/s", help="GPU-to-CPU interrupts actually raised per second",
    ),
    MetricSpec(
        "irq.suppressed_share", "ratio",
        (("syscall.irq", "share", {"flag_arg": 2}),),
        unit="fraction",
        help="share of completion signals coalesced into a pending scan",
    ),
    MetricSpec(
        "dram.stall_fraction", "counter",
        (("dram.stall", "count", {"amount_arg": 1}),),
        unit="fraction", read_mode="fraction",
        help="share of window spent queued behind the DRAM channel",
    ),
    MetricSpec(
        "dram.queue", "gauge",
        (("dram.queue", "gauge", {"value_arg": 0}),),
        unit="xfers", help="DRAM channel queue depth at enqueue",
    ),
)
