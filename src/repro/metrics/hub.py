"""MetricsHub: per-System windowed telemetry over the tracepoint stream.

One hub owns one estimator per catalog entry and one feed per source
tracepoint.  Correctness never depends on timers: estimators are lazily
self-windowing, so a sample landing in a later window closes the earlier
one on the spot.  The hub's periodic *flush tick* exists only to close
windows promptly when traffic is idle (live ``gtop`` output, gauge
carry-forward) and is scheduled as a **weak** engine callback — it never
advances the simulated clock, never keeps the run alive, and is dropped
unrun once no live work remains.  A run with no hub attached therefore
schedules zero metrics events, and an attached run's simulated behaviour
is byte-identical to a detached one.

Fleet installation mirrors ``GSanPlan``: register a
:class:`MetricsHubPlan` via
:func:`repro.probes.tracepoints.install_global_plan` and every System
constructed while the plan is live gets its own hub, discoverable
afterwards through :func:`metrics_hubs`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.metrics.collectors import (
    CATALOG,
    FEED_KINDS,
    MetricSpec,
    build_estimator,
)
from repro.metrics.series import WindowedSeries
from repro.probes.tracepoints import ProbeRegistry

__all__ = ["DEFAULT_WINDOW_NS", "MetricsHub", "MetricsHubPlan", "metrics_hubs"]

#: Default aggregation window: 10 µs of simulated time, fine enough to
#: resolve the syscall-latency experiments yet coarse enough that a
#: serving measure interval spans tens of windows.
DEFAULT_WINDOW_NS = 10_000.0


class MetricsHub:
    """Windowed metric estimators for one System's probe registry."""

    def __init__(
        self,
        window_ns: float = DEFAULT_WINDOW_NS,
        max_windows: int = 4096,
        label: str = "",
        catalog: Tuple[MetricSpec, ...] = CATALOG,
    ) -> None:
        if window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {window_ns}")
        self.window_ns = float(window_ns)
        self.max_windows = max_windows
        self.label = label
        self.catalog = catalog
        self.registry: Optional[ProbeRegistry] = None
        self.metrics: Dict[str, WindowedSeries] = {}
        self.specs: Dict[str, MetricSpec] = {}
        self.ticks = 0
        self._tick_handle: Optional[object] = None
        self._next_boundary = 0.0
        #: Live-view listeners, called as ``listener(hub, boundary_ns)``
        #: after each flush tick.  Transient (not checkpointed).
        self._listeners: List[Callable[["MetricsHub", float], None]] = []

    # -- installation -------------------------------------------------------

    def install(self, registry: ProbeRegistry) -> "MetricsHub":
        """Attach one feed per catalog source whose tracepoint exists in
        ``registry``; unknown tracepoints are skipped so a hub works on
        partial rigs (unit-test registries) too."""
        self.registry = registry
        for spec in self.catalog:
            estimator = build_estimator(spec, self.window_ns, self.max_windows)
            self.metrics[spec.name] = estimator
            self.specs[spec.name] = spec
            for tp_name, feed_kind, feed_args in spec.sources:
                if tp_name not in registry.tracepoints:
                    continue
                feed = FEED_KINDS[feed_kind](self, estimator, **feed_args)
                registry.attach(tp_name, feed)
        registry.programs.append(self)
        return self

    # -- clock plumbing -----------------------------------------------------

    def now(self) -> float:
        return self.registry.now() if self.registry is not None else 0.0

    def pulse(self) -> float:
        """Called by every feed on every fire: return the sample's sim
        timestamp and make sure a flush tick is parked on the next
        window boundary."""
        now = self.now()
        handle = self._tick_handle
        if handle is None or handle.fn is None:  # type: ignore[attr-defined]
            self._arm(now)
        return now

    def _arm(self, now: float) -> None:
        if self.registry is None or self.registry.sim is None:
            return
        boundary = (int(now // self.window_ns) + 1) * self.window_ns
        self._next_boundary = boundary
        self._tick_handle = self.registry.sim.call_at(
            boundary, self._tick, weak=True
        )

    def _tick(self) -> None:
        """Weak flush tick.  Runs at a window boundary without advancing
        the clock; re-arms from its *own* tracked boundary (``sim.now``
        is stale inside a weak callback by design)."""
        boundary = self._next_boundary
        index = int(round(boundary / self.window_ns))
        for estimator in self.metrics.values():
            estimator.flush(index)
        self.ticks += 1
        for listener in self._listeners:
            listener(self, boundary)
        self._next_boundary = boundary + self.window_ns
        if self.registry is not None and self.registry.sim is not None:
            self._tick_handle = self.registry.sim.call_at(
                self._next_boundary, self._tick, weak=True
            )

    def add_listener(
        self, listener: Callable[["MetricsHub", float], None]
    ) -> None:
        self._listeners.append(listener)

    # -- reads --------------------------------------------------------------

    def finalize(self, t_ns: Optional[float] = None) -> None:
        """Close every window strictly before ``t_ns`` (default: now).
        Exporters call this so trailing windows don't depend on whether
        the final flush tick survived the run-down."""
        when = self.now() if t_ns is None else t_ns
        for estimator in self.metrics.values():
            estimator.flush(estimator.index_of(when))

    def read(
        self, name: str, window: int = 1, mode: Optional[str] = None
    ) -> float:
        """Scalar value of metric ``name`` over the last ``window``
        closed windows — the feedback-controller API (ROADMAP item 3).

        Counters read as rates (or window-span fractions for duration
        accumulators), gauges as means, levels as time-weighted means,
        histograms as windowed p95 unless ``mode`` overrides.
        """
        estimator = self.metrics[name]
        estimator.flush(estimator.index_of(self.now()))
        mode = mode or self.specs[name].read_mode
        if mode:
            return estimator.read(window, mode=mode)  # type: ignore[attr-defined]
        return estimator.read(window)  # type: ignore[attr-defined]

    def export_series(self) -> Dict[str, List[Tuple[float, float]]]:
        """Flatten all closed windows to ``name[.suffix] -> [(t0, v)]``."""
        out: Dict[str, List[Tuple[float, float]]] = {}
        for name, estimator in sorted(self.metrics.items()):
            for suffix, series in estimator.export_series().items():
                key = f"{name}.{suffix}" if suffix else name
                out[key] = series
        return out

    def snapshot(self) -> dict:
        """Whole-run summary in the probe-program style."""
        self.finalize()
        last: Dict[str, float] = {}
        for name in self.metrics:
            try:
                last[name] = self.read(name)
            except (KeyError, ZeroDivisionError):  # pragma: no cover
                last[name] = 0.0
        return {
            "window_ns": self.window_ns,
            "ticks": self.ticks,
            "label": self.label,
            "last_window": last,
        }

    def series(self) -> list:
        """Probe-program protocol stub: hubs export their windows under
        their own Perfetto process (pid 5, ``metrics_counter_events``),
        so the pid-3 probe-counter export sees nothing here."""
        return []

    # -- pickling -----------------------------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # Listeners are live-view callbacks (stdout writers); the tick
        # handle belongs to the old simulator's heap.  Both are
        # transient: a restored hub re-arms on its next fire.
        state["_listeners"] = []
        state["_tick_handle"] = None
        return state


class MetricsHubPlan:
    """Global attach plan: one MetricsHub per System (cf. ``GSanPlan``).

    Register with ``install_global_plan(plan)`` before building systems;
    every registry constructed while the plan is live gets a freshly
    installed hub, collected on the plan for later reads/export.
    """

    def __init__(
        self,
        window_ns: float = DEFAULT_WINDOW_NS,
        max_windows: int = 4096,
        catalog: Tuple[MetricSpec, ...] = CATALOG,
        listener: Optional[Callable[["MetricsHub", float], None]] = None,
    ) -> None:
        self.window_ns = window_ns
        self.max_windows = max_windows
        self.catalog = catalog
        self.listener = listener
        self.hubs: List[MetricsHub] = []

    def __call__(self, registry: ProbeRegistry) -> None:
        hub = MetricsHub(
            window_ns=self.window_ns,
            max_windows=self.max_windows,
            label=f"sys{len(self.hubs)}",
            catalog=self.catalog,
        )
        if self.listener is not None:
            hub.add_listener(self.listener)
        self.hubs.append(hub.install(registry))

    @property
    def hub(self) -> Optional[MetricsHub]:
        """The most recently installed hub (single-System runs)."""
        return self.hubs[-1] if self.hubs else None

    def read(self, name: str, window: int = 1) -> float:
        """Convenience read from the most recent hub (0.0 when none)."""
        hub = self.hub
        return hub.read(name, window) if hub is not None else 0.0


def metrics_hubs(registry: Optional[ProbeRegistry]) -> List[MetricsHub]:
    """All hubs installed on ``registry`` (discovery via the program
    list, like ``span_tracers``)."""
    if registry is None:
        return []
    return [p for p in registry.programs if isinstance(p, MetricsHub)]
