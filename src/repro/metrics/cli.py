"""``python -m repro.metrics`` — run, report, and gtop.

Three subcommands over the windowed metrics plane:

* ``run NAME`` — run one registered experiment (or ``serving`` for one
  fixed-RPS serving point) with a
  :class:`~repro.metrics.hub.MetricsHubPlan` installed and write any of
  the exporter formats (``--prom``, ``--csv``, ``--json``).
* ``report NAME`` — same run, then print the final windowed table and
  (optionally) one metric's full window series.
* ``gtop TARGET`` — a top-like live view: the hub's flush tick renders
  a per-window terminal table every ``--every`` windows while the
  simulation runs.  TARGET is an experiment name or ``serving`` (one
  fixed-RPS serving point, ``--rps``/``--workload`` selectable).

The hub rides the run as a pure observer, so every number printed here
comes from a simulation byte-identical to the bare one.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import experiments
from repro.metrics.export import (
    merged_hub_payloads,
    prometheus_text,
    series_payload,
    write_csv,
    write_prometheus,
)
from repro.metrics.hub import DEFAULT_WINDOW_NS, MetricsHub, MetricsHubPlan
from repro.probes.tracepoints import clear_global_plan, install_global_plan

#: ASCII sparkline ramp (low → high); deliberately not unicode so the
#: output survives any terminal/CI log encoding.
_SPARK = " .:-=+*#%@"


def _spark(series: List[float]) -> str:
    if not series:
        return ""
    top = max(series)
    if top <= 0:
        return "." * len(series)
    out = []
    for value in series:
        rank = int(value / top * (len(_SPARK) - 1) + 0.5)
        out.append(_SPARK[max(0, min(rank, len(_SPARK) - 1))])
    return "".join(out)


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1e6 or abs(value) < 1e-3:
        return f"{value:.3g}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:.3f}".rstrip("0").rstrip(".")


def _primary_series(hub: MetricsHub, name: str, last: int) -> List[float]:
    exported = hub.metrics[name].export_series()
    series = exported.get("") or exported.get("p95") or []
    return [value for _t0, value in series[-last:]]


def render_frame(
    hub: MetricsHub, boundary_ns: float, title: str, spark_windows: int = 24
) -> str:
    """One gtop frame: every catalog metric, last window + short-term
    average + an ASCII trend over the last ``spark_windows`` windows."""
    lines = [
        f"gtop — {title}  t={boundary_ns / 1000.0:.1f}us  "
        f"window={hub.window_ns / 1000.0:g}us  ticks={hub.ticks}  "
        f"hub={hub.label or '-'}",
        f"{'METRIC':<24} {'UNIT':<9} {'LAST':>10} {'AVG8':>10}  TREND",
    ]
    for spec in hub.catalog:
        if spec.name not in hub.metrics:
            continue
        last = hub.read(spec.name)
        avg = hub.read(spec.name, window=8)
        trend = _spark(_primary_series(hub, spec.name, spark_windows))
        lines.append(
            f"{spec.name:<24} {spec.unit:<9} {_fmt(last):>10} "
            f"{_fmt(avg):>10}  {trend}"
        )
    return "\n".join(lines)


class _GtopRenderer:
    """Tick listener that prints a frame every N windows (closure-free
    so an attached hub stays picklable if a run checkpoints)."""

    def __init__(
        self, title: str, every: int, follow: bool, max_frames: int
    ) -> None:
        self.title = title
        self.every = max(1, every)
        self.follow = follow
        self.max_frames = max_frames
        self.frames = 0

    def __call__(self, hub: MetricsHub, boundary_ns: float) -> None:
        if hub.ticks % self.every != 0:
            return
        if self.frames >= self.max_frames:
            return
        self.frames += 1
        frame = render_frame(hub, boundary_ns, self.title)
        if self.follow:
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
        else:
            sys.stdout.write(frame + "\n\n")
        sys.stdout.flush()


def _run_experiment(name: str, plan: MetricsHubPlan):
    if name not in experiments.all_names():
        raise SystemExit(
            f"unknown experiment {name!r}; choose from "
            f"{', '.join(experiments.all_names())}"
        )
    install_global_plan(plan)
    try:
        return experiments.run(name)
    finally:
        clear_global_plan()


def _run_serving_point(plan: MetricsHubPlan, args) -> dict:
    from repro.serving.sweep import (
        ServingConfig,
        build_target,
        memcached_reply_check,
        run_point_on,
    )

    config = ServingConfig(
        workload=args.workload,
        num_clients=args.clients,
        warmup_ns=args.warmup_us * 1000.0,
        measure_ns=args.measure_us * 1000.0,
        seed=args.seed,
    )
    install_global_plan(plan)
    try:
        system, workload = build_target(config)
    finally:
        clear_global_plan()
    check = (
        memcached_reply_check(workload)
        if config.workload == "memcached"
        else None
    )
    return run_point_on(system, workload, config, args.rps, check_reply=check)


def _write_outputs(plan: MetricsHubPlan, args, experiment: str) -> None:
    hub = plan.hub
    if hub is None:
        return
    if getattr(args, "prom", None):
        write_prometheus(hub, args.prom, experiment)
        print(f"wrote {args.prom}")
    if getattr(args, "csv", None):
        write_csv(hub, args.csv)
        print(f"wrote {args.csv}")
    if getattr(args, "json", None):
        doc = {
            "experiment": experiment,
            "hubs": merged_hub_payloads(hub.registry)
            if len(plan.hubs) == 1
            else [series_payload(h) for h in plan.hubs],
        }
        with open(args.json, "w") as fh:
            json.dump(doc, fh, sort_keys=True, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")


def _plan_from(args, listener=None) -> MetricsHubPlan:
    return MetricsHubPlan(
        window_ns=args.window_us * 1000.0, listener=listener
    )


def cmd_run(args) -> int:
    plan = _plan_from(args)
    if args.name == "serving":
        point = _run_serving_point(plan, args)
        if not args.quiet:
            print(
                f"serving {args.workload} @{args.rps}rps: "
                f"achieved {point['achieved_rps']:.0f} rps, "
                f"completion {point['completion']:.3f}, "
                f"p99 {point['latency_ns']['p99'] / 1000.0:.1f}us"
            )
            print()
    else:
        result = _run_experiment(args.name, plan)
        if not args.quiet:
            print(result.render())
            print()
    for hub in plan.hubs:
        hub.finalize()
        snap = hub.snapshot()
        print(
            f"[{hub.label}] {len(hub.metrics)} metrics, "
            f"{snap['ticks']} flush ticks, window {hub.window_ns / 1000.0:g}us"
        )
    _write_outputs(plan, args, args.name)
    return 0


def cmd_report(args) -> int:
    plan = _plan_from(args)
    result = _run_experiment(args.name, plan)
    if not args.quiet:
        print(result.render())
        print()
    for hub in plan.hubs:
        hub.finalize()
        print(render_frame(hub, hub.now(), args.name))
        print()
    if args.series:
        hub = plan.hub
        if hub is not None:
            exported = hub.export_series()
            matches = sorted(
                key for key in exported
                if key == args.series or key.startswith(args.series + ".")
            )
            if not matches:
                print(f"no series matching {args.series!r}")
                return 1
            for key in matches:
                for t0, value in exported[key]:
                    print(f"{key},{t0:.0f},{_fmt(value)}")
    _write_outputs(plan, args, args.name)
    return 0


def cmd_gtop(args) -> int:
    title = args.target if args.target != "serving" else (
        f"serving {args.workload} @{args.rps}rps"
    )
    renderer = _GtopRenderer(
        title, every=args.every, follow=args.follow, max_frames=args.max_frames
    )
    plan = _plan_from(args, listener=renderer)
    if args.target == "serving":
        point = _run_serving_point(plan, args)
        summary = (
            f"achieved {point['achieved_rps']:.0f} rps, "
            f"completion {point['completion']:.3f}, "
            f"p99 {point['latency_ns']['p99'] / 1000.0:.1f}us"
        )
    else:
        result = _run_experiment(args.target, plan)
        summary = result.render().splitlines()[0] if result.render() else ""
    for hub in plan.hubs:
        hub.finalize()
        print(render_frame(hub, hub.now(), f"{title} (final)"))
        print()
    if summary:
        print(summary)
    if args.prom_stdout and plan.hub is not None:
        print()
        print(prometheus_text(plan.hub, title), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.metrics",
        description="windowed telemetry over the tracepoint stream",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    def common(p) -> None:
        p.add_argument(
            "--window-us", type=float, default=DEFAULT_WINDOW_NS / 1000.0,
            help="aggregation window in simulated microseconds",
        )
        p.add_argument("--quiet", action="store_true",
                       help="skip the experiment's own rendering")
        p.add_argument("--prom", help="write Prometheus text to this path")
        p.add_argument("--csv", help="write per-window CSV to this path")
        p.add_argument("--json", help="write the series payload JSON here")

    def serving(p) -> None:
        p.add_argument("--rps", type=int, default=60_000)
        p.add_argument("--workload", default="memcached",
                       choices=("memcached", "udp-echo"))
        p.add_argument("--clients", type=int, default=64)
        p.add_argument("--warmup-us", type=float, default=150.0)
        p.add_argument("--measure-us", type=float, default=300.0)
        p.add_argument("--seed", type=int, default=1)

    p_run = sub.add_parser(
        "run", help="run an experiment (or a serving point) with a hub"
    )
    p_run.add_argument(
        "name", help="experiment name, or 'serving' for a fixed-RPS point"
    )
    serving(p_run)
    common(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_rep = sub.add_parser("report", help="run and print the windowed table")
    p_rep.add_argument("name")
    p_rep.add_argument(
        "--series", help="also dump this metric's windows as CSV rows"
    )
    common(p_rep)
    p_rep.set_defaults(fn=cmd_report)

    p_top = sub.add_parser(
        "gtop", help="top-like live view of an experiment or serving point"
    )
    p_top.add_argument(
        "target", help="experiment name, or 'serving' for a fixed-RPS point"
    )
    p_top.add_argument("--every", type=int, default=25,
                       help="render a frame every N windows")
    p_top.add_argument("--follow", action="store_true",
                       help="redraw in place with ANSI clears")
    p_top.add_argument("--max-frames", type=int, default=40,
                       help="cap on intermediate frames")
    serving(p_top)
    p_top.add_argument("--prom-stdout", action="store_true",
                       help="print Prometheus text after the final frame")
    p_top.add_argument(
        "--window-us", type=float, default=DEFAULT_WINDOW_NS / 1000.0
    )
    p_top.set_defaults(fn=cmd_gtop)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
