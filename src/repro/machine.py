"""Simulated machine configuration (paper Table III, scaled).

The paper's testbed is an AMD FX-9800P SoC: 4 CPU cores @ 2.7 GHz, an
integrated GCN3 GPU @ 758 MHz, and 16 GB of dual-channel DDR4-1066 shared
between the two.  :class:`MachineConfig` mirrors that layout with every
latency/bandwidth knob exposed so experiments can sweep them.

Defaults are calibrated so that the microbenchmark *shapes* of the paper
reproduce: the GPU L2 holds 4096 cachelines (the knee of Figure 9), the
atomic-operation latencies follow Table IV's ordering, and the DRAM
channel is shared between CPU and GPU accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

CACHELINE_BYTES = 64

#: Atomic / load latencies in nanoseconds (paper Table IV, measured on the
#: FX-9800P in microseconds; ordering cmp-swap > swap > atomic-load > load
#: is the property the design relies on).
ATOMIC_LATENCY_NS = {
    "cmp-swap": 1245.0,
    "swap": 1037.0,
    "atomic-load": 1011.0,
    "load": 538.0,
}


@dataclass
class MachineConfig:
    """Every tunable of the simulated SoC, with Table-III-like defaults."""

    # -- CPU ------------------------------------------------------------
    cpu_cores: int = 4
    cpu_freq_ghz: float = 2.7
    #: Cost of taking a GPU-raised interrupt on the CPU (handler entry,
    #: reading the wavefront ID, enqueueing the workqueue task).
    interrupt_handler_ns: float = 2000.0
    #: Scheduling delay before an enqueued workqueue task starts running.
    workqueue_dispatch_ns: float = 3000.0
    #: Worker-thread pool size.  Linux workqueues are concurrency-managed:
    #: blocked workers wake substitutes, so the pool exceeds the core
    #: count; CPU-bound segments still contend for the real cores.
    workqueue_workers: int = 32
    #: Fixed CPU-side cost of entering/exiting one system call.
    syscall_base_ns: float = 1500.0
    #: Extra cost to switch the worker thread to the invoking process's
    #: context (Section VI: "switches to the context of the original CPU
    #: program").
    context_switch_ns: float = 1200.0
    #: CPU copy bandwidth between kernel and user buffers (bytes/ns).
    cpu_copy_bw_bytes_per_ns: float = 6.0

    # -- GPU ------------------------------------------------------------
    gpu_freq_ghz: float = 0.758
    num_cus: int = 8
    wavefront_width: int = 64
    #: Hardware wavefront slots per CU (GCN3: 40).
    wavefront_slots_per_cu: int = 40
    #: Max work-items resident per CU (bounds concurrent work-groups).
    max_workitems_per_cu: int = 2560
    #: Latency to resume a halted wavefront (halt-resume waiting mode).
    halt_resume_ns: float = 5000.0
    #: Interval between successive polls of a syscall slot.
    poll_interval_ns: float = 1000.0
    #: Local data share: bank count and per-access latency (GCN3: 32
    #: banks, 4-byte wide; conflicting lanes serialise).
    lds_banks: int = 32
    lds_bank_bytes: int = 4
    lds_access_ns: float = 2.0
    #: Cost of the s_sendmsg scalar instruction raising a CPU interrupt.
    sendmsg_ns: float = 200.0
    #: CPU-side cost of launching a kernel on the GPU (the round-trip the
    #: paper's Figure 1 baseline pays per kernel split).
    kernel_launch_ns: float = 20_000.0

    # -- memory system ----------------------------------------------------
    cacheline_bytes: int = CACHELINE_BYTES
    #: GPU L2 capacity in cachelines (knee of Figure 9: 4096 lines).
    gpu_l2_lines: int = 4096
    gpu_l2_hit_ns: float = 180.0
    gpu_l1_lines: int = 256
    gpu_l1_hit_ns: float = 30.0
    dram_latency_ns: float = 120.0
    #: Shared DRAM bandwidth in bytes/ns (dual-channel DDR4-1066 ~ 17 GB/s).
    dram_bw_bytes_per_ns: float = 17.0
    phys_mem_bytes: int = 16 << 30

    # -- atomics (Table IV) ----------------------------------------------
    atomic_latency_ns: dict = field(default_factory=lambda: dict(ATOMIC_LATENCY_NS))

    # -- devices ----------------------------------------------------------
    #: SSD peak bandwidth in bytes/ns (~500 MB/s) and per-request latency.
    ssd_bw_bytes_per_ns: float = 0.5
    ssd_request_latency_ns: float = 90_000.0
    #: Internal SSD parallelism (channels); concurrent requests scale
    #: throughput up to the peak (Figure 14's 170 vs 30 MB/s effect).
    ssd_channels: int = 8
    #: Loopback/NIC one-way latency and bandwidth for UDP.
    nic_latency_ns: float = 8_000.0
    nic_bw_bytes_per_ns: float = 1.25
    #: Deterministic NIC loss: drop every Nth transmitted datagram
    #: (0 disables loss).  UDP gives no delivery guarantee; workloads
    #: that care must tolerate this.
    nic_drop_every: int = 0
    #: Page-cache capacity in pages (disk-backed files); LRU-evicted
    #: pages must be re-read from the device.  0 means unbounded.
    page_cache_pages: int = 0

    # -- paging / swap (Figure 11) -----------------------------------------
    page_bytes: int = 4096
    page_fault_ns: float = 3_000.0
    swap_in_ns: float = 400_000.0
    #: Consecutive-fault threshold past which the GPU driver would declare
    #: a timeout and kill the application (the paper's missing baseline).
    gpu_timeout_faults: int = 64

    def __post_init__(self) -> None:
        if self.wavefront_width < 1:
            raise ValueError("wavefront_width must be >= 1")
        if self.num_cus < 1:
            raise ValueError("num_cus must be >= 1")
        for key in ("cmp-swap", "swap", "atomic-load", "load"):
            if key not in self.atomic_latency_ns:
                raise ValueError(f"missing atomic latency for {key!r}")

    # -- derived quantities ------------------------------------------------

    @property
    def gpu_cycle_ns(self) -> float:
        return 1.0 / self.gpu_freq_ghz

    @property
    def cpu_cycle_ns(self) -> float:
        return 1.0 / self.cpu_freq_ghz

    @property
    def max_active_wavefronts(self) -> int:
        return self.num_cus * self.wavefront_slots_per_cu

    @property
    def max_active_workitems(self) -> int:
        return self.max_active_wavefronts * self.wavefront_width

    @property
    def syscall_area_slots(self) -> int:
        """One slot per potentially active work-item (Section VI)."""
        return self.max_active_workitems

    @property
    def syscall_area_bytes(self) -> int:
        """64 B per slot; the paper reports 1.25 MB on its platform."""
        return self.syscall_area_slots * self.cacheline_bytes


def paper_machine() -> MachineConfig:
    """The default configuration mirroring the paper's Table III."""
    return MachineConfig()


def small_machine() -> MachineConfig:
    """A reduced configuration for fast unit tests."""
    return MachineConfig(
        num_cus=2,
        wavefront_slots_per_cu=8,
        wavefront_width=8,
        max_workitems_per_cu=256,
        gpu_l2_lines=64,
        gpu_l1_lines=16,
    )
