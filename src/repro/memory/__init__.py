"""Memory-hierarchy models: caches, DRAM, and the atomics cost table.

The GENESYS design leans on three memory-system properties of the paper's
platform (Section VI):

* the GPU L2 is coherent with the CPU while per-CU L1s are not, so the
  syscall area is accessed with atomics that force L2 lookups;
* atomic operations cost measurably more than plain loads (Table IV);
* polled syscall-slot cachelines that exceed the L2 capacity spill to
  DRAM and contend with CPU traffic on the shared controller (Figure 9).

This package models exactly those properties.
"""

from repro.memory.atomics import AtomicCostModel
from repro.memory.cache import Cache, CacheStats
from repro.memory.dram import Dram
from repro.memory.system import MemorySystem

__all__ = ["AtomicCostModel", "Cache", "CacheStats", "Dram", "MemorySystem"]
