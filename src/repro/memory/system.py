"""The assembled memory system: per-CU L1s, shared L2, shared DRAM.

Timing paths (all methods are process bodies for the simulation engine):

* ``gpu_load`` / ``gpu_store`` — L1 (non-coherent, per CU) → L2 → DRAM.
* ``gpu_atomic`` — bypasses the L1 entirely (the Section-VI coherence
  trick), pays the Table-IV atomic latency, and on an L2 miss also moves
  a cacheline through the shared DRAM channel.  A polling loop over more
  lines than the L2 holds therefore floods DRAM — Figure 9.
* ``cpu_stream_access`` — CPU-side streaming access through the same
  DRAM channel, used to measure CPU throughput under GPU contention.
* ``gpu_l1_flush_range`` — the manual software-coherence flush GENESYS
  performs before handing syscall buffers to the CPU.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.machine import MachineConfig
from repro.memory.atomics import AtomicCostModel
from repro.memory.buffers import AddressAllocator, Buffer
from repro.memory.cache import Cache, lines_covering
from repro.memory.dram import Dram
from repro.probes.tracepoints import ProbeRegistry
from repro.sim.engine import Simulator


class MemorySystem:
    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        probes: Optional[ProbeRegistry] = None,
    ):
        self.sim = sim
        self.config = config
        self.probes = probes if probes is not None else ProbeRegistry(sim)
        self.dram = Dram(sim, config, probes=self.probes)
        self.atomics = AtomicCostModel(config)
        self.allocator = AddressAllocator(alignment=config.cacheline_bytes)
        self.l2 = Cache(config.gpu_l2_lines, name="gpu-l2")
        self.l1s: List[Cache] = [
            Cache(config.gpu_l1_lines, name=f"gpu-l1.{cu}")
            for cu in range(config.num_cus)
        ]
        # Rebind the caches' inert class-level tracepoints: one pair per
        # level (all L1s share the mem.l1.* points).
        self.l2.tp_hit = self.probes.tracepoint(
            "mem.l2.hit", ("line",), "GPU L2 hit"
        )
        self.l2.tp_miss = self.probes.tracepoint(
            "mem.l2.miss", ("line",), "GPU L2 miss (line installed)"
        )
        l1_hit = self.probes.tracepoint("mem.l1.hit", ("line",), "per-CU L1 hit")
        l1_miss = self.probes.tracepoint(
            "mem.l1.miss", ("line",), "per-CU L1 miss (line installed)"
        )
        for l1 in self.l1s:
            l1.tp_hit = l1_hit
            l1.tp_miss = l1_miss

    def alloc(self, nbytes: int, align: int = 0) -> int:
        """Reserve a simulated shared-virtual-memory address range."""
        return self.allocator.alloc(nbytes, align)

    def alloc_buffer(self, nbytes: int, align: int = 0) -> Buffer:
        """Allocate an address range with backing storage attached."""
        return Buffer(self.alloc(nbytes, align), nbytes)

    # -- GPU data path ---------------------------------------------------

    def _l1(self, cu_id: int) -> Cache:
        if not 0 <= cu_id < len(self.l1s):
            raise IndexError(f"cu_id {cu_id} out of range")
        return self.l1s[cu_id]

    def gpu_load(self, cu_id: int, addr: int, size: int) -> Generator:
        """Timed GPU read of [addr, addr+size) through L1/L2/DRAM."""
        cfg = self.config
        l1 = self._l1(cu_id)
        for line in lines_covering(addr, size, cfg.cacheline_bytes):
            if l1.access(line):
                yield cfg.gpu_l1_hit_ns
            elif self.l2.access(line):
                yield cfg.gpu_l2_hit_ns
            else:
                yield cfg.gpu_l2_hit_ns
                yield from self.dram.gpu_access(cfg.cacheline_bytes)

    def gpu_store(self, cu_id: int, addr: int, size: int) -> Generator:
        """Timed GPU write; modelled write-through to L2."""
        cfg = self.config
        l1 = self._l1(cu_id)
        for line in lines_covering(addr, size, cfg.cacheline_bytes):
            l1.access(line)
            if self.l2.access(line):
                yield cfg.gpu_l2_hit_ns
            else:
                yield cfg.gpu_l2_hit_ns
                yield from self.dram.gpu_access(cfg.cacheline_bytes)

    def gpu_atomic(self, op: str, addr: int) -> Generator:
        """Timed GPU atomic: L1-bypassing, L2-coherent (Section VI)."""
        latency = self.atomics.charge(op)
        line = addr // self.config.cacheline_bytes
        yield latency
        if not self.l2.access(line):
            yield from self.dram.gpu_access(self.config.cacheline_bytes)

    def gpu_load_uncached(self, addr: int) -> Generator:
        """Timed L1-bypassing plain load (Table IV's 'load' baseline).

        This is the apples-to-apples comparison point for the atomic
        ops: same L2 path, no read-modify-write."""
        latency = self.atomics.charge("load")
        line = addr // self.config.cacheline_bytes
        yield latency
        if not self.l2.access(line):
            yield from self.dram.gpu_access(self.config.cacheline_bytes)

    def gpu_l1_flush_range(self, cu_id: int, addr: int, size: int) -> Generator:
        """Software-coherence flush of a buffer from one CU's L1."""
        dropped = self._l1(cu_id).flush_range(addr, size)
        # A few GPU cycles per dropped line for the flush instructions.
        yield dropped * 4 * self.config.gpu_cycle_ns

    # -- CPU data path ---------------------------------------------------

    def cpu_stream_access(self, nbytes: int) -> Generator:
        """Timed CPU streaming access through the shared DRAM channel."""
        yield from self.dram.cpu_access(nbytes)
