"""Atomic-operation cost model (paper Table IV).

Section VI: the syscall area is restricted to one slot per cacheline so
that GPU atomics — which force L2 lookups and guarantee whole-line
visibility — can sidestep the non-coherent L1s.  Table IV profiles the
operations GENESYS uses: ``cmp-swap`` to claim a slot, ``swap`` to change
its state, ``atomic-load`` to poll for completion, and a plain ``load``
as the baseline.

The model keeps the measured ordering (cmp-swap > swap > atomic-load >
load) and exposes each latency as a knob on
:class:`~repro.machine.MachineConfig`.
"""

from __future__ import annotations

from typing import Dict

from repro.machine import MachineConfig

ATOMIC_OPS = ("cmp-swap", "swap", "atomic-load", "load")


class AtomicCostModel:
    """Latency lookup for the four profiled memory operations."""

    def __init__(self, config: MachineConfig):
        self._latency: Dict[str, float] = dict(config.atomic_latency_ns)
        missing = [op for op in ATOMIC_OPS if op not in self._latency]
        if missing:
            raise ValueError(f"missing atomic latencies: {missing}")
        self.counts: Dict[str, int] = {op: 0 for op in self._latency}

    def latency(self, op: str) -> float:
        """Latency of one operation in nanoseconds."""
        try:
            return self._latency[op]
        except KeyError:
            raise KeyError(
                f"unknown atomic op {op!r}; expected one of {sorted(self._latency)}"
            ) from None

    def charge(self, op: str) -> float:
        """Record one use of ``op`` and return its latency."""
        latency = self.latency(op)
        self.counts[op] += 1
        return latency

    def table(self) -> Dict[str, float]:
        """Table IV rows: op -> latency (ns)."""
        return {op: self._latency[op] for op in ATOMIC_OPS}

    def ordering_holds(self) -> bool:
        """Whether the measured cost ordering of Table IV holds."""
        t = self._latency
        return t["cmp-swap"] >= t["swap"] >= t["atomic-load"] >= t["load"]
