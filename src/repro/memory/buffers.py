"""Shared-virtual-memory buffers.

GENESYS relies on shared virtual addressing (Section III): the GPU
passes pointers in syscall arguments and the CPU dereferences them
directly.  A :class:`Buffer` couples a simulated address range (for
cache/DRAM timing) with a real ``bytearray`` (for functional data), so
file contents, network payloads, and framebuffer pixels actually move.
"""

from __future__ import annotations


class AddressAllocator:
    """Monotonic bump allocator for simulated virtual addresses."""

    def __init__(self, base: int = 0x1000_0000, alignment: int = 64):
        if base <= 0:
            raise ValueError("base must be positive")
        self._next = base
        self._alignment = alignment

    def alloc(self, nbytes: int, align: int = 0) -> int:
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        align = align or self._alignment
        self._next = (self._next + align - 1) // align * align
        addr = self._next
        self._next += nbytes
        return addr


class Buffer:
    """A data buffer at a simulated address."""

    __slots__ = ("addr", "data")

    def __init__(self, addr: int, size: int = 0, data: bytearray = None):
        if data is None:
            data = bytearray(size)
        self.addr = addr
        self.data = data

    @property
    def size(self) -> int:
        return len(self.data)

    def slice(self, offset: int, length: int) -> "Buffer":
        """A view of a sub-range sharing the same storage."""
        if offset < 0 or offset + length > len(self.data):
            raise ValueError("slice out of bounds")
        view = Buffer.__new__(Buffer)
        view.addr = self.addr + offset
        view.data = memoryview(self.data)[offset : offset + length]
        return view

    def __repr__(self) -> str:
        return f"Buffer(0x{self.addr:x}, {self.size}B)"
