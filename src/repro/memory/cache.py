"""Set-associative cache model with LRU replacement.

Used for the GPU L2 (shared, CPU-coherent) and per-CU L1s
(non-coherent).  Only line presence is modelled — data lives in the
functional Python layer — which is all the paper's effects need: the
Figure 9 polling experiment is purely about whether the polled working
set of syscall-slot lines fits in the L2.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List

from repro.machine import CACHELINE_BYTES
from repro.probes.tracepoints import NULL_TRACEPOINT


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


def line_of(addr: int, line_bytes: int = CACHELINE_BYTES) -> int:
    """Cacheline index containing byte address ``addr``."""
    if addr < 0:
        raise ValueError(f"negative address: {addr}")
    return addr // line_bytes


def lines_covering(addr: int, size: int, line_bytes: int = CACHELINE_BYTES) -> List[int]:
    """All cacheline indices touched by [addr, addr+size)."""
    if size <= 0:
        return []
    first = line_of(addr, line_bytes)
    last = line_of(addr + size - 1, line_bytes)
    return list(range(first, last + 1))


class Cache:
    """LRU set-associative cache over cacheline indices.

    ``access(line)`` returns True on hit and installs the line on miss
    (returning False).  ``flush``/``invalidate`` support the manual
    software-coherence path the paper uses for syscall buffers.

    ``tp_hit``/``tp_miss`` are hit/miss tracepoints; the class-level
    default is the inert null tracepoint so standalone caches pay only
    one attribute check per access.  :class:`~repro.memory.system.
    MemorySystem` rebinds them per level (``mem.l1.*`` / ``mem.l2.*``).
    """

    tp_hit = NULL_TRACEPOINT
    tp_miss = NULL_TRACEPOINT

    def __init__(
        self,
        total_lines: int,
        associativity: int = 8,
        line_bytes: int = CACHELINE_BYTES,
        name: str = "",
    ):
        if total_lines < 1:
            raise ValueError("cache must have at least one line")
        if associativity < 1:
            raise ValueError("associativity must be >= 1")
        associativity = min(associativity, total_lines)
        if total_lines % associativity:
            raise ValueError(
                f"total_lines {total_lines} not divisible by associativity {associativity}"
            )
        self.name = name
        self.total_lines = total_lines
        self.associativity = associativity
        self.line_bytes = line_bytes
        self.num_sets = total_lines // associativity
        self._sets: Dict[int, OrderedDict] = {}
        self.stats = CacheStats()

    def _set_for(self, line: int) -> OrderedDict:
        return self._sets.setdefault(line % self.num_sets, OrderedDict())

    def contains(self, line: int) -> bool:
        return line in self._set_for(line)

    def access(self, line: int) -> bool:
        """Touch ``line``; return True on hit, install + evict on miss."""
        cache_set = self._set_for(line)
        if line in cache_set:
            cache_set.move_to_end(line)
            self.stats.hits += 1
            if self.tp_hit.enabled:
                self.tp_hit.fire(line)
            return True
        self.stats.misses += 1
        if self.tp_miss.enabled:
            self.tp_miss.fire(line)
        if len(cache_set) >= self.associativity:
            cache_set.popitem(last=False)
        cache_set[line] = True
        return False

    def access_bytes(self, addr: int, size: int) -> int:
        """Touch every line of a byte range; return the number of misses."""
        misses = 0
        for line in lines_covering(addr, size, self.line_bytes):
            if not self.access(line):
                misses += 1
        return misses

    def invalidate(self, line: int) -> bool:
        """Drop one line (returns whether it was present)."""
        cache_set = self._set_for(line)
        if line in cache_set:
            del cache_set[line]
            self.stats.invalidations += 1
            return True
        return False

    def flush_range(self, addr: int, size: int) -> int:
        """Invalidate all lines of a byte range (software coherence)."""
        dropped = 0
        for line in lines_covering(addr, size, self.line_bytes):
            if self.invalidate(line):
                dropped += 1
        return dropped

    def flush_all(self) -> None:
        self._sets.clear()

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets.values())
