"""DRAM model: a single shared channel with latency + bandwidth.

The FX-9800P's memory controller is shared between CPU and GPU; the
paper's Figure 9 shows CPU access throughput collapsing once the GPU's
polled working set spills out of its L2 and floods this channel.  Both
agents therefore issue their transfers through one
:class:`~repro.sim.resources.BandwidthResource`.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.machine import CACHELINE_BYTES, MachineConfig
from repro.probes.tracepoints import ProbeRegistry
from repro.sim.engine import Simulator
from repro.sim.resources import BandwidthResource


class Dram:
    """Shared CPU/GPU DRAM channel."""

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        probes: Optional[ProbeRegistry] = None,
    ):
        self.sim = sim
        self.config = config
        self.channel = BandwidthResource(
            sim,
            rate_bytes_per_ns=config.dram_bw_bytes_per_ns,
            fixed_latency=config.dram_latency_ns,
            name="dram",
        )
        self.cpu_accesses = 0
        self.gpu_accesses = 0
        registry = probes if probes is not None else ProbeRegistry(sim)
        self.tp_access = registry.tracepoint(
            "dram.access", ("agent", "nbytes"), "one transfer through the channel"
        )
        self.tp_stall = registry.tracepoint(
            "dram.stall",
            ("agent", "stall_ns"),
            "queueing delay behind other transfers (contention, Fig. 9)",
        )
        self.tp_queue = registry.tracepoint(
            "dram.queue",
            ("depth",),
            "gauge: transfers in service or queued on the channel, "
            "including the one being enqueued",
        )

    def _observing(self) -> bool:
        return (
            self.tp_access.enabled
            or self.tp_stall.enabled
            or self.tp_queue.enabled
        )

    def cpu_access(self, nbytes: int = CACHELINE_BYTES) -> Generator:
        """Process body: one CPU-originated transfer."""
        self.cpu_accesses += 1
        if self._observing():
            yield from self._observed_transfer("cpu", nbytes)
        else:
            yield from self.channel.transfer(nbytes)

    def gpu_access(self, nbytes: int = CACHELINE_BYTES) -> Generator:
        """Process body: one GPU-originated transfer."""
        self.gpu_accesses += 1
        if self._observing():
            yield from self._observed_transfer("gpu", nbytes)
        else:
            yield from self.channel.transfer(nbytes)

    def _observed_transfer(self, agent: str, nbytes: int) -> Generator:
        start = self.sim.now
        if self.tp_queue.enabled:
            self.tp_queue.fire(self.channel.queue_depth + 1)
        yield from self.channel.transfer(nbytes)
        if self.tp_access.enabled:
            self.tp_access.fire(agent, nbytes)
        if self.tp_stall.enabled:
            stall = (self.sim.now - start) - self.channel.transfer_time(nbytes)
            if stall > 1e-9:
                self.tp_stall.fire(agent, stall)

    @property
    def bytes_moved(self) -> int:
        return self.channel.bytes_moved
