"""DRAM model: a single shared channel with latency + bandwidth.

The FX-9800P's memory controller is shared between CPU and GPU; the
paper's Figure 9 shows CPU access throughput collapsing once the GPU's
polled working set spills out of its L2 and floods this channel.  Both
agents therefore issue their transfers through one
:class:`~repro.sim.resources.BandwidthResource`.
"""

from __future__ import annotations

from typing import Generator

from repro.machine import CACHELINE_BYTES, MachineConfig
from repro.sim.engine import Simulator
from repro.sim.resources import BandwidthResource


class Dram:
    """Shared CPU/GPU DRAM channel."""

    def __init__(self, sim: Simulator, config: MachineConfig):
        self.sim = sim
        self.config = config
        self.channel = BandwidthResource(
            sim,
            rate_bytes_per_ns=config.dram_bw_bytes_per_ns,
            fixed_latency=config.dram_latency_ns,
            name="dram",
        )
        self.cpu_accesses = 0
        self.gpu_accesses = 0

    def cpu_access(self, nbytes: int = CACHELINE_BYTES) -> Generator:
        """Process body: one CPU-originated transfer."""
        self.cpu_accesses += 1
        yield from self.channel.transfer(nbytes)

    def gpu_access(self, nbytes: int = CACHELINE_BYTES) -> Generator:
        """Process body: one GPU-originated transfer."""
        self.gpu_accesses += 1
        yield from self.channel.transfer(nbytes)

    @property
    def bytes_moved(self) -> int:
        return self.channel.bytes_moved
