"""Tests for the metrics-snapshot exporter, the Perfetto counter-track
merge, and the ``python -m repro.probes`` CLI."""

import json

import pytest

from repro.machine import small_machine
from repro.probes import cli
from repro.probes.cli import SpecError, apply_attach_spec, apply_policy_spec
from repro.probes.exporters import (
    PID_PROBES,
    metrics_snapshot,
    probe_counter_events,
    write_metrics_snapshot,
)
from repro.probes.policy import fixed
from repro.probes.programs import CounterProbe, RateMeter
from repro.probes.tracepoints import ProbeRegistry
from repro.system import System


def ran_system():
    """A small run that exercises syscalls, irqs, and the page cache."""
    system = System(config=small_machine())
    system.kernel.fs.create_file("/data/f", b"t" * 8192, on_disk=True)
    system.kernel.fs.resolve("/data/f").cached_pages.clear()
    buf = system.memsystem.alloc_buffer(64)

    def kern(ctx):
        fd = yield from ctx.sys.open("/data/f")
        yield from ctx.sys.pread(fd, buf, 64, 0)
        yield from ctx.sys.close(fd)

    def body():
        yield system.launch(kern, 2, 2)

    system.run_to_completion(body())
    return system


class TestMetricsSnapshot:
    def test_shape_and_counts(self):
        system = System(config=small_machine())
        reg = system.probes
        reg.attach("irq.raised", CounterProbe(reg))
        reg.attach_policy("coalesce.window", fixed(1000.0))
        snap = metrics_snapshot(reg, experiment="unit")
        assert snap["schema"] == 1
        assert snap["experiment"] == "unit"
        assert snap["simulated_ns"] == 0.0
        assert snap["tracepoints"]["irq.raised"]["observers"] == 1
        assert snap["hooks"]["coalesce.window"]["programs"] == 1
        assert len(snap["programs"]) == 1

    def test_hits_recorded_after_run(self):
        system = ran_system()
        reg = system.probes
        snap = metrics_snapshot(reg)
        # Tracepoints fire (and count hits) only while observed; these
        # had no observers, so hits stay zero — the detached guarantee.
        assert all(tp["hits"] == 0 for tp in snap["tracepoints"].values())

    def test_snapshot_is_json_serialisable(self):
        system = ran_system()
        json.dumps(metrics_snapshot(system.probes))

    def test_write_roundtrip(self, tmp_path):
        system = System(config=small_machine())
        path = tmp_path / "metrics.json"
        written = write_metrics_snapshot(system.probes, str(path), experiment="x")
        loaded = json.loads(path.read_text())
        assert loaded == written


class TestProbeCounterEvents:
    def test_none_registry_is_empty(self):
        assert probe_counter_events(None) == []

    def test_no_series_programs_no_events(self):
        reg = ProbeRegistry()
        reg.tracepoint("t")
        reg.attach("t", CounterProbe(reg))
        assert probe_counter_events(reg) == []

    def test_rate_meter_becomes_counter_track(self):
        class Clock:
            now = 0.0

        reg = ProbeRegistry(Clock())
        reg.tracepoint("irq.raised")
        meter = reg.attach("irq.raised", RateMeter(reg, bin_ns=1000.0))
        meter()
        meter()
        events = probe_counter_events(reg)
        assert events[0]["ph"] == "M"
        assert events[0]["pid"] == PID_PROBES
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == 1
        event = counters[0]
        assert event["name"] == "probe:irq.raised"
        assert event["pid"] == PID_PROBES
        assert event["args"]["value"] == 2e6  # 2 fires / 1000 ns
        assert event["ts"] == 0.0


class TestAttachSpecs:
    def make_registry(self):
        reg = ProbeRegistry()
        for name in ("irq.raised", "irq.serviced", "wq.enqueue"):
            reg.tracepoint(name)
        reg.hook("coalesce.window")
        return reg

    def test_counter_glob(self):
        reg = self.make_registry()
        assert apply_attach_spec(reg, "counter:irq.*") == 2
        assert reg.get("irq.raised").enabled
        assert reg.get("irq.serviced").enabled
        assert not reg.get("wq.enqueue").enabled

    def test_counter_with_key(self):
        reg = self.make_registry()
        apply_attach_spec(reg, "counter:wq.enqueue:key=0")
        assert reg.programs[0].key_arg == 0

    def test_hist_and_rate(self):
        reg = self.make_registry()
        assert apply_attach_spec(reg, "hist:irq.raised:value=1") == 1
        assert apply_attach_spec(reg, "rate:irq.raised:2500") == 1
        kinds = [p.kind for p in reg.programs]
        assert kinds == ["histogram", "rate"]
        assert reg.programs[1].bin_ns == 2500.0

    @pytest.mark.parametrize(
        "spec",
        [
            "counter",  # no target
            "bogus:irq.raised",  # unknown kind
            "counter:irq.raised:keys=0",  # bad option
            "hist:irq.raised:value=x",  # non-integer
            "rate:irq.raised:abc",  # non-integer bin
        ],
    )
    def test_bad_attach_specs(self, spec):
        with pytest.raises(SpecError):
            apply_attach_spec(self.make_registry(), spec)

    def test_policy_spec(self):
        reg = self.make_registry()
        apply_policy_spec(reg, "coalesce.window=20000")
        hook = reg.get_hook("coalesce.window")
        assert hook.active
        assert hook.decide(0.0) == 20000

    @pytest.mark.parametrize("spec", ["coalesce.window", "coalesce.window=", "h=abc"])
    def test_bad_policy_specs(self, spec):
        with pytest.raises(SpecError):
            apply_policy_spec(self.make_registry(), spec)

    def test_unknown_tracepoint_is_keyerror(self):
        with pytest.raises(KeyError):
            apply_attach_spec(self.make_registry(), "hist:no.such.tp")


class TestCli:
    def test_list_prints_catalogue(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "syscall.complete" in out
        assert "coalesce.window" in out

    def test_run_writes_metrics(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        rc = cli.main(
            [
                "run",
                "fig2",
                "--attach",
                "counter:*",
                "--attach",
                "rate:irq.raised:5000",
                "--metrics",
                str(path),
                "--quiet",
            ]
        )
        assert rc == 0
        snapshot = json.loads(path.read_text())
        assert snapshot["experiment"] == "fig2"
        assert snapshot["num_systems"] >= 1
        tracepoints = snapshot["systems"][0]["tracepoints"]
        assert tracepoints  # catalogue exported
        assert sum(tp["hits"] for tp in tracepoints.values()) > 0
        capsys.readouterr()  # swallow the "wrote ..." line

    def test_run_unknown_experiment(self, capsys):
        assert cli.main(["run", "no-such-experiment"]) == 2
        capsys.readouterr()

    def test_run_bad_spec_exits_with_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            cli.main(["run", "fig2", "--attach", "bogus:thing"])
        capsys.readouterr()
