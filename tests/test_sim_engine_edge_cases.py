"""Engine edge cases: interrupts vs waits, exception propagation,
combinator corners, resource handoff under interruption."""

import pytest

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Interrupted,
    SimulationError,
    Simulator,
)
from repro.sim.resources import Resource, Store


@pytest.fixture
def sim():
    return Simulator()


class TestInterruptedWaits:
    def test_interrupt_while_waiting_on_event(self, sim):
        event = sim.event()

        def waiter():
            try:
                yield event
            except Interrupted:
                return "interrupted"

        def interrupter(target):
            yield 10
            target.interrupt()

        proc = sim.process(waiter())
        sim.process(interrupter(proc))
        sim.run()
        assert proc.result == "interrupted"
        # The event can still fire later without resurrecting the waiter.
        event.succeed("late")
        sim.run()
        assert proc.result == "interrupted"

    def test_interrupt_while_joining_process(self, sim):
        def slow():
            yield 1_000_000

        def joiner(target):
            try:
                yield target
            except Interrupted as intr:
                return ("freed", intr.cause)

        slow_proc = sim.process(slow())
        join_proc = sim.process(joiner(slow_proc))

        def interrupter():
            yield 5
            join_proc.interrupt("timeout")

        sim.process(interrupter())
        sim.run()
        assert join_proc.result == ("freed", "timeout")
        assert slow_proc.finished  # the slow process ran to completion

    def test_interrupt_then_continue_working(self, sim):
        event = sim.event()
        log = []

        def worker():
            try:
                yield event
            except Interrupted:
                log.append(("interrupted", sim.now))
            yield 100
            log.append(("done", sim.now))

        proc = sim.process(worker())

        def interrupter():
            yield 10
            proc.interrupt()

        sim.process(interrupter())
        sim.run()
        assert log == [("interrupted", 10), ("done", 110)]


class TestExceptionPropagation:
    def test_process_exception_surfaces_from_run(self, sim):
        def broken():
            yield 1
            raise RuntimeError("kernel bug")

        sim.process(broken())
        with pytest.raises(RuntimeError, match="kernel bug"):
            sim.run()

    def test_exception_before_first_yield(self, sim):
        def broken():
            raise ValueError("early")
            yield 1  # pragma: no cover

        sim.process(broken())
        with pytest.raises(ValueError, match="early"):
            sim.run()


class TestCombinatorCorners:
    def test_allof_empty_list(self, sim):
        def body():
            values = yield AllOf([])
            return values

        # An empty AllOf can never fire; run_process reports deadlock.
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_process(body())

    def test_anyof_same_event_twice(self, sim):
        event = sim.event()

        def body():
            idx, value = yield AnyOf([event, event])
            return idx, value

        def trigger():
            yield 5
            event.succeed("x")

        proc = sim.process(body())
        sim.process(trigger())
        sim.run()
        assert proc.result[1] == "x"

    def test_nested_combinators(self, sim):
        def child(duration, value):
            yield duration
            return value

        def body():
            first_pair = AllOf([sim.process(child(5, "a")), sim.process(child(7, "b"))])
            values = yield first_pair
            idx, value = yield AnyOf([sim.process(child(3, "c")), sim.process(child(9, "d"))])
            return values, value

        values, fastest = sim.run_process(body())
        assert values == ["a", "b"]
        assert fastest == "c"


class TestResourceUnderChurn:
    def test_fifo_survives_many_waves(self, sim):
        resource = Resource(sim, 2)
        order = []

        def worker(tag):
            yield resource.acquire()
            order.append(tag)
            yield 10
            resource.release()

        for tag in range(20):
            sim.process(worker(tag))
        sim.run()
        assert order == list(range(20))
        assert resource.available == 2

    def test_store_interleaved_producers_consumers(self, sim):
        store = Store(sim)
        consumed = []

        def producer(start):
            for i in range(5):
                store.put(start + i)
                yield 3

        def consumer():
            for _ in range(10):
                item = yield store.get()
                consumed.append(item)

        sim.process(producer(0))
        sim.process(producer(100))
        sim.process(consumer())
        sim.run()
        assert sorted(consumed) == sorted(list(range(5)) + list(range(100, 105)))
        assert len(store) == 0

    def test_when_nonempty_spurious_wakeup_is_safe(self, sim):
        store = Store(sim)
        log = []

        def poller():
            yield store.when_nonempty()
            # By now a competing getter may have taken the item.
            log.append(("woke", len(store)))

        def getter():
            item = yield store.get()
            log.append(("got", item))

        sim.process(getter())
        sim.process(poller())

        def producer():
            yield 5
            store.put("only")

        sim.process(producer())
        sim.run()
        assert ("got", "only") in log
        assert ("woke", 0) in log
