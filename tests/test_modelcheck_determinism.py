"""The model checker's two determinism contracts.

Neutrality: installing the FIFO tie-break policy (the hook the whole
subsystem rides on) leaves every experiment byte-identical to the bare
``tie_break = None`` fast path — over the complete experiment suite,
mirroring the metrics plane's equivalent guarantee.

Replayability: a schedule certificate is the *entire* schedule input.
Two guided runs of the same certificate — workload scenarios under
their fault profiles included — produce byte-identical tracepoint
streams, oracle verdicts, and decision records.
"""

import json

import pytest

from repro import experiments
from repro.modelcheck.explore import run_schedule
from repro.modelcheck.scenarios import build_scenario
from repro.modelcheck.schedule import FifoSchedulePlan, GuidedTieBreak
from repro.probes.tracepoints import (
    StreamRecorder,
    clear_global_plan,
    install_global_plan,
)

WORKLOADS = ("fig2", "grep", "memcached")


class TestFifoNeutrality:
    @pytest.mark.parametrize("name", experiments.all_names())
    def test_every_experiment_byte_identical(self, name):
        bare = experiments.run(name).render()
        plan = FifoSchedulePlan()
        install_global_plan(plan)
        try:
            attached = experiments.run(name).render()
        finally:
            clear_global_plan()
        assert attached == bare
        # Not every experiment builds a System; the flagship must have
        # actually exercised the policy path, or this test checks air.
        if name == "fig2":
            assert plan.installed >= 1


def guided_stream(name, choices, seed):
    """One guided run with a full tracepoint stream recorded; returns
    (stream, canonical result JSON)."""
    built = build_scenario(name, profile=name, seed=seed).build()
    recorder = StreamRecorder(built.registry).attach("*")
    built.sim.tie_break = GuidedTieBreak(choices=dict(choices))
    built.execute()
    violations = [v.render() for v in built.sanitizer.finish()]
    verdict = {
        "violations": violations,
        "rules": built.sanitizer.rules_hit(),
        "audit": built.audit(),
        "events": built.sanitizer.events,
    }
    return recorder.events, json.dumps(verdict, sort_keys=True)


class TestCertificateReplayDeterminism:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_same_certificate_same_bytes(self, name):
        # Derive a genuinely non-FIFO certificate from the run itself:
        # swap the first contested pop, keep everything else FIFO.
        probe = run_schedule(name, (), profile=name, seed=3)
        contested = [
            d for d in probe["decisions"] if len(d["candidates"]) > 1
        ]
        assert contested, f"{name}: no contested pops to certify"
        choices = ((contested[0]["index"], 1),)
        first_stream, first_verdict = guided_stream(name, choices, seed=3)
        second_stream, second_verdict = guided_stream(name, choices, seed=3)
        assert first_stream == second_stream
        assert first_verdict == second_verdict
        assert first_stream, f"{name}: recorder saw no events"

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_replay_results_identical_through_run_schedule(self, name):
        first = run_schedule(name, ((0, 1),), profile=name, seed=3)
        second = run_schedule(name, ((0, 1),), profile=name, seed=3)
        assert json.dumps(first, sort_keys=True, default=str) == json.dumps(
            second, sort_keys=True, default=str
        )

    def test_corpus_counterexample_replays_byte_identical(self):
        from repro.modelcheck.corpus import ORDERING_BUGS
        from repro.modelcheck.explore import Bounds, explore

        bug = ORDERING_BUGS[0]
        report = explore(bug.name, bounds=Bounds(max_schedules=64))
        choices = tuple(map(tuple, report.violating[0]["choices"]))
        runs = [run_schedule(bug.name, choices) for _ in range(2)]
        assert json.dumps(runs[0], sort_keys=True) == json.dumps(
            runs[1], sort_keys=True
        )
        assert not runs[0]["ok"]
