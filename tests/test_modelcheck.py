"""repro.modelcheck: the controllable scheduler and the explorer.

Four contracts: (1) the engine's tie-break hook is neutral by default
and fully controllable when driven; (2) the guided policy counts
decisions only at real choice points and replays choice maps exactly;
(3) the explorer's DPOR pruning is sound (same violations as
exhaustive, never more runs) and its coverage is worker-count- and
budget-order-independent; (4) certificates round-trip, replay, and
shrink to 1-minimal counterexamples.
"""

import json

import pytest

from repro.modelcheck.certificate import (
    densify,
    load_certificate,
    make_certificate,
    replay,
    save_certificate,
    shrink,
)
from repro.modelcheck.explore import Bounds, explore, run_schedule
from repro.modelcheck.scenarios import build_scenario, scenario_names
from repro.modelcheck.schedule import (
    PURE,
    EffectCollector,
    FifoTieBreak,
    GuidedTieBreak,
    ScheduleError,
    effects_from_wire,
    effects_to_wire,
    independent,
)
from repro.sim.engine import SimulationError, Simulator

CORPUS_SCENARIOS = (
    "ready-publish-race",
    "lost-doorbell",
    "watchdog-finish-race",
)


def tied_run(policy):
    """Three callbacks tied at t=10 plus one at t=20; returns the order
    the callbacks ran in and the final clock."""
    sim = Simulator()
    sim.tie_break = policy
    order = []
    for tag in "abc":
        sim.call_later(10, lambda tag=tag: order.append(tag))
    sim.call_later(20, lambda: order.append("late"))
    end = sim.run()
    return order, end


class TestTieBreakHook:
    def test_default_and_fifo_policy_identical(self):
        bare = tied_run(None)
        fifo = tied_run(FifoTieBreak())
        assert bare == fifo == (["a", "b", "c", "late"], 20)

    def test_policy_reorders_only_the_tie(self):
        order, end = tied_run(lambda sim, ready: len(ready) - 1)
        assert order == ["c", "b", "a", "late"]
        assert end == 20

    def test_policy_sees_all_and_only_the_tied_entries(self):
        seen = []

        def spy(sim, ready):
            seen.append([entry[0] for entry in ready])
            return 0

        tied_run(spy)
        for whens in seen:
            assert len(set(whens)) == 1  # every batch shares one timestamp
        assert max(len(whens) for whens in seen) == 3

    def test_out_of_range_choice_is_a_simulation_error(self):
        with pytest.raises(SimulationError, match="tie_break"):
            tied_run(lambda sim, ready: 99)


class TestGuidedPolicy:
    def test_empty_choice_map_replays_fifo(self):
        guided, _ = tied_run(GuidedTieBreak())
        assert guided == ["a", "b", "c", "late"]

    def test_choice_map_picks_ranked_alternative(self):
        order, _ = tied_run(GuidedTieBreak(choices={0: 2}))
        assert order[0] == "c"

    def test_rank_out_of_range_raises_schedule_error(self):
        with pytest.raises(ScheduleError, match="decision 0"):
            tied_run(GuidedTieBreak(choices={0: 7}))

    def test_decisions_counted_only_at_contested_pops(self):
        policy = GuidedTieBreak()
        tied_run(policy)
        # One 3-way tie, then 2-way, then singles: two decisions.
        assert [d.index for d in policy.decisions] == [0, 1]
        assert len(policy.decisions[0].candidates) == 3
        assert len(policy.decisions[1].candidates) == 2

    def test_tombstones_and_finished_procs_are_not_choice_points(self):
        sim = Simulator()
        policy = GuidedTieBreak()
        sim.tie_break = policy
        order = []
        handle = sim.call_later(10, lambda: order.append("cancelled"))
        sim.call_later(10, lambda: order.append("live"))
        handle.fn = None  # cancel: the tie is now uncontested
        sim.run()
        assert order == ["live"]
        assert policy.decisions == []


class TestEffects:
    def test_independence_relation(self):
        a = frozenset({"slot:0"})
        b = frozenset({"slot:1"})
        assert independent(a, b)
        assert independent(a, PURE)
        assert not independent(a, a)
        assert not independent(a, None)  # unknown conflicts with all
        assert not independent(None, None)

    def test_wire_round_trip(self):
        for effects in (None, PURE, frozenset({"slot:3", "inv:1"})):
            assert effects_from_wire(effects_to_wire(effects)) == effects

    def test_collector_attributes_scopes_and_neutral_gauges(self):
        built = build_scenario("slot-commute").build()
        collector = EffectCollector().install(built.registry)
        built.execute()
        fired, unscoped, scopes = collector.take()
        assert fired
        # slot.occupancy fired (a neutral gauge) but did not poison the
        # footprint; the slot transitions attributed both slots.
        assert not unscoped
        assert {"slot:0"} <= scopes and len({s for s in scopes if s.startswith("slot:")}) == 2


class TestExplorer:
    def test_fifo_root_is_the_first_schedule(self):
        report = explore("ready-publish-race", bounds=Bounds(max_schedules=8))
        assert () in report.visited

    def test_dpor_prunes_commuting_reorderings(self):
        dpor = explore("slot-commute", bounds=Bounds(max_schedules=64))
        full = explore(
            "slot-commute", bounds=Bounds(max_schedules=64, dpor=False)
        )
        assert dpor.ok and full.ok
        # Both tied pairs commute (disjoint slots): each swap is
        # sleep-blocked before its oracle ever runs.
        assert full.schedules == 4
        assert dpor.schedules == 3
        assert dpor.blocked == 2
        assert dpor.pruned >= 2

    @pytest.mark.parametrize("scenario", CORPUS_SCENARIOS)
    def test_dpor_finds_what_exhaustive_finds(self, scenario):
        bounds = dict(max_schedules=256, max_depth=10, max_preemptions=3)
        dpor = explore(scenario, bounds=Bounds(**bounds))
        full = explore(scenario, bounds=Bounds(dpor=False, **bounds))
        rules = lambda r: sorted(
            {rule for v in r.violating for rule in v["rules"]}
        )
        assert rules(dpor) == rules(full)
        assert dpor.schedules <= full.schedules

    def test_visited_set_is_worker_count_independent(self):
        baseline = None
        for workers in (1, 2, 4):
            report = explore(
                "watchdog-finish-race",
                bounds=Bounds(max_schedules=64),
                workers=workers,
            )
            key = (
                sorted(report.visited),
                sorted(
                    tuple(map(tuple, v["choices"])) for v in report.violating
                ),
            )
            if baseline is None:
                baseline = key
            assert key == baseline, f"workers={workers} changed coverage"

    def test_budget_truncation_is_deterministic(self):
        first = explore(
            "watchdog-finish-race", bounds=Bounds(max_schedules=7)
        )
        second = explore(
            "watchdog-finish-race", bounds=Bounds(max_schedules=7), workers=4
        )
        assert first.truncated and second.truncated
        assert sorted(first.visited) == sorted(second.visited)

    def test_report_shape(self):
        report = explore("ready-publish-race", bounds=Bounds(max_schedules=8))
        doc = report.as_dict()
        assert doc["scenario"] == "ready-publish-race"
        assert doc["ok"] == report.ok == (not report.violating)
        json.dumps(doc)  # picklable and JSON-serializable throughout

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            explore("no-such-scenario")

    def test_corpus_scenarios_reject_fault_plans(self):
        with pytest.raises(ValueError, match="takes no fault plan"):
            build_scenario("lost-doorbell", profile="fig2")

    def test_scenario_names_cover_all_families(self):
        names = scenario_names()
        assert "fig2" in names and "slot-commute" in names
        for scenario in CORPUS_SCENARIOS:
            assert scenario in names


class TestCertificates:
    def violating_choices(self):
        report = explore("ready-publish-race", bounds=Bounds(max_schedules=64))
        hits = [
            v for v in report.violating if "protocol-error" in v["rules"]
        ]
        assert hits
        return hits[0]["choices"]

    def test_densify_drops_fifo_ranks_and_sorts(self):
        assert densify([(3, 0), (1, 2), (0, 1)]) == ((0, 1), (1, 2))

    def test_round_trip_and_replay(self, tmp_path):
        choices = self.violating_choices()
        cert = make_certificate(
            "ready-publish-race", choices, rules={"protocol-error": 1}
        )
        path = tmp_path / "cert.json"
        save_certificate(cert, str(path))
        loaded = load_certificate(str(path))
        assert loaded == cert
        result = replay(str(path))
        assert "protocol-error" in result["rules"]
        assert not result["ok"]

    def test_unknown_format_and_version_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"format": "not-a-cert"}))
        with pytest.raises(ValueError, match="not a gmc-certificate"):
            load_certificate(str(bogus))
        stale = tmp_path / "stale.json"
        cert = make_certificate("ready-publish-race", ())
        cert["version"] = 99
        stale.write_text(json.dumps(cert))
        with pytest.raises(ValueError, match="version 99"):
            load_certificate(str(stale))

    def test_shrink_is_one_minimal(self):
        choices = self.violating_choices()
        shrunk, attempts = shrink(
            "ready-publish-race", choices, {"protocol-error"}
        )
        assert attempts >= 1
        # 1-minimal: dropping any single remaining choice loses the bug.
        for index in range(len(shrunk)):
            trial = shrunk[:index] + shrunk[index + 1 :]
            result = run_schedule("ready-publish-race", trial)
            assert "protocol-error" not in result["rules"], (
                f"shrink left a removable choice at {index}"
            )

    def test_shrink_refuses_non_reproducing_schedules(self):
        with pytest.raises(ValueError, match="does not reproduce"):
            shrink("ready-publish-race", (), {"protocol-error"})


class TestCLI:
    def test_scenarios_subcommand_lists_everything(self, capsys):
        from repro.modelcheck.cli import main

        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert set(scenario_names()) <= set(out)

    def test_explore_writes_certificates_and_exits_nonzero(
        self, tmp_path, capsys
    ):
        from repro.modelcheck.cli import main

        code = main(
            [
                "explore",
                "--scenario",
                "ready-publish-race",
                "--schedules",
                "64",
                "--cert-dir",
                str(tmp_path),
            ]
        )
        assert code == 1
        certs = sorted(tmp_path.glob("*.json"))
        assert certs
        # Shrinking is on by default: first certificate is minimal.
        cert = load_certificate(str(certs[0]))
        assert len(cert["choices"]) == 1

    def test_replay_exit_codes(self, tmp_path, capsys):
        from repro.modelcheck.cli import main

        buggy = make_certificate(
            "ready-publish-race", self.fifty_fifty(), rules={}
        )
        clean = make_certificate("ready-publish-race", ())
        buggy_path, clean_path = tmp_path / "bug.json", tmp_path / "ok.json"
        save_certificate(buggy, str(buggy_path))
        save_certificate(clean, str(clean_path))
        assert main(["replay", str(buggy_path)]) == 0  # bug reproduced
        assert main(["replay", str(clean_path)]) == 2  # clean run

    def fifty_fifty(self):
        return TestCertificates().violating_choices()
