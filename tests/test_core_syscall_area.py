"""Unit tests for the syscall area and its slot state machine (Fig 5/6)."""

import pytest

from repro.core.invocation import SyscallRequest
from repro.core.syscall_area import Slot, SlotState, SlotStateError, SyscallArea
from repro.machine import MachineConfig, small_machine
from repro.memory.system import MemorySystem
from repro.oskernel.process import OsProcess
from repro.sim.engine import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def area(sim):
    config = small_machine()
    return SyscallArea(sim, config, MemorySystem(sim, config))


def make_request(sim, blocking=True):
    proc = OsProcess(sim, "p")
    return SyscallRequest("getrusage", (), blocking, proc)


def drive_to_ready(sim, slot, blocking=True):
    assert slot.try_claim()
    slot.populate(make_request(sim, blocking))
    slot.set_ready()


class TestHappyPaths:
    def test_blocking_lifecycle(self, sim, area):
        slot = area.slot_for(0, 0)
        drive_to_ready(sim, slot)
        assert slot.state is SlotState.READY
        request = slot.start_processing()
        assert request.name == "getrusage"
        slot.finish(123)
        assert slot.state is SlotState.FINISHED
        assert slot.completion.triggered
        assert slot.consume() == 123
        assert slot.state is SlotState.FREE

    def test_non_blocking_lifecycle_skips_finished(self, sim, area):
        slot = area.slot_for(0, 0)
        drive_to_ready(sim, slot, blocking=False)
        slot.start_processing()
        slot.finish(0)
        assert slot.state is SlotState.FREE
        assert slot.completion.triggered

    def test_slot_reusable_after_free(self, sim, area):
        slot = area.slot_for(0, 0)
        for _ in range(3):
            drive_to_ready(sim, slot)
            slot.start_processing()
            slot.finish(1)
            slot.consume()
        assert slot.state is SlotState.FREE


class TestIllegalTransitions:
    def test_claim_busy_slot_fails_softly(self, sim, area):
        slot = area.slot_for(0, 0)
        drive_to_ready(sim, slot)
        assert slot.try_claim() is False
        assert slot.state is SlotState.READY

    def test_ready_without_populate(self, sim, area):
        slot = area.slot_for(0, 0)
        slot.try_claim()
        with pytest.raises(SlotStateError):
            slot.set_ready()

    def test_populate_without_claim(self, sim, area):
        slot = area.slot_for(0, 0)
        with pytest.raises(SlotStateError):
            slot.populate(make_request(sim))

    def test_process_free_slot(self, sim, area):
        slot = area.slot_for(0, 0)
        with pytest.raises(SlotStateError):
            slot.start_processing()

    def test_process_twice(self, sim, area):
        slot = area.slot_for(0, 0)
        drive_to_ready(sim, slot)
        slot.start_processing()
        with pytest.raises(SlotStateError):
            slot.start_processing()

    def test_finish_without_processing(self, sim, area):
        slot = area.slot_for(0, 0)
        drive_to_ready(sim, slot)
        with pytest.raises(SlotStateError):
            slot.finish(0)

    def test_consume_before_finished(self, sim, area):
        slot = area.slot_for(0, 0)
        drive_to_ready(sim, slot)
        slot.start_processing()
        with pytest.raises(SlotStateError):
            slot.consume()

    def test_gpu_cannot_do_cpu_transition(self, sim, area):
        """READY->PROCESSING is the CPU's edge (Figure 6 colours)."""
        slot = area.slot_for(0, 0)
        drive_to_ready(sim, slot)
        # start_processing is the CPU path and works; but finishing from
        # the GPU side (consume) must fail until the CPU is done.
        with pytest.raises(SlotStateError):
            slot.consume()


class TestAddressing:
    def test_one_slot_per_cacheline_by_default(self, sim, area):
        first = area.slot_for(0, 0)
        second = area.slot_for(0, 1)
        assert second.addr - first.addr == 64
        assert not area.shares_cacheline(first)

    def test_slot_count_matches_active_workitems(self, sim):
        config = small_machine()
        area = SyscallArea(sim, config, MemorySystem(sim, config))
        assert area.num_slots == config.max_active_workitems

    def test_slots_of_returns_wavefront_width(self, area):
        slots = area.slots_of(2)
        assert len(slots) == area.width
        assert slots[0] is area.slot_for(2, 0)

    def test_out_of_range_rejected(self, area):
        with pytest.raises(IndexError):
            area.slot_for(area.num_wavefronts, 0)
        with pytest.raises(IndexError):
            area.slot_for(0, area.width)

    def test_packed_layout_shares_lines(self, sim):
        config = small_machine()
        packed = SyscallArea(sim, config, MemorySystem(sim, config), slot_stride_bytes=16)
        slot = packed.slot_for(0, 0)
        neighbour = packed.slot_for(0, 1)
        assert packed.shares_cacheline(slot)
        assert neighbour.addr - slot.addr == 16

    def test_invalid_stride_rejected(self, sim):
        config = small_machine()
        mem = MemorySystem(sim, config)
        with pytest.raises(ValueError):
            SyscallArea(sim, config, mem, slot_stride_bytes=48)

    def test_total_bytes_reports_full_slots(self, area):
        assert area.total_bytes == area.num_slots * 64


class TestSyscallRequest:
    def test_arg_limit_is_six(self, sim):
        proc = OsProcess(sim, "p")
        SyscallRequest("x", (1, 2, 3, 4, 5, 6), True, proc)
        with pytest.raises(ValueError):
            SyscallRequest("x", (1, 2, 3, 4, 5, 6, 7), True, proc)

    def test_repr_mentions_blocking(self, sim):
        proc = OsProcess(sim, "p")
        assert "non-blocking" in repr(SyscallRequest("x", (), False, proc))


class TestProtocolErrorAccounting:
    """Satellite: illegal transitions are not just raised — they are
    counted per slot and per area, and fire ``slot.protocol_error`` so
    chaos runs can see double-releases and stale finishes."""

    def test_illegal_transition_counts(self, sim, area):
        slot = area.slot_for(0, 0)
        drive_to_ready(sim, slot)
        slot.start_processing()
        slot.finish(0)
        before = slot.protocol_errors
        with pytest.raises(SlotStateError):
            slot.finish(0)  # double release
        assert slot.protocol_errors == before + 1

    def test_area_aggregates_protocol_errors_and_fires_tracepoint(self, sim):
        from repro.probes.tracepoints import ProbeRegistry

        config = small_machine()
        registry = ProbeRegistry(sim)
        area = SyscallArea(sim, config, MemorySystem(sim, config), probes=registry)
        fired = []
        registry.attach(
            "slot.protocol_error",
            lambda slot_index, op, actor, detail: fired.append(
                (slot_index, op, actor)
            ),
        )
        slot = area.slot_for(0, 0)
        with pytest.raises(SlotStateError):
            slot.start_processing()  # out-of-order: FREE -> PROCESSING
        assert area.protocol_errors == 1
        assert fired == [(slot.index, "start_processing", "cpu")]

    def test_stale_finish_rejected_without_raising(self, sim, area):
        """A worker finishing a slot the watchdog already reclaimed (and
        a new request re-claimed) must be refused: no duplicate
        completion, no exception on the worker path."""
        slot = area.slot_for(0, 0)
        drive_to_ready(sim, slot)
        stale = slot.start_processing()
        # Watchdog reclaims the stuck slot, waking the waiter...
        assert slot.reclaim(-110) is stale
        slot.consume()
        # ...and the slot is re-used by a fresh invocation.
        drive_to_ready(sim, slot)
        fresh = slot.start_processing()
        before = slot.protocol_errors
        assert slot.finish(0, expected=stale) is False
        assert slot.protocol_errors == before + 1
        assert slot.state is SlotState.PROCESSING  # fresh request untouched
        assert slot.finish(1, expected=fresh) is True
        assert slot.consume() == 1

    def test_reclaim_of_non_stuck_slot_refused(self, sim, area):
        slot = area.slot_for(0, 0)
        before = slot.protocol_errors
        assert slot.reclaim(-110) is None
        assert slot.protocol_errors == before + 1
        assert slot.state is SlotState.FREE

    def test_reclaim_blocking_lands_finished_with_status(self, sim, area):
        slot = area.slot_for(0, 0)
        drive_to_ready(sim, slot)
        request = slot.reclaim(-110)
        assert request is not None
        assert slot.state is SlotState.FINISHED
        assert slot.completion.triggered
        assert slot.consume() == -110
        assert slot.state is SlotState.FREE

    def test_reclaim_non_blocking_lands_free(self, sim, area):
        slot = area.slot_for(0, 0)
        drive_to_ready(sim, slot, blocking=False)
        slot.start_processing()
        assert slot.reclaim(-110) is not None
        assert slot.state is SlotState.FREE
