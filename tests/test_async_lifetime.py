"""Section IX: asynchronous syscall handling vs process lifetime.

"A potential concern with this design is it defers the system call
processing to potentially past the end of the life-time of the GPU
thread and potentially the process that created the GPU thread itself!
... Our solution is to provide a new function call, invoked by the CPU,
that ensures all GPU system calls have completed before the termination
of the process."

These tests show both sides: draining before teardown preserves the
work; tearing down without draining loses it (the call fails against
the dead process's fd table).
"""

import pytest

from repro.machine import small_machine
from repro.oskernel.fs import O_RDWR
from repro.system import System


def launch_nonblocking_write(system, payload=b"last"):
    """Launch a kernel that issues one non-blocking pwrite and ends."""
    system.kernel.fs.create_file("/tmp/out", b"")
    buf = system.memsystem.alloc_buffer(len(payload))
    buf.data[:] = payload

    def kern(ctx):
        fd = yield from ctx.sys.open("/tmp/out", O_RDWR)
        yield from ctx.sys.pwrite(fd, buf, len(payload), 0, blocking=False)

    return system.launch(kern, 1, 1)


class TestDrainBeforeExit:
    def test_drain_then_terminate_preserves_write(self):
        system = System(config=small_machine())

        def main():
            yield launch_nonblocking_write(system)
            # The paper's host-side call: wait for outstanding GPU
            # syscalls before tearing the process down.
            yield from system.genesys.drain()
            system.kernel.terminate_process(system.host)

        system.sim.run_process(main())
        assert system.kernel.fs.read_whole("/tmp/out") == b"last"
        assert not system.host.alive

    def test_terminate_without_drain_can_lose_the_write(self):
        """Without the drain, teardown races the in-flight call: the
        worker finds the fd table already torn down and the call fails
        with EBADF — the write is lost."""
        system = System(config=small_machine())
        lost = {}

        def main():
            launch = launch_nonblocking_write(system)
            yield launch
            # Kernel has retired but the pwrite may still be queued;
            # tear down immediately (no drain).
            if system.genesys.outstanding > 0:
                system.kernel.terminate_process(system.host)
                lost["raced"] = True
            yield from system.genesys.drain()

        system.sim.run_process(main())
        if lost.get("raced"):
            assert system.kernel.fs.read_whole("/tmp/out") == b""
            # The slot still completed (with the error) and was freed.
            assert system.genesys.outstanding == 0
        else:  # pragma: no cover - scheduling happened to finish early
            pytest.skip("syscall completed before teardown this run")

    def test_terminated_process_rejects_new_calls(self):
        system = System(config=small_machine())
        system.kernel.terminate_process(system.host)

        def main():
            result = yield from system.kernel.execute(
                system.host, "open", ("/tmp/x", 0)
            )
            return result

        # fds are gone; opening installs at fd 0 again, which is fine —
        # but signalling the dead process fails with ESRCH.
        other = system.kernel.create_process("sender")

        def signal_dead():
            result = yield from system.kernel.execute(
                other, "rt_sigqueueinfo", (system.host.pid, 40, 1)
            )
            return result

        from repro.oskernel.errors import Errno

        assert system.sim.run_process(signal_dead()) == -int(Errno.ESRCH)

    def test_stats_still_account_after_teardown_race(self):
        system = System(config=small_machine())

        def main():
            yield launch_nonblocking_write(system)
            system.kernel.terminate_process(system.host)
            yield from system.genesys.drain()

        system.sim.run_process(main())
        stats = system.genesys.stats()
        assert stats["outstanding"] == 0
        assert stats["syscalls_completed"] == sum(stats["invocations"].values())
