"""Unit tests for atomics, DRAM, buffers, and the assembled memory system."""

import pytest

from repro.machine import MachineConfig, small_machine
from repro.memory.atomics import ATOMIC_OPS, AtomicCostModel
from repro.memory.buffers import AddressAllocator, Buffer
from repro.memory.system import MemorySystem
from repro.sim.engine import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def mem(sim):
    return MemorySystem(sim, small_machine())


class TestAtomicCostModel:
    def test_table4_ordering_holds(self):
        model = AtomicCostModel(MachineConfig())
        assert model.ordering_holds()

    def test_table4_rows_complete(self):
        table = AtomicCostModel(MachineConfig()).table()
        assert set(table) == set(ATOMIC_OPS)
        assert all(latency > 0 for latency in table.values())

    def test_plain_load_cheapest(self):
        table = AtomicCostModel(MachineConfig()).table()
        assert table["load"] == min(table.values())

    def test_cmp_swap_most_expensive(self):
        table = AtomicCostModel(MachineConfig()).table()
        assert table["cmp-swap"] == max(table.values())

    def test_unknown_op_raises(self):
        model = AtomicCostModel(MachineConfig())
        with pytest.raises(KeyError):
            model.latency("fetch-add")

    def test_charge_counts(self):
        model = AtomicCostModel(MachineConfig())
        model.charge("swap")
        model.charge("swap")
        assert model.counts["swap"] == 2

    def test_missing_latency_rejected(self):
        config = MachineConfig()
        config.atomic_latency_ns = {"load": 1.0}
        with pytest.raises(ValueError):
            AtomicCostModel(config)


class TestAllocator:
    def test_monotonic_non_overlapping(self):
        alloc = AddressAllocator()
        a = alloc.alloc(100)
        b = alloc.alloc(100)
        assert b >= a + 100

    def test_alignment(self):
        alloc = AddressAllocator(alignment=64)
        alloc.alloc(1)
        addr = alloc.alloc(10, align=256)
        assert addr % 256 == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            AddressAllocator().alloc(-1)


class TestBuffer:
    def test_backing_storage(self):
        buf = Buffer(0x1000, 64)
        assert buf.size == 64
        buf.data[0:3] = b"abc"
        assert bytes(buf.data[0:3]) == b"abc"

    def test_slice_shares_storage(self):
        buf = Buffer(0x1000, 64)
        view = buf.slice(16, 8)
        view.data[0:2] = b"hi"
        assert bytes(buf.data[16:18]) == b"hi"
        assert view.addr == 0x1000 + 16

    def test_slice_bounds_checked(self):
        buf = Buffer(0x1000, 64)
        with pytest.raises(ValueError):
            buf.slice(60, 8)


class TestMemorySystem:
    def test_alloc_buffer(self, mem):
        buf = mem.alloc_buffer(128)
        assert buf.size == 128
        assert buf.addr % 64 == 0

    def test_gpu_load_l1_hit_is_cheap(self, sim, mem):
        def body():
            yield from mem.gpu_load(0, 0x1000, 64)
            t_miss = sim.now
            yield from mem.gpu_load(0, 0x1000, 64)
            return t_miss, sim.now - t_miss

        t_miss, t_hit = sim.run_process(body())
        assert t_hit < t_miss

    def test_l1s_are_private_per_cu(self, sim, mem):
        def body():
            yield from mem.gpu_load(0, 0x1000, 64)

        sim.run_process(body())
        assert mem.l1s[0].contains(0x1000 // 64)
        assert not mem.l1s[1].contains(0x1000 // 64)

    def test_atomic_bypasses_l1(self, sim, mem):
        def body():
            yield from mem.gpu_atomic("cmp-swap", 0x2000)

        sim.run_process(body())
        line = 0x2000 // 64
        assert mem.l2.contains(line)
        assert not mem.l1s[0].contains(line)

    def test_atomic_latency_charged(self, sim, mem):
        def body():
            yield from mem.gpu_atomic("atomic-load", 0x40)  # l2 resident after
            start = sim.now
            yield from mem.gpu_atomic("atomic-load", 0x40)
            return sim.now - start

        elapsed = sim.run_process(body())
        assert elapsed == pytest.approx(mem.atomics.latency("atomic-load"))

    def test_atomic_l2_miss_moves_dram_traffic(self, sim, mem):
        cfg = mem.config

        def body():
            for i in range(cfg.gpu_l2_lines * 2):
                yield from mem.gpu_atomic("atomic-load", i * cfg.cacheline_bytes)

        sim.run_process(body())
        assert mem.dram.gpu_accesses > 0

    def test_polled_set_within_l2_no_dram_traffic(self, sim, mem):
        cfg = mem.config
        lines = cfg.gpu_l2_lines // 4

        def body():
            # Warm.
            for i in range(lines):
                yield from mem.gpu_atomic("atomic-load", i * cfg.cacheline_bytes)
            before = mem.dram.gpu_accesses
            for _ in range(3):
                for i in range(lines):
                    yield from mem.gpu_atomic("atomic-load", i * cfg.cacheline_bytes)
            return mem.dram.gpu_accesses - before

        assert sim.run_process(body()) == 0

    def test_l1_flush_range(self, sim, mem):
        def body():
            yield from mem.gpu_load(1, 0x4000, 256)
            yield from mem.gpu_l1_flush_range(1, 0x4000, 256)

        sim.run_process(body())
        assert not mem.l1s[1].contains(0x4000 // 64)

    def test_cpu_stream_contends_with_gpu(self, sim, mem):
        """CPU transfers queue behind GPU DRAM traffic (shared channel)."""

        def gpu_hog():
            for i in range(50):
                yield from mem.dram.gpu_access(4096)

        def cpu_probe():
            yield from mem.cpu_stream_access(64)
            return sim.now

        sim.process(gpu_hog())
        probe = sim.process(cpu_probe())
        sim.run()
        solo = MemorySystem(Simulator(), small_machine())
        solo_sim = solo.sim

        def solo_probe():
            yield from solo.cpu_stream_access(64)
            return solo_sim.now

        solo_time = solo_sim.run_process(solo_probe())
        assert probe.result > solo_time

    def test_bad_cu_id_raises(self, sim, mem):
        def body():
            yield from mem.gpu_load(99, 0, 64)

        with pytest.raises(IndexError):
            sim.run_process(body())
