"""Unit tests for Resource, Store, and BandwidthResource."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.resources import BandwidthResource, Resource, Store


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, 0)

    def test_immediate_grant_when_free(self, sim):
        res = Resource(sim, 2)

        def body():
            yield res.acquire()
            return sim.now

        assert sim.run_process(body()) == 0

    def test_serialises_beyond_capacity(self, sim):
        res = Resource(sim, 1)
        log = []

        def worker(tag, hold):
            yield res.acquire()
            log.append((sim.now, tag, "in"))
            yield hold
            res.release()
            log.append((sim.now, tag, "out"))

        sim.process(worker("a", 10))
        sim.process(worker("b", 5))
        sim.run()
        assert log == [(0, "a", "in"), (10, "a", "out"), (10, "b", "in"), (15, "b", "out")]

    def test_fifo_ordering(self, sim):
        res = Resource(sim, 1)
        order = []

        def worker(tag):
            yield res.acquire()
            order.append(tag)
            yield 1
            res.release()

        for tag in range(6):
            sim.process(worker(tag))
        sim.run()
        assert order == list(range(6))

    def test_release_idle_raises(self, sim):
        res = Resource(sim, 1)
        with pytest.raises(RuntimeError):
            res.release()

    def test_available_tracks_usage(self, sim):
        res = Resource(sim, 3)

        def body():
            yield res.acquire()
            yield res.acquire()
            assert res.available == 1
            res.release()
            assert res.available == 2
            res.release()

        sim.run_process(body())
        assert res.available == 3

    def test_using_helper(self, sim):
        res = Resource(sim, 1)

        def body():
            yield from res.using(42)

        sim.run_process(body())
        assert sim.now == 42
        assert res.available == 1

    def test_handoff_to_waiter_keeps_capacity_accounting(self, sim):
        res = Resource(sim, 1)
        grants = []

        def worker(tag):
            yield res.acquire()
            grants.append(tag)
            yield 5
            res.release()

        sim.process(worker(1))
        sim.process(worker(2))
        sim.process(worker(3))
        sim.run()
        assert grants == [1, 2, 3]
        assert res.in_use == 0


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")

        def body():
            value = yield store.get()
            return value

        assert sim.run_process(body()) == "x"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)

        def getter():
            value = yield store.get()
            return (sim.now, value)

        def putter():
            yield 30
            store.put("late")

        proc = sim.process(getter())
        sim.process(putter())
        sim.run()
        assert proc.result == (30, "late")

    def test_fifo_item_order(self, sim):
        store = Store(sim)
        for i in range(4):
            store.put(i)

        def body():
            out = []
            for _ in range(4):
                out.append((yield store.get()))
            return out

        assert sim.run_process(body()) == [0, 1, 2, 3]

    def test_fifo_getter_order(self, sim):
        store = Store(sim)
        results = []

        def getter(tag):
            value = yield store.get()
            results.append((tag, value))

        for tag in range(3):
            sim.process(getter(tag))

        def putter():
            yield 1
            for i in range(3):
                store.put(i)

        sim.process(putter())
        sim.run()
        assert results == [(0, 0), (1, 1), (2, 2)]

    def test_len_and_peek(self, sim):
        store = Store(sim)
        store.put("a")
        store.put("b")
        assert len(store) == 2
        assert store.peek_all() == ["a", "b"]


class TestBandwidthResource:
    def test_rate_validation(self, sim):
        with pytest.raises(ValueError):
            BandwidthResource(sim, 0)

    def test_transfer_time(self, sim):
        bw = BandwidthResource(sim, rate_bytes_per_ns=2.0, fixed_latency=10.0)
        assert bw.transfer_time(100) == pytest.approx(60.0)

    def test_transfers_serialise(self, sim):
        bw = BandwidthResource(sim, rate_bytes_per_ns=1.0)
        done = []

        def mover(tag, nbytes):
            yield from bw.transfer(nbytes)
            done.append((sim.now, tag))

        sim.process(mover("a", 100))
        sim.process(mover("b", 50))
        sim.run()
        assert done == [(100, "a"), (150, "b")]

    def test_negative_size_rejected(self, sim):
        bw = BandwidthResource(sim, 1.0)

        def body():
            yield from bw.transfer(-1)

        with pytest.raises(ValueError):
            sim.run_process(body())

    def test_bytes_and_utilization(self, sim):
        bw = BandwidthResource(sim, rate_bytes_per_ns=1.0)

        def body():
            yield from bw.transfer(50)
            yield 50  # idle

        sim.run_process(body())
        assert bw.bytes_moved == 50
        assert bw.utilization() == pytest.approx(0.5)

    def test_throughput_series_bins(self, sim):
        bw = BandwidthResource(sim, rate_bytes_per_ns=1.0)

        def body():
            yield from bw.transfer(100)
            yield from bw.transfer(100)

        sim.run_process(body())
        series = bw.throughput_series(bin_ns=100)
        total = sum(rate * 100 for _, rate in series)
        assert total == pytest.approx(200)

    def test_throughput_series_requires_positive_bin(self, sim):
        bw = BandwidthResource(sim, 1.0)
        with pytest.raises(ValueError):
            bw.throughput_series(bin_ns=0)
